#!/usr/bin/env bash
# Chaos gate: release build, then every fault-injection suite, then an
# end-to-end CLI sweep that runs detection under each fault class via the
# STINT_FAULTS environment variable. A run may exit 0 (clean), 1 (races),
# 3 (resource budget exhausted, sound partial report) or 4 (poisoned
# session) — anything else is an escaped panic or crash and fails the gate.
#
# Usage: scripts/chaos.sh
# Invoked from scripts/perfgate.sh before the perf comparison.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release -q

echo "== chaos suites (release)"
cargo test --release -q -p stint-repro --test chaos
cargo test --release -q -p stint-om --test tag_pressure
cargo test --release -q -p stint-cilkrt --test degrade
cargo test --release -q -p stint-cli --test exit_codes

echo "== CLI sweep: all fault classes via STINT_FAULTS"
CLI=target/release/stint-cli
PLANS=(
    "seed=1,om-tags=12"
    "seed=2,om-storm=2"
    "seed=3,om-tags=14,om-storm=3"
    "seed=4,shadow-pages=2"
    "seed=5,shadow-oom-at=4"
    "seed=6,treap-degenerate"
    "seed=7,worker-spawn-fail=0"
    "seed=8,worker-panic=0"
    "seed=9,panic-at-flush=1"
    "seed=10,om-storm=2,shadow-pages=2,treap-degenerate"
)
for plan in "${PLANS[@]}"; do
    for bench in mmul sort; do
        set +e
        STINT_FAULTS="$plan" "$CLI" detect "$bench" >/dev/null 2>&1
        code=$?
        set -e
        case "$code" in
            0|1|3|4)
                printf '  ok: %-48s %s -> exit %d\n' "$plan" "$bench" "$code"
                ;;
            *)
                echo "FAIL: STINT_FAULTS='$plan' detect $bench exited $code (escaped panic?)"
                exit 1
                ;;
        esac
    done
done

echo "chaos gate passed"
