#!/usr/bin/env bash
# DePa / parallel-online smoke test: prove the substrate-equivalence and
# determinism claims of the relabel-free online mode end to end on the real
# CLI binary:
#
#  * sequential detection under `--reach depa` renders the same report as
#    the default SP-Order substrate (wall-time lines stripped; absolute
#    addresses canonicalized, since each process run maps the workload's
#    heap buffers at ASLR-shifted bases);
#  * parallel-online detection (`--online-parallel`) agrees with the
#    sequential STINT verdict — same race-report and racy-word counts, same
#    exit code;
#  * the online render is byte-identical across worker counts {1, 2, 4, 8}
#    and steal seeds at a fixed chunk size (canonicalized across processes,
#    byte-for-byte within each run);
#  * the degradation contract matches the sequential tiers: an injected
#    flush panic exits 4 on both sequential and online runs, a one-interval
#    budget exits 3, and online-only flags without `--online-parallel` are
#    a usage error (exit 2).
#
# Usage: scripts/depa_smoke.sh [bench] (default: buggy-mmul)

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-buggy-mmul}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cargo build --release -q -p stint-cli --bin stint-cli

# Canonicalize absolute addresses: every distinct 0x… token becomes A<n> in
# order of first appearance, so reports from different processes (different
# heap bases) compare structurally. Wall-time lines are stripped first.
canon() {
    grep -v -e "wall time:" -e "access-hist time:" \
        | awk '{
            while (match($0, /0x[0-9a-f]+/)) {
                tok = substr($0, RSTART, RLENGTH);
                if (!(tok in map)) map[tok] = "A" ++n;
                $0 = substr($0, 1, RSTART - 1) map[tok] substr($0, RSTART + RLENGTH);
            }
            print
        }'
}

echo "== sequential detection: --reach depa vs --reach sporder"
set +e
./target/release/stint-cli detect "$BENCH" --scale test --reach sporder >"$OUT/sporder.txt"
RC_SP=$?
./target/release/stint-cli detect "$BENCH" --scale test --reach depa >"$OUT/depa.txt"
RC_DP=$?
set -e
if [ "$RC_SP" != "$RC_DP" ]; then
    echo "FAIL: substrates disagree on the exit code ($RC_SP vs $RC_DP)"
    exit 1
fi
canon <"$OUT/sporder.txt" >"$OUT/sporder.canon"
canon <"$OUT/depa.txt" >"$OUT/depa.canon"
if ! diff "$OUT/sporder.canon" "$OUT/depa.canon"; then
    echo "FAIL: --reach depa renders a different report than --reach sporder"
    exit 1
fi
echo "ok: DePa and SP-Order render identical reports (exit $RC_SP)"

echo "== online-parallel agrees with the sequential STINT verdict"
set +e
./target/release/stint-cli detect "$BENCH" --scale test --online-parallel \
    --workers 2 >"$OUT/online.txt"
RC_ON=$?
set -e
if [ "$RC_ON" != "$RC_SP" ]; then
    echo "FAIL: online exit code $RC_ON, sequential $RC_SP"
    exit 1
fi
grep "races:" "$OUT/sporder.txt" >"$OUT/seq.races"
grep "races:" "$OUT/online.txt" >"$OUT/online.races"
if ! diff "$OUT/seq.races" "$OUT/online.races"; then
    echo "FAIL: online race/racy-word counts diverge from sequential STINT"
    exit 1
fi
echo "ok: online verdict matches sequential STINT ($(cat "$OUT/seq.races" | tr -s ' '))"

echo "== online render is byte-identical across workers and steal seeds"
./target/release/stint-cli detect "$BENCH" --scale test --online-parallel \
    --workers 1 --chunk-events 64 >"$OUT/w1.txt" || true
canon <"$OUT/w1.txt" >"$OUT/w1.canon"
for spec in "2 0" "4 0" "8 0" "2 7" "4 1234"; do
    set -- $spec
    W=$1; SEED=$2
    ./target/release/stint-cli detect "$BENCH" --scale test --online-parallel \
        --workers "$W" --steal-seed "$SEED" --chunk-events 64 >"$OUT/w.txt" || true
    canon <"$OUT/w.txt" >"$OUT/w.canon"
    if ! diff "$OUT/w1.canon" "$OUT/w.canon"; then
        echo "FAIL: online render differs at workers=$W steal-seed=$SEED"
        exit 1
    fi
done
echo "ok: workers {1,2,4,8} x steal seeds render byte-identically (canonicalized)"

echo "== chaos knob: injected flush panic exits 4 on both tiers"
for extra in "" "--online-parallel --workers 2"; do
    set +e
    # shellcheck disable=SC2086
    ./target/release/stint-cli detect sort --scale test $extra \
        --fault-plan panic-at-flush=5 >/dev/null 2>"$OUT/panic.err"
    RC=$?
    set -e
    if [ "$RC" != 4 ]; then
        echo "FAIL: panic-at-flush (${extra:-sequential}) exited $RC, expected 4"
        exit 1
    fi
done
echo "ok: poisoned-session contract holds (exit 4, sequential and online)"

echo "== chaos knob: one-interval budget degrades with exit 3"
set +e
./target/release/stint-cli detect "$BENCH" --scale test --online-parallel \
    --workers 2 --max-intervals 1 >/dev/null 2>"$OUT/budget.err"
RC=$?
set -e
if [ "$RC" != 3 ]; then
    echo "FAIL: --max-intervals 1 under online exited $RC, expected 3"
    exit 1
fi
echo "ok: budget degradation contract holds (exit 3)"

echo "== usage contract: online-only flags require --online-parallel"
set +e
./target/release/stint-cli detect "$BENCH" --scale test --workers 4 \
    >/dev/null 2>&1
RC=$?
set -e
if [ "$RC" != 2 ]; then
    echo "FAIL: --workers without --online-parallel exited $RC, expected 2"
    exit 1
fi
echo "ok: --workers without --online-parallel is a usage error (exit 2)"

echo "depa smoke passed"
