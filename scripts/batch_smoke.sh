#!/usr/bin/env bash
# Batch-mode smoke test: record a trace of one suite workload, replay it
# through the sharded batch detector, and prove the equivalence claims the
# differential battery makes, end to end on the real CLI binary:
#
#  * batch replay at K=4 agrees with the sequential STINT replay of the same
#    trace (line 1 names the variant, so the diff skips it — everything
#    else must be byte-identical);
#  * batch replay output is byte-identical across shard counts (K=1 vs K=4
#    vs K=7, including line 1 — the header never mentions K);
#  * a truncated copy of the trace is rejected structurally: exit 4 and a
#    "corrupt trace" diagnostic, no panic;
#  * the compressed chunked STINT-TRACE v2 encoding round-trips: a
#    `--compress` recording streamed through the chunked batch path renders
#    the same report as the uncompressed in-memory path (modulo the one
#    ingest-telemetry line), stays byte-identical across shard counts, is
#    at most half the v1 size, and rejects truncation AND bit flips with
#    exit 4.
#
# Usage: scripts/batch_smoke.sh [bench] (default: sort)

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-sort}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cargo build --release -q -p stint-cli --bin stint-cli

echo "== record $BENCH trace"
./target/release/stint-cli trace record "$BENCH" "$OUT/run.trace" >/dev/null

echo "== batch replay (K=4) vs sequential stint replay"
./target/release/stint-cli trace replay "$OUT/run.trace" \
    --variant batch --shards 4 >"$OUT/batch4.txt"
./target/release/stint-cli trace replay "$OUT/run.trace" \
    --variant stint >"$OUT/seq.txt"
if ! diff <(tail -n +2 "$OUT/batch4.txt") <(tail -n +2 "$OUT/seq.txt"); then
    echo "FAIL: batch replay disagrees with the sequential replay"
    exit 1
fi
echo "ok: merged batch report matches the sequential report"

echo "== batch replay is byte-identical across shard counts"
for k in 1 7; do
    ./target/release/stint-cli trace replay "$OUT/run.trace" \
        --variant batch --shards "$k" >"$OUT/batch$k.txt"
    if ! diff "$OUT/batch4.txt" "$OUT/batch$k.txt"; then
        echo "FAIL: batch replay output differs between K=4 and K=$k"
        exit 1
    fi
done
echo "ok: K=1, K=4 and K=7 render byte-identically"

echo "== corrupted trace is rejected with exit 4"
head -c "$(($(wc -c <"$OUT/run.trace") / 2))" "$OUT/run.trace" >"$OUT/bad.trace"
set +e
./target/release/stint-cli trace replay "$OUT/bad.trace" \
    --variant batch >/dev/null 2>"$OUT/bad.err"
RC=$?
set -e
if [ "$RC" != 4 ]; then
    echo "FAIL: truncated trace exited $RC, expected 4"
    exit 1
fi
grep -q "corrupt trace" "$OUT/bad.err" \
    || { echo "FAIL: no 'corrupt trace' diagnostic"; cat "$OUT/bad.err"; exit 1; }
echo "ok: truncated trace rejected structurally (exit 4)"

echo "== compressed trace: record --compress, streamed replay agrees"
./target/release/stint-cli trace record "$BENCH" "$OUT/run.ctrace" --compress >/dev/null
V1_BYTES=$(wc -c <"$OUT/run.trace")
V2_BYTES=$(wc -c <"$OUT/run.ctrace")
if [ "$((2 * V2_BYTES))" -gt "$V1_BYTES" ]; then
    echo "FAIL: compressed trace is $V2_BYTES bytes, more than half of $V1_BYTES"
    exit 1
fi
echo "ok: compressed $V1_BYTES -> $V2_BYTES bytes (<= 0.5x)"
./target/release/stint-cli trace replay "$OUT/run.ctrace" \
    --variant batch --shards 4 >"$OUT/cbatch4.txt"
# The streamed output adds one "  ingested ..." telemetry line; strip it
# when comparing against the in-memory batch replay of the v1 file.
if ! diff <(grep -v "ingested" "$OUT/cbatch4.txt") "$OUT/batch4.txt"; then
    echo "FAIL: streamed compressed replay disagrees with the in-memory replay"
    exit 1
fi
echo "ok: streamed chunked report matches the in-memory batch report"

echo "== compressed replay is byte-identical across shard counts"
for k in 1 7; do
    ./target/release/stint-cli trace replay "$OUT/run.ctrace" \
        --variant batch --shards "$k" >"$OUT/cbatch$k.txt"
    if ! diff "$OUT/cbatch4.txt" "$OUT/cbatch$k.txt"; then
        echo "FAIL: compressed replay output differs between K=4 and K=$k"
        exit 1
    fi
done
echo "ok: compressed K=1, K=4 and K=7 render byte-identically"

echo "== corrupted compressed trace is rejected with exit 4"
head -c "$(($(wc -c <"$OUT/run.ctrace") / 2))" "$OUT/run.ctrace" >"$OUT/bad.ctrace"
cp "$OUT/run.ctrace" "$OUT/flip.ctrace"
printf '\xff' | dd of="$OUT/flip.ctrace" bs=1 \
    seek="$((V2_BYTES / 2))" conv=notrunc 2>/dev/null
for bad in bad.ctrace flip.ctrace; do
    set +e
    ./target/release/stint-cli trace replay "$OUT/$bad" \
        --variant batch >/dev/null 2>"$OUT/$bad.err"
    RC=$?
    set -e
    if [ "$RC" != 4 ]; then
        echo "FAIL: corrupted compressed trace $bad exited $RC, expected 4"
        exit 1
    fi
    grep -q "corrupt trace" "$OUT/$bad.err" \
        || { echo "FAIL: no 'corrupt trace' diagnostic for $bad"; cat "$OUT/$bad.err"; exit 1; }
done
echo "ok: truncated and bit-flipped compressed traces rejected (exit 4)"

echo "batch smoke passed"
