#!/usr/bin/env bash
# Batch-mode smoke test: record a trace of one suite workload, replay it
# through the sharded batch detector, and prove the equivalence claims the
# differential battery makes, end to end on the real CLI binary:
#
#  * batch replay at K=4 agrees with the sequential STINT replay of the same
#    trace (line 1 names the variant, so the diff skips it — everything
#    else must be byte-identical);
#  * batch replay output is byte-identical across shard counts (K=1 vs K=4
#    vs K=7, including line 1 — the header never mentions K);
#  * a truncated copy of the trace is rejected structurally: exit 4 and a
#    "corrupt trace" diagnostic, no panic.
#
# Usage: scripts/batch_smoke.sh [bench] (default: sort)

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-sort}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cargo build --release -q -p stint-cli --bin stint-cli

echo "== record $BENCH trace"
./target/release/stint-cli trace record "$BENCH" "$OUT/run.trace" >/dev/null

echo "== batch replay (K=4) vs sequential stint replay"
./target/release/stint-cli trace replay "$OUT/run.trace" \
    --variant batch --shards 4 >"$OUT/batch4.txt"
./target/release/stint-cli trace replay "$OUT/run.trace" \
    --variant stint >"$OUT/seq.txt"
if ! diff <(tail -n +2 "$OUT/batch4.txt") <(tail -n +2 "$OUT/seq.txt"); then
    echo "FAIL: batch replay disagrees with the sequential replay"
    exit 1
fi
echo "ok: merged batch report matches the sequential report"

echo "== batch replay is byte-identical across shard counts"
for k in 1 7; do
    ./target/release/stint-cli trace replay "$OUT/run.trace" \
        --variant batch --shards "$k" >"$OUT/batch$k.txt"
    if ! diff "$OUT/batch4.txt" "$OUT/batch$k.txt"; then
        echo "FAIL: batch replay output differs between K=4 and K=$k"
        exit 1
    fi
done
echo "ok: K=1, K=4 and K=7 render byte-identically"

echo "== corrupted trace is rejected with exit 4"
head -c "$(($(wc -c <"$OUT/run.trace") / 2))" "$OUT/run.trace" >"$OUT/bad.trace"
set +e
./target/release/stint-cli trace replay "$OUT/bad.trace" \
    --variant batch >/dev/null 2>"$OUT/bad.err"
RC=$?
set -e
if [ "$RC" != 4 ]; then
    echo "FAIL: truncated trace exited $RC, expected 4"
    exit 1
fi
grep -q "corrupt trace" "$OUT/bad.err" \
    || { echo "FAIL: no 'corrupt trace' diagnostic"; cat "$OUT/bad.err"; exit 1; }
echo "ok: truncated trace rejected structurally (exit 4)"

echo "batch smoke passed"
