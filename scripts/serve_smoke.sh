#!/usr/bin/env bash
# Serve-mode smoke test: drive the stint-serve daemon end to end on the
# real binaries, over both transports, and prove the robustness claims the
# unit suite makes in-process:
#
#  * a framed stdio conversation (ping, clean v1, clean v2, racy, corrupt,
#    timed-out, stats, shutdown) answers every session with the right
#    status and ends with a clean `bye`;
#  * a saturated daemon (1 worker, queue depth 1) answers `busy` with a
#    retry-after hint instead of queueing without bound, and still serves
#    the sessions it admitted;
#  * the unix-socket transport round-trips: a one-shot `send` client gets
#    the 0-4 exit-code contract (clean 0, racy 1), and `send --shutdown`
#    drains the daemon to a clean exit;
#  * the ops plane round-trips on the real daemon: a journaled stdio
#    conversation leaves a `stint-journal-v1` file that `journal
#    inspect`/`replay` and `jsoncheck journal` accept, a HEALTH frame
#    answers the operational snapshot, and the post-drain `--prom-out` /
#    `--flight-dump` exports pass `jsoncheck prom` / `validate`;
#  * a 500-session chaos soak (mixed clean/racy/corrupt/usage/timeout
#    traffic under an injected-panic fault plan) runs the two-phase
#    obs-off/obs-full study and finishes with zero lost races, balanced
#    counters, drained gauges, a clean journal replay, and a
#    `BENCH_serve.json` (v2) that `jsoncheck serve` accepts.
#
# Usage: scripts/serve_smoke.sh [bench] (default: sort)

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-sort}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cargo build --release -q -p stint-cli --bin stint-cli
cargo build --release -q -p stint-serve --bin stint-serve
cargo build --release -q -p stint-bench --bin serve_load --bin jsoncheck
SERVE=./target/release/stint-serve

echo "== corpus: record $BENCH (v1 + compressed v2), handcraft racy + corrupt"
./target/release/stint-cli trace record "$BENCH" "$OUT/clean.trace" >/dev/null
./target/release/stint-cli trace record "$BENCH" "$OUT/clean.ctrace" --compress >/dev/null
printf 'STINT-TRACE v1\nstrands 3\n0 0\n1 2\n2 1\nevents 4\ns 1 0x40 4\ne 1 0x0 0\ns 2 0x40 4\ne 2 0x0 0\n' \
    >"$OUT/racy.trace"
head -c "$(($(wc -c <"$OUT/clean.trace") / 2))" "$OUT/clean.trace" >"$OUT/bad.trace"

echo "== stdio transport: one framed conversation, every status"
{
    "$SERVE" frame ping
    "$SERVE" frame detect "$OUT/clean.trace"
    "$SERVE" frame detect --opts shards=2 "$OUT/clean.ctrace"
    "$SERVE" frame detect "$OUT/racy.trace"
    "$SERVE" frame detect "$OUT/bad.trace"
    "$SERVE" frame detect --opts frobnicate "$OUT/clean.trace"
    "$SERVE" frame detect --opts timeout-ms=0 "$OUT/clean.ctrace"
    "$SERVE" frame stats
    "$SERVE" frame shutdown
} >"$OUT/conv.frames"
"$SERVE" serve --stdio <"$OUT/conv.frames" >"$OUT/conv.resp"
"$SERVE" decode <"$OUT/conv.resp" >"$OUT/conv.txt"
# STATS is answered inline by the reader while detect sessions complete
# asynchronously, so assert the snapshot's shape, not its mid-stream counts.
for want in "kind: pong" ": racy" ": corrupt" ": usage" ": degraded" \
    "kind: stats" "session-workers: 2" "queued: " ": bye"; do
    grep -q "$want" "$OUT/conv.txt" \
        || { echo "FAIL: stdio conversation missing \"$want\""; cat "$OUT/conv.txt"; exit 1; }
done
[ "$(grep -c -- "-- session .*: ok" "$OUT/conv.txt")" -ge 2 ] \
    || { echo "FAIL: expected two clean sessions to answer ok"; cat "$OUT/conv.txt"; exit 1; }
echo "ok: ping/ok/racy/corrupt/usage/degraded/stats/bye all observed"

echo "== backpressure: 1 worker, queue depth 1 => busy with retry-after"
for _ in 1 2 3 4 5 6; do
    "$SERVE" frame detect --opts stall-ms=100 "$OUT/racy.trace"
done >"$OUT/storm.frames"
"$SERVE" serve --stdio --session-workers 1 --queue-depth 1 \
    <"$OUT/storm.frames" >"$OUT/storm.resp"
"$SERVE" decode <"$OUT/storm.resp" >"$OUT/storm.txt"
grep -q "retry-after-ms" "$OUT/storm.txt" \
    || { echo "FAIL: saturated daemon never answered busy"; cat "$OUT/storm.txt"; exit 1; }
grep -q ": racy" "$OUT/storm.txt" \
    || { echo "FAIL: admitted sessions were not served"; cat "$OUT/storm.txt"; exit 1; }
echo "ok: saturation answers busy (retry-after hint) and admitted work completes"

echo "== unix-socket transport: daemon, one-shot client, graceful shutdown"
SOCK="$OUT/serve.sock"
"$SERVE" serve --socket "$SOCK" --idle-timeout-ms 5000 2>"$OUT/daemon.err" &
DAEMON=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.05; done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK"; cat "$OUT/daemon.err"; exit 1; }
"$SERVE" send --socket "$SOCK" --ping "$OUT/clean.trace" >"$OUT/send1.txt"
grep -q ": ok" "$OUT/send1.txt" \
    || { echo "FAIL: clean trace over socket not ok"; cat "$OUT/send1.txt"; exit 1; }
set +e
"$SERVE" send --socket "$SOCK" "$OUT/racy.trace" >"$OUT/send2.txt"
RC=$?
set -e
[ "$RC" = 1 ] || { echo "FAIL: racy trace exited $RC, expected 1"; cat "$OUT/send2.txt"; exit 1; }
"$SERVE" send --socket "$SOCK" --shutdown >"$OUT/send3.txt"
grep -q ": bye" "$OUT/send3.txt" \
    || { echo "FAIL: shutdown did not answer bye"; cat "$OUT/send3.txt"; exit 1; }
wait "$DAEMON" \
    || { echo "FAIL: daemon exited nonzero after shutdown"; cat "$OUT/daemon.err"; exit 1; }
[ ! -S "$SOCK" ] || { echo "FAIL: socket file not removed on shutdown"; exit 1; }
echo "ok: socket round trip (exit 0/1 contract) and clean drain"

echo "== ops plane: journal + HEALTH + prometheus + flight dump on the daemon"
{
    "$SERVE" frame health
    "$SERVE" frame detect "$OUT/clean.trace"
    "$SERVE" frame detect "$OUT/racy.trace"
    "$SERVE" frame shutdown
} >"$OUT/ops.frames"
"$SERVE" serve --stdio --obs full --journal "$OUT/ops.journal" \
    --journal-fsync every=8 --prom-out "$OUT/ops.prom" \
    --flight-dump "$OUT/ops.flight" <"$OUT/ops.frames" >"$OUT/ops.resp"
"$SERVE" decode <"$OUT/ops.resp" >"$OUT/ops.txt"
for want in "kind: health" "uptime-ms: " "journal: " ": racy" ": bye"; do
    grep -q "$want" "$OUT/ops.txt" \
        || { echo "FAIL: ops conversation missing \"$want\""; cat "$OUT/ops.txt"; exit 1; }
done
./target/release/jsoncheck journal "$OUT/ops.journal"
./target/release/jsoncheck prom "$OUT/ops.prom"
./target/release/jsoncheck validate "$OUT/ops.flight"
grep -q "stint-flight-v1" "$OUT/ops.flight" \
    || { echo "FAIL: flight dump is not a stint-flight-v1 document"; exit 1; }
"$SERVE" journal inspect "$OUT/ops.journal" >"$OUT/ops.inspect"
grep -q "clean: true" "$OUT/ops.inspect" \
    || { echo "FAIL: journal inspect reports damage"; cat "$OUT/ops.inspect"; exit 1; }
grep -q "in-flight: 0" "$OUT/ops.inspect" \
    || { echo "FAIL: drained daemon left sessions in flight"; cat "$OUT/ops.inspect"; exit 1; }
"$SERVE" journal replay "$OUT/ops.journal" | grep -q "verdict" \
    || { echo "FAIL: journal replay shows no verdicts"; exit 1; }
# A restarted daemon must replay the journal on startup and report it.
"$SERVE" frame ping | "$SERVE" serve --stdio --journal "$OUT/ops.journal" \
    >/dev/null 2>"$OUT/ops.replay.err"
grep -q "journal replay" "$OUT/ops.replay.err" \
    || { echo "FAIL: restart did not report the journal replay"; cat "$OUT/ops.replay.err"; exit 1; }
echo "ok: journal round trip, HEALTH snapshot, prom + flight exports validate"

echo "== forensics: a torn journal tail degrades to a structured partial"
cp "$OUT/ops.journal" "$OUT/torn.journal"
SIZE=$(wc -c <"$OUT/torn.journal")
head -c "$((SIZE - 3))" "$OUT/torn.journal" >"$OUT/torn.tmp" && mv "$OUT/torn.tmp" "$OUT/torn.journal"
set +e
"$SERVE" journal inspect "$OUT/torn.journal" >"$OUT/torn.txt"
RC=$?
set -e
[ "$RC" = 1 ] || { echo "FAIL: torn journal inspect exited $RC, expected 1"; cat "$OUT/torn.txt"; exit 1; }
grep -q "corruption: " "$OUT/torn.txt" \
    || { echo "FAIL: torn journal not flagged as corrupt"; cat "$OUT/torn.txt"; exit 1; }
echo "ok: torn tail is flagged, intact prefix still replays"

# The soak refreshes the repo-root BENCH_serve.json that `perfgate --check`
# validates, the same way the batch study refreshes BENCH_batch.json.
# serve_load runs its own obs-off/obs-full phases, so no STINT_OBS here.
echo "== chaos soak: 500 mixed sessions x2 phases under injected panics"
STINT_FAULTS="serve-panic-session=10,seed=7" \
    ./target/release/serve_load --sessions 500 --out BENCH_serve.json
./target/release/jsoncheck serve BENCH_serve.json
echo "ok: two-phase soak survived (no lost races, journal clean, gauges drained)"

echo "serve smoke passed"
