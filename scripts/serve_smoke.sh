#!/usr/bin/env bash
# Serve-mode smoke test: drive the stint-serve daemon end to end on the
# real binaries, over both transports, and prove the robustness claims the
# unit suite makes in-process:
#
#  * a framed stdio conversation (ping, clean v1, clean v2, racy, corrupt,
#    timed-out, stats, shutdown) answers every session with the right
#    status and ends with a clean `bye`;
#  * a saturated daemon (1 worker, queue depth 1) answers `busy` with a
#    retry-after hint instead of queueing without bound, and still serves
#    the sessions it admitted;
#  * the unix-socket transport round-trips: a one-shot `send` client gets
#    the 0-4 exit-code contract (clean 0, racy 1), and `send --shutdown`
#    drains the daemon to a clean exit;
#  * a 500-session chaos soak (mixed clean/racy/corrupt/usage/timeout
#    traffic under an injected-panic fault plan, obs on) finishes with
#    zero lost races, balanced counters, drained gauges, and a
#    `BENCH_serve.json` that `jsoncheck serve` accepts.
#
# Usage: scripts/serve_smoke.sh [bench] (default: sort)

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-sort}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cargo build --release -q -p stint-cli --bin stint-cli
cargo build --release -q -p stint-serve --bin stint-serve
cargo build --release -q -p stint-bench --bin serve_load --bin jsoncheck
SERVE=./target/release/stint-serve

echo "== corpus: record $BENCH (v1 + compressed v2), handcraft racy + corrupt"
./target/release/stint-cli trace record "$BENCH" "$OUT/clean.trace" >/dev/null
./target/release/stint-cli trace record "$BENCH" "$OUT/clean.ctrace" --compress >/dev/null
printf 'STINT-TRACE v1\nstrands 3\n0 0\n1 2\n2 1\nevents 4\ns 1 0x40 4\ne 1 0x0 0\ns 2 0x40 4\ne 2 0x0 0\n' \
    >"$OUT/racy.trace"
head -c "$(($(wc -c <"$OUT/clean.trace") / 2))" "$OUT/clean.trace" >"$OUT/bad.trace"

echo "== stdio transport: one framed conversation, every status"
{
    "$SERVE" frame ping
    "$SERVE" frame detect "$OUT/clean.trace"
    "$SERVE" frame detect --opts shards=2 "$OUT/clean.ctrace"
    "$SERVE" frame detect "$OUT/racy.trace"
    "$SERVE" frame detect "$OUT/bad.trace"
    "$SERVE" frame detect --opts frobnicate "$OUT/clean.trace"
    "$SERVE" frame detect --opts timeout-ms=0 "$OUT/clean.ctrace"
    "$SERVE" frame stats
    "$SERVE" frame shutdown
} >"$OUT/conv.frames"
"$SERVE" serve --stdio <"$OUT/conv.frames" >"$OUT/conv.resp"
"$SERVE" decode <"$OUT/conv.resp" >"$OUT/conv.txt"
# STATS is answered inline by the reader while detect sessions complete
# asynchronously, so assert the snapshot's shape, not its mid-stream counts.
for want in "kind: pong" ": racy" ": corrupt" ": usage" ": degraded" \
    "kind: stats" "session-workers: 2" "queued: " ": bye"; do
    grep -q "$want" "$OUT/conv.txt" \
        || { echo "FAIL: stdio conversation missing \"$want\""; cat "$OUT/conv.txt"; exit 1; }
done
[ "$(grep -c -- "-- session .*: ok" "$OUT/conv.txt")" -ge 2 ] \
    || { echo "FAIL: expected two clean sessions to answer ok"; cat "$OUT/conv.txt"; exit 1; }
echo "ok: ping/ok/racy/corrupt/usage/degraded/stats/bye all observed"

echo "== backpressure: 1 worker, queue depth 1 => busy with retry-after"
for _ in 1 2 3 4 5 6; do
    "$SERVE" frame detect --opts stall-ms=100 "$OUT/racy.trace"
done >"$OUT/storm.frames"
"$SERVE" serve --stdio --session-workers 1 --queue-depth 1 \
    <"$OUT/storm.frames" >"$OUT/storm.resp"
"$SERVE" decode <"$OUT/storm.resp" >"$OUT/storm.txt"
grep -q "retry-after-ms" "$OUT/storm.txt" \
    || { echo "FAIL: saturated daemon never answered busy"; cat "$OUT/storm.txt"; exit 1; }
grep -q ": racy" "$OUT/storm.txt" \
    || { echo "FAIL: admitted sessions were not served"; cat "$OUT/storm.txt"; exit 1; }
echo "ok: saturation answers busy (retry-after hint) and admitted work completes"

echo "== unix-socket transport: daemon, one-shot client, graceful shutdown"
SOCK="$OUT/serve.sock"
"$SERVE" serve --socket "$SOCK" --idle-timeout-ms 5000 2>"$OUT/daemon.err" &
DAEMON=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.05; done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK"; cat "$OUT/daemon.err"; exit 1; }
"$SERVE" send --socket "$SOCK" --ping "$OUT/clean.trace" >"$OUT/send1.txt"
grep -q ": ok" "$OUT/send1.txt" \
    || { echo "FAIL: clean trace over socket not ok"; cat "$OUT/send1.txt"; exit 1; }
set +e
"$SERVE" send --socket "$SOCK" "$OUT/racy.trace" >"$OUT/send2.txt"
RC=$?
set -e
[ "$RC" = 1 ] || { echo "FAIL: racy trace exited $RC, expected 1"; cat "$OUT/send2.txt"; exit 1; }
"$SERVE" send --socket "$SOCK" --shutdown >"$OUT/send3.txt"
grep -q ": bye" "$OUT/send3.txt" \
    || { echo "FAIL: shutdown did not answer bye"; cat "$OUT/send3.txt"; exit 1; }
wait "$DAEMON" \
    || { echo "FAIL: daemon exited nonzero after shutdown"; cat "$OUT/daemon.err"; exit 1; }
[ ! -S "$SOCK" ] || { echo "FAIL: socket file not removed on shutdown"; exit 1; }
echo "ok: socket round trip (exit 0/1 contract) and clean drain"

# The soak refreshes the repo-root BENCH_serve.json that `perfgate --check`
# validates, the same way the batch study refreshes BENCH_batch.json.
echo "== chaos soak: 500 mixed sessions under injected panics, obs on"
STINT_FAULTS="serve-panic-session=10,seed=7" STINT_OBS=full \
    ./target/release/serve_load --sessions 500 --out BENCH_serve.json
./target/release/jsoncheck serve BENCH_serve.json
echo "ok: soak survived (no lost races, gauges drained) and report validates"

echo "serve smoke passed"
