#!/usr/bin/env bash
# Witness-provenance smoke test: prove the emit -> verify -> tamper -> reject
# loop end to end on the real CLI binary, against a deliberately racy trace:
#
#  * recording a seeded-bug workload and replaying it with --witness attaches
#    a witness to every kept race, and the replay's --report-json report card
#    passes the `jsoncheck report` structural gate;
#  * `witness verify` re-validates every witness in that report card against
#    the recorded trace (exit 1 from the racy replay is expected; exit 0 from
#    verify is required);
#  * witnessed batch replay is byte-identical across shard counts — the
#    merge-time capture cannot depend on K;
#  * tampering with the report card's order evidence is caught: verify exits
#    4 with a REJECTED diagnostic, never a pass and never a panic;
#  * pairing the report card with the WRONG trace is also rejected;
#  * the inertness contract holds on the surface: without --witness the
#    rendered replay carries no witness lines and the report card says
#    "witness": null for every race.
#
# Usage: scripts/witness_smoke.sh [bench] (default: buggy-mmul)

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-buggy-mmul}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cargo build --release -q -p stint-cli --bin stint-cli
cargo build --release -q -p stint-bench --bin jsoncheck

echo "== record racy $BENCH trace"
./target/release/stint-cli trace record "$BENCH" "$OUT/racy.trace" >/dev/null

echo "== witnessed batch replay (exit 1 = races found) + report card"
set +e
./target/release/stint-cli trace replay "$OUT/racy.trace" --variant batch \
    --witness --report-json "$OUT/report.json" >"$OUT/replay.txt"
RC=$?
set -e
if [ "$RC" != 1 ]; then
    echo "FAIL: witnessed replay of a racy trace exited $RC, expected 1"
    exit 1
fi
grep -q "order=" "$OUT/replay.txt" \
    || { echo "FAIL: no witness evidence in the rendered replay"; exit 1; }
./target/release/jsoncheck report "$OUT/report.json"
if grep -q '"witness": null' "$OUT/report.json"; then
    echo "FAIL: a kept race lost its witness with --witness on"
    exit 1
fi

echo "== witness verify accepts the genuine report card"
./target/release/stint-cli witness verify "$OUT/racy.trace" "$OUT/report.json"

echo "== witnessed replay is byte-identical across shard counts"
for k in 1 7; do
    set +e
    ./target/release/stint-cli trace replay "$OUT/racy.trace" --variant batch \
        --shards "$k" --witness >"$OUT/replay$k.txt"
    set -e
    if ! diff "$OUT/replay.txt" "$OUT/replay$k.txt"; then
        echo "FAIL: witnessed replay output differs between K=4 and K=$k"
        exit 1
    fi
done
echo "ok: witnessed K=1, K=4 and K=7 render byte-identically"

echo "== tampered order evidence is rejected with exit 4"
sed 's/"prev_before_eng": true/"prev_before_eng": false/g;
     s/"prev_before_eng":true/"prev_before_eng":false/g;
     s/"prev_before_heb": false/"prev_before_heb": true/g;
     s/"prev_before_heb":false/"prev_before_heb":true/g' \
    "$OUT/report.json" >"$OUT/tampered.json"
if cmp -s "$OUT/report.json" "$OUT/tampered.json"; then
    echo "FAIL: tamper sed changed nothing"
    exit 1
fi
set +e
./target/release/stint-cli witness verify "$OUT/racy.trace" "$OUT/tampered.json" \
    >/dev/null 2>"$OUT/tamper.err"
RC=$?
set -e
if [ "$RC" != 4 ]; then
    echo "FAIL: tampered witness exited $RC, expected 4"
    cat "$OUT/tamper.err"
    exit 1
fi
grep -q "REJECTED" "$OUT/tamper.err" \
    || { echo "FAIL: no REJECTED diagnostic"; cat "$OUT/tamper.err"; exit 1; }
echo "ok: tampered witness rejected structurally (exit 4)"

echo "== report card paired with the wrong trace is rejected"
./target/release/stint-cli trace record sort "$OUT/other.trace" >/dev/null
set +e
./target/release/stint-cli witness verify "$OUT/other.trace" "$OUT/report.json" \
    >/dev/null 2>&1
RC=$?
set -e
if [ "$RC" != 4 ] && [ "$RC" != 2 ]; then
    echo "FAIL: wrong-trace verification exited $RC, expected 4 (or 2)"
    exit 1
fi
echo "ok: wrong trace rejected (exit $RC)"

echo "== without --witness the surface stays witness-free"
set +e
./target/release/stint-cli trace replay "$OUT/racy.trace" --variant batch \
    --report-json "$OUT/plain.json" >"$OUT/plain.txt"
set -e
if grep -q "order=" "$OUT/plain.txt"; then
    echo "FAIL: witness evidence rendered without --witness"
    exit 1
fi
grep -q '"witness": null' "$OUT/plain.json" \
    || { echo "FAIL: report card without --witness must say witness: null"; exit 1; }
./target/release/jsoncheck report "$OUT/plain.json"

echo "witness smoke passed"
