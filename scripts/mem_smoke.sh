#!/usr/bin/env bash
# Memory-telemetry smoke test: one release CLI run with the gauge sampler on,
# then validate the emitted time series and its agreement with the stats
# dump using the in-tree `jsoncheck` binary (no python3/jq needed):
#
#  * the mem-series document parses and is non-empty with monotone t_ns;
#  * the detector's end-of-run byte stats are bounded by the gauge
#    watermarks, and Lemma 4.1 holds on the measured watermarks;
#  * `-` as an exporter path streams to stdout.
#
# Usage: scripts/mem_smoke.sh [bench] (default: sort)

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-sort}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cargo build --release -q -p stint-cli -p stint-bench --bin stint-cli --bin jsoncheck

echo "== stint-cli detect $BENCH (stint, sampler at 2 ms, mem-series export)"
./target/release/stint-cli \
    detect "$BENCH" --variant stint --scale s --obs counters,sample=2 \
    --mem-series-out "$OUT/mem.json" \
    --stats-json "$OUT/stats.json" >"$OUT/stdout.txt"

./target/release/jsoncheck validate "$OUT/mem.json" "$OUT/stats.json"
./target/release/jsoncheck memseries "$OUT/mem.json" "$OUT/stats.json"

# The series must track the interval arena, and the stats dump must carry
# the same gauge namespace.
grep -q '"ivtree.bytes"' "$OUT/mem.json" \
    || { echo "FAIL: mem.json never sampled ivtree.bytes"; exit 1; }
grep -q '"gauges"' "$OUT/stats.json" \
    || { echo "FAIL: stats.json has no gauges snapshot"; exit 1; }
echo "ok: series tracks ivtree.bytes and stats.json snapshots the gauges"

echo "== --mem-series-out - streams to stdout"
./target/release/stint-cli detect "$BENCH" --variant stint --mem-series-out - \
    | grep -q '"stint-obs-memseries-v1"' \
    || { echo "FAIL: '-' did not stream the series to stdout"; exit 1; }
echo "ok: '-' streams to stdout"

echo "mem smoke passed"
