#!/usr/bin/env bash
# Performance gate: style checks, release build, then the legacy-vs-hot-path
# benchmark comparison. Fails if formatting/clippy are dirty, if any variant's
# geomean speedup drops below 1.0 (--check), or — with --diff — if the
# regenerated BENCH_perfgate.json differs from the committed one (counts are
# deterministic; wall times always differ, so --diff compares geomeans only
# via the perfgate's own previous-run report).
#
# Usage: scripts/perfgate.sh [--scale s|m|paper] [--reps N] [--diff]
# Extra args are forwarded to the perfgate binary.

set -euo pipefail
cd "$(dirname "$0")/.."

DIFF=0
ARGS=()
for a in "$@"; do
    if [ "$a" = "--diff" ]; then DIFF=1; else ARGS+=("$a"); fi
done

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== cargo build --release"
cargo build --release -q

echo "== chaos gate (fault-injection suites)"
scripts/chaos.sh

echo "== obs smoke (exporters + cross-document agreement)"
scripts/obs_smoke.sh

echo "== mem smoke (gauge sampler + watermark/stats agreement)"
scripts/mem_smoke.sh

echo "== space study (byte gauges + Lemma 4.1)"
cargo run --release -q -p stint-bench --bin space -- "${ARGS[@]}"

echo "== batch smoke (sharded replay + compressed-trace equivalence on the CLI)"
scripts/batch_smoke.sh

echo "== witness smoke (emit -> verify -> tamper -> reject on the CLI)"
scripts/witness_smoke.sh

echo "== depa smoke (substrate equivalence + parallel-online determinism on the CLI)"
scripts/depa_smoke.sh

echo "== batch scalability study (sequential vs K-sharded vs streamed detection)"
cargo run --release -q -p stint-bench --bin batch -- "${ARGS[@]}"
cargo run --release -q -p stint-bench --bin jsoncheck -- batch BENCH_batch.json

echo "== parallel-online scaling study (sequential STINT vs W-worker online over DePa)"
cargo run --release -q -p stint-bench --bin parallel -- "${ARGS[@]}"
cargo run --release -q -p stint-bench --bin jsoncheck -- parallel BENCH_parallel.json

echo "== serve smoke (daemon transports, backpressure, ops plane, chaos soak)"
scripts/serve_smoke.sh

# Telemetry-plane assertions on the soak report serve_smoke just wrote:
#  (a) the flight recorder and journal left every gauge zero after drain,
#  (b) the obs-disabled phase never touched the registry or the flight
#      ring (no journal/recorder work on the disabled path), and
#  (c) the obs-full soak held within 10% of obs-off throughput.
# `jsoncheck serve` validates the v2 shape here; `perfgate --check` below
# re-reads the same file and hard-fails on any of the three gates.
echo "== telemetry plane gates (BENCH_serve.json v2)"
cargo run --release -q -p stint-bench --bin jsoncheck -- serve BENCH_serve.json
for key in gauges_zero_after_drain obs_off_registry_untouched flight_idle_obs_off; do
    grep -q "\"$key\": true" BENCH_serve.json \
        || { echo "FAIL: BENCH_serve.json: $key is not true"; exit 1; }
done

echo "== perfgate"
if [ "$DIFF" = 1 ]; then
    # Leave the committed JSON in place so perfgate prints the comparison,
    # then restore it after capturing the fresh numbers next to it.
    cp BENCH_perfgate.json BENCH_perfgate.prev.json 2>/dev/null || true
    cargo run --release -q -p stint-bench --bin perfgate -- --check "${ARGS[@]}"
    if [ -f BENCH_perfgate.prev.json ]; then
        echo "== diff vs committed JSON (wall times will differ; inspect geomeans)"
        diff BENCH_perfgate.prev.json BENCH_perfgate.json || true
        rm -f BENCH_perfgate.prev.json
    fi
else
    cargo run --release -q -p stint-bench --bin perfgate -- --check "${ARGS[@]}"
fi
