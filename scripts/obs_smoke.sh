#!/usr/bin/env bash
# Observability smoke test: one release CLI run with every exporter on, then
# validate the three JSON documents and assert the key content promises —
# counters from every instrumented layer in the metrics, Chrome trace_event
# complete spans in the trace, and exact agreement between the stats dump and
# the metrics registry on the detector counters.
#
# Validation uses python3 when available, falling back to jq and finally to
# the in-tree `jsoncheck` binary (crates/bench), so the gate runs on machines
# with neither. The agreement check always uses `jsoncheck agree` unless
# python3 exists (both implement the same rule).
#
# Usage: scripts/obs_smoke.sh [bench] (default: sort)

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-sort}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

echo "== stint-cli detect $BENCH --variant all (obs full, all exporters)"
cargo run --release -q -p stint-cli -- \
    detect "$BENCH" --variant all --obs full \
    --metrics-out "$OUT/metrics.json" \
    --trace-out "$OUT/trace.json" \
    --stats-json "$OUT/stats.json" >"$OUT/stdout.txt"

# Pick a JSON validator: python3, else jq, else the in-tree jsoncheck.
if command -v python3 >/dev/null 2>&1; then
    validate() { python3 -m json.tool "$1" >/dev/null; }
    VALIDATOR=python3
elif command -v jq >/dev/null 2>&1; then
    validate() { jq empty "$1"; }
    VALIDATOR=jq
else
    cargo build --release -q -p stint-bench --bin jsoncheck
    validate() { ./target/release/jsoncheck validate "$1" >/dev/null; }
    VALIDATOR=jsoncheck
fi

for f in metrics trace stats; do
    validate "$OUT/$f.json" \
        || { echo "FAIL: $f.json is not valid JSON"; exit 1; }
done
echo "ok: metrics.json, trace.json, stats.json all parse ($VALIDATOR)"

# Metrics must carry counters from every instrumented layer.
for key in om. sporder. ivtree. shadow. cilkrt. detector.; do
    grep -q "\"$key" "$OUT/metrics.json" \
        || { echo "FAIL: metrics.json has no $key* counters"; exit 1; }
done
echo "ok: metrics.json covers om/sporder/ivtree/shadow/cilkrt/detector"

# ... and the byte gauges with their watermarks.
grep -q '"gauges"' "$OUT/metrics.json" \
    || { echo "FAIL: metrics.json has no gauges section"; exit 1; }
grep -q '"ivtree.bytes"' "$OUT/metrics.json" \
    || { echo "FAIL: metrics.json has no ivtree.bytes gauge"; exit 1; }
grep -q '"hw":' "$OUT/metrics.json" \
    || { echo "FAIL: metrics.json gauges carry no watermarks"; exit 1; }
echo "ok: metrics.json carries byte gauges with watermarks"

# The trace must contain Chrome trace_event complete spans with durations.
grep -q '"ph": "X"' "$OUT/trace.json" \
    || { echo "FAIL: trace.json has no complete (ph=X) spans"; exit 1; }
grep -q '"dur":' "$OUT/trace.json" \
    || { echo "FAIL: trace.json spans carry no durations"; exit 1; }
grep -q '"detect.execute"' "$OUT/trace.json" \
    || { echo "FAIL: trace.json is missing the detect.execute phase"; exit 1; }
echo "ok: trace.json is Chrome trace_event with timed spans"

# The stats dump and the metrics registry are fed from the same
# DetectorStats::fields() source: summing any detector counter across the
# runs in stats.json must reproduce the metrics value exactly.
if [ "$VALIDATOR" = python3 ]; then
python3 - "$OUT/stats.json" "$OUT/metrics.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
metrics = json.load(open(sys.argv[2]))
assert stats["schema"] == "stint-stats-v1", stats["schema"]
assert metrics["schema"] == "stint-obs-metrics-v1", metrics["schema"]
runs = stats["runs"]
assert len(runs) >= 2, f"expected every variant, got {len(runs)} run(s)"
for key in runs[0]["stats"]:
    want = sum(r["stats"][key] for r in runs)
    got = metrics["counters"].get(key)
    assert got == want, f"{key}: stats.json sums to {want}, metrics.json says {got}"
print(f"ok: {len(runs[0]['stats'])} detector counters agree across "
      f"{len(runs)} variants")
EOF
else
    cargo build --release -q -p stint-bench --bin jsoncheck
    ./target/release/jsoncheck agree "$OUT/stats.json" "$OUT/metrics.json"
fi

echo "obs smoke passed"
