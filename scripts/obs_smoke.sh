#!/usr/bin/env bash
# Observability smoke test: one release CLI run with every exporter on, then
# validate the three JSON documents (python3 json.tool) and assert the key
# content promises — counters from every instrumented layer in the metrics,
# Chrome trace_event complete spans in the trace, and exact agreement between
# the stats dump and the metrics registry on the detector counters.
#
# Usage: scripts/obs_smoke.sh [bench] (default: sort)

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-sort}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

echo "== stint-cli detect $BENCH --variant all (obs full, all exporters)"
cargo run --release -q -p stint-cli -- \
    detect "$BENCH" --variant all --obs full \
    --metrics-out "$OUT/metrics.json" \
    --trace-out "$OUT/trace.json" \
    --stats-json "$OUT/stats.json" >"$OUT/stdout.txt"

for f in metrics trace stats; do
    python3 -m json.tool "$OUT/$f.json" >/dev/null \
        || { echo "FAIL: $f.json is not valid JSON"; exit 1; }
done
echo "ok: metrics.json, trace.json, stats.json all parse"

# Metrics must carry counters from every instrumented layer.
for key in om. sporder. ivtree. shadow. cilkrt. detector.; do
    grep -q "\"$key" "$OUT/metrics.json" \
        || { echo "FAIL: metrics.json has no $key* counters"; exit 1; }
done
echo "ok: metrics.json covers om/sporder/ivtree/shadow/cilkrt/detector"

# The trace must contain Chrome trace_event complete spans with durations.
grep -q '"ph": "X"' "$OUT/trace.json" \
    || { echo "FAIL: trace.json has no complete (ph=X) spans"; exit 1; }
grep -q '"dur":' "$OUT/trace.json" \
    || { echo "FAIL: trace.json spans carry no durations"; exit 1; }
grep -q '"detect.execute"' "$OUT/trace.json" \
    || { echo "FAIL: trace.json is missing the detect.execute phase"; exit 1; }
echo "ok: trace.json is Chrome trace_event with timed spans"

# The stats dump and the metrics registry are fed from the same
# DetectorStats::fields() source: summing any detector counter across the
# runs in stats.json must reproduce the metrics value exactly.
python3 - "$OUT/stats.json" "$OUT/metrics.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
metrics = json.load(open(sys.argv[2]))
assert stats["schema"] == "stint-stats-v1", stats["schema"]
assert metrics["schema"] == "stint-obs-metrics-v1", metrics["schema"]
runs = stats["runs"]
assert len(runs) >= 2, f"expected every variant, got {len(runs)} run(s)"
for key in runs[0]["stats"]:
    want = sum(r["stats"][key] for r in runs)
    got = metrics["counters"].get(key)
    assert got == want, f"{key}: stats.json sums to {want}, metrics.json says {got}"
print(f"ok: {len(runs[0]['stats'])} detector counters agree across "
      f"{len(runs)} variants")
EOF

echo "obs smoke passed"
