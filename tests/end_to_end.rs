//! Workspace-level end-to-end tests through the public umbrella API: every
//! benchmark detects clean and verifies its output under every variant; the
//! outcome metadata is coherent; scales construct correctly.

use stint_repro::suite::{Scale, Workload, NAMES};
use stint_repro::{detect, Variant};

#[test]
fn every_benchmark_clean_and_correct_via_public_api() {
    for name in NAMES {
        for v in [Variant::Vanilla, Variant::CompRts, Variant::Stint] {
            let mut w = Workload::by_name(name, Scale::Test);
            let o = detect(&mut w, v);
            assert!(o.report.is_race_free(), "{name}/{v}");
            w.verify().unwrap_or_else(|e| panic!("{name}/{v}: {e}"));
            assert_eq!(o.variant, v);
            assert!(o.wall.as_nanos() > 0);
        }
    }
}

#[test]
fn outcome_counters_are_consistent() {
    for name in NAMES {
        let mut w = Workload::by_name(name, Scale::Test);
        let o = detect(&mut w, Variant::Stint);
        // Each spawn creates child + continuation strands; each effective
        // sync creates one more; plus the root.
        let expected_max = 1 + 2 * o.counters.spawns + o.counters.effective_syncs;
        assert!(
            o.strands as u64 <= expected_max,
            "{name}: {} strands > bound {expected_max}",
            o.strands
        );
        assert!(o.counters.spawns > 0, "{name}: no spawns");
        assert!(o.counters.effective_syncs > 0, "{name}: no effective syncs");
        // Coalescing can only shrink: intervals <= word accesses.
        assert!(o.stats.read.intervals <= o.stats.read.words, "{name}");
        assert!(o.stats.write.intervals <= o.stats.write.words, "{name}");
        // Deduplicated bytes cannot exceed total hook traffic.
        assert!(
            o.stats.read.interval_bytes <= o.stats.read.words * 4,
            "{name}"
        );
    }
}

#[test]
fn coalescing_reduces_access_history_pressure() {
    // The motivating claim of the paper: for coalescing-friendly benchmarks
    // the number of intervals is orders of magnitude below the number of
    // word accesses. heat is the paper's best case.
    let mut w = Workload::by_name("heat", Scale::Test);
    let o = detect(&mut w, Variant::Stint);
    let words = o.stats.total_words();
    let ivs = o.stats.total_intervals();
    assert!(
        ivs * 50 <= words,
        "heat should coalesce >50x: {ivs} intervals for {words} words"
    );
}

#[test]
fn fft_coalesces_worst() {
    // And fft is the paper's adverse case: its interval reduction must be
    // visibly worse than heat's.
    let reduction = |name: &str| {
        let mut w = Workload::by_name(name, Scale::Test);
        let o = detect(&mut w, Variant::Stint);
        o.stats.total_words() as f64 / o.stats.total_intervals().max(1) as f64
    };
    let fft = reduction("fft");
    let heat = reduction("heat");
    assert!(
        heat > 1.5 * fft,
        "expected heat ({heat:.0}x) to coalesce much better than fft ({fft:.0}x)"
    );
}

#[test]
fn detectors_are_deterministic() {
    for name in ["sort", "mmul"] {
        // Note: interval and treap statistics depend on where the allocator
        // places the buffers (adjacent allocations can merge intervals), so
        // only the address-independent counters are compared.
        let run = || {
            let mut w = Workload::by_name(name, Scale::Test);
            let o = detect(&mut w, Variant::Stint);
            (
                o.strands,
                o.counters.spawns,
                o.counters.effective_syncs,
                o.stats.read.words,
                o.stats.write.words,
                o.stats.read.hooks,
                o.stats.write.hooks,
            )
        };
        assert_eq!(run(), run(), "{name}: nondeterministic detection stats");
    }
}

#[test]
fn workload_names_roundtrip() {
    for name in NAMES {
        let w = Workload::by_name(name, Scale::Test);
        assert_eq!(w.name(), name);
    }
}

#[test]
#[should_panic(expected = "unknown benchmark")]
fn unknown_workload_panics() {
    let _ = Workload::by_name("nope", Scale::Test);
}
