//! Differential battery for the DePa reachability substrate: on random
//! fork-join DAGs, `DePaReach` must agree bit-for-bit with `SpOrder` and with
//! the brute-force transitive-closure oracle from `stint-spdag` on every
//! ordered strand pair — `series`, `parallel`, `left_of` and `order_pair` —
//! and both substrates must freeze to identical rank permutations.
//!
//! The battery also pins down the `order_pair` fast paths (issue #10
//! satellite): both substrates override the trait default with direct rank
//! comparisons, so every program additionally asserts that the override
//! agrees with the default derivation (two `series` probes plus a `left_of`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use stint_spdag::{random_func, simulate, Func, GenCfg, Stmt};
use stint_sporder::{DePaReach, ReachMaint, Reachability, SpOrder, StrandId};

/// Interpret a `Func` against any maintenance substrate, mirroring both the
/// spdag reference simulator's strand semantics and the sequential executor's
/// exact maintenance call sequence (`new_sync_strand` lazily before the first
/// spawn of a block, `child_return` after a spawned child's implicit sync,
/// `call_enter`/`call_exit` bracketing serial calls). The recorded `map`
/// lists the substrate's strand ids in sequential order, so index `i`
/// corresponds to spdag strand `i`.
struct Walker<R: ReachMaint> {
    r: R,
    cur: StrandId,
    map: Vec<StrandId>,
}

impl<R: ReachMaint> Walker<R> {
    fn run(f: &Func) -> (R, Vec<StrandId>) {
        let (r, root) = R::init();
        let mut w = Walker {
            r,
            cur: root,
            map: vec![root],
        };
        w.func(f);
        (w.r, w.map)
    }

    fn func(&mut self, f: &Func) {
        let mut sync_strand: Option<StrandId> = None;
        let mut spawned = false;
        for stmt in &f.0 {
            match stmt {
                Stmt::Compute(_) => {}
                Stmt::Spawn(g) => {
                    if sync_strand.is_none() {
                        sync_strand = Some(self.r.new_sync_strand(self.cur));
                    }
                    spawned = true;
                    let s = self.r.spawn(self.cur);
                    self.cur = s.child;
                    self.map.push(s.child);
                    self.func(g);
                    // The child's subcomputation (including its implicit
                    // sync) is done; `cur` is its final strand.
                    self.r.child_return(self.cur);
                    self.cur = s.continuation;
                    self.map.push(s.continuation);
                }
                Stmt::Sync => {
                    if spawned {
                        let j = sync_strand.take().unwrap();
                        self.cur = j;
                        self.map.push(j);
                        spawned = false;
                    }
                }
                Stmt::Call(g) => {
                    self.r.call_enter(self.cur);
                    self.func(g);
                    self.r.call_exit(self.cur);
                }
            }
        }
        // Implicit sync at function end.
        if spawned {
            let j = sync_strand.take().unwrap();
            self.cur = j;
            self.map.push(j);
        }
    }
}

/// Delegates the three primitive queries but inherits the trait-default
/// `order_pair`, exposing the default derivation for comparison against the
/// substrate's direct-rank override.
struct DefaultPair<'a, R: Reachability>(&'a R);

impl<R: Reachability> Reachability for DefaultPair<'_, R> {
    fn series(&self, a: StrandId, b: StrandId) -> bool {
        self.0.series(a, b)
    }
    fn parallel(&self, a: StrandId, b: StrandId) -> bool {
        self.0.parallel(a, b)
    }
    fn left_of(&self, a: StrandId, b: StrandId) -> bool {
        self.0.left_of(a, b)
    }
}

fn check_program(f: &Func) {
    let sim = simulate(f);
    let (sp, smap) = Walker::<SpOrder>::run(f);
    let (dp, dmap) = Walker::<DePaReach>::run(f);
    assert_eq!(
        sim.strand_count(),
        smap.len(),
        "strand count mismatch between oracle and SP-Order walker"
    );
    assert_eq!(
        smap, dmap,
        "strand id allocation diverged between substrates"
    );
    assert_eq!(sp.strand_count(), dp.strand_count());

    let n = sim.strand_count() as u32;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let (sa, sb) = (smap[a as usize], smap[b as usize]);
            let series = sim.precedes(a, b);
            let parallel = sim.parallel(a, b);
            assert_eq!(sp.series(sa, sb), series, "sporder series({a},{b})");
            assert_eq!(
                Reachability::series(&dp, sa, sb),
                series,
                "depa series({a},{b})"
            );
            assert_eq!(sp.parallel(sa, sb), parallel, "sporder parallel({a},{b})");
            assert_eq!(
                Reachability::parallel(&dp, sa, sb),
                parallel,
                "depa parallel({a},{b})"
            );
            let left = (parallel && a < b) || sim.precedes(b, a);
            assert_eq!(sp.left_of(sa, sb), left, "sporder left_of({a},{b})");
            assert_eq!(
                Reachability::left_of(&dp, sa, sb),
                left,
                "depa left_of({a},{b})"
            );
            // The English order is the sequential order, the Hebrew order
            // mirrors it for series pairs and reverses it for parallel ones.
            let expect = if series {
                (true, true)
            } else if sim.precedes(b, a) {
                (false, false)
            } else {
                (a < b, b < a)
            };
            let sp_pair = Reachability::order_pair(&sp, sa, sb);
            let dp_pair = Reachability::order_pair(&dp, sa, sb);
            assert_eq!(sp_pair, expect, "sporder order_pair({a},{b})");
            assert_eq!(dp_pair, expect, "depa order_pair({a},{b})");
            // Direct rank-comparison overrides must agree with the trait's
            // default derivation.
            assert_eq!(
                DefaultPair(&sp).order_pair(sa, sb),
                sp_pair,
                "sporder order_pair({a},{b}) override vs default"
            );
            assert_eq!(
                DefaultPair(&dp).order_pair(sa, sb),
                dp_pair,
                "depa order_pair({a},{b}) override vs default"
            );
        }
    }

    // Both substrates must freeze to the same rank permutations and lineage:
    // this is what makes merged parallel-online reports byte-identical to
    // sequential ones regardless of the substrate that produced them.
    let fs = sp.freeze();
    let fd = ReachMaint::freeze(&dp);
    assert_eq!(fs.strand_count(), fd.strand_count());
    let sr: Vec<(u32, u32)> = fs.ranks().collect();
    let dr: Vec<(u32, u32)> = fd.ranks().collect();
    assert_eq!(sr, dr, "frozen rank permutations diverged");
    assert_eq!(
        fs.parents().map(<[u32]>::to_vec),
        fd.parents().map(<[u32]>::to_vec),
        "frozen lineage diverged"
    );
    // Lineage must also agree on the live substrates.
    for i in 0..n {
        let s = smap[i as usize];
        assert_eq!(
            sp.parent_of(s),
            Reachability::parent_of(&dp, s),
            "parent_of({i}) diverged"
        );
    }
}

#[test]
fn random_programs_match_oracle_and_sporder() {
    let mut rng = StdRng::seed_from_u64(0xDE9A);
    let cfg = GenCfg::default();
    for _ in 0..400 {
        let f = random_func(&mut rng, &cfg);
        // Avoid quadratic blowup on the rare huge program.
        if simulate(&f).strand_count() > 300 {
            continue;
        }
        check_program(&f);
    }
}

#[test]
fn deep_programs_match_oracle_and_sporder() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let cfg = GenCfg {
        max_depth: 8,
        max_stmts: 3,
        p_spawn: 0.5,
        p_sync: 0.2,
        ..GenCfg::default()
    };
    for _ in 0..250 {
        let f = random_func(&mut rng, &cfg);
        if simulate(&f).strand_count() > 300 {
            continue;
        }
        check_program(&f);
    }
}

#[test]
fn wide_programs_match_oracle_and_sporder() {
    let mut rng = StdRng::seed_from_u64(0x71DE);
    let cfg = GenCfg {
        max_depth: 2,
        max_stmts: 12,
        p_spawn: 0.45,
        p_sync: 0.25,
        ..GenCfg::default()
    };
    for _ in 0..250 {
        let f = random_func(&mut rng, &cfg);
        if simulate(&f).strand_count() > 300 {
            continue;
        }
        check_program(&f);
    }
}

/// A hand-built worst case for depth-vector maintenance: a chain of sync
/// blocks nested through serial calls, each spawning before joining. Deep
/// sync chains exercise DePa's era bumps and frame rebalancing far past what
/// the random generator's depth cap reaches.
#[test]
fn deep_sync_chain_matches_oracle_and_sporder() {
    // f_k = { spawn leaf; sync; call f_{k-1}; }  (f_0 = compute)
    // Call depth and sync-chain length grow linearly (three strands per
    // level), driving the depth vectors far deeper than GenCfg's cap.
    let leaf = Func(vec![Stmt::Compute(vec![])]);
    let mut f = leaf.clone();
    for _ in 0..48 {
        f = Func(vec![Stmt::Spawn(leaf.clone()), Stmt::Sync, Stmt::Call(f)]);
    }
    check_program(&f);

    // A pure spawn ladder: every level spawns exactly once and immediately
    // syncs, producing one long series chain of sync strands.
    let mut g = Func(vec![Stmt::Compute(vec![])]);
    for _ in 0..64 {
        g = Func(vec![Stmt::Spawn(g), Stmt::Sync]);
    }
    check_program(&g);
}
