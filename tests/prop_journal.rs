//! Property tests for the crash-safe session journal: arbitrary records
//! must round-trip through the `stint-journal-v1` framing byte for byte,
//! an arbitrary truncation must recover exactly the intact prefix without
//! panicking, and an arbitrary bit flip must be caught by the checksum —
//! never silently absorbed past the damage point.

use std::io::Write;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use stint::journal::{replay, FsyncPolicy, JournalSink, JournalWriter};
use stint_serve::journal::{SessionEvent, EV_ADMITTED, EV_VERDICT};

/// An in-memory sink the test keeps a handle to after the writer takes
/// ownership — the same idiom the core journal unit tests use.
#[derive(Clone)]
struct SharedVec(Arc<Mutex<Vec<u8>>>);

impl Write for SharedVec {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("sink lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl JournalSink for SharedVec {}

/// Write `payloads` through a real `JournalWriter` into a byte buffer.
fn journal_bytes(payloads: &[Vec<u8>]) -> Vec<u8> {
    let sink = SharedVec(Arc::new(Mutex::new(Vec::new())));
    let mut w = JournalWriter::create(Box::new(sink.clone()), FsyncPolicy::Off)
        .expect("create journal in memory");
    for p in payloads {
        w.append(p).expect("append");
    }
    drop(w);
    let bytes = sink.0.lock().expect("sink lock").clone();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_round_trip(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 0..12)) {
        let bytes = journal_bytes(&payloads);
        let r = replay(&bytes[..]).expect("replay io");
        prop_assert!(r.is_clean(), "clean write replays dirty: {:?}", r.corruption);
        prop_assert_eq!(&r.records, &payloads);
    }

    #[test]
    fn truncation_recovers_the_intact_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48), 1..10),
        cut_permille in 0u64..1000,
    ) {
        let bytes = journal_bytes(&payloads);
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;
        let r = replay(&bytes[..cut]).expect("replay io");
        // Whatever survives is a prefix of what was written — truncation
        // can cost the tail record (and, mid-record, gets flagged as
        // corruption), but it can never invent or reorder records.
        prop_assert!(r.records.len() <= payloads.len());
        for (got, want) in r.records.iter().zip(payloads.iter()) {
            prop_assert_eq!(got, want);
        }
        // And it can cost at most the one record the cut landed in.
        if r.is_clean() {
            // A cut on a frame boundary: the shorter journal is simply a
            // journal with fewer appends.
            prop_assert!(bytes.len() == cut || r.records.len() < payloads.len());
        }
    }

    #[test]
    fn bit_flip_is_never_silently_absorbed(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..48), 1..8),
        flip_permille in 0u64..1000,
        bit in 0u32..8,
    ) {
        let bytes = journal_bytes(&payloads);
        let magic_len = "STINT-JOURNAL v1\n".len();
        // Flip one bit somewhere past the magic line.
        let idx = magic_len
            + ((bytes.len() - magic_len - 1) as u64 * flip_permille / 1000) as usize;
        let mut damaged = bytes.clone();
        damaged[idx] ^= 1 << bit;
        let r = replay(&damaged[..]).expect("replay io");
        // The flip may truncate the replay (length varint), fail a
        // checksum, or oversize a frame — but a replay that claims to be
        // clean AND returns all records must have caught... nothing it
        // needed to: that would mean the flip changed bytes without
        // changing any record, which framing makes impossible.
        if r.is_clean() {
            prop_assert!(
                r.records != payloads,
                "flipped bit {bit} at byte {idx} was silently absorbed"
            );
        } else {
            // Structured partial: an intact prefix, never a panic.
            prop_assert!(r.records.len() <= payloads.len());
        }
    }

    #[test]
    fn session_events_round_trip(
        seq in any::<u64>(),
        t_ms in any::<u64>(),
        session in any::<u32>(),
        admitted in any::<bool>(),
        code in any::<u16>(),
        payload in any::<u64>(),
    ) {
        let ev = SessionEvent {
            seq,
            t_ms,
            session,
            kind: if admitted { EV_ADMITTED } else { EV_VERDICT },
            code,
            payload,
        };
        let back = SessionEvent::decode(&ev.encode()).expect("decode");
        prop_assert_eq!(back, ev);
    }
}
