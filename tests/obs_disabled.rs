//! Disabled-path guarantee for the observability layer, in its own test
//! binary: counter/histogram registration is sticky for the life of the
//! process, so this check is only meaningful in a process where observability
//! was *never* enabled — it must not share a binary with obs-enabled tests.

use stint_repro::suite::{Scale, Workload};
use stint_repro::{detect, obs, Variant};

#[test]
fn full_run_with_obs_disabled_leaves_no_trace() {
    assert!(
        !obs::is_enabled(),
        "obs must start disabled (unset STINT_OBS)"
    );

    // A real detection run through every instrumented layer (om, sporder,
    // ivtree, shadow), plus a work-stealing pool exercising cilkrt's sites.
    for v in [Variant::CompRts, Variant::Stint] {
        let mut w = Workload::by_name("sort", Scale::Test);
        let o = detect(&mut w, v);
        assert!(o.report.is_race_free(), "{v}");
    }
    let pool = stint_cilkrt::ThreadPool::new(2);
    let (a, b) = pool.join(|| 1 + 1, || 2 + 2);
    assert_eq!((a, b), (2, 4));
    drop(pool);

    // Nothing registered: every instrumented site stopped at the one relaxed
    // load, and the registry (allocated lazily on first registration) was
    // never even created.
    assert!(!obs::registry_initialized());

    // The serve tier's telemetry plane obeys the same contract: a full
    // session lifecycle — journal attached — writes journal frames (those
    // are the durability story, not metrics) but records nothing in the
    // flight ring and registers nothing.
    let path = std::env::temp_dir().join(format!("obs_disabled_{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journal = stint_serve::SessionJournal::open(&path, stint::journal::FsyncPolicy::Off)
        .expect("open journal");
    let engine =
        stint_serve::Engine::with_journal(stint_serve::EngineConfig::default(), Some(journal));
    let (tx, rx) = std::sync::mpsc::channel();
    let mut w = Workload::by_name("sort", Scale::Test);
    let mut buf = Vec::new();
    stint_repro::PortableTrace::record(&mut w)
        .save(&mut buf)
        .expect("save trace");
    engine.try_submit(String::new(), buf, tx);
    rx.recv_timeout(std::time::Duration::from_secs(60))
        .expect("session reply");
    engine.drain();
    drop(engine);
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        obs::flight::records_written(),
        0,
        "flight recorder must stay inert with obs disabled"
    );
    assert!(!obs::registry_initialized());

    // The exporters still work — and emit empty documents.
    let metrics = obs::metrics_json();
    assert!(metrics.contains("\"counters\": {"));
    assert!(!metrics.contains("om."), "unexpected counters:\n{metrics}");
    assert!(metrics.contains("\"spans_recorded\": 0"));
    let trace = obs::trace_json();
    assert!(!trace.contains("\"ph\""), "unexpected spans:\n{trace}");
    let prom = obs::prometheus_text();
    assert!(
        prom.lines().all(|l| l.starts_with('#') || l.is_empty()),
        "disabled exposition must be comments only:\n{prom}"
    );
    let flight = obs::flight::json();
    assert!(flight.contains("\"records_written\": 0"), "{flight}");

    // Exporting must not have initialized the registry either.
    assert!(!obs::registry_initialized());
}
