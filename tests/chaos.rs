//! Chaos suite: every benchmark run under every fault class must end in a
//! correct race verdict or a structured [`DetectorError`] — never an
//! escaping panic, and never a silently missed race on the buggy suite
//! (a missed race is only permitted when the run *reports* degradation).
//!
//! Fault classes exercised (ISSUE: ≥ 4):
//!   1. `om`     — narrowed tag space + forced relabel storms
//!   2. `shadow` — page/chunk caps and simulated OOM
//!   3. `ivtree` — worst-case (degenerate) treap priorities
//!   4. `cilkrt` — worker spawn failures and startup deaths
//!
//! plus the injected flush panic that drives the poisoned-session path.
//!
//! The fault plan is process-global, so this suite lives in its own test
//! binary and serializes every test on [`lock`].

use std::sync::{Mutex, MutexGuard, OnceLock};
use stint_repro::cilkrt::ThreadPool;
use stint_repro::suite::buggy::{HeatMissingBarrier, MmulMissingSync, OverlappingMerge};
use stint_repro::suite::{Scale, Workload};
use stint_repro::{
    try_detect_with, CilkProgram, Config, DetectorError, FaultPlan, Resource, ScopedPlan, Variant,
};

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Racy-word count plus the degradation marker of one panic-safe detection
/// run. Counts, not addresses: the benchmarks race on heap buffers, so the
/// absolute racy words shift between fresh program instances.
type Verdict = Result<(usize, Option<DetectorError>), DetectorError>;

fn run_one<P: CilkProgram>(mut p: P, v: Variant) -> Verdict {
    let o = try_detect_with(&mut p, Config::new(v))?;
    Ok((o.report.racy_words().len(), o.degraded))
}

/// The chaos corpus: clean paper benchmarks and the seeded-bug suite. Each
/// entry builds a fresh program per run (detection consumes the program).
#[allow(clippy::type_complexity)]
fn programs() -> Vec<(&'static str, bool, Box<dyn Fn(Variant) -> Verdict>)> {
    vec![
        (
            "mmul",
            false,
            Box::new(|v| run_one(Workload::by_name("mmul", Scale::Test), v)),
        ),
        (
            "sort",
            false,
            Box::new(|v| run_one(Workload::by_name("sort", Scale::Test), v)),
        ),
        (
            "buggy-mmul",
            true,
            Box::new(|v| run_one(MmulMissingSync::new(16, 4, 7), v)),
        ),
        (
            "buggy-heat",
            true,
            Box::new(|v| run_one(HeatMissingBarrier::new(16, 16, 3, 4, 7), v)),
        ),
        (
            "buggy-merge",
            true,
            Box::new(|v| run_one(OverlappingMerge::new(64, 4, 7), v)),
        ),
    ]
}

fn healthy_count(run: &dyn Fn(Variant) -> Verdict, v: Variant) -> usize {
    let (n, degraded) = run(v).expect("healthy run must not fail");
    assert!(degraded.is_none(), "healthy run must not degrade");
    n
}

/// Fault class 1 (`om`): a narrowed tag universe either survives all forced
/// relabels with an exact verdict, or fails *structurally* with an OmTags
/// resource error — never with an arbitrary panic.
#[test]
fn om_tag_pressure_yields_verdict_or_structured_error() {
    let _g = lock();
    for bits in [8u32, 12, 16] {
        for (name, _racy, run) in programs() {
            let healthy = healthy_count(run.as_ref(), Variant::Stint);
            let _plan = ScopedPlan::install(FaultPlan {
                om_tag_bits: Some(bits),
                ..Default::default()
            });
            match run(Variant::Stint) {
                Ok((n, degraded)) => {
                    assert!(degraded.is_none(), "{name}@{bits}: om faults set no budget");
                    assert_eq!(n, healthy, "{name}@{bits}: verdict drifted");
                }
                Err(e) => {
                    assert!(
                        matches!(
                            e,
                            DetectorError::ResourceExhausted {
                                resource: Resource::OmTags,
                                ..
                            }
                        ),
                        "{name}@{bits}: unexpected failure {e}"
                    );
                    assert_eq!(e.exit_code(), 3);
                }
            }
        }
    }
}

/// Fault class 1 (`om`), storm flavor: forced relabel passes are a pure
/// perf fault — verdicts must be bit-for-bit identical.
#[test]
fn om_relabel_storms_keep_verdicts_exact() {
    let _g = lock();
    for (name, _racy, run) in programs() {
        for v in [Variant::Vanilla, Variant::Stint] {
            let healthy = healthy_count(run.as_ref(), v);
            let _plan = ScopedPlan::install(FaultPlan {
                om_relabel_storm: Some(2),
                seed: 42,
                ..Default::default()
            });
            let (n, degraded) = run(v).expect("storms must not abort");
            assert!(degraded.is_none(), "{name}/{v}: storms set no budget");
            assert_eq!(n, healthy, "{name}/{v}: storm changed the verdict");
        }
    }
}

/// Fault class 2 (`shadow`): allocation caps and simulated OOM degrade
/// soundly — clean programs never gain a false race, buggy programs either
/// still report races or report the degradation.
#[test]
fn shadow_exhaustion_degrades_soundly() {
    let _g = lock();
    let plans = [
        FaultPlan {
            shadow_page_cap: Some(2),
            ..Default::default()
        },
        FaultPlan {
            shadow_oom_at: Some(4),
            seed: 7,
            ..Default::default()
        },
    ];
    for plan in plans {
        for (name, racy, run) in programs() {
            for v in [Variant::Vanilla, Variant::CompRts, Variant::Stint] {
                let _plan = ScopedPlan::install(plan.clone());
                let (n, degraded) = run(v)
                    .unwrap_or_else(|e| panic!("{name}/{v}: shadow faults must not abort: {e}"));
                if racy {
                    assert!(
                        n > 0 || degraded.is_some(),
                        "{name}/{v}: race silently missed without a degradation report"
                    );
                } else {
                    assert_eq!(
                        n, 0,
                        "{name}/{v}: fabricated {n} racy words under shadow faults"
                    );
                }
                if let Some(e) = degraded {
                    assert_eq!(e.exit_code(), 3, "{name}/{v}: {e}");
                }
            }
        }
    }
}

/// Fault class 3 (`ivtree`): worst-case treap priorities (a list-shaped
/// tree) are a pure perf fault — verdicts must be identical.
#[test]
fn degenerate_treap_keeps_verdicts_exact() {
    let _g = lock();
    for (name, _racy, run) in programs() {
        let healthy = healthy_count(run.as_ref(), Variant::Stint);
        let _plan = ScopedPlan::install(FaultPlan {
            treap_degenerate: true,
            ..Default::default()
        });
        let (n, degraded) = run(Variant::Stint).expect("degenerate treap must not abort");
        assert!(degraded.is_none(), "{name}: treap fault sets no budget");
        assert_eq!(n, healthy, "{name}: tree shape changed the verdict");
    }
}

/// Fault class 3 (`ivtree`), exhaustion flavor: overrunning the treap's node
/// cap must raise the structured Intervals resource error (exit 3), not an
/// arbitrary `assert!` abort — the same typed-panic protocol every other
/// arena uses, so `try_detect_with`'s catch_unwind turns it into `Err`.
#[test]
fn treap_node_cap_raises_structured_error() {
    let _g = lock();
    use stint_repro::{Interval, IntervalStore, StrandId, Treap};
    let mut t: Treap<StrandId> = Treap::new();
    t.set_node_cap(4);
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Disjoint intervals: every insert allocates a fresh node.
        for i in 0..16u64 {
            t.insert_write(Interval::new(i * 10, i * 10 + 4, StrandId(0)), |_, _, _| {});
        }
    }))
    .expect_err("the fifth fresh node must trip the cap");
    let e = payload
        .downcast::<DetectorError>()
        .expect("cap overrun must carry the typed DetectorError payload");
    assert!(
        matches!(
            *e,
            DetectorError::ResourceExhausted {
                resource: Resource::Intervals,
                limit: 4,
                ..
            }
        ),
        "unexpected failure {e}"
    );
    assert_eq!(e.exit_code(), 3);
}

/// Fault class 4 (`cilkrt`): worker spawn failures and startup deaths leave
/// the pool correct (degraded to fewer workers, ultimately sequential).
#[test]
fn worker_failures_keep_pool_results_correct() {
    let _g = lock();
    fn sum(pool: &ThreadPool, lo: u64, hi: u64) -> u64 {
        if hi - lo <= 64 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = pool.join(|| sum(pool, lo, mid), || sum(pool, mid, hi));
        a + b
    }
    let expected: u64 = (0..10_000).sum();
    let plans = [
        FaultPlan {
            worker_spawn_fail_from: Some(1),
            ..Default::default()
        },
        FaultPlan {
            worker_spawn_fail_from: Some(0),
            ..Default::default()
        },
        FaultPlan {
            worker_panic_from: Some(0),
            ..Default::default()
        },
    ];
    for plan in plans {
        let pool = {
            let _plan = ScopedPlan::install(plan.clone());
            ThreadPool::new(4)
        };
        assert_eq!(sum(&pool, 0, 10_000), expected, "plan {plan:?}");
    }
}

/// Poisoned-session path: an injected internal panic surfaces as a
/// structured `Poisoned` error with exit code 4, for every variant.
#[test]
fn injected_flush_panic_is_reported_as_poisoned() {
    let _g = lock();
    for v in Variant::ALL {
        let _plan = ScopedPlan::install(FaultPlan {
            panic_at_flush: Some(1),
            ..Default::default()
        });
        let e = run_one(Workload::by_name("sort", Scale::Test), v)
            .expect_err("injected panic must surface as an error");
        assert!(
            matches!(e, DetectorError::Poisoned { .. }),
            "{v}: unexpected failure {e}"
        );
        assert_eq!(e.exit_code(), 4);
        assert!(e.to_string().contains("injected flush panic"), "{v}: {e}");
    }
}

/// Budgets compose with faults: a run that is both capped and stormed still
/// terminates with a sound verdict or structured error.
#[test]
fn combined_faults_and_budgets_stay_structured() {
    let _g = lock();
    let _plan = ScopedPlan::install(FaultPlan {
        om_relabel_storm: Some(3),
        shadow_page_cap: Some(2),
        treap_degenerate: true,
        seed: 1234,
        ..Default::default()
    });
    let mut cfg = Config::new(Variant::Stint);
    cfg.budget.max_intervals = Some(64);
    let mut w = Workload::by_name("mmul", Scale::Test);
    match try_detect_with(&mut w, cfg) {
        Ok(o) => {
            assert!(o.report.is_race_free(), "mmul is race-free: no false races");
            if let Some(e) = o.degraded {
                assert_eq!(e.exit_code(), 3, "{e}");
            }
        }
        Err(e) => panic!("combined faults must not abort: {e}"),
    }
}
