//! Chaos suite: every benchmark run under every fault class must end in a
//! correct race verdict or a structured [`DetectorError`] — never an
//! escaping panic, and never a silently missed race on the buggy suite
//! (a missed race is only permitted when the run *reports* degradation).
//!
//! Fault classes exercised (ISSUE: ≥ 4):
//!   1. `om`     — narrowed tag space + forced relabel storms
//!   2. `shadow` — page/chunk caps and simulated OOM
//!   3. `ivtree` — worst-case (degenerate) treap priorities
//!   4. `cilkrt` — worker spawn failures and startup deaths
//!
//! plus the injected flush panic that drives the poisoned-session path.
//!
//! The fault plan is process-global, so this suite lives in its own test
//! binary and serializes every test on [`lock`].

use std::sync::{Mutex, MutexGuard, OnceLock};
use stint_repro::cilkrt::ThreadPool;
use stint_repro::suite::buggy::{HeatMissingBarrier, MmulMissingSync, OverlappingMerge};
use stint_repro::suite::{Scale, Workload};
use stint_repro::{
    try_detect_with, CilkProgram, Config, DetectorError, FaultPlan, Resource, ScopedPlan, Variant,
};

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Racy-word count plus the degradation marker of one panic-safe detection
/// run. Counts, not addresses: the benchmarks race on heap buffers, so the
/// absolute racy words shift between fresh program instances.
type Verdict = Result<(usize, Option<DetectorError>), DetectorError>;

fn run_one<P: CilkProgram>(mut p: P, v: Variant) -> Verdict {
    let o = try_detect_with(&mut p, Config::new(v))?;
    Ok((o.report.racy_words().len(), o.degraded))
}

/// The chaos corpus: clean paper benchmarks and the seeded-bug suite. Each
/// entry builds a fresh program per run (detection consumes the program).
#[allow(clippy::type_complexity)]
fn programs() -> Vec<(&'static str, bool, Box<dyn Fn(Variant) -> Verdict>)> {
    vec![
        (
            "mmul",
            false,
            Box::new(|v| run_one(Workload::by_name("mmul", Scale::Test), v)),
        ),
        (
            "sort",
            false,
            Box::new(|v| run_one(Workload::by_name("sort", Scale::Test), v)),
        ),
        (
            "buggy-mmul",
            true,
            Box::new(|v| run_one(MmulMissingSync::new(16, 4, 7), v)),
        ),
        (
            "buggy-heat",
            true,
            Box::new(|v| run_one(HeatMissingBarrier::new(16, 16, 3, 4, 7), v)),
        ),
        (
            "buggy-merge",
            true,
            Box::new(|v| run_one(OverlappingMerge::new(64, 4, 7), v)),
        ),
    ]
}

fn healthy_count(run: &dyn Fn(Variant) -> Verdict, v: Variant) -> usize {
    let (n, degraded) = run(v).expect("healthy run must not fail");
    assert!(degraded.is_none(), "healthy run must not degrade");
    n
}

/// Fault class 1 (`om`): a narrowed tag universe either survives all forced
/// relabels with an exact verdict, or fails *structurally* with an OmTags
/// resource error — never with an arbitrary panic.
#[test]
fn om_tag_pressure_yields_verdict_or_structured_error() {
    let _g = lock();
    for bits in [8u32, 12, 16] {
        for (name, _racy, run) in programs() {
            let healthy = healthy_count(run.as_ref(), Variant::Stint);
            let _plan = ScopedPlan::install(FaultPlan {
                om_tag_bits: Some(bits),
                ..Default::default()
            });
            match run(Variant::Stint) {
                Ok((n, degraded)) => {
                    assert!(degraded.is_none(), "{name}@{bits}: om faults set no budget");
                    assert_eq!(n, healthy, "{name}@{bits}: verdict drifted");
                }
                Err(e) => {
                    assert!(
                        matches!(
                            e,
                            DetectorError::ResourceExhausted {
                                resource: Resource::OmTags,
                                ..
                            }
                        ),
                        "{name}@{bits}: unexpected failure {e}"
                    );
                    assert_eq!(e.exit_code(), 3);
                }
            }
        }
    }
}

/// Fault class 1 (`om`), storm flavor: forced relabel passes are a pure
/// perf fault — verdicts must be bit-for-bit identical.
#[test]
fn om_relabel_storms_keep_verdicts_exact() {
    let _g = lock();
    for (name, _racy, run) in programs() {
        for v in [Variant::Vanilla, Variant::Stint] {
            let healthy = healthy_count(run.as_ref(), v);
            let _plan = ScopedPlan::install(FaultPlan {
                om_relabel_storm: Some(2),
                seed: 42,
                ..Default::default()
            });
            let (n, degraded) = run(v).expect("storms must not abort");
            assert!(degraded.is_none(), "{name}/{v}: storms set no budget");
            assert_eq!(n, healthy, "{name}/{v}: storm changed the verdict");
        }
    }
}

/// Fault class 2 (`shadow`): allocation caps and simulated OOM degrade
/// soundly — clean programs never gain a false race, buggy programs either
/// still report races or report the degradation.
#[test]
fn shadow_exhaustion_degrades_soundly() {
    let _g = lock();
    let plans = [
        FaultPlan {
            shadow_page_cap: Some(2),
            ..Default::default()
        },
        FaultPlan {
            shadow_oom_at: Some(4),
            seed: 7,
            ..Default::default()
        },
    ];
    for plan in plans {
        for (name, racy, run) in programs() {
            for v in [Variant::Vanilla, Variant::CompRts, Variant::Stint] {
                let _plan = ScopedPlan::install(plan.clone());
                let (n, degraded) = run(v)
                    .unwrap_or_else(|e| panic!("{name}/{v}: shadow faults must not abort: {e}"));
                if racy {
                    assert!(
                        n > 0 || degraded.is_some(),
                        "{name}/{v}: race silently missed without a degradation report"
                    );
                } else {
                    assert_eq!(
                        n, 0,
                        "{name}/{v}: fabricated {n} racy words under shadow faults"
                    );
                }
                if let Some(e) = degraded {
                    assert_eq!(e.exit_code(), 3, "{name}/{v}: {e}");
                }
            }
        }
    }
}

/// Fault class 3 (`ivtree`): worst-case treap priorities (a list-shaped
/// tree) are a pure perf fault — verdicts must be identical.
#[test]
fn degenerate_treap_keeps_verdicts_exact() {
    let _g = lock();
    for (name, _racy, run) in programs() {
        let healthy = healthy_count(run.as_ref(), Variant::Stint);
        let _plan = ScopedPlan::install(FaultPlan {
            treap_degenerate: true,
            ..Default::default()
        });
        let (n, degraded) = run(Variant::Stint).expect("degenerate treap must not abort");
        assert!(degraded.is_none(), "{name}: treap fault sets no budget");
        assert_eq!(n, healthy, "{name}: tree shape changed the verdict");
    }
}

/// Fault class 3 (`ivtree`), exhaustion flavor: overrunning the treap's node
/// cap must raise the structured Intervals resource error (exit 3), not an
/// arbitrary `assert!` abort — the same typed-panic protocol every other
/// arena uses, so `try_detect_with`'s catch_unwind turns it into `Err`.
#[test]
fn treap_node_cap_raises_structured_error() {
    let _g = lock();
    use stint_repro::{Interval, IntervalStore, StrandId, Treap};
    let mut t: Treap<StrandId> = Treap::new();
    t.set_node_cap(4);
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Disjoint intervals: every insert allocates a fresh node.
        for i in 0..16u64 {
            t.insert_write(Interval::new(i * 10, i * 10 + 4, StrandId(0)), |_, _, _| {});
        }
    }))
    .expect_err("the fifth fresh node must trip the cap");
    let e = payload
        .downcast::<DetectorError>()
        .expect("cap overrun must carry the typed DetectorError payload");
    assert!(
        matches!(
            *e,
            DetectorError::ResourceExhausted {
                resource: Resource::Intervals,
                limit: 4,
                ..
            }
        ),
        "unexpected failure {e}"
    );
    assert_eq!(e.exit_code(), 3);
}

/// Fault class 4 (`cilkrt`): worker spawn failures and startup deaths leave
/// the pool correct (degraded to fewer workers, ultimately sequential).
#[test]
fn worker_failures_keep_pool_results_correct() {
    let _g = lock();
    fn sum(pool: &ThreadPool, lo: u64, hi: u64) -> u64 {
        if hi - lo <= 64 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = pool.join(|| sum(pool, lo, mid), || sum(pool, mid, hi));
        a + b
    }
    let expected: u64 = (0..10_000).sum();
    let plans = [
        FaultPlan {
            worker_spawn_fail_from: Some(1),
            ..Default::default()
        },
        FaultPlan {
            worker_spawn_fail_from: Some(0),
            ..Default::default()
        },
        FaultPlan {
            worker_panic_from: Some(0),
            ..Default::default()
        },
    ];
    for plan in plans {
        let pool = {
            let _plan = ScopedPlan::install(plan.clone());
            ThreadPool::new(4)
        };
        assert_eq!(sum(&pool, 0, 10_000), expected, "plan {plan:?}");
    }
}

/// Poisoned-session path: an injected internal panic surfaces as a
/// structured `Poisoned` error with exit code 4, for every variant.
#[test]
fn injected_flush_panic_is_reported_as_poisoned() {
    let _g = lock();
    for v in Variant::ALL {
        let _plan = ScopedPlan::install(FaultPlan {
            panic_at_flush: Some(1),
            ..Default::default()
        });
        let e = run_one(Workload::by_name("sort", Scale::Test), v)
            .expect_err("injected panic must surface as an error");
        assert!(
            matches!(e, DetectorError::Poisoned { .. }),
            "{v}: unexpected failure {e}"
        );
        assert_eq!(e.exit_code(), 4);
        assert!(e.to_string().contains("injected flush panic"), "{v}: {e}");
    }
}

/// Serialize a fresh recorded trace of a suite workload.
fn recorded_trace_text(bench: &str) -> String {
    let mut w = Workload::by_name(bench, Scale::Test);
    let pt = stint_repro::PortableTrace::record(&mut w);
    let mut buf = Vec::new();
    pt.save(&mut buf).expect("save to Vec");
    String::from_utf8(buf).expect("trace text is ASCII")
}

/// Trace robustness: truncated, bit-flipped, and wrong-version trace files
/// fed to batch replay come back as a structured `CorruptTrace` error (exit
/// code 4) — never a panic, and never an out-of-bounds replay.
#[test]
fn batch_rejects_corrupted_traces_structurally() {
    let _g = lock();
    use stint_repro::batchdet::load_trace;
    let good = recorded_trace_text("sort");

    // Truncation, including a cut straight through a line.
    for frac in [0, 1, 2, 3] {
        let cut = good.len() * frac / 4 + 3;
        let e = load_trace(&good.as_bytes()[..cut.min(good.len() - 1)])
            .expect_err("truncated trace must be rejected");
        assert!(matches!(e, DetectorError::CorruptTrace { .. }), "{e}");
        assert_eq!(e.exit_code(), 4);
    }

    // A "bit flip" inside a strand id: still parses, but the strand indexes
    // out of the frozen reachability snapshot — validation must catch it
    // before any shard replays it.
    let flipped: Vec<String> = {
        let mut done = false;
        good.lines()
            .map(|l| {
                let mut t = l.split_whitespace();
                let op = t.next().unwrap_or("");
                if !done && matches!(op, "l" | "s" | "L" | "S") {
                    done = true;
                    let rest: Vec<&str> = t.collect();
                    format!("{op} 999999 {} {}", rest[1], rest[2])
                } else {
                    l.to_string()
                }
            })
            .collect()
    };
    let e = load_trace(flipped.join("\n").as_bytes())
        .expect_err("out-of-range strand must be rejected");
    assert!(matches!(e, DetectorError::CorruptTrace { .. }), "{e}");
    assert!(e.to_string().contains("out of range"), "{e}");
    assert_eq!(e.exit_code(), 4);

    // Wrong format version.
    let versioned = good.replacen("STINT-TRACE v1", "STINT-TRACE v2", 1);
    let e = load_trace(versioned.as_bytes()).expect_err("wrong version must be rejected");
    assert!(matches!(e, DetectorError::CorruptTrace { .. }), "{e}");
    assert_eq!(e.exit_code(), 4);

    // And the original still loads and batch-detects cleanly.
    let pt = load_trace(good.as_bytes()).expect("pristine trace loads");
    let out = stint_repro::batchdet::batch_detect(&pt, &Default::default())
        .expect("pristine trace detects");
    assert!(out.merged.is_race_free());
}

/// Compressed-trace robustness: truncated and bit-flipped STINT-TRACE v2
/// streams fed to the chunked batch path come back as a structured
/// `CorruptTrace` error (exit code 4) — the per-chunk checksums and varint
/// bounds reject the damage before any shard replays an event.
#[test]
fn chunked_batch_rejects_corrupted_compressed_traces() {
    let _g = lock();
    use stint_repro::batchdet::{batch_detect_chunked, BatchConfig};
    let mut w = Workload::by_name("sort", Scale::Test);
    let pt = stint_repro::PortableTrace::record(&mut w);
    let mut good = Vec::new();
    pt.save_compressed(&mut good, 256).expect("compressed save");
    let cfg = BatchConfig::default();

    // Truncation at several depths: inside the header, inside a chunk body,
    // and just shy of the final chunk.
    for frac in [1, 2, 3] {
        let cut = (good.len() * frac / 4).min(good.len() - 1);
        let e = batch_detect_chunked(&good[..cut], &cfg)
            .expect_err("truncated compressed trace must be rejected");
        assert!(
            matches!(e, DetectorError::CorruptTrace { .. }),
            "cut at {frac}/4: {e}"
        );
        assert_eq!(e.exit_code(), 4);
    }

    // A single flipped bit in the middle of the stream trips a checksum
    // (or a bounds check) — never a panic, never a silent wrong verdict.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x20;
    let e = batch_detect_chunked(&flipped[..], &cfg)
        .expect_err("bit-flipped compressed trace must be rejected");
    assert!(matches!(e, DetectorError::CorruptTrace { .. }), "{e}");
    assert_eq!(e.exit_code(), 4);

    // And the pristine stream still detects cleanly.
    let out = batch_detect_chunked(&good[..], &cfg).expect("pristine compressed trace detects");
    assert!(out.merged.is_race_free());
    assert!(out.ingest.is_some_and(|st| st.chunks > 1));
}

/// An injected flush panic inside a shard worker surfaces from the batch
/// fan-out as a structured `Poisoned` error (exit 4), through the pool's
/// panic-capturing join and the typed-panic protocol.
#[test]
fn batch_injected_flush_panic_is_poisoned() {
    let _g = lock();
    let mut w = Workload::by_name("sort", Scale::Test);
    let pt = stint_repro::PortableTrace::record(&mut w);
    let _plan = ScopedPlan::install(FaultPlan {
        panic_at_flush: Some(1),
        ..Default::default()
    });
    let cfg = stint_repro::batchdet::BatchConfig {
        shards: 4,
        workers: 2,
        steal_seed: 0,
        ..Default::default()
    };
    let e = stint_repro::batchdet::batch_detect(&pt, &cfg)
        .expect_err("injected shard panic must surface as an error");
    assert!(matches!(e, DetectorError::Poisoned { .. }), "{e}");
    assert_eq!(e.exit_code(), 4);
    assert!(e.to_string().contains("injected flush panic"), "{e}");
}

/// Batch detection under shadow caps degrades soundly per shard: a clean
/// trace never gains a false race, and any degradation is the structured
/// exit-3 resource error.
#[test]
fn batch_shadow_caps_degrade_soundly() {
    let _g = lock();
    let mut w = Workload::by_name("mmul", Scale::Test);
    let pt = stint_repro::PortableTrace::record(&mut w);
    let _plan = ScopedPlan::install(FaultPlan {
        shadow_page_cap: Some(2),
        ..Default::default()
    });
    let cfg = stint_repro::batchdet::BatchConfig {
        shards: 3,
        workers: 2,
        steal_seed: 0,
        ..Default::default()
    };
    let out = stint_repro::batchdet::batch_detect(&pt, &cfg)
        .expect("shadow caps must not abort the batch run");
    assert!(
        out.merged.is_race_free(),
        "fabricated races under shadow caps"
    );
    if let Some(e) = out.degraded {
        assert_eq!(e.exit_code(), 3, "{e}");
    }
}

/// Fault class 4 (`cilkrt`) composed with batch: if every worker fails to
/// spawn, the fan-out runs sequentially on the degraded pool and the merged
/// verdict is still exact.
#[test]
fn batch_survives_worker_spawn_failures() {
    let _g = lock();
    let mut w = Workload::by_name("sort", Scale::Test);
    let pt = stint_repro::PortableTrace::record(&mut w);
    let healthy = stint_repro::batchdet::batch_detect(&pt, &Default::default())
        .expect("healthy batch run")
        .merged
        .render();
    let _plan = ScopedPlan::install(FaultPlan {
        worker_spawn_fail_from: Some(0),
        ..Default::default()
    });
    let cfg = stint_repro::batchdet::BatchConfig {
        shards: 4,
        workers: 4,
        steal_seed: 0,
        ..Default::default()
    };
    let out = stint_repro::batchdet::batch_detect(&pt, &cfg)
        .expect("degraded pool must still complete the batch");
    assert!(out.degraded.is_none());
    assert_eq!(
        out.merged.render(),
        healthy,
        "degraded pool changed verdict"
    );
}

/// Budgets compose with faults: a run that is both capped and stormed still
/// terminates with a sound verdict or structured error.
#[test]
fn combined_faults_and_budgets_stay_structured() {
    let _g = lock();
    let _plan = ScopedPlan::install(FaultPlan {
        om_relabel_storm: Some(3),
        shadow_page_cap: Some(2),
        treap_degenerate: true,
        seed: 1234,
        ..Default::default()
    });
    let mut cfg = Config::new(Variant::Stint);
    cfg.budget.max_intervals = Some(64);
    let mut w = Workload::by_name("mmul", Scale::Test);
    match try_detect_with(&mut w, cfg) {
        Ok(o) => {
            assert!(o.report.is_race_free(), "mmul is race-free: no false races");
            if let Some(e) = o.degraded {
                assert_eq!(e.exit_code(), 3, "{e}");
            }
        }
        Err(e) => panic!("combined faults must not abort: {e}"),
    }
}

/// One parallel-online detection run (`--online-parallel`) with the given
/// shard/worker geometry, returning the same verdict shape as [`run_one`].
fn run_online<P: CilkProgram>(mut p: P, workers: usize) -> Verdict {
    let cfg = stint_repro::batchdet::OnlineConfig {
        shards: 4,
        workers,
        steal_seed: 0,
        chunk_events: 64,
        witnesses: false,
        budget: Default::default(),
    };
    let o = stint_repro::batchdet::online_detect(&mut p, &cfg)?;
    Ok((o.merged.racy_words.len(), o.degraded))
}

/// Parallel-online under the injected flush panic: the poisoned-session
/// contract is identical to the sequential tier — a structured `Poisoned`
/// error with exit code 4, never an escaping panic and never a partial
/// report published from a poisoned engine.
#[test]
fn online_injected_flush_panic_is_poisoned() {
    let _g = lock();
    let plan = FaultPlan {
        panic_at_flush: Some(1),
        ..Default::default()
    };
    // Sequential contract first …
    let seq = {
        let _plan = ScopedPlan::install(plan.clone());
        run_one(Workload::by_name("sort", Scale::Test), Variant::Stint)
            .expect_err("sequential: injected panic must surface")
    };
    assert_eq!(seq.exit_code(), 4);
    // … then the online tier must match it for every worker count.
    for workers in [1usize, 2, 4] {
        let _plan = ScopedPlan::install(plan.clone());
        let e = run_online(Workload::by_name("sort", Scale::Test), workers)
            .expect_err("online: injected panic must surface as an error");
        assert!(
            matches!(e, DetectorError::Poisoned { .. }),
            "workers={workers}: unexpected failure {e}"
        );
        assert_eq!(e.exit_code(), 4, "workers={workers}");
        assert!(
            e.to_string().contains("injected flush panic"),
            "workers={workers}: {e}"
        );
    }
}

/// Parallel-online under shadow exhaustion: the degradation contract is the
/// sequential one — clean programs never gain a false race, buggy programs
/// either still report their races or report the degradation (exit 3);
/// a race is never silently lost.
#[test]
fn online_shadow_exhaustion_degrades_soundly() {
    let _g = lock();
    let plans = [
        FaultPlan {
            shadow_page_cap: Some(2),
            ..Default::default()
        },
        FaultPlan {
            shadow_oom_at: Some(4),
            seed: 7,
            ..Default::default()
        },
    ];
    for plan in plans {
        for workers in [1usize, 2] {
            {
                let _plan = ScopedPlan::install(plan.clone());
                let (n, degraded) = run_online(Workload::by_name("mmul", Scale::Test), workers)
                    .expect("online: shadow faults must not abort");
                assert_eq!(
                    n, 0,
                    "workers={workers}: fabricated races under shadow faults"
                );
                if let Some(e) = degraded {
                    assert_eq!(e.exit_code(), 3, "workers={workers}: {e}");
                }
            }
            {
                let _plan = ScopedPlan::install(plan.clone());
                let (n, degraded) = run_online(MmulMissingSync::new(16, 4, 7), workers)
                    .expect("online: shadow faults must not abort");
                assert!(
                    n > 0 || degraded.is_some(),
                    "workers={workers}: race silently missed without a degradation report"
                );
                if let Some(e) = degraded {
                    assert_eq!(e.exit_code(), 3, "workers={workers}: {e}");
                }
            }
        }
    }
}

/// Parallel-online under a shard interval budget: partial-but-sound with the
/// structured exit-3 marker, mirroring the sequential budget contract on the
/// buggy suite.
#[test]
fn online_interval_budget_degrades_soundly() {
    let _g = lock();
    let cfg = stint_repro::batchdet::OnlineConfig {
        shards: 4,
        workers: 2,
        steal_seed: 0,
        chunk_events: 64,
        witnesses: false,
        budget: stint_repro::ResourceBudget {
            max_intervals: Some(1),
            ..Default::default()
        },
    };
    let out = stint_repro::batchdet::online_detect(&mut MmulMissingSync::new(16, 4, 7), &cfg)
        .expect("budget trips degrade, not abort");
    let e = out.degraded.expect("one-interval budget must degrade");
    assert_eq!(e.exit_code(), 3, "{e}");
    // Degradation was reported, so a truncated race set is permitted — but
    // whatever is reported must be a subset of the true racy words.
    let full = run_one(MmulMissingSync::new(16, 4, 7), Variant::Stint)
        .expect("healthy run")
        .0;
    assert!(out.merged.racy_words.len() <= full);
}

/// Parallel-online composed with worker startup deaths: the pool degrades to
/// fewer (ultimately zero) stealing workers and the verdict stays exact —
/// byte-identical to the healthy online render.
#[test]
fn online_survives_worker_startup_panics() {
    let _g = lock();
    let cfg = stint_repro::batchdet::OnlineConfig {
        shards: 4,
        workers: 4,
        steal_seed: 0,
        chunk_events: 64,
        witnesses: false,
        budget: Default::default(),
    };
    let healthy = stint_repro::batchdet::online_detect(&mut MmulMissingSync::new(16, 4, 7), &cfg)
        .expect("healthy online run");
    assert!(!healthy.merged.racy_words.is_empty());
    for plan in [
        FaultPlan {
            worker_panic_from: Some(0),
            ..Default::default()
        },
        FaultPlan {
            worker_spawn_fail_from: Some(0),
            ..Default::default()
        },
    ] {
        let _plan = ScopedPlan::install(plan);
        let out = stint_repro::batchdet::online_detect(&mut MmulMissingSync::new(16, 4, 7), &cfg)
            .expect("degraded pool must still complete the online run");
        assert!(out.degraded.is_none());
        assert_eq!(
            out.merged.racy_words.len(),
            healthy.merged.racy_words.len(),
            "degraded pool changed the online verdict"
        );
    }
}

/// Adversarial short reads (satellite): zero-length input, EOF straight
/// after the magic, EOF mid-header, and EOF mid-varint must all surface as
/// a structured `CorruptTrace` from the ingest seams — never a panic, and
/// never a busy-loop on a reader that stops advancing. The v2 sweep cuts
/// the stream densely through the magic + header region (where the varint
/// framing lives) and at sampled depths through the chunk frames.
#[test]
fn short_reads_are_structured_corruption() {
    let _g = lock();
    use stint_repro::batchdet::{batch_detect_chunked, load_trace, BatchConfig};
    use stint_repro::PortableTrace;

    fn assert_corrupt(e: DetectorError, what: &str) {
        assert!(
            matches!(e, DetectorError::CorruptTrace { .. }),
            "{what}: {e}"
        );
        assert_eq!(e.exit_code(), 4, "{what}");
    }

    // Zero-length input on both ingest seams.
    assert_corrupt(
        load_trace(&[][..]).expect_err("empty input must be rejected"),
        "empty load_trace",
    );
    let cfg = BatchConfig::default();
    assert_corrupt(
        batch_detect_chunked(&[][..], &cfg).expect_err("empty input must be rejected"),
        "empty chunked",
    );

    // EOF immediately after each magic line: v1 has no strand header yet,
    // v2 dies inside the first framing varint.
    for magic in ["STINT-TRACE v1\n", "STINT-TRACE v2\n", "STINT-TRACE v"] {
        assert_corrupt(
            load_trace(magic.as_bytes()).expect_err("bare magic must be rejected"),
            magic,
        );
    }

    let mut w = Workload::by_name("sort", Scale::Test);
    let pt = stint_repro::PortableTrace::record(&mut w);
    let mut v2 = Vec::new();
    pt.save_compressed(&mut v2, 64).expect("compressed save");

    // Dense sweep through magic + header varints + header payload, then
    // sampled cuts through the chunk frames: every prefix must come back
    // as a plain parse error from `load_any` (no panic, no hang) …
    let dense = 0..v2.len().min(96);
    let sampled = (1..64).map(|i| i * v2.len() / 64);
    for cut in dense.chain(sampled).filter(|&c| c < v2.len()) {
        let e = PortableTrace::load_any(&v2[..cut]).expect_err("short read must be rejected");
        assert_eq!(e.to_string(), e.to_string(), "cut {cut}"); // error formats without panicking
    }
    // … and the batch seam wraps a representative subset as `CorruptTrace`,
    // including a cut landing mid-varint in the chunk framing (one byte
    // past a quarter boundary is inside a frame varint for this corpus).
    for cut in [15, 16, 17, v2.len() / 4 + 1, v2.len() - 1] {
        assert_corrupt(
            batch_detect_chunked(&v2[..cut], &cfg).expect_err("short read must be rejected"),
            &format!("v2 cut {cut}"),
        );
    }

    // A reader that dribbles one byte per syscall must not busy-loop or
    // change the verdict: the pristine stream still parses.
    struct OneByte<'a>(&'a [u8]);
    impl std::io::Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = 1.min(self.0.len()).min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }
    let dribble = std::io::BufReader::with_capacity(1, OneByte(&v2));
    let slow = PortableTrace::load_any(dribble).expect("dribbled pristine stream parses");
    assert_eq!(slow.trace.events.len(), pt.trace.events.len());
    // And a dribbled *truncated* stream is still a structured rejection.
    let cut = v2.len() / 2;
    let dribble = std::io::BufReader::with_capacity(1, OneByte(&v2[..cut]));
    assert_corrupt(
        load_trace(dribble).expect_err("dribbled short read must be rejected"),
        "dribbled truncation",
    );
}
