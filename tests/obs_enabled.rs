//! Enabled-path integration test for the observability layer: one detection
//! run per shadow substrate plus a work-stealing pool, then assert that the
//! metrics export carries counters from every instrumented crate and that
//! the registry's detector numbers agree exactly with `Outcome::stats`.
//!
//! A single `#[test]` (and its own binary): the registry is process-global,
//! so concurrent obs-enabled cases would double-count each other.

use stint_repro::suite::{Scale, Workload};
use stint_repro::{detect, obs, Variant};

/// Pull `"name": value` out of the flat metrics JSON.
fn counter(metrics: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\": ");
    let at = metrics.find(&key)? + key.len();
    let rest = &metrics[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

#[test]
fn metrics_cover_every_layer_and_agree_with_stats() {
    let _obs = obs::ScopedObs::enable(obs::ObsConfig::FULL);

    // Stint exercises om + sporder + ivtree + shadow bit tables; CompRts
    // exercises the word-granularity shadow pages.
    let mut w = Workload::by_name("sort", Scale::Test);
    let stint_run = detect(&mut w, Variant::Stint);
    assert!(stint_run.report.is_race_free());
    let mut w = Workload::by_name("fft", Scale::Test);
    let comprts_run = detect(&mut w, Variant::CompRts);
    assert!(comprts_run.report.is_race_free());

    // cilkrt: fork-join on a real pool. A join landing before any worker
    // thread is up gets drained inline (serial elision, no fork recorded),
    // so retry until one actually runs on a worker deque.
    let pool = stint_cilkrt::ThreadPool::new(2);
    let mut forked = false;
    for _ in 0..1000 {
        let mut v: Vec<u64> = (0..64).collect();
        pool.for_each_chunk(&mut v, 1, &|_, c| c[0] = c[0].wrapping_add(1));
        if counter(&obs::metrics_json(), "cilkrt.spawns").is_some_and(|n| n > 0) {
            forked = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(forked, "no join ever ran on a pool worker");
    drop(pool);

    // batchdet: a sharded batch run over a recorded trace. Its per-shard
    // detectors live only inside the run, so afterwards the byte gauge must
    // have reconciled back to zero while its watermark kept the peak.
    let mut w = Workload::by_name("sort", Scale::Test);
    let pt = stint_repro::PortableTrace::record(&mut w);
    let batch = stint_repro::batchdet::batch_detect(
        &pt,
        &stint_repro::batchdet::BatchConfig {
            shards: 3,
            workers: 2,
            steal_seed: 0,
            ..Default::default()
        },
    )
    .expect("clean batch run");
    assert!(batch.degraded.is_none());
    assert!(batch.merged.is_race_free());
    let shard_bytes = obs::gauges_snapshot()
        .into_iter()
        .find(|(name, _, _)| *name == "batchdet.shard.bytes")
        .expect("batchdet.shard.bytes gauge never registered");
    assert_eq!(
        shard_bytes.1, 0,
        "batchdet.shard.bytes did not reconcile to zero after the batch run"
    );
    assert!(shard_bytes.2 > 0, "no shard detector ever recorded bytes");

    // Chunked streaming over the compressed v2 encoding: the ingest
    // counters must tick, and both in-flight gauges — the decoded chunk
    // buffer and the per-shard detector bytes — must reconcile back to
    // zero once the run finishes (their watermarks keep the peaks).
    let mut cbuf = Vec::new();
    pt.save_compressed(&mut cbuf, 64).expect("compressed save");
    let chunked = stint_repro::batchdet::batch_detect_chunked(
        &cbuf[..],
        &stint_repro::batchdet::BatchConfig {
            shards: 3,
            workers: 2,
            steal_seed: 0,
            ..Default::default()
        },
    )
    .expect("clean chunked run");
    assert!(chunked.merged.is_race_free());
    assert_eq!(chunked.merged.render(), batch.merged.render());
    let ingest = chunked.ingest.expect("chunked runs report ingest stats");
    assert!(ingest.bytes > 0 && ingest.chunks > 1 && ingest.runs > 0);
    for name in ["batchdet.shard.bytes", "batchdet.ingest.buf_bytes"] {
        let g = obs::gauges_snapshot()
            .into_iter()
            .find(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("{name} gauge never registered"));
        assert_eq!(g.1, 0, "{name} did not reconcile to zero after streaming");
        assert!(g.2 > 0, "{name} watermark never rose above zero");
    }

    assert!(obs::registry_initialized());
    let metrics = obs::metrics_json();

    // At least one counter from every instrumented layer.
    for name in [
        "om.inserts",
        "sporder.parallel_queries",
        "sporder.reach_cache_hits",
        "ivtree.inserts",
        "shadow.page_allocs",
        "shadow.filter_elisions",
        "cilkrt.workers_spawned",
        "cilkrt.spawns",
        "batchdet.shard.runs",
        "batchdet.shard.events",
        "batchdet.merges",
        "batchdet.ingest.bytes",
        "batchdet.ingest.chunks",
        "batchdet.ingest.runs",
    ] {
        assert!(
            counter(&metrics, name).is_some_and(|v| v > 0),
            "missing or zero counter {name}:\n{metrics}"
        );
    }
    // Histograms: ivtree always observes per-op visit counts; om's relabel
    // width shows up only when the run actually relabeled.
    assert!(metrics.contains("\"ivtree.op_visited\""), "{metrics}");
    if counter(&metrics, "om.relabels").unwrap_or(0) > 0 {
        assert!(metrics.contains("\"om.relabel_width\""), "{metrics}");
    }

    // The published detector numbers are the sum over both runs of exactly
    // the values `Outcome::stats` reported — shared source, no drift.
    for (name, _) in stint_run.stats.fields() {
        let want = counter_sum(&stint_run, &comprts_run, name);
        assert_eq!(
            counter(&metrics, name),
            Some(want),
            "registry disagrees with Outcome::stats on {name}"
        );
    }

    // Spans: full mode records the per-variant execute/report phases as
    // Chrome trace_event complete events.
    let trace = obs::trace_json();
    assert!(trace.contains("\"ph\": \"X\""), "{trace}");
    assert!(trace.contains("\"name\": \"detect.execute\""), "{trace}");
    assert!(trace.contains("\"name\": \"stint.flush\""), "{trace}");
    assert!(trace.contains("\"name\": \"batchdet.shard\""), "{trace}");
    assert!(trace.contains("\"name\": \"batchdet.merge\""), "{trace}");

    // serve: a multi-session engine run covering every verdict, including a
    // timed-out and a poisoned session. The per-verdict counters must sum
    // to the admitted total, and the serve gauges must reconcile to zero
    // after the drain — the timed-out and poisoned sessions included,
    // because the gauges move outside the engine's unwind boundary.
    {
        use std::sync::mpsc;
        use stint_repro::serve::{Engine, EngineConfig, Status};

        let racy_v1 = "STINT-TRACE v1\nstrands 3\n0 0\n1 2\n2 1\nevents 4\n\
                       s 1 0x40 4\ne 1 0x0 0\ns 2 0x40 4\ne 2 0x0 0\n";
        let mut clean_v1 = Vec::new();
        pt.save(&mut clean_v1).expect("save v1");

        let engine = Engine::new(EngineConfig {
            session_workers: 2,
            queue_depth: 16,
            pool_workers: 2,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let mut expect = std::collections::HashMap::new();
        for (opts, trace, want) in [
            ("", clean_v1.clone(), Status::Ok),
            ("shards=2", cbuf.clone(), Status::Ok),
            ("", racy_v1.as_bytes().to_vec(), Status::Racy),
            ("", clean_v1[..clean_v1.len() / 2].to_vec(), Status::Corrupt),
            ("frobnicate", clean_v1.clone(), Status::Usage),
            ("timeout-ms=0", cbuf.clone(), Status::Degraded),
        ] {
            let id = engine.try_submit(opts.into(), trace, tx.clone());
            expect.insert(id, want);
        }
        for _ in 0..expect.len() {
            let resp = rx
                .recv_timeout(std::time::Duration::from_secs(60))
                .expect("session reply");
            assert_eq!(Some(&resp.status), expect.get(&resp.session), "{resp:?}");
        }
        // Poisoned session, alone while the chaos plan is installed so no
        // concurrent neighbor trips the knob.
        {
            let _plan = stint_repro::ScopedPlan::install(stint_repro::FaultPlan {
                serve_panic_session: Some(1),
                ..Default::default()
            });
            let id = engine.try_submit(String::new(), clean_v1.clone(), tx.clone());
            let resp = rx
                .recv_timeout(std::time::Duration::from_secs(60))
                .expect("poisoned session reply");
            assert_eq!(resp.session, id);
            assert_eq!(resp.status, Status::Corrupt);
            assert!(resp.payload.contains("kind: poisoned"), "{}", resp.payload);
        }
        engine.drain();

        // Counters: every verdict ticked once (Ok twice), and the
        // per-verdict counters sum exactly to the admitted total.
        let m = obs::metrics_json();
        let verdicts = [
            ("serve.sessions.ok", 2),
            ("serve.sessions.racy", 1),
            ("serve.sessions.usage", 1),
            ("serve.sessions.degraded", 1),
            ("serve.sessions.corrupt", 1),
            ("serve.sessions.poisoned", 1),
        ];
        for (name, want) in verdicts {
            assert_eq!(counter(&m, name), Some(want), "{name}:\n{m}");
        }
        let total: u64 = verdicts.iter().map(|(_, n)| n).sum();
        assert_eq!(counter(&m, "serve.sessions"), Some(total), "{m}");
        // Never-ticked counters are not exported at all: no admission was
        // ever bounced, so `serve.busy` must be absent (or explicitly 0).
        assert_eq!(counter(&m, "serve.busy").unwrap_or(0), 0, "{m}");

        // Gauges: both serve gauges saw traffic and reconciled to zero.
        for name in ["serve.queue_bytes", "serve.inflight"] {
            let g = obs::gauges_snapshot()
                .into_iter()
                .find(|(n, _, _)| *n == name)
                .unwrap_or_else(|| panic!("{name} gauge never registered"));
            assert_eq!(g.1, 0, "{name} did not reconcile to zero after drain");
            assert!(g.2 > 0, "{name} watermark never rose above zero");
        }
        drop(engine);
    }

    // End state: every live-resource owner is gone, so every registered
    // gauge — shard bytes, ingest buffers, pool bookkeeping, serve queue
    // and in-flight — must read exactly zero.
    for (name, cur, _) in obs::gauges_snapshot() {
        assert_eq!(cur, 0, "gauge {name} nonzero after all owners dropped");
    }
}

fn counter_sum(a: &stint_repro::Outcome, b: &stint_repro::Outcome, name: &str) -> u64 {
    let get = |o: &stint_repro::Outcome| {
        o.stats
            .fields()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    get(a) + get(b)
}
