//! Differential battery for the sharded batch detector: on random fork-join
//! programs, batch detection over `K` address shards must report exactly the
//! racy-word set of the sequential STINT run — for every `K` — and the
//! canonical merged rendering must be byte-identical across shard counts,
//! worker counts, and steal-schedule seeds (the metamorphic invariance the
//! deterministic merge guarantees).

use proptest::prelude::*;
use stint_repro::batchdet::{batch_detect, batch_detect_chunked, BatchConfig};
use stint_repro::{detect, PortableTrace, Variant};

mod common;
use common::{func_strategy, AstProgram};

fn cfg(shards: usize, workers: usize, steal_seed: u64) -> BatchConfig {
    BatchConfig {
        shards,
        workers,
        steal_seed,
        ..BatchConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_batch_matches_sequential_for_every_k(f in func_strategy(3)) {
        let expected = detect(&mut AstProgram(&f), Variant::Stint)
            .report
            .racy_words();
        let pt = PortableTrace::record(&mut AstProgram(&f));
        for k in [1usize, 2, 7, 16] {
            let out = batch_detect(&pt, &cfg(k, 2, 0)).expect("clean batch run");
            prop_assert!(out.degraded.is_none(), "K={} degraded", k);
            prop_assert_eq!(out.shards.len(), k);
            prop_assert_eq!(&out.merged.racy_words, &expected, "K={}", k);
            // The race verdict agrees too, not just the word set.
            prop_assert_eq!(out.merged.is_race_free(), expected.is_empty(), "K={}", k);
        }
    }

    #[test]
    fn merged_render_is_metamorphically_invariant(f in func_strategy(2)) {
        let pt = PortableTrace::record(&mut AstProgram(&f));
        let baseline = batch_detect(&pt, &cfg(1, 1, 0))
            .expect("baseline batch run")
            .merged
            .render();
        // Vary every scheduling degree of freedom: shard count, worker
        // count (1 vs N), and the steal-schedule seed (two different ones).
        for (k, w, seed) in [
            (2usize, 1usize, 0u64),
            (4, 4, 0),
            (4, 4, 0xDEAD_BEEF),
            (7, 2, 0xC0FFEE),
            (16, 3, 42),
        ] {
            let got = batch_detect(&pt, &cfg(k, w, seed))
                .expect("batch run")
                .merged
                .render();
            prop_assert_eq!(&got, &baseline, "K={} workers={} seed={}", k, w, seed);
        }
    }

    #[test]
    fn save_load_then_batch_agrees_with_in_memory_batch(f in func_strategy(2)) {
        // The full pipeline a user runs: record → save → load → batch.
        let pt = PortableTrace::record(&mut AstProgram(&f));
        let mut buf = Vec::new();
        pt.save(&mut buf).expect("save to Vec");
        let back = stint_repro::batchdet::load_trace(&buf[..]).expect("load what we saved");
        let a = batch_detect(&pt, &cfg(4, 2, 0)).expect("batch run");
        let b = batch_detect(&back, &cfg(4, 2, 0)).expect("batch run on loaded trace");
        prop_assert_eq!(a.merged.render(), b.merged.render());
    }

    #[test]
    fn chunked_compressed_batch_matches_in_memory_batch(
        f in func_strategy(3),
        chunk_events in prop_oneof![Just(1usize), 2usize..48, Just(4096usize)],
        k in 1usize..8,
    ) {
        // Both encodings, one verdict: streaming a compressed v2 trace
        // chunk-by-chunk through the partition pass must render the same
        // merged report and count the same per-shard work as the in-memory
        // batch over the original trace — for every chunk size, including
        // one event per chunk.
        let pt = PortableTrace::record(&mut AstProgram(&f));
        let a = batch_detect(&pt, &cfg(k, 2, 0)).expect("in-memory batch run");

        let mut buf = Vec::new();
        pt.save_compressed(&mut buf, chunk_events).expect("compressed save");
        let b = batch_detect_chunked(&buf[..], &cfg(k, 2, 0)).expect("chunked batch run");

        prop_assert_eq!(a.merged.render(), b.merged.render(), "chunk={}", chunk_events);
        prop_assert_eq!(a.events, b.events, "chunk={}", chunk_events);
        // Wholesale run consumption and dirty strand-end filtering only ever
        // shave work off the streamed side — shard by shard it never replays
        // more than the in-memory partition did.
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            prop_assert!(
                sb.events <= sa.events,
                "chunk={}: shard {} streamed {} > in-memory {}",
                chunk_events, sa.index, sb.events, sa.events
            );
        }
        // Ingest telemetry: chunk framing + payload bytes fit inside the
        // file (the header is accounted separately), and every decoded
        // trace event is counted.
        let ingest = b.ingest.expect("chunked run reports ingest stats");
        prop_assert!(ingest.bytes <= buf.len() as u64);
        if ingest.events > 0 {
            prop_assert!(ingest.bytes > 0 && ingest.chunks > 0);
        }
    }
}
