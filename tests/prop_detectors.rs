//! Workspace-level property tests: proptest-generated fork-join programs
//! (with shrinking) must produce identical racy-word sets under every
//! detector variant and match the brute-force oracle.
//!
//! This complements `stint`'s own seeded differential sweeps with proptest's
//! shrinking: a failure here minimizes to a small witness program.

use proptest::prelude::*;
use stint_repro::{detect, Cilk, CilkProgram, Variant};
use stint_spdag::{simulate, Access, Func, Stmt};

/// Proptest strategy for fork-join programs over a small word space.
fn func_strategy(depth: u32) -> BoxedStrategy<Func> {
    let access = (any::<bool>(), 0u64..40, 1u64..10, any::<bool>()).prop_map(
        |(write, word, len, coalesced)| Access {
            write,
            word,
            len,
            coalesced,
        },
    );
    let compute = proptest::collection::vec(access, 1..4).prop_map(Stmt::Compute);
    if depth == 0 {
        proptest::collection::vec(prop_oneof![compute, Just(Stmt::Sync)], 1..5)
            .prop_map(Func)
            .boxed()
    } else {
        let inner = func_strategy(depth - 1);
        let stmt = prop_oneof![
            4 => compute,
            1 => Just(Stmt::Sync),
            3 => inner.clone().prop_map(Stmt::Spawn),
            1 => inner.prop_map(Stmt::Call),
        ];
        proptest::collection::vec(stmt, 1..6).prop_map(Func).boxed()
    }
}

struct AstProgram<'a>(&'a Func);

fn walk<C: Cilk>(f: &Func, ctx: &mut C) {
    for stmt in &f.0 {
        match stmt {
            Stmt::Compute(accs) => {
                for a in accs {
                    let addr = (a.word * 4) as usize;
                    let bytes = (a.len * 4) as usize;
                    match (a.write, a.coalesced) {
                        (true, true) => ctx.store_range(addr, bytes),
                        (true, false) => ctx.store(addr, bytes),
                        (false, true) => ctx.load_range(addr, bytes),
                        (false, false) => ctx.load(addr, bytes),
                    }
                }
            }
            Stmt::Spawn(g) => ctx.spawn(|c| walk(g, c)),
            Stmt::Sync => ctx.sync(),
            Stmt::Call(g) => ctx.call(|c| walk(g, c)),
        }
    }
}

impl CilkProgram for AstProgram<'_> {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        walk(self.0, ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn variants_match_oracle(f in func_strategy(3)) {
        let sim = simulate(&f);
        prop_assume!(sim.strand_count() <= 250);
        let expected = sim.racy_words();
        for v in [
            Variant::Vanilla,
            Variant::Compiler,
            Variant::CompRts,
            Variant::Stint,
            Variant::StintFlat,
        ] {
            let got = detect(&mut AstProgram(&f), v).report.racy_words();
            prop_assert_eq!(&got, &expected, "variant {} diverged", v);
        }
    }

    /// Adding a terminal sync never changes the racy words (the implicit
    /// function-end sync already joins everything).
    #[test]
    fn trailing_sync_is_redundant(mut f in func_strategy(2)) {
        let before = simulate(&f).racy_words();
        f.0.push(Stmt::Sync);
        let after = simulate(&f).racy_words();
        prop_assert_eq!(&before, &after);
        let detected = detect(&mut AstProgram(&f), Variant::Stint).report.racy_words();
        prop_assert_eq!(&detected, &before);
    }

    /// Wrapping the whole program in Call (serial, own sync scope) or in a
    /// single Spawn+Sync preserves its internal races.
    #[test]
    fn structural_wrappers_preserve_races(f in func_strategy(2)) {
        let base = simulate(&f).racy_words();
        let called = Func(vec![Stmt::Call(f.clone())]);
        prop_assert_eq!(&simulate(&called).racy_words(), &base);
        let spawned = Func(vec![Stmt::Spawn(f.clone()), Stmt::Sync]);
        prop_assert_eq!(&simulate(&spawned).racy_words(), &base);
        let got = detect(&mut AstProgram(&spawned), Variant::Stint).report.racy_words();
        prop_assert_eq!(&got, &base);
    }
}
