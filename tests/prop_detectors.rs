//! Workspace-level property tests: proptest-generated fork-join programs
//! (with shrinking) must produce identical racy-word sets under every
//! detector variant and match the brute-force oracle.
//!
//! This complements `stint`'s own seeded differential sweeps with proptest's
//! shrinking: a failure here minimizes to a small witness program.

use proptest::prelude::*;
use stint_repro::{detect, Variant};
use stint_spdag::{simulate, Func, Stmt};

mod common;
use common::{func_strategy, AstProgram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn variants_match_oracle(f in func_strategy(3)) {
        let sim = simulate(&f);
        prop_assume!(sim.strand_count() <= 250);
        let expected = sim.racy_words();
        for v in [
            Variant::Vanilla,
            Variant::Compiler,
            Variant::CompRts,
            Variant::Stint,
            Variant::StintFlat,
        ] {
            let got = detect(&mut AstProgram(&f), v).report.racy_words();
            prop_assert_eq!(&got, &expected, "variant {} diverged", v);
        }
    }

    /// Adding a terminal sync never changes the racy words (the implicit
    /// function-end sync already joins everything).
    #[test]
    fn trailing_sync_is_redundant(mut f in func_strategy(2)) {
        let before = simulate(&f).racy_words();
        f.0.push(Stmt::Sync);
        let after = simulate(&f).racy_words();
        prop_assert_eq!(&before, &after);
        let detected = detect(&mut AstProgram(&f), Variant::Stint).report.racy_words();
        prop_assert_eq!(&detected, &before);
    }

    /// Wrapping the whole program in Call (serial, own sync scope) or in a
    /// single Spawn+Sync preserves its internal races.
    #[test]
    fn structural_wrappers_preserve_races(f in func_strategy(2)) {
        let base = simulate(&f).racy_words();
        let called = Func(vec![Stmt::Call(f.clone())]);
        prop_assert_eq!(&simulate(&called).racy_words(), &base);
        let spawned = Func(vec![Stmt::Spawn(f.clone()), Stmt::Sync]);
        prop_assert_eq!(&simulate(&spawned).racy_words(), &base);
        let got = detect(&mut AstProgram(&spawned), Variant::Stint).report.racy_words();
        prop_assert_eq!(&got, &base);
    }
}
