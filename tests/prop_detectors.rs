//! Workspace-level property tests: proptest-generated fork-join programs
//! (with shrinking) must produce identical racy-word sets under every
//! detector variant and match the brute-force oracle.
//!
//! This complements `stint`'s own seeded differential sweeps with proptest's
//! shrinking: a failure here minimizes to a small witness program.

use proptest::prelude::*;
use stint::{PortableTrace, ResourceBudget, WitnessChecker};
use stint_batchdet::{online_detect, OnlineConfig};
use stint_repro::{detect, Variant};
use stint_spdag::{simulate, Func, Stmt};

mod common;
use common::{func_strategy, AstProgram};

fn online_cfg(workers: usize, steal_seed: u64) -> OnlineConfig {
    OnlineConfig {
        shards: 3,
        workers,
        steal_seed,
        chunk_events: 32,
        witnesses: false,
        budget: ResourceBudget::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn variants_match_oracle(f in func_strategy(3)) {
        let sim = simulate(&f);
        prop_assume!(sim.strand_count() <= 250);
        let expected = sim.racy_words();
        for v in [
            Variant::Vanilla,
            Variant::Compiler,
            Variant::CompRts,
            Variant::Stint,
            Variant::StintFlat,
        ] {
            let got = detect(&mut AstProgram(&f), v).report.racy_words();
            prop_assert_eq!(&got, &expected, "variant {} diverged", v);
        }
    }

    /// Adding a terminal sync never changes the racy words (the implicit
    /// function-end sync already joins everything).
    #[test]
    fn trailing_sync_is_redundant(mut f in func_strategy(2)) {
        let before = simulate(&f).racy_words();
        f.0.push(Stmt::Sync);
        let after = simulate(&f).racy_words();
        prop_assert_eq!(&before, &after);
        let detected = detect(&mut AstProgram(&f), Variant::Stint).report.racy_words();
        prop_assert_eq!(&detected, &before);
    }

    /// Wrapping the whole program in Call (serial, own sync scope) or in a
    /// single Spawn+Sync preserves its internal races.
    #[test]
    fn structural_wrappers_preserve_races(f in func_strategy(2)) {
        let base = simulate(&f).racy_words();
        let called = Func(vec![Stmt::Call(f.clone())]);
        prop_assert_eq!(&simulate(&called).racy_words(), &base);
        let spawned = Func(vec![Stmt::Spawn(f.clone()), Stmt::Sync]);
        prop_assert_eq!(&simulate(&spawned).racy_words(), &base);
        let got = detect(&mut AstProgram(&spawned), Variant::Stint).report.racy_words();
        prop_assert_eq!(&got, &base);
    }
}

proptest! {
    // Each case runs 12 full parallel-online detections (4 worker counts ×
    // 3 steal seeds), so the case count is lower than the sweep above.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The differential battery for `--online-parallel`: racy intervals from
    /// the concurrent DePa-backed pipeline are identical to sequential STINT
    /// for every worker count and steal seed, and the rendered report is
    /// byte-identical across all of them.
    #[test]
    fn online_parallel_matches_sequential_stint(f in func_strategy(3)) {
        let sim = simulate(&f);
        prop_assume!(sim.strand_count() <= 250);
        let expected = detect(&mut AstProgram(&f), Variant::Stint).report.racy_words();
        prop_assert_eq!(&sim.racy_words(), &expected);
        let mut baseline: Option<String> = None;
        for workers in [1usize, 2, 4, 8] {
            for seed in [0u64, 0xDEAD_BEEF, 42] {
                let out = online_detect(&mut AstProgram(&f), &online_cfg(workers, seed))
                    .expect("online detection must not fail without faults");
                prop_assert!(out.degraded.is_none());
                prop_assert_eq!(
                    &out.merged.racy_words, &expected,
                    "workers={} seed={} diverged from sequential STINT", workers, seed
                );
                let render = out.merged.render();
                match &baseline {
                    None => baseline = Some(render),
                    Some(b) => prop_assert_eq!(
                        &render, b,
                        "render not byte-identical at workers={} seed={}", workers, seed
                    ),
                }
            }
        }
    }

    /// Witnessed parallel-online reports carry verifiable evidence: every
    /// merged region's witness passes the independent `WitnessChecker`
    /// against a sequentially recorded trace of the same program.
    #[test]
    fn online_witnesses_verify_against_recorded_trace(f in func_strategy(2)) {
        let sim = simulate(&f);
        prop_assume!(sim.strand_count() <= 250);
        prop_assume!(!sim.racy_words().is_empty());
        let mut cfg = online_cfg(2, 7);
        cfg.witnesses = true;
        let out = online_detect(&mut AstProgram(&f), &cfg).unwrap();
        prop_assert!(!out.merged.regions.is_empty());
        let pt = PortableTrace::record(&mut AstProgram(&f));
        let checker = WitnessChecker::new(&pt.reach).with_trace(&pt.trace);
        for r in &out.merged.regions {
            prop_assert!(r.witness.is_some(), "merged region lost its witness");
            let verdict = checker.check(r);
            prop_assert!(verdict.is_ok(), "witness rejected: {:?}", verdict);
        }
    }
}
