//! Space-accounting invariants for the byte gauges (ISSUE: tentpole
//! telemetry). Lives in its own test binary because the gauge registry is
//! process-global; the tests serialize on [`lock`].
//!
//! The contract under test: after an arbitrary workload, each structure's
//! gauge reads exactly the bytes the structure itself computes
//! (`heap_bytes()`), dropping the structure returns its gauge to zero, and
//! the high watermark survives the drop.

use std::sync::{Mutex, MutexGuard, OnceLock};
use stint_repro::obs;

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// `(current, high_water)` of a gauge by name; `(0, 0)` if never registered.
fn gauge(name: &str) -> (u64, u64) {
    obs::gauges_snapshot()
        .into_iter()
        .find(|(n, ..)| *n == name)
        .map(|(_, cur, hw)| (cur, hw))
        .unwrap_or((0, 0))
}

/// Deterministic xorshift64 — "randomized" workloads without a PRNG dep.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn gauges_match_structure_bytes_and_zero_on_drop() {
    let _g = lock();
    let _obs = obs::ScopedObs::enable(obs::ObsConfig::COUNTERS);
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);

    // Interval treap: random (partly overlapping, so merging and node
    // recycling both happen) writer intervals.
    {
        use stint_repro::{Interval, IntervalStore, StrandId, Treap};
        let mut t: Treap<StrandId> = Treap::new();
        for _ in 0..500 {
            let lo = rng.next() % 100_000;
            let len = 1 + rng.next() % 64;
            let who = StrandId((rng.next() % 8) as u32);
            t.insert_write(Interval::new(lo, lo + len, who), |_, _, _| {});
        }
        assert_eq!(gauge("ivtree.bytes").0, t.heap_bytes());
        assert_eq!(gauge("ivtree.nodes").0, t.len() as u64);
        assert!(gauge("ivtree.bytes").1 >= t.heap_bytes());
    }
    let (cur, hw) = gauge("ivtree.bytes");
    assert_eq!(cur, 0, "dropping the treap must return its bytes");
    assert!(hw > 0, "the watermark survives the drop");
    assert_eq!(gauge("ivtree.nodes").0, 0);

    // Order-maintenance list: random insert-after positions (relabel storms
    // included at this density).
    {
        use stint_om::OmList;
        let mut l = OmList::new();
        let mut nodes = vec![l.insert_first()];
        for _ in 0..400 {
            let at = nodes[(rng.next() as usize) % nodes.len()];
            nodes.push(l.insert_after(at));
        }
        assert_eq!(gauge("om.bytes").0, l.heap_bytes());
        assert_eq!(gauge("om.len").0, l.len() as u64);
    }
    assert_eq!(gauge("om.bytes").0, 0);
    assert_eq!(gauge("om.len").0, 0);

    // Word shadow: random word touches across a 1 Mi-word address space
    // (page-table growth and page allocation).
    {
        use stint_shadow::WordShadow;
        let mut s = WordShadow::new();
        for _ in 0..300 {
            s.entry_mut(rng.next() % (1 << 20));
        }
        assert_eq!(gauge("shadow.word_bytes").0, s.heap_bytes());
    }
    assert_eq!(gauge("shadow.word_bytes").0, 0);

    // Bit shadow: the gauge is exact at every extraction boundary (the
    // dirty list grows untracked mid-strand by design).
    {
        use stint_shadow::BitShadow;
        let mut b = BitShadow::new();
        let mut out = Vec::new();
        for _strand in 0..50 {
            for _ in 0..40 {
                let lo = rng.next() % (1 << 18);
                b.set_range(lo, lo + 1 + rng.next() % 32);
            }
            b.extract_and_clear(&mut out);
            assert_eq!(gauge("shadow.bit_bytes").0, b.heap_bytes());
        }
    }
    assert_eq!(gauge("shadow.bit_bytes").0, 0);
}

/// End-to-end: a full detection leaves nothing behind — every gauge back to
/// zero once the run's structures are dropped, with non-zero watermarks
/// proving they were tracked while alive.
#[test]
fn full_detection_returns_every_gauge_to_zero() {
    let _g = lock();
    let _obs = obs::ScopedObs::enable(obs::ObsConfig::COUNTERS);
    use stint_repro::suite::{Scale, Workload};
    for variant in [
        stint_repro::Variant::Stint,
        stint_repro::Variant::CompRts,
        stint_repro::Variant::Vanilla,
    ] {
        let mut w = Workload::by_name("sort", Scale::Test);
        let o = stint_repro::detect(&mut w, variant);
        assert!(o.report.is_race_free());
    }
    for (name, current, hw) in obs::gauges_snapshot() {
        assert_eq!(current, 0, "{name} still holds bytes after the runs");
        if name == "sporder.bytes" || name == "om.bytes" || name == "ivtree.bytes" {
            assert!(hw > 0, "{name} was never tracked during detection");
        }
    }
}
