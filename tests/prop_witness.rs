//! Property battery for the race-provenance plane: on random fork-join
//! programs, every witness the detector attaches must (a) pass the
//! independent [`WitnessChecker`] against the recorded trace, (b) agree
//! with the brute-force spdag oracle (the witnessed strands really are
//! parallel and every reported word really is racy), and (c) survive the
//! batch merge byte-identically for every shard count — while any tampered
//! witness is rejected.

use proptest::prelude::*;
use stint_repro::batchdet::{batch_detect, BatchConfig};
use stint_repro::{try_detect_with, Config, PortableTrace, Race, Variant, WitnessChecker};
use stint_spdag::simulate;

mod common;
use common::{func_strategy, AstProgram};

fn witness_cfg(shards: usize) -> BatchConfig {
    BatchConfig {
        shards,
        workers: 2,
        witnesses: true,
        ..BatchConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential detection with capture on: every kept race carries a
    /// witness, the checker re-validates it against an independently
    /// recorded trace — order bits against the frozen rank permutations
    /// (disagreeing orders *are* SP-parallelism), lineage against the spawn
    /// tree, spans against the concrete trace — and the brute-force spdag
    /// oracle confirms every word in the witnessed region is genuinely racy.
    /// (The oracle numbers strands in its own unfolding order, so the
    /// word-level check is the strand-id-agnostic point of agreement.)
    #[test]
    fn sequential_witnesses_verify_and_match_oracle(f in func_strategy(3)) {
        let sim = simulate(&f);
        prop_assume!(sim.strand_count() <= 250);
        let oracle: std::collections::BTreeSet<u64> =
            sim.racy_words().into_iter().collect();
        let mut cfg = Config::new(Variant::Stint);
        cfg.witnesses = true;
        let o = try_detect_with(&mut AstProgram(&f), cfg).expect("clean run");
        let pt = PortableTrace::record(&mut AstProgram(&f));
        let checker = WitnessChecker::new(&pt.reach).with_trace(&pt.trace);
        for race in o.report.races() {
            let w = race
                .witness
                .as_ref()
                .expect("capture on: every kept race must carry a witness");
            prop_assert!(checker.check(race).is_ok(),
                "checker rejected a live witness: {:?}",
                checker.check(race).err());
            prop_assert_eq!(w.prev.strand, race.prev);
            prop_assert_eq!(w.cur.strand, race.cur);
            for word in race.word_lo..race.word_hi {
                prop_assert!(oracle.contains(&word),
                    "witnessed word {word:#x} is not racy per the oracle");
            }
        }
    }

    /// The batch merge preserves witnesses for every shard count: each
    /// merged region's witness passes the checker, and the witnessed
    /// rendering is byte-identical across K — merge-time capture from the
    /// global span table cannot depend on the sharding.
    #[test]
    fn batch_witnesses_verify_for_every_k(f in func_strategy(3)) {
        let sim = simulate(&f);
        prop_assume!(sim.strand_count() <= 250);
        let oracle: std::collections::BTreeSet<u64> =
            sim.racy_words().into_iter().collect();
        let pt = PortableTrace::record(&mut AstProgram(&f));
        let checker = WitnessChecker::new(&pt.reach).with_trace(&pt.trace);
        let baseline = batch_detect(&pt, &witness_cfg(1))
            .expect("clean batch run")
            .merged
            .render();
        for k in [1usize, 2, 7, 16] {
            let out = batch_detect(&pt, &witness_cfg(k)).expect("clean batch run");
            prop_assert_eq!(&out.merged.render(), &baseline, "K={}", k);
            for race in &out.merged.regions {
                prop_assert!(race.witness.is_some(),
                    "K={}: merged region lost its witness", k);
                prop_assert!(checker.check(race).is_ok(),
                    "K={}: checker rejected a merged witness: {:?}",
                    k, checker.check(race).err());
                for word in race.word_lo..race.word_hi {
                    prop_assert!(oracle.contains(&word),
                        "K={}: witnessed word {word:#x} not racy per the oracle", k);
                }
            }
        }
    }

    /// Adversarial integrity: flipping the order evidence, truncating the
    /// lineage, or relocating the event span of a genuine witness must each
    /// be caught by the checker.
    #[test]
    fn tampered_witnesses_are_rejected(f in func_strategy(3)) {
        let pt = PortableTrace::record(&mut AstProgram(&f));
        let out = batch_detect(&pt, &witness_cfg(4)).expect("clean batch run");
        prop_assume!(!out.merged.regions.is_empty());
        let checker = WitnessChecker::new(&pt.reach).with_trace(&pt.trace);
        let genuine: &Race = &out.merged.regions[0];
        prop_assert!(checker.check(genuine).is_ok());

        // Order bits inverted: contradicts the frozen rank permutations.
        let mut r = genuine.clone();
        {
            let w = r.witness.as_mut().expect("witnessed");
            w.prev_before_eng = !w.prev_before_eng;
            w.prev_before_heb = !w.prev_before_heb;
        }
        prop_assert!(checker.check(&r).is_err(), "inverted order bits accepted");

        // Lineage chopped to just the endpoint: no longer reaches the
        // common spawn-tree ancestor.
        let mut r = genuine.clone();
        {
            let w = r.witness.as_mut().expect("witnessed");
            prop_assume!(w.prev_lineage.len() > 1);
            w.prev_lineage.truncate(1);
        }
        prop_assert!(checker.check(&r).is_err(), "truncated lineage accepted");

        // Event span relocated past the end of the trace: claims evidence
        // that does not exist.
        let mut r = genuine.clone();
        {
            let w = r.witness.as_mut().expect("witnessed");
            let n = pt.trace.len() as u64;
            w.cur.first_event = n + 10;
            w.cur.last_event = n + 20;
            w.cur.event = None;
        }
        prop_assert!(checker.check(&r).is_err(), "out-of-trace span accepted");
    }
}
