//! Hot-path differential property tests: the optimized detector paths (page
//! batching + hook filter, strand-local reachability memoization) must report
//! exactly the racy words the legacy paths report, for every variant, on
//! proptest-generated fork-join programs (with shrinking to a small witness
//! on failure).

use proptest::prelude::*;
use stint_repro::{detect_with, Config, HotPath, Variant};
use stint_spdag::simulate;

mod common;
use common::{func_strategy, AstProgram};

const VARIANTS: [Variant; 5] = [
    Variant::Vanilla,
    Variant::Compiler,
    Variant::CompRts,
    Variant::Stint,
    Variant::StintFlat,
];

/// Every knob combination that changes behavior. `gated_timing` only moves
/// clock reads, so it rides along at its default.
const HOT_CONFIGS: [HotPath; 3] = [
    HotPath {
        batched: true,
        reach_cache: false,
        gated_timing: true,
    },
    HotPath {
        batched: false,
        reach_cache: true,
        gated_timing: true,
    },
    HotPath {
        batched: true,
        reach_cache: true,
        gated_timing: true,
    },
];

fn racy_words(f: &stint_spdag::Func, v: Variant, hot: HotPath) -> Vec<u64> {
    let mut cfg = Config::new(v);
    cfg.hot = hot;
    detect_with(&mut AstProgram(f), cfg).report.racy_words()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Legacy and optimized paths agree (and match the oracle) for every
    /// variant and every hot-path knob combination.
    #[test]
    fn hot_paths_match_legacy(f in func_strategy(3)) {
        let sim = simulate(&f);
        prop_assume!(sim.strand_count() <= 250);
        let expected = sim.racy_words();
        for v in VARIANTS {
            let legacy = racy_words(&f, v, HotPath::LEGACY);
            prop_assert_eq!(&legacy, &expected, "legacy {} diverged from oracle", v);
            for hot in HOT_CONFIGS {
                let got = racy_words(&f, v, hot);
                prop_assert_eq!(
                    &got, &legacy,
                    "variant {} with {:?} diverged from legacy", v, hot
                );
            }
        }
    }
}
