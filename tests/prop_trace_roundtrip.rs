//! Round-trip property for the trace subsystem: recording a program,
//! serializing the trace, loading it back and replaying it must reproduce
//! the live run exactly — same race verdict, same racy words, and the same
//! `DetectorStats` field for field. The detector cannot tell a replayed
//! stream from the original execution.

use proptest::prelude::*;
use stint_repro::{detect, PortableTrace, RaceReport, StintDetector, Variant};

mod common;
use common::{func_strategy, AstProgram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn record_save_load_replay_reproduces_live_run(f in func_strategy(3)) {
        let live = detect(&mut AstProgram(&f), Variant::Stint);

        let pt = PortableTrace::record(&mut AstProgram(&f));
        let mut buf = Vec::new();
        pt.save(&mut buf).expect("save to Vec");
        let back = PortableTrace::load(&buf[..]).expect("load what we saved");
        prop_assert_eq!(&back.trace.events, &pt.trace.events);
        prop_assert_eq!(&back.reach, &pt.reach);

        let replayed = back.replay(StintDetector::new(RaceReport::default()));
        prop_assert_eq!(replayed.report.total, live.report.total);
        prop_assert_eq!(replayed.report.racy_words(), live.report.racy_words());
        // Every integer statistic matches: the replayed detector did exactly
        // the same access-history work as the live one (ah_time, a wall-clock
        // duration, is the one field legitimately allowed to differ).
        prop_assert_eq!(replayed.stats.fields(), live.stats.fields());

        // And replaying twice is deterministic.
        let again = back.replay(StintDetector::new(RaceReport::default()));
        prop_assert_eq!(again.report.racy_words(), replayed.report.racy_words());
        prop_assert_eq!(again.stats.fields(), replayed.stats.fields());
    }
}
