//! Round-trip property for the trace subsystem: recording a program,
//! serializing the trace, loading it back and replaying it must reproduce
//! the live run exactly — same race verdict, same racy words, and the same
//! `DetectorStats` field for field. The detector cannot tell a replayed
//! stream from the original execution.

use proptest::prelude::*;
use stint_repro::{detect, PortableTrace, RaceReport, StintDetector, Variant};

mod common;
use common::{func_strategy, AstProgram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn record_save_load_replay_reproduces_live_run(f in func_strategy(3)) {
        let live = detect(&mut AstProgram(&f), Variant::Stint);

        let pt = PortableTrace::record(&mut AstProgram(&f));
        let mut buf = Vec::new();
        pt.save(&mut buf).expect("save to Vec");
        let back = PortableTrace::load(&buf[..]).expect("load what we saved");
        prop_assert_eq!(&back.trace.events, &pt.trace.events);
        prop_assert_eq!(&back.reach, &pt.reach);

        let replayed = back.replay(StintDetector::new(RaceReport::default()));
        prop_assert_eq!(replayed.report.total, live.report.total);
        prop_assert_eq!(replayed.report.racy_words(), live.report.racy_words());
        // Every integer statistic matches: the replayed detector did exactly
        // the same access-history work as the live one (ah_time, a wall-clock
        // duration, is the one field legitimately allowed to differ).
        prop_assert_eq!(replayed.stats.fields(), live.stats.fields());

        // And replaying twice is deterministic.
        let again = back.replay(StintDetector::new(RaceReport::default()));
        prop_assert_eq!(again.report.racy_words(), replayed.report.racy_words());
        prop_assert_eq!(again.stats.fields(), replayed.stats.fields());
    }

    #[test]
    fn compressed_save_load_replay_reproduces_live_run(
        f in func_strategy(3),
        chunk_events in prop_oneof![Just(1usize), 2usize..64, Just(4096usize)],
    ) {
        let live = detect(&mut AstProgram(&f), Variant::Stint);

        // The compressed v2 codec must be a lossless transport: whatever
        // chunk size it was written with, decoding recovers the exact event
        // stream and reachability snapshot, so the replayed detector produces
        // a byte-identical report and identical integer stats.
        let pt = PortableTrace::record(&mut AstProgram(&f));
        let mut buf = Vec::new();
        pt.save_compressed(&mut buf, chunk_events).expect("compressed save to Vec");
        let back = PortableTrace::load_any(&buf[..]).expect("load what we saved");
        prop_assert_eq!(&back.trace.events, &pt.trace.events);
        prop_assert_eq!(&back.reach, &pt.reach);

        let replayed = back.replay(StintDetector::new(RaceReport::default()));
        prop_assert_eq!(replayed.report.total, live.report.total);
        prop_assert_eq!(replayed.report.racy_words(), live.report.racy_words());
        prop_assert_eq!(replayed.stats.fields(), live.stats.fields());

        // A v1 save of the decoded trace round-trips back to the original
        // text — the two encodings describe the same trace.
        let mut v1_orig = Vec::new();
        pt.save(&mut v1_orig).expect("v1 save");
        let mut v1_back = Vec::new();
        back.save(&mut v1_back).expect("v1 save of decoded trace");
        prop_assert_eq!(v1_orig, v1_back);
    }
}
