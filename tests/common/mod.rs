//! Shared glue for the workspace-level property tests: a proptest strategy
//! generating fork-join programs over a small word space, and the adapter
//! that replays a generated AST through a [`Cilk`] context.

use proptest::prelude::*;
use stint_repro::Cilk;
use stint_repro::CilkProgram;
use stint_spdag::{Access, Func, Stmt};

/// Proptest strategy for fork-join programs over a small word space.
pub fn func_strategy(depth: u32) -> BoxedStrategy<Func> {
    let access = (any::<bool>(), 0u64..40, 1u64..10, any::<bool>()).prop_map(
        |(write, word, len, coalesced)| Access {
            write,
            word,
            len,
            coalesced,
        },
    );
    let compute = proptest::collection::vec(access, 1..4).prop_map(Stmt::Compute);
    if depth == 0 {
        proptest::collection::vec(prop_oneof![compute, Just(Stmt::Sync)], 1..5)
            .prop_map(Func)
            .boxed()
    } else {
        let inner = func_strategy(depth - 1);
        let stmt = prop_oneof![
            4 => compute,
            1 => Just(Stmt::Sync),
            3 => inner.clone().prop_map(Stmt::Spawn),
            1 => inner.prop_map(Stmt::Call),
        ];
        proptest::collection::vec(stmt, 1..6).prop_map(Func).boxed()
    }
}

pub struct AstProgram<'a>(pub &'a Func);

fn walk<C: Cilk>(f: &Func, ctx: &mut C) {
    for stmt in &f.0 {
        match stmt {
            Stmt::Compute(accs) => {
                for a in accs {
                    let addr = (a.word * 4) as usize;
                    let bytes = (a.len * 4) as usize;
                    match (a.write, a.coalesced) {
                        (true, true) => ctx.store_range(addr, bytes),
                        (true, false) => ctx.store(addr, bytes),
                        (false, true) => ctx.load_range(addr, bytes),
                        (false, false) => ctx.load(addr, bytes),
                    }
                }
            }
            Stmt::Spawn(g) => ctx.spawn(|c| walk(g, c)),
            Stmt::Sync => ctx.sync(),
            Stmt::Call(g) => ctx.call(|c| walk(g, c)),
        }
    }
}

impl CilkProgram for AstProgram<'_> {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        walk(self.0, ctx);
    }
}
