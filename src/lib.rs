//! Umbrella crate for the STINT reproduction workspace: re-exports the
//! public surface used by the examples and integration tests.
//!
//! * [`stint`] (re-exported at the root) — the race detector itself;
//! * [`suite`] — the seven instrumented benchmarks of the paper;
//! * [`cilkrt`] — the work-stealing runtime for running kernels in parallel;
//! * [`serve`] — the detection-as-a-service daemon (framed protocol,
//!   concurrent budgeted sessions, backpressure, fault-tolerant drain);
//! * [`grid`] — the 2-D grid (wavefront/pipeline) detector built on the same
//!   access history (the paper's Section 7 generalization).

pub use stint::*;

pub use stint_batchdet as batchdet;
pub use stint_cilkrt as cilkrt;
pub use stint_grid as grid;
pub use stint_serve as serve;
pub use stint_suite as suite;
