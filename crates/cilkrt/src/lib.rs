//! A small Cilk-style work-stealing runtime.
//!
//! The paper's benchmarks are Cilk programs; their *baseline* is ordinary
//! parallel execution under the Cilk work-stealing scheduler (detection
//! itself is sequential). This crate provides that substrate: a thread pool
//! with one Chase–Lev deque per worker (via `crossbeam-deque`), a global
//! injector for external submissions, and the classic fork-join primitive
//! [`ThreadPool::join`] — the moral equivalent of `spawn`/`sync` — plus
//! conveniences built on it ([`ThreadPool::for_each_chunk`]).
//!
//! The design follows the textbook rayon/Cilk recipe:
//!
//! * `join(a, b)` pushes `b` onto the calling worker's deque as a *stack
//!   job* (it lives in the caller's frame), runs `a` inline, then pops `b`
//!   back — executing it inline in the common un-stolen case. If `b` was
//!   stolen, the caller *helps*: it executes other available work while
//!   waiting for the thief to finish, so blocked frames never idle a core.
//! * Idle workers steal: first from the global injector, then from victims
//!   in round-robin order, backing off exponentially to a short timed sleep
//!   when the system is quiet.
//! * Panics inside either closure are captured and propagated to the caller
//!   of `join`, preserving the serial-elision semantics.
//!
//! This runtime exists so the examples can demonstrate that the benchmark
//! kernels really are parallel programs (and to measure parallel speedup as
//! a sanity check); the race detectors never use it.
//!
//! # Graceful degradation
//!
//! Worker-thread failure is survivable, not fatal. If spawning a worker
//! fails (a real `std::thread::Builder::spawn` error, or a
//! `worker-spawn-fail` fault plan), the pool simply runs with fewer workers
//! — ultimately zero, in which case [`ThreadPool::join`] and
//! [`ThreadPool::install`] execute sequentially on the caller. Workers that
//! die after startup (`worker-panic` fault) are tracked by a live-worker
//! count; once none remain, external submissions are drained and executed
//! inline by the waiting caller, so nothing hangs and nothing is lost. Each
//! degradation is logged to stderr once per process.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, UnsafeCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A type-erased pointer to a job plus its execute function.
#[derive(Clone, Copy)]
struct JobRef {
    ptr: *mut (),
    exec: unsafe fn(*mut ()),
}

// SAFETY: a JobRef is only created for jobs whose closures are Send, and is
// executed exactly once on exactly one thread.
unsafe impl Send for JobRef {}

impl JobRef {
    #[inline]
    unsafe fn execute(self) {
        (self.exec)(self.ptr)
    }
}

/// A job allocated in the frame of the `join` that spawned it.
struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
}

impl<F: FnOnce() -> R + Send, R: Send> StackJob<F, R> {
    fn new(f: F) -> Self {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            ptr: self as *const Self as *mut (),
            exec: Self::execute,
        }
    }

    unsafe fn execute(ptr: *mut ()) {
        let this = &*(ptr as *const Self);
        let f = (*this.f.get()).take().expect("job executed twice");
        let res = panic::catch_unwind(AssertUnwindSafe(f));
        *this.result.get() = Some(res);
        this.done.store(true, Ordering::Release);
    }

    unsafe fn take_result(&self) -> R {
        debug_assert!(self.done.load(Ordering::Acquire));
        match (*self.result.get()).take().expect("result missing") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// A heap job used for external (non-worker) submissions.
struct HeapJob<F: FnOnce() + Send> {
    f: F,
}

impl<F: FnOnce() + Send> HeapJob<F> {
    fn into_job_ref(self: Box<Self>) -> JobRef {
        OBS_JOB_BYTES.add(std::mem::size_of::<Self>() as u64);
        JobRef {
            ptr: Box::into_raw(self) as *mut (),
            exec: Self::execute,
        }
    }

    unsafe fn execute(ptr: *mut ()) {
        let this = Box::from_raw(ptr as *mut Self);
        OBS_JOB_BYTES.sub(std::mem::size_of::<Self>() as u64);
        (this.f)();
    }
}

struct Shared {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    shutdown: AtomicBool,
    /// Workers currently running their main loop. Decremented on any exit,
    /// including unwinds, via a drop guard in `worker_main`; `install` falls
    /// back to draining the injector inline when this reaches zero.
    alive: AtomicUsize,
    /// Count of sleeping workers plus the condvar they sleep on.
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    fn notify(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _g = self.lock.lock();
            self.wake.notify_all();
        }
    }
}

// Observability (no-ops costing one relaxed load while `stint-obs` is
// disabled). `cilkrt.spawns` counts fork points (child pushed to a deque),
// `cilkrt.steals` successful steals from the injector or a victim deque.
static OBS_SPAWNS: stint_obs::Counter = stint_obs::Counter::new("cilkrt.spawns");
static OBS_STEALS: stint_obs::Counter = stint_obs::Counter::new("cilkrt.steals");
static OBS_JOBS_INJECTED: stint_obs::Counter = stint_obs::Counter::new("cilkrt.jobs_injected");
static OBS_WORKERS_SPAWNED: stint_obs::Counter = stint_obs::Counter::new("cilkrt.workers_spawned");
static OBS_DEGRADATIONS: stint_obs::Counter = stint_obs::Counter::new("cilkrt.degradations");
/// Live heap bytes held by injected [`HeapJob`]s (added at boxing, returned
/// when the job executes and its box is reclaimed).
static OBS_JOB_BYTES: stint_obs::Gauge = stint_obs::Gauge::new("cilkrt.job_bytes");
/// Fixed footprint of live pools: shared state, stealer table and join
/// handles (the deques' ring buffers are owned by worker threads and not
/// visible here — this gauge is the pool-side estimate).
static OBS_POOL_BYTES: stint_obs::Gauge = stint_obs::Gauge::new("cilkrt.pool_bytes");

/// Log a degradation event to stderr, once per process (repeat events are
/// counted silently — the first report tells the operator the run is
/// degraded; per-event spam would drown the actual output; the obs counter
/// keeps the exact count).
fn log_degradation_once(what: &str) {
    OBS_DEGRADATIONS.incr();
    stint_obs::event("fault.cilkrt_degraded");
    static LOGGED: AtomicBool = AtomicBool::new(false);
    if !LOGGED.swap(true, Ordering::Relaxed) {
        eprintln!("cilkrt: degraded: {what}");
    }
}

thread_local! {
    /// (pool shared ptr, worker index) when the current thread is a worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

struct WorkerCtx {
    shared: Arc<Shared>,
    index: usize,
    deque: Deque<JobRef>,
    /// Round-robin steal cursor.
    next_victim: Cell<usize>,
}

thread_local! {
    static CTX: UnsafeCell<Option<WorkerCtx>> = const { UnsafeCell::new(None) };
}

/// A work-stealing thread pool with Cilk-style fork-join.
///
/// ```
/// use stint_cilkrt::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let (a, b) = pool.join(|| 2 + 2, || "forty-two");
/// assert_eq!((a, b), (4, "forty-two"));
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Bytes last reported to the `cilkrt.pool_bytes` gauge.
    owned_bytes: u64,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    ///
    /// Spawn failures are not fatal: the pool runs with however many workers
    /// came up, down to zero (fully sequential execution). Fault plans are
    /// sampled here, at construction.
    pub fn new(threads: usize) -> Self {
        Self::with_seed(threads, 0)
    }

    /// As [`ThreadPool::new`], but perturbing the steal schedule: `seed`
    /// picks each worker's initial round-robin victim. Victim choice never
    /// affects *what* is computed — only which worker runs which job — so
    /// two pools with different seeds are a cheap way to exercise
    /// schedule-independence claims (the batch detector's metamorphic tests
    /// replay under several seeds and require byte-identical reports).
    pub fn with_seed(threads: usize, seed: u64) -> Self {
        let threads = threads.max(1);
        let deques: Vec<Deque<JobRef>> = (0..threads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            alive: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            wake: Condvar::new(),
        });
        let faults = stint_faults::is_active();
        let mut handles = Vec::with_capacity(threads);
        let mut failed = 0usize;
        for (i, deque) in deques.into_iter().enumerate() {
            // Fault plans are sampled now; the worker closure must not
            // consult the global plan later (it may be gone by then).
            if faults && stint_faults::worker_spawn_fails(i) {
                failed += 1;
                continue;
            }
            let panic_at_start = faults && stint_faults::worker_panics(i);
            let shared = Arc::clone(&shared);
            // Each worker's first steal victim: the next worker by default,
            // shuffled per-worker when a seed is given. The steal loop wraps
            // modulo the worker count, so any usize works.
            let start_victim = if seed == 0 {
                i + 1
            } else {
                splitmix64(seed ^ (i as u64 + 1)) as usize % threads
            };
            // A dropped deque's Stealer just reports Empty, so the stealers
            // registered for failed workers stay safe to probe.
            match std::thread::Builder::new()
                .name(format!("cilkrt-worker-{i}"))
                .spawn(move || worker_main(shared, i, deque, panic_at_start, start_victim))
            {
                Ok(h) => handles.push(h),
                Err(_) => failed += 1,
            }
        }
        OBS_WORKERS_SPAWNED.add(handles.len() as u64);
        if failed > 0 {
            log_degradation_once(&format!(
                "{failed} of {threads} workers failed to spawn; continuing with {}{}",
                handles.len(),
                if handles.is_empty() {
                    " (sequential execution)"
                } else {
                    ""
                }
            ));
        }
        let mut pool = ThreadPool {
            shared,
            handles,
            owned_bytes: 0,
        };
        pool.note_mem();
        pool
    }

    /// Estimated heap bytes held by the pool itself: the shared block, the
    /// stealer table and the worker join handles.
    pub fn heap_bytes(&self) -> u64 {
        (std::mem::size_of::<Shared>()
            + self.shared.stealers.capacity() * std::mem::size_of::<Stealer<JobRef>>()
            + self.handles.capacity() * std::mem::size_of::<JoinHandle<()>>()) as u64
    }

    /// Publish the pool's footprint to the `cilkrt.pool_bytes` gauge (no-op
    /// while obs is disabled).
    fn note_mem(&mut self) {
        let bytes = self.heap_bytes();
        OBS_POOL_BYTES.reconcile(&mut self.owned_bytes, bytes);
    }

    /// Pool with one worker per available hardware thread.
    pub fn with_default_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(n)
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Run `f` inside the pool and return its result. If called from one of
    /// this pool's workers, runs inline.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        if on_this_pool(&self.shared) {
            return f();
        }
        if self.handles.is_empty() {
            // Degraded pool with no workers at all: sequential execution.
            return f();
        }
        let job = StackJob::new(f);
        OBS_JOBS_INJECTED.incr();
        self.shared.injector.push(job.as_job_ref());
        self.shared.notify();
        // Wait without helping: the caller is not a worker.
        let mut spins = 0u32;
        while !job.done.load(Ordering::Acquire) {
            if self.shared.alive.load(Ordering::Acquire) == 0 {
                // Every worker died (or none started yet). Injected jobs can
                // only be waiting in the injector — a worker that popped one
                // executes it immediately and `StackJob::execute` survives
                // panics — so draining the injector inline is complete: our
                // job either runs here or `done` was already set.
                loop {
                    match self.shared.injector.steal() {
                        crossbeam::deque::Steal::Success(j) => unsafe { j.execute() },
                        crossbeam::deque::Steal::Retry => continue,
                        crossbeam::deque::Steal::Empty => break,
                    }
                }
                if job.done.load(Ordering::Acquire) {
                    break;
                }
                if self.shared.alive.load(Ordering::Acquire) == 0 {
                    // Drained and still no workers: the job is either done
                    // (checked next iteration) or being finished inline by
                    // another draining thread — yield until it lands.
                    std::thread::yield_now();
                    continue;
                }
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: done is set, result is present, we are the only consumer.
        unsafe { job.take_result() }
    }

    /// Cilk-style fork-join: potentially run `a` and `b` in parallel,
    /// returning both results. Must be cheap to call recursively.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if on_this_pool(&self.shared) {
            join_inner(a, b)
        } else if self.handles.is_empty() {
            // Degraded pool with no workers: serial elision.
            (a(), b())
        } else {
            self.install(move || join_inner(a, b))
        }
    }

    /// Fire-and-forget: run `f` on some worker at some point. There is no
    /// join handle; use [`ThreadPool::join`]/[`ThreadPool::install`] for
    /// structured parallelism.
    pub fn spawn_detached(&self, f: impl FnOnce() + Send + 'static) {
        let job = Box::new(HeapJob { f });
        OBS_JOBS_INJECTED.incr();
        self.shared.injector.push(job.into_job_ref());
        self.shared.notify();
    }

    /// Apply `f` to disjoint chunks of `data` of at most `chunk` elements in
    /// parallel (recursive binary splitting over `join`). `f` receives the
    /// chunk and its starting offset.
    pub fn for_each_chunk<T: Send, F>(&self, data: &mut [T], chunk: usize, f: &F)
    where
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.install(|| for_each_chunk_inner(self, data, chunk, 0, f));
    }
}

fn for_each_chunk_inner<T: Send, F>(
    pool: &ThreadPool,
    data: &mut [T],
    chunk: usize,
    offset: usize,
    f: &F,
) where
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.len() <= chunk.max(1) {
        f(offset, data);
        return;
    }
    let mid = data.len() / 2;
    let (lo, hi) = data.split_at_mut(mid);
    pool.join(
        || for_each_chunk_inner(pool, lo, chunk, offset, f),
        || for_each_chunk_inner(pool, hi, chunk, offset + mid, f),
    );
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.lock.lock();
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        OBS_POOL_BYTES.reconcile(&mut self.owned_bytes, 0);
    }
}

fn on_this_pool(shared: &Arc<Shared>) -> bool {
    WORKER.with(|w| match w.get() {
        Some((pool_id, _)) => pool_id == Arc::as_ptr(shared) as usize,
        None => false,
    })
}

/// The body of `join` when running on a worker thread.
fn join_inner<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    CTX.with(|slot| {
        // SAFETY: only this thread accesses its own ctx; jobs executed below
        // re-enter CTX.with but only through &WorkerCtx methods on fields
        // that are individually interior-mutable or externally synchronized.
        let ctx = match unsafe { (*slot.get()).as_ref() } {
            Some(ctx) => ctx,
            // Not a worker thread: this happens when a waiting `install`
            // drains a queued join job inline because every worker died.
            // Serial elision is always a correct execution of fork-join.
            None => {
                let ra = a();
                let rb = b();
                return (ra, rb);
            }
        };
        let bjob = StackJob::new(b);
        OBS_SPAWNS.incr();
        ctx.deque.push(bjob.as_job_ref());
        ctx.shared.notify();
        let ra = a();
        // Try to take b back; if stolen, help with other work until done.
        loop {
            if bjob.done.load(Ordering::Acquire) {
                break;
            }
            match ctx.deque.pop() {
                Some(job) => {
                    if job.ptr == &bjob as *const _ as *mut () {
                        // SAFETY: un-stolen; execute inline exactly once.
                        unsafe { job.execute() };
                        break;
                    } else {
                        // A deeper frame's job surfaced (b was stolen):
                        // execute it, it cannot be b.
                        unsafe { job.execute() };
                    }
                }
                None => {
                    // b was stolen and is in flight: help elsewhere.
                    if let Some(job) = steal_work(ctx) {
                        unsafe { job.execute() };
                    } else {
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                }
            }
        }
        let rb = unsafe { bjob.take_result() };
        (ra, rb)
    })
}

fn steal_work(ctx: &WorkerCtx) -> Option<JobRef> {
    // Injector first (external work), then victims round-robin.
    loop {
        match ctx.shared.injector.steal() {
            crossbeam::deque::Steal::Success(j) => {
                OBS_STEALS.incr();
                return Some(j);
            }
            crossbeam::deque::Steal::Empty => break,
            crossbeam::deque::Steal::Retry => continue,
        }
    }
    let n = ctx.shared.stealers.len();
    let start = ctx.next_victim.get();
    for k in 0..n {
        let v = (start + k) % n;
        if v == ctx.index {
            continue;
        }
        loop {
            match ctx.shared.stealers[v].steal() {
                crossbeam::deque::Steal::Success(j) => {
                    OBS_STEALS.incr();
                    ctx.next_victim.set(v);
                    return Some(j);
                }
                crossbeam::deque::Steal::Empty => break,
                crossbeam::deque::Steal::Retry => continue,
            }
        }
    }
    None
}

/// Decrements the live-worker count however the worker exits — normal
/// shutdown or an unwinding panic — so `install`'s alive==0 fallback and the
/// degradation log always see the truth.
struct AliveGuard {
    shared: Arc<Shared>,
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        if self.shared.alive.fetch_sub(1, Ordering::AcqRel) == 1
            && !self.shared.shutdown.load(Ordering::Acquire)
        {
            log_degradation_once("last live worker exited; callers execute inline");
        }
    }
}

/// SplitMix64 — the standard 64-bit avalanche mix, used only to scatter
/// seeded steal-schedule start victims.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn worker_main(
    shared: Arc<Shared>,
    index: usize,
    deque: Deque<JobRef>,
    panic_at_start: bool,
    start_victim: usize,
) {
    shared.alive.fetch_add(1, Ordering::AcqRel);
    let _alive = AliveGuard {
        shared: Arc::clone(&shared),
    };
    if panic_at_start {
        // `worker-panic` fault: the thread dies right after announcing
        // itself, exercising the all-workers-dead paths.
        panic!("injected worker panic (fault plan worker-panic)");
    }
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&shared) as usize, index))));
    CTX.with(|slot| unsafe {
        *slot.get() = Some(WorkerCtx {
            shared: Arc::clone(&shared),
            index,
            deque,
            next_victim: Cell::new(start_victim),
        });
    });
    let mut idle_spins = 0u32;
    loop {
        let job = CTX.with(|slot| {
            let ctx = unsafe { (*slot.get()).as_ref() }.expect("worker ctx missing");
            ctx.deque.pop().or_else(|| steal_work(ctx))
        });
        match job {
            Some(j) => {
                idle_spins = 0;
                unsafe { j.execute() };
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                idle_spins += 1;
                if idle_spins < 64 {
                    std::hint::spin_loop();
                } else if idle_spins < 128 {
                    std::thread::yield_now();
                } else {
                    // Timed sleep: a notify wakes us early; the timeout
                    // bounds the latency of any missed wakeup.
                    shared.sleepers.fetch_add(1, Ordering::Relaxed);
                    let mut g = shared.lock.lock();
                    shared
                        .wake
                        .wait_for(&mut g, std::time::Duration::from_millis(1));
                    drop(g);
                    shared.sleepers.fetch_sub(1, Ordering::Relaxed);
                    idle_spins = 64;
                }
            }
        }
    }
    CTX.with(|slot| unsafe { *slot.get() = None });
    WORKER.with(|w| w.set(None));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn fib(pool: &ThreadPool, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        if n < 12 {
            return fib_seq(n);
        }
        let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
        a + b
    }
    fn fib_seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_seq(n - 1) + fib_seq(n - 2)
        }
    }

    #[test]
    fn join_computes_correct_results() {
        let pool = ThreadPool::new(4);
        assert_eq!(fib(&pool, 24), fib_seq(24));
    }

    #[test]
    fn install_from_external_thread() {
        let pool = ThreadPool::new(2);
        let r = pool.install(|| 21 * 2);
        assert_eq!(r, 42);
    }

    #[test]
    fn nested_joins_deeply() {
        let pool = ThreadPool::new(3);
        fn sum(pool: &ThreadPool, lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = pool.join(|| sum(pool, lo, mid), || sum(pool, mid, hi));
            a + b
        }
        let n = 100_000;
        assert_eq!(sum(&pool, 0, n), n * (n - 1) / 2);
    }

    #[test]
    fn for_each_chunk_touches_every_element_once() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u64; 10_000];
        pool.for_each_chunk(&mut data, 128, &|offset, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x += (offset + i) as u64;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn work_actually_distributes() {
        // With enough coarse tasks, more than one worker should run them.
        let pool = ThreadPool::new(4);
        let seen = AtomicU64::new(0);
        pool.install(|| {
            fn go(pool: &ThreadPool, depth: u32, seen: &AtomicU64) {
                WORKER.with(|w| {
                    let (_, idx) = w.get().unwrap();
                    seen.fetch_or(1 << idx, Ordering::Relaxed);
                });
                if depth == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    return;
                }
                pool.join(|| go(pool, depth - 1, seen), || go(pool, depth - 1, seen));
            }
            go(&pool, 5, &seen);
        });
        assert!(
            seen.load(Ordering::Relaxed).count_ones() >= 2,
            "work never left one worker"
        );
    }

    #[test]
    fn panics_propagate_to_join_caller() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> i32 { panic!("boom") });
        }));
        assert!(result.is_err());
        // Pool survives and stays usable.
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn spawn_detached_runs() {
        let pool = ThreadPool::new(2);
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        pool.spawn_detached(move || f2.store(true, Ordering::Release));
        let t0 = std::time::Instant::now();
        while !flag.load(Ordering::Acquire) {
            assert!(t0.elapsed().as_secs() < 5, "detached job never ran");
            std::thread::yield_now();
        }
    }

    #[test]
    fn pool_drop_terminates_workers() {
        let pool = ThreadPool::new(8);
        let _ = pool.install(|| 1);
        drop(pool); // must not hang
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        assert_eq!(fib(&pool, 18), fib_seq(18));
    }
}
