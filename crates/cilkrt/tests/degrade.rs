//! Worker-failure degradation: the pool must stay correct (and must not
//! hang) with fewer workers than requested, down to none at all.
//!
//! These tests live in their own binary because the fault plan is
//! process-global: the lib unit tests must never observe it. Within this
//! binary, every test serializes on [`lock`].

use std::sync::{Mutex, MutexGuard, OnceLock};
use stint_cilkrt::ThreadPool;
use stint_faults::{FaultPlan, ScopedPlan};

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn fib(pool: &ThreadPool, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    if n < 10 {
        return fib_seq(n);
    }
    let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
    a + b
}

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

#[test]
fn partial_spawn_failure_runs_with_fewer_workers() {
    let _g = lock();
    let pool = {
        let _plan = ScopedPlan::install(FaultPlan {
            worker_spawn_fail_from: Some(1),
            ..Default::default()
        });
        ThreadPool::new(4)
    };
    assert_eq!(pool.threads(), 1, "workers 1..4 must have failed to spawn");
    assert_eq!(fib(&pool, 20), fib_seq(20));
    assert_eq!(pool.install(|| 7), 7);
}

#[test]
fn total_spawn_failure_degrades_to_sequential() {
    let _g = lock();
    let pool = {
        let _plan = ScopedPlan::install(FaultPlan {
            worker_spawn_fail_from: Some(0),
            ..Default::default()
        });
        ThreadPool::new(4)
    };
    assert_eq!(pool.threads(), 0, "no worker may spawn");
    // join, install and for_each_chunk all run inline and stay correct.
    assert_eq!(fib(&pool, 18), fib_seq(18));
    assert_eq!(pool.install(|| 21 * 2), 42);
    let mut data = vec![0u64; 1000];
    pool.for_each_chunk(&mut data, 64, &|offset, chunk| {
        for (i, x) in chunk.iter_mut().enumerate() {
            *x = (offset + i) as u64;
        }
    });
    for (i, &x) in data.iter().enumerate() {
        assert_eq!(x, i as u64);
    }
    drop(pool); // must not hang
}

#[test]
fn workers_dying_at_startup_do_not_hang_install() {
    let _g = lock();
    let pool = {
        let _plan = ScopedPlan::install(FaultPlan {
            worker_panic_from: Some(0),
            ..Default::default()
        });
        ThreadPool::new(3)
    };
    assert_eq!(pool.threads(), 3, "threads spawn, then die");
    // Whether a worker takes the job before dying is racy in principle, but
    // with every worker panicking at startup the waiting caller must drain
    // and execute it inline — never hang, never lose the result.
    assert_eq!(pool.install(|| 6 * 7), 42);
    assert_eq!(fib(&pool, 16), fib_seq(16));
    drop(pool); // must not hang
}

#[test]
fn mixed_spawn_failure_and_startup_death() {
    let _g = lock();
    let pool = {
        let _plan = ScopedPlan::install(FaultPlan {
            worker_spawn_fail_from: Some(2),
            worker_panic_from: Some(1),
            ..Default::default()
        });
        ThreadPool::new(4)
    };
    // Worker 0 lives, worker 1 dies at startup, workers 2-3 never spawn.
    assert_eq!(pool.threads(), 2);
    assert_eq!(fib(&pool, 18), fib_seq(18));
    drop(pool);
}
