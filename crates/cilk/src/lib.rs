//! Cilk-style fork-join substrate.
//!
//! The paper's tool instruments Cilk programs with the Tapir/OpenCilk
//! compiler: every load/store gets a `__load_hook`/`__store_hook` call, and
//! accesses the compiler can prove contiguous get a single
//! `__coalesced_load_hook`/`__coalesced_store_hook` call (compile-time
//! coalescing, Section 3.1). Rust has no such pass to modify, so this crate
//! *simulates the instrumented binary*: programs are written against the
//! [`Cilk`] trait, calling [`Cilk::spawn`]/[`Cilk::sync`] for parallel
//! control and the four hook methods for memory accesses. The hook stream an
//! executor observes is exactly the stream the paper's instrumented binaries
//! produce.
//!
//! Two executors interpret that trait:
//!
//! * [`BaseExec`] — runs the program with all hooks compiled to nothing
//!   (the paper's *baseline*; generic dispatch means the no-op hooks inline
//!   away);
//! * [`Executor`] — the *sequential depth-first* executor used for
//!   detection: it runs spawned children immediately (Cilk's serial
//!   elision), maintains SP-Order reachability across spawn/sync, tracks the
//!   current strand, and forwards hooks to a pluggable [`Detector`].
//!
//! Detection is sequential by design — the paper's STINT is a sequential
//! race detector (parallelizing it is listed as future work).

use stint_om::OrderList;
use stint_sporder::{ReachMaint, Reachability, SpOrder, SpOrderImpl, StrandId};

/// The instrumented-program interface: parallel control plus memory hooks.
///
/// Programs are generic over `C: Cilk`, so hook calls statically dispatch
/// and inline into whichever executor runs them.
pub trait Cilk: Sized {
    /// Spawn `f`: it is allowed to run in parallel with the continuation of
    /// the caller, and joins at the enclosing function's next [`Cilk::sync`]
    /// (or at its implicit sync on return). The sequential executors run `f`
    /// immediately (depth-first), matching Cilk's serial elision.
    fn spawn(&mut self, f: impl FnOnce(&mut Self));

    /// Wait for all children spawned by the current function since the
    /// previous sync.
    fn sync(&mut self);

    /// A serial function call with its own sync scope: a Cilk function
    /// implicitly syncs its children before returning. Use this when a
    /// helper that spawns is called *without* being spawned itself.
    fn call(&mut self, f: impl FnOnce(&mut Self)) {
        f(self);
        self.sync(); // correct only for executors without call frames
    }

    /// Plain load instrumentation: the program read `bytes` bytes at `addr`.
    fn load(&mut self, addr: usize, bytes: usize);
    /// Plain store instrumentation: the program wrote `bytes` bytes at `addr`.
    fn store(&mut self, addr: usize, bytes: usize);

    /// Compiler-coalesced load: the compiler proved the strand reads the
    /// whole contiguous range `[addr, addr+bytes)` (Algorithm 1 in the
    /// paper). Executors modelling the *unmodified* compiler may treat this
    /// like per-word plain loads.
    fn load_range(&mut self, addr: usize, bytes: usize) {
        self.load(addr, bytes)
    }
    /// Compiler-coalesced store; see [`Cilk::load_range`].
    fn store_range(&mut self, addr: usize, bytes: usize) {
        self.store(addr, bytes)
    }

    /// Allocator integration: the program is about to free `[addr,
    /// addr+bytes)`. Detectors clear the region's access history so that a
    /// logically parallel strand reusing the same heap addresses is not
    /// reported as racing with accesses to the *previous* allocation (the
    /// same reason production race detectors intercept `free`/`munmap`).
    fn free(&mut self, addr: usize, bytes: usize) {
        let _ = (addr, bytes);
    }
}

/// A program that can be executed under any [`Cilk`] executor.
pub trait CilkProgram {
    /// Execute the program, issuing parallel control and memory hooks on
    /// `ctx`. Programs may mutate their own state (they run on real data);
    /// they must behave deterministically so that repeated runs under
    /// different executors observe the same logical access stream.
    fn run<C: Cilk>(&mut self, ctx: &mut C);
}

/// Convert a byte range into the paper's 4-byte shadow-word range
/// `[start, end)` (end exclusive). Zero-byte accesses yield empty ranges.
#[inline]
pub fn word_range(addr: usize, bytes: usize) -> (u64, u64) {
    if bytes == 0 {
        let w = (addr >> 2) as u64;
        return (w, w);
    }
    ((addr >> 2) as u64, ((addr + bytes + 3) >> 2) as u64)
}

/// Observer of the instrumented execution: receives every hook with the
/// current strand, and a notification whenever a strand ends (which is where
/// runtime coalescing flushes).
///
/// `reach` grants O(1) `series`/`parallel`/`left_of` queries about any
/// strands observed so far.
/// The reachability component is pluggable (`R`): the fork-join executor
/// uses SP-Order, while `stint-grid` drives the same detectors with a
/// coordinate-based 2-D reachability (the paper's §7 generalization).
pub trait Detector<R: Reachability = SpOrder> {
    fn load(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R);
    fn store(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R);
    /// Compiler-coalesced load hook. Default: forward to [`Detector::load`].
    fn load_range(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R) {
        self.load(s, addr, bytes, reach)
    }
    /// Compiler-coalesced store hook. Default: forward to [`Detector::store`].
    fn store_range(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R) {
        self.store(s, addr, bytes, reach)
    }
    /// The program frees `[addr, addr+bytes)` while `s` executes. Clear the
    /// region's recorded access history (see [`Cilk::free`]). Default: no-op.
    fn free(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R) {
        let _ = (s, addr, bytes, reach);
    }
    /// The strand `s` has ended (a spawn, sync or return follows). All of its
    /// accesses have been delivered.
    fn strand_end(&mut self, s: StrandId, reach: &R);
    /// The computation has ended; `s` is the final strand.
    fn finish(&mut self, s: StrandId, reach: &R) {
        self.strand_end(s, reach);
    }
    /// The first structured failure the detector recorded, if any. A failed
    /// detector has gone *dead*: it stopped extending its access history at
    /// the failure point, so its report is sound (no false races) but only
    /// complete up to that point. Default: never fails.
    fn failure(&self) -> Option<stint_faults::DetectorError> {
        None
    }
}

/// Detector that ignores everything — running [`Executor`] with it measures
/// the pure *reachability* overhead (the `reach.` column of Figure 1).
#[derive(Default, Clone, Copy, Debug)]
pub struct NopDetector;

impl<R: Reachability> Detector<R> for NopDetector {
    #[inline]
    fn load(&mut self, _: StrandId, _: usize, _: usize, _: &R) {}
    #[inline]
    fn store(&mut self, _: StrandId, _: usize, _: usize, _: &R) {}
    #[inline]
    fn strand_end(&mut self, _: StrandId, _: &R) {}
}

/// Baseline executor: no reachability, no detection, hooks are no-ops that
/// inline away. Measures the program's uninstrumented serial running time.
#[derive(Default, Clone, Copy, Debug)]
pub struct BaseExec;

impl Cilk for BaseExec {
    #[inline]
    fn spawn(&mut self, f: impl FnOnce(&mut Self)) {
        f(self)
    }
    #[inline]
    fn sync(&mut self) {}
    #[inline]
    fn call(&mut self, f: impl FnOnce(&mut Self)) {
        f(self)
    }
    #[inline]
    fn load(&mut self, _: usize, _: usize) {}
    #[inline]
    fn store(&mut self, _: usize, _: usize) {}
    #[inline]
    fn load_range(&mut self, _: usize, _: usize) {}
    #[inline]
    fn store_range(&mut self, _: usize, _: usize) {}
    #[inline]
    fn free(&mut self, _: usize, _: usize) {}
}

/// Run `p` under the baseline executor and return its wall-clock time.
pub fn run_baseline<P: CilkProgram>(p: &mut P) -> std::time::Duration {
    let start = std::time::Instant::now();
    p.run(&mut BaseExec);
    start.elapsed()
}

struct Frame {
    /// The sync strand of the currently open sync block, created lazily at
    /// the block's first spawn (see `stint-sporder` docs for why it must be
    /// created *before* the first child).
    sync_strand: Option<StrandId>,
}

/// Counters maintained by the sequential executor.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecCounters {
    pub spawns: u64,
    pub syncs: u64,
    /// Syncs that actually joined at least one child.
    pub effective_syncs: u64,
    pub calls: u64,
}

/// The sequential depth-first executor: runs the program in Cilk's serial
/// order while maintaining a reachability substrate and feeding a
/// [`Detector`].
///
/// Generic over the substrate via [`ReachMaint`]: SP-Order over either OM
/// list (`SpOrderImpl<OmList>` — the default — or `TwoLevelOm`), or the
/// relabel-free `DePaReach`. The executor issues the identical maintenance
/// call sequence to every substrate, so strand ids, lineage and frozen
/// ranks are substrate-independent.
pub struct Executor<D, R = SpOrder>
where
    R: ReachMaint,
    D: Detector<R>,
{
    pub reach: R,
    pub det: D,
    pub counters: ExecCounters,
    cur: StrandId,
    frames: Vec<Frame>,
}

impl<D, R> Executor<D, R>
where
    R: ReachMaint,
    D: Detector<R>,
{
    pub fn new(det: D) -> Self {
        let (reach, root) = R::init();
        Executor {
            reach,
            det,
            counters: ExecCounters::default(),
            cur: root,
            frames: vec![Frame { sync_strand: None }],
        }
    }

    /// The strand currently executing.
    #[inline]
    pub fn current_strand(&self) -> StrandId {
        self.cur
    }

    /// Execute a whole program: runs it, performs the root function's
    /// implicit sync and delivers the final flush to the detector.
    pub fn execute<P: CilkProgram>(&mut self, p: &mut P) {
        p.run(self);
        self.sync_current_frame();
        self.det.finish(self.cur, &self.reach);
    }

    /// Consume the executor, returning the detector.
    pub fn into_detector(self) -> D {
        self.det
    }

    /// Total number of strands created.
    pub fn strand_count(&self) -> usize {
        self.reach.strand_count()
    }

    fn sync_current_frame(&mut self) {
        self.counters.syncs += 1;
        if let Some(j) = self.frames.last_mut().unwrap().sync_strand.take() {
            self.counters.effective_syncs += 1;
            self.det.strand_end(self.cur, &self.reach);
            self.cur = j;
        }
    }
}

impl<D, R> Cilk for Executor<D, R>
where
    R: ReachMaint,
    D: Detector<R>,
{
    fn spawn(&mut self, f: impl FnOnce(&mut Self)) {
        self.counters.spawns += 1;
        // The spawning strand ends here.
        self.det.strand_end(self.cur, &self.reach);
        // Lazily open the sync block (the sync strand must be created before
        // the first child so later insertions land before it in both orders).
        let frame = self.frames.last_mut().unwrap();
        if frame.sync_strand.is_none() {
            frame.sync_strand = Some(self.reach.new_sync_strand(self.cur));
        }
        let s = self.reach.spawn(self.cur);
        // Run the child to completion (depth-first serial order).
        self.frames.push(Frame { sync_strand: None });
        self.cur = s.child;
        f(self);
        // Implicit sync at the spawned function's return, then the child's
        // final strand ends.
        self.sync_current_frame();
        self.det.strand_end(self.cur, &self.reach);
        self.frames.pop();
        self.reach.child_return(self.cur);
        self.cur = s.continuation;
    }

    fn sync(&mut self) {
        self.sync_current_frame();
    }

    fn call(&mut self, f: impl FnOnce(&mut Self)) {
        self.counters.calls += 1;
        // A serial call continues the current strand but opens a fresh sync
        // scope; its implicit sync runs at return.
        self.reach.call_enter(self.cur);
        self.frames.push(Frame { sync_strand: None });
        f(self);
        self.sync_current_frame();
        self.frames.pop();
        self.reach.call_exit(self.cur);
    }

    #[inline]
    fn load(&mut self, addr: usize, bytes: usize) {
        self.det.load(self.cur, addr, bytes, &self.reach);
    }
    #[inline]
    fn store(&mut self, addr: usize, bytes: usize) {
        self.det.store(self.cur, addr, bytes, &self.reach);
    }
    #[inline]
    fn load_range(&mut self, addr: usize, bytes: usize) {
        self.det.load_range(self.cur, addr, bytes, &self.reach);
    }
    #[inline]
    fn store_range(&mut self, addr: usize, bytes: usize) {
        self.det.store_range(self.cur, addr, bytes, &self.reach);
    }

    #[inline]
    fn free(&mut self, addr: usize, bytes: usize) {
        self.det.free(self.cur, addr, bytes, &self.reach);
    }
}

/// Run `p` under the sequential executor with detector `det`; returns the
/// executor (holding the detector, reachability and counters) and the
/// wall-clock time.
pub fn run_with_detector<P: CilkProgram, D: Detector>(
    p: &mut P,
    det: D,
) -> (Executor<D>, std::time::Duration) {
    run_with_detector_r::<P, D, SpOrder>(p, det)
}

/// As [`run_with_detector`], but with an explicit reachability substrate
/// (e.g. `DePaReach` for relabel-free timestamps).
pub fn run_with_detector_r<P, D, R>(p: &mut P, det: D) -> (Executor<D, R>, std::time::Duration)
where
    P: CilkProgram,
    R: ReachMaint,
    D: Detector<R>,
{
    let mut ex = Executor::<D, R>::new(det);
    let start = std::time::Instant::now();
    ex.execute(p);
    (ex, start.elapsed())
}

/// As [`run_with_detector`], but with an explicit order-maintenance list
/// behind SP-Order (e.g. `TwoLevelOm` for O(1)-amortized maintenance).
pub fn run_with_detector_in<P, D, L>(
    p: &mut P,
    det: D,
) -> (Executor<D, SpOrderImpl<L>>, std::time::Duration)
where
    P: CilkProgram,
    L: OrderList,
    D: Detector<SpOrderImpl<L>>,
{
    run_with_detector_r::<P, D, SpOrderImpl<L>>(p, det)
}

/// Run `p` with reachability maintenance but no detection (the `reach.`
/// column of Figure 1); returns the wall-clock time.
pub fn run_reach_only<P: CilkProgram>(p: &mut P) -> std::time::Duration {
    run_with_detector(p, NopDetector).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Detector that records (strand, kind, addr, bytes) events.
    #[derive(Default)]
    struct Recorder {
        events: Vec<(StrandId, &'static str, usize, usize)>,
        ends: Vec<StrandId>,
        #[allow(dead_code)] // exercised only as a RefCell-interior-mutability pattern check
        pairs_checked: RefCell<Vec<(StrandId, StrandId, bool)>>,
    }
    impl Detector for Recorder {
        fn load(&mut self, s: StrandId, a: usize, b: usize, _: &SpOrder) {
            self.events.push((s, "r", a, b));
        }
        fn store(&mut self, s: StrandId, a: usize, b: usize, _: &SpOrder) {
            self.events.push((s, "w", a, b));
        }
        fn load_range(&mut self, s: StrandId, a: usize, b: usize, _: &SpOrder) {
            self.events.push((s, "R", a, b));
        }
        fn store_range(&mut self, s: StrandId, a: usize, b: usize, _: &SpOrder) {
            self.events.push((s, "W", a, b));
        }
        fn strand_end(&mut self, s: StrandId, _: &SpOrder) {
            self.ends.push(s);
        }
    }

    struct Two;
    impl CilkProgram for Two {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.store(0, 4);
            ctx.spawn(|c| c.store(0, 4));
            ctx.store(8, 4);
            ctx.sync();
            ctx.load_range(0, 16);
        }
    }

    #[test]
    fn executor_assigns_distinct_strands() {
        let (ex, _) = run_with_detector(&mut Two, Recorder::default());
        let ev = &ex.det.events;
        assert_eq!(ev.len(), 4);
        let root = ev[0].0;
        let child = ev[1].0;
        let cont = ev[2].0;
        let after = ev[3].0;
        assert_ne!(root, child);
        assert_ne!(child, cont);
        assert_ne!(cont, after);
        assert!(ex.reach.parallel(child, cont));
        assert!(ex.reach.series(root, child));
        assert!(ex.reach.series(child, after));
        assert!(ex.reach.series(cont, after));
        assert_eq!(ev[3].1, "R", "coalesced hook reaches detector as range");
    }

    #[test]
    fn strand_ends_cover_all_access_strands() {
        let (ex, _) = run_with_detector(&mut Two, Recorder::default());
        for (s, _, _, _) in &ex.det.events {
            assert!(
                ex.det.ends.contains(s),
                "strand {s:?} accessed memory but never flushed"
            );
        }
    }

    #[test]
    fn baseline_runs_program() {
        // Smoke: program logic executes under BaseExec (side effects happen).
        struct Sum(u64, u64);
        impl CilkProgram for Sum {
            fn run<C: Cilk>(&mut self, ctx: &mut C) {
                let n = self.0;
                let mut l = 0;
                ctx.spawn(|_| l = (0..n).sum::<u64>());
                let r = (n..2 * n).sum::<u64>();
                ctx.sync();
                self.1 = l + r;
            }
        }
        let mut p = Sum(10, 0);
        run_baseline(&mut p);
        assert_eq!(p.1, (0..20).sum::<u64>());
        let mut p2 = Sum(10, 0);
        run_reach_only(&mut p2);
        assert_eq!(p2.1, (0..20).sum::<u64>());
    }

    #[test]
    fn call_scopes_sync_to_callee() {
        // call { spawn A; }  B   — A must be serial before B thanks to the
        // callee's implicit sync.
        struct P;
        impl CilkProgram for P {
            fn run<C: Cilk>(&mut self, ctx: &mut C) {
                ctx.call(|c| {
                    c.spawn(|c| c.store(0, 4));
                });
                ctx.store(0, 4);
            }
        }
        let (ex, _) = run_with_detector(&mut P, Recorder::default());
        let a = ex.det.events[0].0;
        let b = ex.det.events[1].0;
        assert!(
            ex.reach.series(a, b),
            "call's implicit sync must order A before B"
        );
    }

    #[test]
    fn nested_sync_blocks() {
        struct P;
        impl CilkProgram for P {
            fn run<C: Cilk>(&mut self, ctx: &mut C) {
                ctx.spawn(|c| c.store(0, 4)); // block 1 child
                ctx.sync();
                ctx.spawn(|c| c.store(4, 4)); // block 2 child
                ctx.sync();
                ctx.store(8, 4);
            }
        }
        let (ex, _) = run_with_detector(&mut P, Recorder::default());
        let a = ex.det.events[0].0;
        let b = ex.det.events[1].0;
        let c = ex.det.events[2].0;
        assert!(ex.reach.series(a, b));
        assert!(ex.reach.series(b, c));
        assert_eq!(ex.counters.spawns, 2);
        assert!(ex.counters.effective_syncs >= 2);
    }

    #[test]
    fn word_range_conversion() {
        assert_eq!(word_range(0, 4), (0, 1));
        assert_eq!(word_range(0, 8), (0, 2));
        assert_eq!(word_range(2, 4), (0, 2)); // unaligned spans two words
        assert_eq!(word_range(4, 1), (1, 2));
        assert_eq!(word_range(7, 2), (1, 3));
        assert_eq!(word_range(16, 0), (4, 4)); // empty
    }
}
