//! Two-level order-maintenance list with O(1) amortized insertion
//! [Dietz & Sleator; Bender et al.].
//!
//! The single-level list-labelling structure in the crate root pays
//! O(log n) amortized per insertion (relabelling). The classic fix is
//! indirection: elements live in *groups* of at most `2·GROUP_CAP`
//! elements; groups form a top-level list maintained by the O(log n)
//! labelling algorithm, while elements within a group get evenly spaced
//! 64-bit local labels. Insertions relabel only their group (O(group size)
//! every Ω(group size) insertions ⇒ O(1) amortized), and a full group
//! splits into two, inserting one new top-level node per Ω(GROUP_CAP)
//! insertions — which pays for the top level's O(log n).
//!
//! Order queries compare (group tag, local label) — still O(1).

use crate::{OmList, OmNode};

/// Elements per group before a split. Any Θ(log n)-ish constant works; 32
/// keeps splits rare while bounding relabel bursts.
const GROUP_CAP: usize = 32;

const NIL: u32 = u32::MAX;

/// Handle to an element of a [`TwoLevelOm`] list.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TlNode(u32);

struct Element {
    /// Local label within the group (strictly increasing along the group).
    label: u64,
    group: u32,
    prev: u32,
    next: u32,
}

struct Group {
    top: OmNode,
    /// First/last element indices.
    head: u32,
    tail: u32,
    len: u32,
}

/// Two-level order-maintenance list: O(1) amortized insert, O(1) query.
pub struct TwoLevelOm {
    top: OmList,
    groups: Vec<Group>,
    elems: Vec<Element>,
    /// Bytes last reported to the `om.bytes` gauge for the group/element
    /// arenas (the inner `top` list accounts for itself).
    owned_bytes: u64,
}

impl Default for TwoLevelOm {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TwoLevelOm {
    fn drop(&mut self) {
        crate::OBS_BYTES.reconcile(&mut self.owned_bytes, 0);
    }
}

impl TwoLevelOm {
    pub fn new() -> Self {
        TwoLevelOm {
            top: OmList::new(),
            groups: Vec::new(),
            elems: Vec::new(),
            owned_bytes: 0,
        }
    }

    /// Heap bytes owned by the group and element arenas plus the inner
    /// top-level list.
    pub fn heap_bytes(&self) -> u64 {
        self.top.heap_bytes()
            + (self.groups.capacity() * std::mem::size_of::<Group>()
                + self.elems.capacity() * std::mem::size_of::<Element>()) as u64
    }

    /// Publish this list's own arenas to the `om.bytes` gauge (the inner
    /// `top` list reconciles its share itself).
    #[inline]
    fn note_mem(&mut self) {
        let own = (self.groups.capacity() * std::mem::size_of::<Group>()
            + self.elems.capacity() * std::mem::size_of::<Element>()) as u64;
        crate::OBS_BYTES.reconcile(&mut self.owned_bytes, own);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Number of groups (for tests/benches).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Insert the first element into an empty list.
    pub fn insert_first(&mut self) -> TlNode {
        assert!(self.is_empty(), "insert_first on non-empty list");
        let top = self.top.insert_first();
        self.groups.push(Group {
            top,
            head: 0,
            tail: 0,
            len: 1,
        });
        self.elems.push(Element {
            label: 1 << 63,
            group: 0,
            prev: NIL,
            next: NIL,
        });
        if stint_obs::is_enabled() {
            self.note_mem();
        }
        TlNode(0)
    }

    /// Insert a new element immediately after `x`.
    pub fn insert_after(&mut self, x: TlNode) -> TlNode {
        let xi = x.0 as usize;
        let g = self.elems[xi].group;
        // Label midway between x and its in-group successor (or the top of
        // the label space).
        let next = self.elems[xi].next;
        let xl = self.elems[xi].label;
        let nl = if next == NIL {
            u64::MAX
        } else {
            self.elems[next as usize].label
        };
        let idx = self.elems.len() as u32;
        assert!(idx != NIL, "capacity exceeded");
        if nl - xl >= 2 {
            let label = xl + (nl - xl) / 2;
            self.elems.push(Element {
                label,
                group: g,
                prev: xi as u32,
                next,
            });
            self.elems[xi].next = idx;
            if next == NIL {
                self.groups[g as usize].tail = idx;
            } else {
                self.elems[next as usize].prev = idx;
            }
            self.groups[g as usize].len += 1;
            if self.groups[g as usize].len as usize > 2 * GROUP_CAP {
                self.split_group(g);
            }
            if stint_obs::is_enabled() {
                self.note_mem();
            }
            return TlNode(idx);
        }
        // No local label available: relabel the group evenly, then retry
        // (guaranteed to succeed: the group holds ≤ 2·GROUP_CAP + 1 ≪ 2^64
        // elements).
        self.relabel_group(g);
        self.insert_after(x)
    }

    /// True if `a` strictly precedes `b`. O(1).
    #[inline]
    pub fn precedes(&self, a: TlNode, b: TlNode) -> bool {
        let ea = &self.elems[a.0 as usize];
        let eb = &self.elems[b.0 as usize];
        if ea.group == eb.group {
            ea.label < eb.label
        } else {
            self.top.precedes(
                self.groups[ea.group as usize].top,
                self.groups[eb.group as usize].top,
            )
        }
    }

    fn relabel_group(&mut self, g: u32) {
        let grp = &self.groups[g as usize];
        let n = grp.len as u64;
        let mut cur = grp.head;
        let mut i = 0u64;
        while cur != NIL {
            // Spread across (0, u64::MAX): slot k gets (k+1) * span/(n+1).
            let label = ((i + 1) as u128 * (u64::MAX as u128) / (n + 1) as u128) as u64;
            self.elems[cur as usize].label = label;
            i += 1;
            cur = self.elems[cur as usize].next;
        }
    }

    /// Split an oversized group: the second half moves into a fresh group
    /// inserted after it in the top-level list.
    fn split_group(&mut self, g: u32) {
        let len = self.groups[g as usize].len;
        let keep = len / 2;
        // Walk to the split point.
        let mut cur = self.groups[g as usize].head;
        for _ in 1..keep {
            cur = self.elems[cur as usize].next;
        }
        let first_moved = self.elems[cur as usize].next;
        debug_assert_ne!(first_moved, NIL);
        // Detach.
        self.elems[cur as usize].next = NIL;
        let old_tail = self.groups[g as usize].tail;
        self.groups[g as usize].tail = cur;
        self.groups[g as usize].len = keep;
        // New group after g in the top list.
        let new_top = self.top.insert_after(self.groups[g as usize].top);
        let ng = self.groups.len() as u32;
        self.groups.push(Group {
            top: new_top,
            head: first_moved,
            tail: old_tail,
            len: len - keep,
        });
        self.elems[first_moved as usize].prev = NIL;
        // Re-home and relabel the moved elements.
        let mut cur = first_moved;
        while cur != NIL {
            self.elems[cur as usize].group = ng;
            cur = self.elems[cur as usize].next;
        }
        self.relabel_group(ng);
    }

    /// Consistency check for tests: linked structure, label order, group
    /// membership and top-level order all agree.
    pub fn check_invariants(&self) {
        let mut total = 0usize;
        for (gi, g) in self.groups.iter().enumerate() {
            let mut cur = g.head;
            let mut prev = NIL;
            let mut last_label = None;
            let mut count = 0;
            while cur != NIL {
                let e = &self.elems[cur as usize];
                assert_eq!(e.group as usize, gi, "group membership broken");
                assert_eq!(e.prev, prev, "prev link broken");
                if let Some(l) = last_label {
                    assert!(e.label > l, "labels not increasing in group");
                }
                last_label = Some(e.label);
                prev = cur;
                cur = e.next;
                count += 1;
            }
            assert_eq!(prev, g.tail, "tail broken");
            assert_eq!(count, g.len as usize, "group len broken");
            assert!(count <= 2 * GROUP_CAP + 1, "group overflow");
            total += count;
        }
        assert_eq!(total, self.elems.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_reference_order() {
        let mut l = TwoLevelOm::new();
        let mut order = vec![l.insert_first()];
        let mut state: u64 = 0xFEED;
        for i in 0..5000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let pos = (state as usize) % order.len();
            let n = l.insert_after(order[pos]);
            order.insert(pos + 1, n);
            if i % 512 == 0 {
                l.check_invariants();
            }
        }
        l.check_invariants();
        for i in (0..order.len()).step_by(61) {
            for j in (0..order.len()).step_by(97) {
                assert_eq!(l.precedes(order[i], order[j]), i < j, "i={i} j={j}");
            }
        }
        assert!(l.group_count() > 1, "splits must have happened");
    }

    #[test]
    fn hotspot_insertions() {
        let mut l = TwoLevelOm::new();
        let head = l.insert_first();
        let mut rest = Vec::new();
        for _ in 0..4000 {
            rest.push(l.insert_after(head));
        }
        l.check_invariants();
        // All inserted after head, so list order is reverse insertion order.
        for w in rest.windows(2) {
            assert!(l.precedes(w[1], w[0]));
            assert!(l.precedes(head, w[0]));
        }
    }

    #[test]
    fn append_only() {
        let mut l = TwoLevelOm::new();
        let mut last = l.insert_first();
        let mut all = vec![last];
        for _ in 0..3000 {
            last = l.insert_after(last);
            all.push(last);
        }
        l.check_invariants();
        for w in all.windows(2) {
            assert!(l.precedes(w[0], w[1]));
        }
        assert!(l.precedes(all[0], *all.last().unwrap()));
    }

    #[test]
    #[should_panic(expected = "insert_first on non-empty")]
    fn double_insert_first_panics() {
        let mut l = TwoLevelOm::new();
        l.insert_first();
        l.insert_first();
    }
}
