//! Order-maintenance (OM) lists.
//!
//! An order-maintenance list supports three operations:
//!
//! * [`OmList::insert_first`] — seed an empty list with its first element,
//! * [`OmList::insert_after`] — insert a new element immediately after an
//!   existing one,
//! * [`OmList::precedes`] — ask whether element `a` comes before element `b`
//!   in the list, in O(1).
//!
//! This is the substrate underneath SP-Order reachability [Bender et al.,
//! SPAA 2004]: SP-Order maintains two OM lists (the *English* and *Hebrew*
//! orders) and answers series/parallel queries about strands with two O(1)
//! order queries.
//!
//! # Implementation
//!
//! We use the classic *list-labelling* scheme ("Two Simplified Algorithms for
//! Maintaining Order in a List", Bender, Cole, Demaine, Farach-Colton, Zito,
//! ESA 2002): every element carries a 64-bit *tag* and order queries compare
//! tags. Insertion between two elements picks the midpoint tag; when no tag is
//! available the smallest enclosing power-of-two tag range whose *density* is
//! below a geometrically decreasing threshold is relabelled uniformly. This
//! gives O(log n) amortized insertion and O(1) queries, which is
//! indistinguishable from the O(1)-amortized two-level variant at the scales
//! exercised here (the OM lists are never the bottleneck — see the `om`
//! Criterion bench).
//!
//! Elements are never removed (SP-Order never deletes strands), so node
//! handles are plain indices into an arena and stay valid for the lifetime of
//! the list.
//!
//! # Fault injection & exhaustion
//!
//! Constructors sample the process-wide [`stint_faults`] plan: `om-tags=N`
//! narrows the tag universe to `2^N` tags (forcing the relabelling machinery
//! to work at toy scales) and `om-storm=N` forces a relabel pass every ~N
//! insertions. When even a full-universe relabel cannot restore the spacing
//! an insertion needs, the list is genuinely out of tags; instead of looping
//! forever it raises [`stint_faults::DetectorError::ResourceExhausted`] as a
//! typed panic payload, which the panic-safe detection session upstream
//! converts into a structured error.

pub mod two_level;
pub use two_level::{TlNode, TwoLevelOm};

/// Common interface of the order-maintenance implementations, so SP-Order
/// can be instantiated with either the single-level list (simple, O(log n)
/// amortized insert) or the two-level one (O(1) amortized insert).
pub trait OrderList: Default {
    /// Handle to a list element (stable forever; elements are not removed).
    type Handle: Copy;
    /// Insert the first element into an empty list.
    fn insert_first(&mut self) -> Self::Handle;
    /// Insert a new element immediately after `x`.
    fn insert_after(&mut self, x: Self::Handle) -> Self::Handle;
    /// True if `a` strictly precedes `b`. O(1).
    fn precedes(&self, a: Self::Handle, b: Self::Handle) -> bool;
}

impl OrderList for OmList {
    type Handle = OmNode;
    fn insert_first(&mut self) -> OmNode {
        OmList::insert_first(self)
    }
    fn insert_after(&mut self, x: OmNode) -> OmNode {
        OmList::insert_after(self, x)
    }
    fn precedes(&self, a: OmNode, b: OmNode) -> bool {
        OmList::precedes(self, a, b)
    }
}

impl OrderList for TwoLevelOm {
    type Handle = TlNode;
    fn insert_first(&mut self) -> TlNode {
        TwoLevelOm::insert_first(self)
    }
    fn insert_after(&mut self, x: TlNode) -> TlNode {
        TwoLevelOm::insert_after(self, x)
    }
    fn precedes(&self, a: TlNode, b: TlNode) -> bool {
        TwoLevelOm::precedes(self, a, b)
    }
}

/// Handle to an element of an [`OmList`].
///
/// Handles are only meaningful for the list that created them; they remain
/// valid forever (elements are never removed).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OmNode(u32);

impl OmNode {
    /// Arena index of this node (stable for the lifetime of the list).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const NIL: u32 = u32::MAX;

// Observability (all no-ops costing one relaxed load while `stint-obs` is
// disabled). `om.occupancy_permille` tracks the high-water fill of the tag
// space against the `max_tag / 4` spacing capacity at which the universe is
// declared exhausted.
static OBS_INSERTS: stint_obs::Counter = stint_obs::Counter::new("om.inserts");
static OBS_LEN: stint_obs::Gauge = stint_obs::Gauge::new("om.len");
pub(crate) static OBS_BYTES: stint_obs::Gauge = stint_obs::Gauge::new("om.bytes");
static OBS_RELABELS: stint_obs::Counter = stint_obs::Counter::new("om.relabels");
static OBS_RELABEL_MOVED: stint_obs::Counter = stint_obs::Counter::new("om.relabel_moved");
static OBS_FULL_RELABELS: stint_obs::Counter = stint_obs::Counter::new("om.full_relabels");
static OBS_STORM_RELABELS: stint_obs::Counter = stint_obs::Counter::new("om.storm_relabels");
static OBS_OCCUPANCY: stint_obs::Counter = stint_obs::Counter::new("om.occupancy_permille");
static OBS_RELABEL_WIDTH: stint_obs::Histogram = stint_obs::Histogram::new("om.relabel_width");

/// Density threshold ratio: a tag range of size 2^i may be relabelled into
/// when it holds at most `2^i * TAU^i` elements. `TAU = 3/4` is the standard
/// choice (any value in (1/2, 1) works; smaller values relabel more eagerly
/// but leave larger gaps).
const TAU: f64 = 0.75;

#[derive(Clone, Debug)]
struct Node {
    tag: u64,
    prev: u32,
    next: u32,
}

/// An order-maintenance list over an internal arena.
///
/// ```
/// use stint_om::OmList;
///
/// let mut list = OmList::new();
/// let a = list.insert_first();
/// let c = list.insert_after(a);
/// let b = list.insert_after(a); // squeezes between a and c
/// assert!(list.precedes(a, b));
/// assert!(list.precedes(b, c));
/// assert!(!list.precedes(c, a));
/// ```
#[derive(Debug)]
pub struct OmList {
    nodes: Vec<Node>,
    head: u32,
    tail: u32,
    /// Number of relabelling passes performed (exposed for benchmarking the
    /// amortization claim).
    relabels: u64,
    /// Total number of nodes moved across all relabelling passes.
    relabel_moved: u64,
    /// Top of the tag universe (`u64::MAX` normally; smaller under an
    /// `om-tags` fault plan, which shrinks the universe to `2^bits - 1`).
    max_tag: u64,
    /// Bits in the tag universe (64 normally); bounds the relabel levels.
    tag_bits: u32,
    /// Forced-relabel period (`om-storm` fault); 0 when disabled.
    storm_period: u64,
    /// Insertions until the next forced relabel (seed-derived phase).
    storm_countdown: u64,
    /// Bytes/elements last reported to the `om.bytes`/`om.len` gauges (zero
    /// while obs is disabled — `Gauge::reconcile` no-ops).
    owned_bytes: u64,
    owned_len: u64,
}

impl Default for OmList {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for OmList {
    fn clone(&self) -> Self {
        // A clone owns fresh heap storage, so it starts with nothing
        // reported and publishes its own footprint — copying the `owned_*`
        // shadows would make the clone's drop subtract bytes it never added.
        let mut l = OmList {
            nodes: self.nodes.clone(),
            head: self.head,
            tail: self.tail,
            relabels: self.relabels,
            relabel_moved: self.relabel_moved,
            max_tag: self.max_tag,
            tag_bits: self.tag_bits,
            storm_period: self.storm_period,
            storm_countdown: self.storm_countdown,
            owned_bytes: 0,
            owned_len: 0,
        };
        l.note_mem();
        l
    }
}

impl Drop for OmList {
    fn drop(&mut self) {
        OBS_LEN.reconcile(&mut self.owned_len, 0);
        OBS_BYTES.reconcile(&mut self.owned_bytes, 0);
    }
}

impl OmList {
    /// Create an empty list. Samples the installed fault plan (if any), so
    /// plans must be installed before the structures they should affect are
    /// built.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty list with capacity for `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        let mut l = OmList {
            nodes: Vec::with_capacity(n),
            head: NIL,
            tail: NIL,
            relabels: 0,
            relabel_moved: 0,
            max_tag: u64::MAX,
            tag_bits: 64,
            storm_period: 0,
            storm_countdown: 0,
            owned_bytes: 0,
            owned_len: 0,
        };
        if stint_faults::is_active() {
            if let Some(bits) = stint_faults::om_tag_bits() {
                l.set_tag_bits(bits);
            }
            if let Some((period, phase)) = stint_faults::om_relabel_storm() {
                l.storm_period = period;
                l.storm_countdown = phase;
            }
        }
        l
    }

    /// Create an empty list with a narrowed tag universe of `2^bits` tags,
    /// independent of any fault plan (used by tests to drive the relabel and
    /// exhaustion paths directly).
    pub fn with_tag_bits(bits: u32) -> Self {
        let mut l = Self::with_capacity(0);
        l.set_tag_bits(bits);
        l
    }

    fn set_tag_bits(&mut self, bits: u32) {
        assert!((4..=64).contains(&bits), "tag bits must be in 4..=64");
        self.tag_bits = bits;
        self.max_tag = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
    }

    /// Bits in this list's tag universe (64 unless narrowed by a fault).
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// Number of elements in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the list has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of relabelling passes performed so far.
    pub fn relabels(&self) -> u64 {
        self.relabels
    }

    /// Total number of node moves across all relabelling passes.
    pub fn relabel_moved(&self) -> u64 {
        self.relabel_moved
    }

    /// Insert the first element into an empty list.
    ///
    /// # Panics
    /// Panics if the list is not empty.
    pub fn insert_first(&mut self) -> OmNode {
        assert!(self.is_empty(), "insert_first on non-empty OmList");
        let idx = self.alloc(self.max_tag / 2 + 1, NIL, NIL);
        self.head = idx;
        self.tail = idx;
        OmNode(idx)
    }

    /// Insert a new element immediately after `x` and return its handle.
    pub fn insert_after(&mut self, x: OmNode) -> OmNode {
        let xi = x.0;
        debug_assert!((xi as usize) < self.nodes.len(), "foreign OmNode");
        // `om-storm` fault: periodically force a relabel pass even when the
        // midpoint insertion would have succeeded, exercising the relabel
        // machinery under load. One predictable branch when disabled.
        if self.storm_period != 0 {
            if self.storm_countdown == 0 {
                self.storm_countdown = self.storm_period;
                OBS_STORM_RELABELS.incr();
                stint_obs::event("fault.om_storm");
                self.relabel_around(xi);
            } else {
                self.storm_countdown -= 1;
            }
        }
        loop {
            let xt = self.nodes[xi as usize].tag;
            let ni = self.nodes[xi as usize].next;
            if ni == NIL {
                // Insert after the last element: take the midpoint between
                // x's tag and the end of the tag universe.
                let gap = self.max_tag - xt;
                if gap >= 2 {
                    let idx = self.alloc(xt + gap / 2, xi, NIL);
                    self.nodes[xi as usize].next = idx;
                    self.tail = idx;
                    return OmNode(idx);
                }
            } else {
                let nt = self.nodes[ni as usize].tag;
                debug_assert!(nt > xt);
                let gap = nt - xt;
                if gap >= 2 {
                    let idx = self.alloc(xt + gap / 2, xi, ni);
                    self.nodes[xi as usize].next = idx;
                    self.nodes[ni as usize].prev = idx;
                    return OmNode(idx);
                }
            }
            // No room: relabel the neighbourhood of x and retry.
            self.relabel_around(xi);
        }
    }

    /// True if `a` strictly precedes `b` in the list. O(1).
    #[inline]
    pub fn precedes(&self, a: OmNode, b: OmNode) -> bool {
        self.nodes[a.0 as usize].tag < self.nodes[b.0 as usize].tag
    }

    /// The current tag of `x` (exposed for tests and debugging; tags change
    /// across insertions, only their relative order is meaningful).
    pub fn tag(&self, x: OmNode) -> u64 {
        self.nodes[x.0 as usize].tag
    }

    /// Iterate over the elements of the list in order.
    pub fn iter(&self) -> impl Iterator<Item = OmNode> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let out = OmNode(cur);
                cur = self.nodes[cur as usize].next;
                Some(out)
            }
        })
    }

    /// Heap bytes currently owned by the node arena.
    pub fn heap_bytes(&self) -> u64 {
        (self.nodes.capacity() * std::mem::size_of::<Node>()) as u64
    }

    /// Publish the arena's live footprint to the `om.*` gauges (no-op while
    /// obs is disabled; the `owned_*` shadows stay untouched so a mid-life
    /// enable can't underflow).
    #[inline]
    fn note_mem(&mut self) {
        let (len, bytes) = (self.nodes.len() as u64, self.heap_bytes());
        OBS_LEN.reconcile(&mut self.owned_len, len);
        OBS_BYTES.reconcile(&mut self.owned_bytes, bytes);
    }

    #[inline]
    fn alloc(&mut self, tag: u64, prev: u32, next: u32) -> u32 {
        let idx = self.nodes.len();
        assert!(idx < NIL as usize, "OmList capacity exceeded (u32 indices)");
        self.nodes.push(Node { tag, prev, next });
        if stint_obs::is_enabled() {
            OBS_INSERTS.incr();
            self.note_mem();
        }
        idx as u32
    }

    /// Fill of the tag space in permille of the `max_tag / 4` spacing
    /// capacity at which a full-universe relabel declares exhaustion.
    fn occupancy_permille(&self) -> u64 {
        let capacity = (self.max_tag / 4).max(1);
        ((self.nodes.len() as u128 * 1000) / capacity as u128).min(1000) as u64
    }

    /// Relabel the smallest tag range enclosing `x` whose density is below the
    /// level threshold, spreading its elements uniformly.
    fn relabel_around(&mut self, xi: u32) {
        let xt = self.nodes[xi as usize].tag;
        for level in 1..self.tag_bits {
            let size: u64 = 1 << level;
            let min = xt & !(size - 1);
            let max = min + (size - 1);
            // Walk to the leftmost node inside [min, max].
            let mut left = xi;
            loop {
                let p = self.nodes[left as usize].prev;
                if p == NIL || self.nodes[p as usize].tag < min {
                    break;
                }
                left = p;
            }
            // Count nodes inside the range (and detect overflow of the count
            // relative to the density threshold as early as possible).
            //
            // Two conditions must hold for the range to "fit":
            // * the amortization density bound `count <= size * TAU^level`;
            // * spacing `size / count >= 4`, which guarantees that after the
            //   uniform redistribution every node — including the last one,
            //   whose successor may lie *outside* the range or be the virtual
            //   end of the tag universe (u64::MAX) — keeps a gap of at least
            //   2 to its successor, so the retried insertion succeeds.
            //   (Without the spacing bound, a tail node sitting at the very
            //   top of the universe is "relabelled" to its own tag forever.)
            let threshold = ((size as f64) * TAU.powi(level as i32)).min(size as f64 / 4.0);
            let mut count: u64 = 0;
            let mut cur = left;
            let mut fits = true;
            while cur != NIL && self.nodes[cur as usize].tag <= max {
                count += 1;
                if (count as f64) > threshold {
                    fits = false;
                    break;
                }
                cur = self.nodes[cur as usize].next;
            }
            if !fits {
                continue;
            }
            debug_assert!(count >= 1);
            // Spread the `count` nodes uniformly across [min, min+size).
            self.relabels += 1;
            self.relabel_moved += count;
            if stint_obs::is_enabled() {
                OBS_RELABELS.incr();
                OBS_RELABEL_MOVED.add(count);
                OBS_RELABEL_WIDTH.observe(count);
                OBS_OCCUPANCY.record_max(self.occupancy_permille());
            }
            let mut cur = left;
            for j in 0..count {
                let t = min + ((j as u128 * size as u128) / count as u128) as u64;
                self.nodes[cur as usize].tag = t;
                cur = self.nodes[cur as usize].next;
            }
            return;
        }
        // Fall back to relabelling the entire list across the full universe.
        // The same spacing bound as above applies: the uniform spread only
        // guarantees the retried insertion succeeds if every node gets a gap
        // of at least 4 tags. Below that the universe is genuinely exhausted
        // — raise the structured error instead of retrying forever (the
        // insert/relabel retry loop would otherwise spin).
        let n = self.nodes.len() as u64;
        if n >= self.max_tag / 4 {
            OBS_OCCUPANCY.record_max(1000);
            stint_obs::event("fault.om_tags_exhausted");
            stint_faults::DetectorError::ResourceExhausted {
                resource: stint_faults::Resource::OmTags,
                limit: self.max_tag,
                at_word: None,
            }
            .raise();
        }
        self.relabels += 1;
        self.relabel_moved += n;
        if stint_obs::is_enabled() {
            OBS_RELABELS.incr();
            OBS_FULL_RELABELS.incr();
            OBS_RELABEL_MOVED.add(n);
            OBS_RELABEL_WIDTH.observe(n);
            OBS_OCCUPANCY.record_max(self.occupancy_permille());
        }
        let mut cur = self.head;
        let mut j: u64 = 0;
        while cur != NIL {
            let t = ((j as u128 * self.max_tag as u128) / n as u128) as u64;
            self.nodes[cur as usize].tag = t;
            j += 1;
            cur = self.nodes[cur as usize].next;
        }
    }

    /// Internal consistency check: links and tags agree and tags are strictly
    /// increasing. Used by tests.
    pub fn check_invariants(&self) {
        if self.head == NIL {
            assert!(self.nodes.is_empty());
            return;
        }
        let mut cur = self.head;
        let mut prev = NIL;
        let mut last_tag: Option<u64> = None;
        let mut seen = 0usize;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            assert_eq!(n.prev, prev, "prev link broken at {cur}");
            if let Some(t) = last_tag {
                assert!(n.tag > t, "tags not strictly increasing at {cur}");
            }
            last_tag = Some(n.tag);
            prev = cur;
            cur = n.next;
            seen += 1;
        }
        assert_eq!(prev, self.tail, "tail link broken");
        assert_eq!(seen, self.nodes.len(), "arena/list length mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element() {
        let mut l = OmList::new();
        let a = l.insert_first();
        assert_eq!(l.len(), 1);
        assert!(!l.precedes(a, a));
        l.check_invariants();
    }

    #[test]
    fn append_chain_preserves_order() {
        let mut l = OmList::new();
        let mut nodes = vec![l.insert_first()];
        for _ in 0..1000 {
            let last = *nodes.last().unwrap();
            nodes.push(l.insert_after(last));
        }
        for w in nodes.windows(2) {
            assert!(l.precedes(w[0], w[1]));
            assert!(!l.precedes(w[1], w[0]));
        }
        l.check_invariants();
    }

    #[test]
    fn insert_always_after_head_forces_relabels() {
        let mut l = OmList::new();
        let a = l.insert_first();
        let mut inserted = Vec::new();
        for _ in 0..5000 {
            inserted.push(l.insert_after(a));
        }
        // Every new node lands right after `a`, so the list order is `a`
        // followed by the inserted nodes in reverse insertion order.
        for w in inserted.windows(2) {
            assert!(l.precedes(w[1], w[0]));
        }
        for &n in &inserted {
            assert!(l.precedes(a, n));
        }
        assert!(l.relabels() > 0, "dense insertion must trigger relabelling");
        l.check_invariants();
    }

    #[test]
    fn list_iteration_matches_reference() {
        // Mirror the list with a Vec of handles; insert at random positions.
        let mut l = OmList::new();
        let mut order = vec![l.insert_first()];
        let mut state: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pos = (state >> 33) as usize % order.len();
            let n = l.insert_after(order[pos]);
            order.insert(pos + 1, n);
        }
        let iterated: Vec<OmNode> = l.iter().collect();
        assert_eq!(iterated, order);
        // Pairwise agreement on a sample.
        for i in (0..order.len()).step_by(97) {
            for j in (0..order.len()).step_by(131) {
                assert_eq!(l.precedes(order[i], order[j]), i < j, "i={i} j={j}");
            }
        }
        l.check_invariants();
    }

    #[test]
    #[should_panic(expected = "insert_first on non-empty")]
    fn insert_first_twice_panics() {
        let mut l = OmList::new();
        l.insert_first();
        l.insert_first();
    }

    #[test]
    fn narrowed_universe_stays_ordered_then_exhausts_structurally() {
        let mut l = OmList::with_tag_bits(8);
        let mut last = l.insert_first();
        let mut chain = vec![last];
        // 2^8 tags with a spacing bound of 4 hold at most ~64 nodes; appends
        // beyond that must raise the structured exhaustion error, never spin.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for _ in 0..1000 {
                last = l.insert_after(last);
                chain.push(last);
            }
        }));
        let err = stint_faults::DetectorError::from_panic(result.unwrap_err());
        assert_eq!(
            err,
            stint_faults::DetectorError::ResourceExhausted {
                resource: stint_faults::Resource::OmTags,
                limit: (1 << 8) - 1,
                at_word: None,
            }
        );
        // Everything inserted before exhaustion is still correctly ordered.
        assert!(chain.len() > 16, "should hold a few dozen nodes first");
        for w in chain.windows(2) {
            assert!(l.precedes(w[0], w[1]));
        }
        l.check_invariants();
    }

    #[test]
    fn relabel_amortization_is_sane() {
        // Appending n elements should move far fewer than n log n nodes.
        let mut l = OmList::new();
        let mut last = l.insert_first();
        let n = 100_000u64;
        for _ in 0..n {
            last = l.insert_after(last);
        }
        // Appends use midpoint splitting of a huge right gap; relabels should
        // be rare.
        assert!(
            l.relabel_moved() < 64 * n,
            "relabel work {} too high for {} appends",
            l.relabel_moved(),
            n
        );
    }
}
