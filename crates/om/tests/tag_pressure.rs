//! Property test: order-maintenance inserts under a fault-narrowed tag space
//! keep every order query correct, no matter how many forced relabel passes
//! the narrow universe (or an injected relabel storm) triggers.
//!
//! Lives in its own test binary because one property installs the
//! process-global fault plan.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::{Mutex, MutexGuard, OnceLock};
use stint_faults::{FaultPlan, ScopedPlan};
use stint_om::{OmList, OmNode};

/// Serializes the properties that touch (or could observe) the global plan.
fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Replay `ops` as insert-after positions, returning the handles in list
/// order. Element counts stay well under `max_tag / 4`, so no sequence here
/// can structurally exhaust even a 10-bit universe.
fn build(l: &mut OmList, ops: &[u64]) -> Vec<OmNode> {
    let mut order = vec![l.insert_first()];
    for &r in ops {
        let idx = (r as usize) % order.len();
        let h = l.insert_after(order[idx]);
        order.insert(idx + 1, h);
    }
    order
}

fn assert_total_order(l: &OmList, order: &[OmNode]) -> Result<(), TestCaseError> {
    for i in 0..order.len() {
        for j in (i + 1)..order.len() {
            prop_assert!(
                l.precedes(order[i], order[j]),
                "position {i} must precede position {j} (n = {})",
                order.len()
            );
            prop_assert!(
                !l.precedes(order[j], order[i]),
                "position {j} must not precede position {i}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A narrowed universe forces frequent relabels; order queries must stay
    /// exact through every one of them.
    #[test]
    fn narrowed_tag_space_preserves_order(
        bits in 10u32..=16,
        ops in proptest::collection::vec(0u64..1_000_000, 1..96usize),
    ) {
        let _g = lock();
        let mut l = OmList::with_tag_bits(bits);
        let order = build(&mut l, &ops);
        prop_assert!(l.tag_bits() == bits);
        assert_total_order(&l, &order)?;
    }

    /// Same property with the full fault plan installed: narrowed tags plus
    /// a relabel storm every `period` inserts (the `om` fault class end to
    /// end, construction-time sampling included).
    #[test]
    fn relabel_storms_preserve_order(
        bits in 12u32..=16,
        period in 1u64..=4,
        ops in proptest::collection::vec(0u64..1_000_000, 1..96usize),
    ) {
        let _g = lock();
        let _plan = ScopedPlan::install(FaultPlan {
            om_tag_bits: Some(bits),
            om_relabel_storm: Some(period),
            seed: 0xC0FFEE,
            ..Default::default()
        });
        let mut l = OmList::new();
        prop_assert!(l.tag_bits() == bits, "plan must be sampled at construction");
        let order = build(&mut l, &ops);
        assert_total_order(&l, &order)?;
    }
}
