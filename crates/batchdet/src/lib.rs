//! Sharded batch-mode race detection over recorded traces.
//!
//! The on-the-fly detectors in `stint` interleave detection with the
//! program's own execution on a single thread. This crate runs detection as
//! a **batch job**:
//!
//! 1. **Replay control flow sequentially** (or load a saved trace): the
//!    result is a [`PortableTrace`] — the full instrumentation stream plus a
//!    [`FrozenReach`] snapshot of SP-Order. After this phase the
//!    `series`/`parallel`/`left_of` relation is *read-only*: every query is
//!    a pair of rank comparisons on immutable vectors, safe to share across
//!    threads with no synchronization.
//! 2. **Partition the event stream in one O(n) pass**: the 4-byte-word
//!    address space touched by the trace is split into `K` contiguous
//!    shards at *event-weight quantiles* of a bucketed access histogram
//!    (so shards are load-balanced, not just width-balanced), and a single
//!    scan routes each event to exactly the shards its word range overlaps
//!    (clipped at the boundary). Total partition work is O(n + straddlers),
//!    not the O(K·n) of the historical clip-per-shard design where every
//!    shard re-scanned the whole stream.
//! 3. **Fan the per-shard event vectors out** as fork-join tasks on the
//!    `stint-cilkrt` work-stealing pool; each shard replays its
//!    pre-clipped subsequence through a private STINT interval detector.
//!
//! For traces saved in the compressed chunked `STINT-TRACE v2` format (see
//! `stint::ctrace`), [`batch_detect_chunked`] streams the file chunk by
//! chunk — the whole `PortableTrace` is never resident — keeping one
//! persistent detector per shard across chunks and consuming contiguous
//! run-length runs **wholesale** (one coalesced range access per run, not
//! one per decoded event).
//!
//! # Why address sharding preserves the race set
//!
//! The access history is keyed by address: whether two accesses race
//! depends only on the per-word history of that word and the (frozen)
//! SP-Order relation, never on accesses to other words. Routing each word's
//! events to exactly one shard therefore preserves, per word, the exact
//! event subsequence the sequential detector saw — in the same order, with
//! the same strand boundaries. The only differences are (a) interval
//! *fragmentation* (a range access straddling a shard boundary becomes two
//! clipped ranges) and (b) *delayed* strand-end flushes in shards where a
//! strand was clean (skipped via a dirty flag) — both are per-word no-ops:
//! same-strand entries never conflict (`parallel(s, s)` is false) and
//! per-word insert semantics are idempotent for the same strand. Quantile
//! (instead of equal-width) boundaries keep the shards contiguous, so the
//! argument is unchanged. A wholesale-consumed run tiles memory
//! contiguously (`stride == bytes`, word-aligned), so its single coalesced
//! range access sets exactly the words of its expanded events. Hence the
//! per-word set of race triples `(word, kind, prev, cur)` is invariant in
//! `K` and in the encoding, which is exactly what the differential battery
//! in `tests/prop_batchdet.rs` checks.
//!
//! # Deterministic merge
//!
//! Raw per-shard race *records* are **not** invariant in `K` (the same racy
//! region fragments differently at different shard boundaries), so the
//! merged report is normalized per word and re-coalesced into maximal runs,
//! then sorted by address and SP rank ([`FrozenReach::english_rank`]). The
//! canonical [`MergedReport::render`] bytes are identical regardless of
//! shard count, worker count, or steal order — the metamorphic invariance
//! tests diff them directly.
//!
//! ```
//! use stint::{Cilk, CilkProgram, PortableTrace};
//! use stint_batchdet::{batch_detect, BatchConfig};
//!
//! struct Racy;
//! impl CilkProgram for Racy {
//!     fn run<C: Cilk>(&mut self, ctx: &mut C) {
//!         ctx.spawn(|c| c.store(0x40, 8));
//!         ctx.store(0x44, 4);
//!         ctx.sync();
//!     }
//! }
//!
//! let pt = PortableTrace::record(&mut Racy);
//! let out = batch_detect(&pt, &BatchConfig::default()).unwrap();
//! assert!(!out.merged.is_race_free());
//! ```

use std::collections::BTreeSet;
use std::io::BufRead;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use stint::ctrace::{partition_index, CompressedTraceReader, EventRun};
use stint::{
    Detector, DetectorError, DetectorStats, EventSpans, PortableTrace, Race, RaceKind, RaceReport,
    Resource, ResourceBudget, StintDetector, TraceEvent, TraceOp, Witness,
};
use stint_cilk::word_range;
use stint_cilkrt::ThreadPool;
use stint_obs::{Counter, Gauge};
use stint_sporder::{FrozenReach, Reachability, StrandId};

mod online;
pub use online::{online_detect, OnlineConfig, OnlineEngine, OnlineOutcome};

static OBS_SHARD_RUNS: Counter = Counter::new("batchdet.shard.runs");
static OBS_SHARD_EVENTS: Counter = Counter::new("batchdet.shard.events");
static OBS_SHARD_RACES: Counter = Counter::new("batchdet.shard.races");
static OBS_MERGES: Counter = Counter::new("batchdet.merges");
/// Live access-history bytes held by in-flight shard detectors. Reconciled
/// back to zero when each shard's detector finishes, so the gauge reads 0
/// after every batch run (chunked or not); its high-water mark records the
/// peak.
static OBS_SHARD_BYTES: Gauge = Gauge::new("batchdet.shard.bytes");
/// Compressed bytes ingested by the chunked streaming path (chunk framing +
/// payload; the throughput axis of `BENCH_batch.json`).
static OBS_INGEST_BYTES: Counter = Counter::new("batchdet.ingest.bytes");
static OBS_INGEST_CHUNKS: Counter = Counter::new("batchdet.ingest.chunks");
static OBS_INGEST_RUNS: Counter = Counter::new("batchdet.ingest.runs");
/// In-flight decoded-but-undetected event-buffer bytes of the streaming
/// path. Reconciled to zero after every chunk, so it reads 0 after each
/// chunked run; the high-water mark is the peak buffered footprint.
static OBS_INGEST_BUF: Gauge = Gauge::new("batchdet.ingest.buf_bytes");

/// Configuration for a batch detection run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of contiguous address shards (`K`). At least 1.
    pub shards: usize,
    /// Worker threads for the pool; `0` means one per hardware thread.
    pub workers: usize,
    /// Seed perturbing each worker's initial steal victim
    /// ([`ThreadPool::with_seed`]); `0` keeps the default order. The merged
    /// report is invariant in this — that is the point of the knob.
    pub steal_seed: u64,
    /// Attach verifiable witnesses (see `stint::witness`) to the merged
    /// regions. Capture happens at **merge time** from the global event-span
    /// table and the frozen orders — shard detectors record nothing — so the
    /// merged report stays byte-identical across shard counts.
    pub witnesses: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            shards: 4,
            workers: 0,
            steal_seed: 0,
            witnesses: false,
        }
    }
}

/// Per-session limits for a batch run — the knobs `stint-serve` sets for
/// every tenant: a [`ResourceBudget`] applied to **each** shard detector,
/// plus an optional wall-clock deadline.
///
/// The deadline is checked at chunk boundaries on the streaming path (and
/// before the fan-out on the in-memory path) — detectors are not
/// interruptible mid-chunk, so a session overruns its deadline by at most
/// one chunk's worth of work. A tripped deadline does **not** abort the
/// run: the shards that already replayed are flushed and merged, and the
/// outcome carries `degraded = ResourceExhausted(WallClock)` — the report
/// is sound up to the point detection stopped, exactly like a memory
/// budget.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionLimits {
    /// Budget applied to every shard detector (shadow bytes cap the
    /// per-shard coalescing tables; the interval cap freezes the per-shard
    /// access history).
    pub budget: ResourceBudget,
    /// Absolute wall-clock deadline; `None` = no timeout.
    pub deadline: Option<Instant>,
    /// The timeout that produced `deadline`, in milliseconds — carried into
    /// the structured error's `limit` field for diagnostics.
    pub timeout_ms: u64,
}

impl SessionLimits {
    /// Limits with a deadline `timeout` from now.
    pub fn timeout_after(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self.timeout_ms = timeout.as_millis() as u64;
        self
    }

    /// True once the deadline (if any) has passed.
    pub fn exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The structured degradation marker for a tripped deadline.
    pub fn timeout_error(&self) -> DetectorError {
        DetectorError::ResourceExhausted {
            resource: Resource::WallClock,
            limit: self.timeout_ms,
            at_word: None,
        }
    }
}

/// One shard's contiguous word range `[word_lo, word_hi)`.
#[derive(Clone, Copy, Debug)]
struct Shard {
    index: usize,
    word_lo: u64,
    word_hi: u64,
}

/// What one shard's private detector saw.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    pub index: usize,
    /// The shard's word range `[word_lo, word_hi)`.
    pub word_lo: u64,
    pub word_hi: u64,
    /// Events handed to this shard's detector: clipped accesses, frees, and
    /// dirty strand-end flush markers — the shard's *work count*. A
    /// run-length run consumed wholesale counts once, not per decoded
    /// event.
    pub events: u64,
    /// Per-shard report (unbounded — see [`RaceReport::unbounded`]).
    pub report: RaceReport,
    pub stats: DetectorStats,
    /// First structured failure of the shard's detector (degraded soundly),
    /// e.g. an injected shadow cap.
    pub failure: Option<DetectorError>,
}

/// The canonical merged report: per-word-normalized race regions plus the
/// exact racy-word set, both deterministic functions of the trace alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MergedReport {
    /// Maximal-run race regions, sorted by `(word_lo, word_hi,
    /// english_rank(prev), english_rank(cur), kind)`.
    pub regions: Vec<Race>,
    /// The exact set of racy words, sorted.
    pub racy_words: Vec<u64>,
}

impl MergedReport {
    pub fn is_race_free(&self) -> bool {
        self.regions.is_empty()
    }

    /// Canonical text rendering — byte-identical across shard counts,
    /// worker counts, and steal schedules (the metamorphic tests diff it).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        s.push_str("STINT-BATCH-REPORT v1\n");
        let _ = writeln!(s, "racy-words {}", self.racy_words.len());
        for w in &self.racy_words {
            let _ = writeln!(s, "w {w:#x}");
        }
        let _ = writeln!(s, "regions {}", self.regions.len());
        for r in &self.regions {
            let _ = write!(
                s,
                "{} [{:#x},{:#x}) prev {} cur {}",
                r.kind, r.word_lo, r.word_hi, r.prev.0, r.cur.0
            );
            if let Some(w) = &r.witness {
                let _ = write!(s, " w {}", w.render());
            }
            s.push('\n');
        }
        s
    }

    /// Rebuild a [`RaceReport`] from the normalized regions, so existing
    /// report printers work on merged output.
    pub fn to_report(&self) -> RaceReport {
        let mut rep = RaceReport::unbounded(true);
        for r in &self.regions {
            rep.add_race(r.clone());
        }
        rep
    }
}

/// Streaming-ingest telemetry of a chunked run (`None` for in-memory runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Compressed chunk bytes consumed (framing + payload).
    pub bytes: u64,
    pub chunks: u64,
    /// Run-length records decoded.
    pub runs: u64,
    /// Runs consumed wholesale as one coalesced range access.
    pub wholesale_runs: u64,
    /// Decoded (semantic) events the runs expand to.
    pub events: u64,
}

/// Result of a batch detection run.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardOutcome>,
    pub merged: MergedReport,
    /// Sum of the per-shard detector statistics.
    pub stats: DetectorStats,
    /// Total trace events (before routing).
    pub events: usize,
    pub strands: usize,
    /// Wall-clock time of the batch phase (partition + fan-out + detection;
    /// for chunked runs this includes decode, so `ingest.bytes / wall` is
    /// the end-to-end ingest throughput).
    pub wall: Duration,
    /// Streaming-ingest telemetry ([`batch_detect_chunked`] only).
    pub ingest: Option<IngestStats>,
    /// First per-shard structured failure, by shard index, if any. The
    /// merged report is sound but only complete up to the failure point.
    pub degraded: Option<DetectorError>,
}

fn corrupt(detail: String) -> DetectorError {
    DetectorError::CorruptTrace { detail }
}

/// Parse **and validate** a trace stream (either the `STINT-TRACE v1` text
/// format or the compressed chunked v2 format) for batch replay. Truncated,
/// bit-flipped, or wrong-version input comes back as a structured
/// [`DetectorError::CorruptTrace`] (exit code 4), never a panic.
pub fn load_trace<R: std::io::BufRead>(r: R) -> Result<PortableTrace, DetectorError> {
    let pt = PortableTrace::load_any(r).map_err(|e| corrupt(e.to_string()))?;
    pt.validate().map_err(corrupt)?;
    Ok(pt)
}

fn pool_for(cfg: &BatchConfig) -> ThreadPool {
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.workers
    };
    ThreadPool::with_seed(workers, cfg.steal_seed)
}

/// Batch-detect on a fresh pool built from `cfg` (worker count and steal
/// seed). See [`batch_detect_on`].
pub fn batch_detect(pt: &PortableTrace, cfg: &BatchConfig) -> Result<BatchOutcome, DetectorError> {
    batch_detect_on(&pool_for(cfg), pt, cfg)
}

/// Partition the trace's events over `cfg.shards` address shards in one
/// O(n) pass, fan the per-shard vectors out on `pool`, then merge
/// deterministically.
///
/// The trace is validated first — a syntactically well-formed file whose
/// strand ids or ranges were corrupted is rejected as
/// [`DetectorError::CorruptTrace`] instead of indexing out of bounds. An
/// injected detector panic inside a shard surfaces as
/// [`DetectorError::Poisoned`] via the typed-panic protocol.
pub fn batch_detect_on(
    pool: &ThreadPool,
    pt: &PortableTrace,
    cfg: &BatchConfig,
) -> Result<BatchOutcome, DetectorError> {
    batch_detect_limited_on(pool, pt, cfg, &SessionLimits::default())
}

/// [`batch_detect_on`] under per-session [`SessionLimits`]: every shard
/// detector gets the session's [`ResourceBudget`], and a deadline that has
/// already passed when the fan-out would start skips replay entirely and
/// reports the structured wall-clock degradation instead (the in-memory
/// path has no chunk boundaries to preempt at; the streaming path in
/// [`batch_detect_chunked_limited_on`] is the precise one).
pub fn batch_detect_limited_on(
    pool: &ThreadPool,
    pt: &PortableTrace,
    cfg: &BatchConfig,
    limits: &SessionLimits,
) -> Result<BatchOutcome, DetectorError> {
    pt.validate().map_err(corrupt)?;
    // Merge-time witness capture: one O(n) pass over the (whole) trace for
    // the per-strand event spans; a deterministic function of the trace, so
    // the attached witnesses are invariant in K/workers/steal order.
    let spans = cfg.witnesses.then(|| EventSpans::from_trace(&pt.trace));
    let (bounds, hist) = partition_index(&pt.trace);
    let shards = plan_shards(bounds, &hist, cfg.shards);
    let reach = &pt.reach;
    let t0 = Instant::now();

    // The single partition pass: O(n) over the stream, plus one extra
    // clipped copy per boundary straddler. Pre-size each shard's buffer to
    // its quantile-planned share so absorbing millions of routed events
    // doesn't pay log(n) doubling reallocations of a multi-hundred-MB Vec.
    let mut states: Vec<ShardState> = shards
        .iter()
        .map(|&s| ShardState::new(s, limits.budget))
        .collect();
    let mut last = StrandId(0);
    if states.len() == 1 {
        // One shard owns the whole span: every clip is the identity and
        // every strand end is its own, so routing would be pure per-event
        // overhead. One memcpy reproduces exactly the sequential stream.
        states[0].buf.extend_from_slice(&pt.trace.events);
        states[0].events = pt.trace.events.len() as u64;
        last = pt.trace.events.last().map_or(last, |e| e.strand);
    } else {
        let share = pt.trace.events.len() / shards.len().max(1) + 1024;
        for st in &mut states {
            st.buf.reserve(share);
        }
        let mut router = Router::new(&shards);
        for e in &pt.trace.events {
            last = e.strand;
            route_event(&mut router, *e, &mut states);
        }
    }

    let timed_out = limits.exceeded();
    if timed_out {
        // Deadline already blown before any replay: drop the routed buffers
        // (finish() expects drained shards) and report the partial-but-sound
        // empty verdict below instead of wedging a worker on a session whose
        // client has already given up.
        for st in &mut states {
            st.buf.clear();
        }
    } else {
        catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| fan_out(pool, reach, &mut states));
        }))
        .map_err(DetectorError::from_panic)?;
        take_poison(&mut states)?;
    }
    // The final per-shard flush runs sequentially here, after every worker
    // is quiescent, so a panic in it may unwind — but still surfaces as the
    // structured error, not an escaping panic.
    let outs: Vec<ShardOutcome> = catch_unwind(AssertUnwindSafe(|| {
        states
            .into_iter()
            .map(|st| st.finish(reach, last))
            .collect()
    }))
    .map_err(DetectorError::from_panic)?;
    let wall = t0.elapsed();
    let mut out = finish_outcome(outs, reach, pt.trace.len(), wall, None, spans.as_ref())?;
    if timed_out && out.degraded.is_none() {
        out.degraded = Some(limits.timeout_error());
    }
    Ok(out)
}

/// Streaming batch detection over a compressed chunked `STINT-TRACE v2`
/// stream: decode one chunk at a time, route its runs to per-shard buffers
/// (consuming contiguous runs wholesale), and fan each chunk's buffers out
/// over persistent per-shard detectors. Peak memory is one chunk plus the
/// shard detectors — the full event stream is never resident.
pub fn batch_detect_chunked<R: BufRead>(
    r: R,
    cfg: &BatchConfig,
) -> Result<BatchOutcome, DetectorError> {
    batch_detect_chunked_on(&pool_for(cfg), r, cfg)
}

/// [`batch_detect_chunked`] on an existing pool.
pub fn batch_detect_chunked_on<R: BufRead>(
    pool: &ThreadPool,
    r: R,
    cfg: &BatchConfig,
) -> Result<BatchOutcome, DetectorError> {
    batch_detect_chunked_limited_on(pool, r, cfg, &SessionLimits::default())
}

/// [`batch_detect_chunked_on`] under per-session [`SessionLimits`]. The
/// wall-clock deadline is checked at every chunk boundary: a tripped
/// deadline stops ingesting, flushes the shards that already replayed, and
/// returns the partial-but-sound outcome with the structured
/// `ResourceExhausted(WallClock)` degradation marker — never an abort, and
/// never an unbounded stall on a worker.
pub fn batch_detect_chunked_limited_on<R: BufRead>(
    pool: &ThreadPool,
    r: R,
    cfg: &BatchConfig,
    limits: &SessionLimits,
) -> Result<BatchOutcome, DetectorError> {
    let mut reader = CompressedTraceReader::open(r).map_err(|e| corrupt(e.to_string()))?;
    let n_strands = reader.reach.strand_count();
    let bounds = (reader.word_hi > reader.word_lo).then_some((reader.word_lo, reader.word_hi));
    let hist = std::mem::take(&mut reader.hist);
    let shards = plan_shards(bounds, &hist, cfg.shards);
    let reach = reader.reach.clone();
    let total_events = reader.total_events;

    let mut states: Vec<ShardState> = shards
        .iter()
        .map(|&s| ShardState::new(s, limits.budget))
        .collect();
    let mut router = Router::new(&shards);
    let mut last = StrandId(0);
    let mut ingest = IngestStats::default();
    let mut runs: Vec<EventRun> = Vec::new();
    // Incremental span table: decoded event ids equal original trace
    // indices (runs expand in order), so a run by strand `s` covers ids
    // `[ev_id, ev_id + count)`.
    let mut spans = cfg.witnesses.then(EventSpans::default);
    let mut ev_id = 0u64;
    let mut timed_out = false;
    let t0 = Instant::now();
    let streamed = catch_unwind(AssertUnwindSafe(|| -> Result<(), DetectorError> {
        loop {
            if limits.exceeded() {
                // Chunk-boundary preemption: stop ingesting, keep what the
                // shards already saw. The unread remainder of the stream is
                // the client's loss, not a corruption — skip the trailer
                // check below.
                timed_out = true;
                break;
            }
            let more = reader
                .next_chunk(&mut runs)
                .map_err(|e| corrupt(e.to_string()))?;
            if !more {
                break;
            }
            for run in &runs {
                if run.strand.index() >= n_strands {
                    return Err(corrupt(format!(
                        "run strand {} out of range (trace has {n_strands} strands)",
                        run.strand.0
                    )));
                }
                if !run_addr_ok(run) {
                    return Err(corrupt(format!(
                        "run at {:#x} stride {} overflows the address space",
                        run.addr, run.stride
                    )));
                }
                last = run.strand;
                ingest.events += run.count;
                if let Some(sp) = spans.as_mut() {
                    if run.count > 0 {
                        sp.note(run.strand, ev_id);
                        sp.note(run.strand, ev_id + run.count - 1);
                    }
                }
                ev_id += run.count;
                route_run(&mut router, run, &mut states, &mut ingest);
            }
            let chunk_bytes = reader.bytes_read() - ingest.bytes;
            ingest.bytes = reader.bytes_read();
            ingest.chunks += 1;
            ingest.runs += runs.len() as u64;
            OBS_INGEST_BYTES.add(chunk_bytes);
            OBS_INGEST_CHUNKS.incr();
            OBS_INGEST_RUNS.add(runs.len() as u64);
            let buffered: u64 = states
                .iter()
                .map(|st| (st.buf.len() * std::mem::size_of::<TraceEvent>()) as u64)
                .sum();
            let mut owned = 0u64;
            OBS_INGEST_BUF.reconcile(&mut owned, buffered);
            pool.install(|| fan_out(pool, &reach, &mut states));
            OBS_INGEST_BUF.reconcile(&mut owned, 0);
            take_poison(&mut states)?;
        }
        if timed_out {
            Ok(())
        } else {
            reader.finished().map_err(|e| corrupt(e.to_string()))
        }
    }))
    .map_err(DetectorError::from_panic)?;
    streamed?;
    let outs: Vec<ShardOutcome> = catch_unwind(AssertUnwindSafe(|| {
        states
            .into_iter()
            .map(|st| st.finish(&reach, last))
            .collect()
    }))
    .map_err(DetectorError::from_panic)?;
    let wall = t0.elapsed();
    let mut out = finish_outcome(
        outs,
        &reach,
        total_events as usize,
        wall,
        Some(ingest),
        spans.as_ref(),
    )?;
    if timed_out && out.degraded.is_none() {
        out.degraded = Some(limits.timeout_error());
    }
    Ok(out)
}

fn finish_outcome(
    outs: Vec<ShardOutcome>,
    reach: &FrozenReach,
    events: usize,
    wall: Duration,
    ingest: Option<IngestStats>,
    spans: Option<&EventSpans>,
) -> Result<BatchOutcome, DetectorError> {
    let merged = merge_shards(&outs, reach, spans);
    let mut stats = DetectorStats::default();
    for o in &outs {
        stats.merge(&o.stats);
    }
    let degraded = outs.iter().find_map(|o| o.failure.clone());
    Ok(BatchOutcome {
        merged,
        stats,
        events,
        strands: reach.strand_count(),
        wall,
        ingest,
        degraded,
        shards: outs,
    })
}

/// Every address the run expands to (plus the `word_range` rounding slack)
/// stays inside the address space — the per-event overflow check of
/// `PortableTrace::validate`, lifted to whole runs.
fn run_addr_ok(run: &EventRun) -> bool {
    let first = run.addr as i128;
    let last = first + (run.stride as i128) * (run.count as i128 - 1);
    let (min, max) = (first.min(last), first.max(last));
    min >= 0 && max + run.bytes as i128 + 3 <= usize::MAX as i128
}

/// Choose `k` contiguous shard ranges whose boundaries sit at event-weight
/// quantiles of the partition index (`hist` buckets over `[lo, hi)`), so a
/// skewed trace still spreads its *events* — not just its address width —
/// evenly. Heavily concentrated traces may still produce empty shards (a
/// single bucket cannot be split); contiguity is what the correctness
/// argument needs, balance is best-effort.
fn plan_shards(bounds: Option<(u64, u64)>, hist: &[u64], k: usize) -> Vec<Shard> {
    let k = k.max(1);
    let Some((lo, hi)) = bounds else {
        // No memory accesses at all: k empty shards, so the shard count
        // (and the per-shard telemetry shape) is always what was asked for.
        return (0..k)
            .map(|i| Shard {
                index: i,
                word_lo: 0,
                word_hi: 0,
            })
            .collect();
    };
    let total: u64 = hist.iter().sum();
    let span = hi - lo;
    let mut edges = Vec::with_capacity(k + 1);
    edges.push(lo);
    if total == 0 {
        // Degenerate index: fall back to equal width.
        let width = (span / k as u64 + u64::from(span % k as u64 != 0)).max(1);
        for i in 1..k {
            edges.push((lo + width * i as u64).min(hi));
        }
    } else {
        let bw = stint::ctrace::bucket_width(lo, hi);
        let mut cum = 0u64;
        let mut b = 0usize;
        for i in 1..k {
            let target = (total * i as u64).div_ceil(k as u64);
            while b < hist.len() && cum < target {
                cum += hist[b];
                b += 1;
            }
            let edge = (lo + bw * b as u64).min(hi);
            edges.push(edge.max(*edges.last().unwrap()));
        }
    }
    edges.push(hi);
    (0..k)
        .map(|i| Shard {
            index: i,
            word_lo: edges[i],
            word_hi: edges[i + 1].max(edges[i]),
        })
        .collect()
}

/// The partition pass's routing state: shard cut-points plus the per-shard
/// dirty flags that gate strand-end flush markers.
struct Router {
    /// `ends[i]` is shard `i`'s routing end; shard `i` covers
    /// `[ends[i-1], ends[i])` (shard 0 from 0). The last end is lifted to
    /// `u64::MAX` so any event routes deterministically even if it falls
    /// outside the planned bounds.
    ends: Vec<u64>,
    /// Shard holds unflushed accesses of the current strand.
    dirty: Vec<bool>,
    /// Shards whose `dirty` flag may be set (may hold stale entries cleared
    /// by a free; drained and deduplicated at each strand end). Keeps
    /// strand-end routing O(shards the strand touched), not O(K).
    dirty_list: Vec<u32>,
}

impl Router {
    fn new(shards: &[Shard]) -> Router {
        let k = shards.len();
        let mut ends: Vec<u64> = shards.iter().map(|s| s.word_hi).collect();
        ends[k - 1] = u64::MAX;
        Router {
            ends,
            dirty: vec![false; k],
            dirty_list: Vec::new(),
        }
    }

    /// Route one access/free word range, invoking `push(shard, lo, hi)`
    /// once per overlapped shard with the clipped subrange, and update the
    /// dirty flags (an access dirties the shard; a free cleans it — the
    /// detector's `free` flushes pending accesses itself).
    #[inline]
    fn route(&mut self, is_free: bool, lo: u64, hi: u64, mut push: impl FnMut(usize, u64, u64)) {
        if lo >= hi {
            return;
        }
        let mut i = self.ends.partition_point(|&e| e <= lo);
        let mut cur = lo;
        while cur < hi {
            while self.ends[i] <= cur {
                i += 1;
            }
            let clip = hi.min(self.ends[i]);
            if is_free {
                self.dirty[i] = false;
            } else if !self.dirty[i] {
                self.dirty[i] = true;
                self.dirty_list.push(i as u32);
            }
            push(i, cur, clip);
            cur = clip;
        }
    }

    /// Drain the dirty set, invoking `push(shard)` once per shard that
    /// still holds unflushed accesses.
    #[inline]
    fn on_strand_end(&mut self, mut push: impl FnMut(usize)) {
        for idx in self.dirty_list.drain(..) {
            let i = idx as usize;
            if self.dirty[i] {
                self.dirty[i] = false;
                push(i);
            }
        }
    }
}

/// A shard's accumulated work: its private detector plus the buffer of
/// routed events not yet replayed (drained per chunk in streaming mode,
/// once in in-memory mode).
struct ShardState {
    shard: Shard,
    det: StintDetector,
    buf: Vec<TraceEvent>,
    events: u64,
    /// A panic payload captured while draining on the pool. Unwinding
    /// through `ThreadPool::join` while the sibling job is stolen and in
    /// flight would tear down the stack frame the thief's `StackJob` lives
    /// on, so the fan-out leaf catches instead and the caller rethrows the
    /// first payload as a structured error once every worker is quiescent.
    poison: Option<Box<dyn std::any::Any + Send>>,
}

impl ShardState {
    fn new(shard: Shard, budget: ResourceBudget) -> ShardState {
        ShardState {
            shard,
            det: StintDetector::new(RaceReport::unbounded(true)).with_budget(budget),
            buf: Vec::new(),
            events: 0,
            poison: None,
        }
    }

    #[inline]
    fn push(&mut self, op: TraceOp, strand: StrandId, lo: u64, hi: u64) {
        // Synthesize a word-aligned byte range that `word_range` maps back
        // to exactly the clipped `[lo, hi)`.
        self.buf.push(TraceEvent {
            op,
            strand,
            addr: (lo * 4) as usize,
            bytes: ((hi - lo) * 4) as usize,
        });
        self.events += 1;
    }

    #[inline]
    fn push_strand_end(&mut self, strand: StrandId) {
        self.buf.push(TraceEvent {
            op: TraceOp::StrandEnd,
            strand,
            addr: 0,
            bytes: 0,
        });
        self.events += 1;
    }

    /// Replay the buffered events through the shard's detector (runs on the
    /// pool). Generic over the reachability substrate: the batch paths
    /// replay against a [`FrozenReach`] snapshot, the parallel-online path
    /// against the live relabel-free `DePaReach` (immutable timestamps, so
    /// sharing `&R` across workers is race-free by construction).
    fn drain<R: Reachability>(&mut self, reach: &R) {
        let _span = stint_obs::span("batchdet.shard");
        OBS_SHARD_RUNS.incr();
        for e in &self.buf {
            match e.op {
                TraceOp::Load => self.det.load(e.strand, e.addr, e.bytes, reach),
                TraceOp::Store => self.det.store(e.strand, e.addr, e.bytes, reach),
                TraceOp::LoadRange => self.det.load_range(e.strand, e.addr, e.bytes, reach),
                TraceOp::StoreRange => self.det.store_range(e.strand, e.addr, e.bytes, reach),
                TraceOp::Free => self.det.free(e.strand, e.addr, e.bytes, reach),
                TraceOp::StrandEnd => self.det.strand_end(e.strand, reach),
            }
        }
        OBS_SHARD_EVENTS.add(self.buf.len() as u64);
        self.buf.clear();
    }

    fn finish<R: Reachability>(mut self, reach: &R, last: StrandId) -> ShardOutcome {
        debug_assert!(self.buf.is_empty(), "finish before draining the buffer");
        self.det.finish(last, reach);
        let mut owned = 0u64;
        OBS_SHARD_BYTES.reconcile(
            &mut owned,
            self.det.stats.ah_bytes + self.det.stats.coalesce_bytes,
        );
        OBS_SHARD_RACES.add(self.det.report.total);
        let failure = Detector::<R>::failure(&self.det);
        let out = ShardOutcome {
            index: self.shard.index,
            word_lo: self.shard.word_lo,
            word_hi: self.shard.word_hi,
            events: self.events,
            report: self.det.report,
            stats: self.det.stats,
            failure,
        };
        OBS_SHARD_BYTES.reconcile(&mut owned, 0);
        out
    }
}

/// Route one discrete trace event (the in-memory partition pass).
#[inline]
fn route_event(router: &mut Router, e: TraceEvent, states: &mut [ShardState]) {
    if e.op == TraceOp::StrandEnd {
        router.on_strand_end(|i| states[i].push_strand_end(e.strand));
        return;
    }
    let (lo, hi) = word_range(e.addr, e.bytes);
    router.route(e.op == TraceOp::Free, lo, hi, |i, clo, chi| {
        states[i].push(e.op, e.strand, clo, chi)
    });
}

/// Route one decoded run (the streaming pass). A contiguous word-aligned
/// run is consumed wholesale: its whole footprint goes in as ONE coalesced
/// range access per overlapped shard, which covers exactly the same shadow
/// words as the expanded events — detection directly on the compressed
/// form. Other runs expand event by event without materializing a vector.
#[inline]
fn route_run(
    router: &mut Router,
    run: &EventRun,
    states: &mut [ShardState],
    ingest: &mut IngestStats,
) {
    match run.op {
        TraceOp::StrandEnd => {
            router.on_strand_end(|i| states[i].push_strand_end(run.strand));
        }
        _ => {
            if let Some((op, addr, total)) = run.as_wholesale_range() {
                ingest.wholesale_runs += 1;
                let (lo, hi) = word_range(addr, total);
                router.route(false, lo, hi, |i, clo, chi| {
                    states[i].push(op, run.strand, clo, chi)
                });
                return;
            }
            let is_free = run.op == TraceOp::Free;
            let mut addr = run.addr;
            for j in 0..run.count {
                let (lo, hi) = word_range(addr, run.bytes);
                router.route(is_free, lo, hi, |i, clo, chi| {
                    states[i].push(run.op, run.strand, clo, chi)
                });
                if j + 1 < run.count {
                    addr = (addr as i64).wrapping_add(run.stride) as usize;
                }
            }
        }
    }
}

/// Recursive binary fan-out of the shard states over the pool's `join`:
/// each shard drains its buffered events through its private detector. A
/// leaf panic is captured into the shard's `poison` slot — never unwound
/// across a `join` frame — and rethrown by [`take_poison`] afterwards.
fn fan_out<R: Reachability + Sync>(pool: &ThreadPool, reach: &R, states: &mut [ShardState]) {
    match states.len() {
        0 => {}
        1 => {
            let st = &mut states[0];
            if st.poison.is_none() {
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| st.drain(reach))) {
                    st.poison = Some(p);
                }
            }
        }
        n => {
            let (a, b) = states.split_at_mut(n / 2);
            pool.join(|| fan_out(pool, reach, a), || fan_out(pool, reach, b));
        }
    }
}

/// Rethrow the first captured shard panic as the structured error the typed
/// panic protocol encodes (an injected flush panic becomes `Poisoned`).
fn take_poison(states: &mut [ShardState]) -> Result<(), DetectorError> {
    for st in states.iter_mut() {
        if let Some(p) = st.poison.take() {
            return Err(DetectorError::from_panic(p));
        }
    }
    Ok(())
}

fn kind_code(k: RaceKind) -> u8 {
    match k {
        RaceKind::WriteWrite => 0,
        RaceKind::ReadWrite => 1,
        RaceKind::WriteRead => 2,
    }
}

fn kind_from(c: u8) -> RaceKind {
    match c {
        0 => RaceKind::WriteWrite,
        1 => RaceKind::ReadWrite,
        _ => RaceKind::WriteRead,
    }
}

/// Normalize per-shard race records per word, re-coalesce into maximal
/// runs, and sort by address then SP rank. See the module docs for why this
/// (and not the raw records) is the `K`-invariant object.
fn merge_shards(
    shards: &[ShardOutcome],
    reach: &FrozenReach,
    spans: Option<&EventSpans>,
) -> MergedReport {
    let _span = stint_obs::span("batchdet.merge");
    OBS_MERGES.incr();
    let mut triples: Vec<(u8, u32, u32, u64)> = Vec::new();
    let mut words: BTreeSet<u64> = BTreeSet::new();
    for sh in shards {
        for r in sh.report.races() {
            for w in r.word_lo..r.word_hi {
                triples.push((kind_code(r.kind), r.prev.0, r.cur.0, w));
            }
        }
        words.extend(sh.report.racy_words());
    }
    triples.sort_unstable();
    triples.dedup();
    let mut regions: Vec<Race> = Vec::new();
    for (k, p, c, w) in triples {
        if let Some(lastr) = regions.last_mut() {
            if kind_code(lastr.kind) == k
                && lastr.prev.0 == p
                && lastr.cur.0 == c
                && lastr.word_hi == w
            {
                lastr.word_hi = w + 1;
                continue;
            }
        }
        regions.push(Race::new(kind_from(k), w, w + 1, StrandId(p), StrandId(c)));
    }
    regions.sort_by_key(|r| {
        (
            r.word_lo,
            r.word_hi,
            reach.english_rank(r.prev),
            reach.english_rank(r.cur),
            kind_code(r.kind),
        )
    });
    // Merge-time witness attachment: a deterministic function of the
    // (pair, global span table, frozen orders) triple — identical no matter
    // how the regions fragmented across shards. Memoized per strand pair.
    if let Some(spans) = spans {
        let mut memo: std::collections::HashMap<(u32, u32), Witness> =
            std::collections::HashMap::new();
        for r in &mut regions {
            let w = memo
                .entry((r.prev.0, r.cur.0))
                .or_insert_with(|| Witness::from_spans(reach, spans, r.prev, r.cur));
            r.witness = Some(Box::new(w.clone()));
        }
    }
    MergedReport {
        regions,
        racy_words: words.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint::{detect, Cilk, CilkProgram, Trace, Variant};

    /// Two parallel writers overlapping across a wide range plus a free —
    /// exercises range clipping, strand-end skipping, and tombstones.
    struct WideRacy;
    impl CilkProgram for WideRacy {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| {
                c.store_range(0x100, 64);
                c.load(0x200, 8);
            });
            ctx.store_range(0x120, 64);
            ctx.sync();
            ctx.free(0x100, 32);
            ctx.spawn(|c| c.store(0x104, 4));
            ctx.load(0x104, 4);
            ctx.sync();
        }
    }

    struct CleanFanout;
    impl CilkProgram for CleanFanout {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            for i in 0..6usize {
                ctx.spawn(move |c| {
                    c.store_range(0x1000 + i * 128, 128);
                    c.load_range(0x1000 + i * 128, 128);
                });
            }
            ctx.sync();
            ctx.load_range(0x1000, 6 * 128);
        }
    }

    fn cfg(shards: usize, workers: usize, seed: u64) -> BatchConfig {
        BatchConfig {
            shards,
            workers,
            steal_seed: seed,
            witnesses: false,
        }
    }

    fn compress(pt: &PortableTrace, chunk: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        pt.save_compressed(&mut buf, chunk).unwrap();
        buf
    }

    #[test]
    fn batch_matches_sequential_racy_words_for_any_shard_count() {
        let pt = PortableTrace::record(&mut WideRacy);
        let expected = detect(&mut WideRacy, Variant::Stint).report.racy_words();
        assert!(!expected.is_empty());
        for k in [1, 2, 3, 7, 16] {
            let out = batch_detect(&pt, &cfg(k, 2, 0)).unwrap();
            assert_eq!(out.merged.racy_words, expected, "K={k}");
            assert!(out.degraded.is_none());
            assert_eq!(out.shards.len(), k);
        }
    }

    #[test]
    fn render_is_invariant_in_shards_workers_and_seed() {
        let pt = PortableTrace::record(&mut WideRacy);
        let baseline = batch_detect(&pt, &cfg(1, 1, 0)).unwrap().merged.render();
        for (k, w, seed) in [(2, 1, 0), (4, 3, 0), (4, 3, 0xDEAD_BEEF), (9, 2, 7)] {
            let got = batch_detect(&pt, &cfg(k, w, seed)).unwrap().merged.render();
            assert_eq!(got, baseline, "K={k} workers={w} seed={seed}");
        }
    }

    #[test]
    fn chunked_streaming_matches_in_memory_for_any_chunk_size() {
        let pt = PortableTrace::record(&mut WideRacy);
        let baseline = batch_detect(&pt, &cfg(4, 2, 0)).unwrap();
        for chunk in [1usize, 3, 16, 100_000] {
            let buf = compress(&pt, chunk);
            let out = batch_detect_chunked(&buf[..], &cfg(4, 2, 0)).unwrap();
            assert_eq!(
                out.merged.render(),
                baseline.merged.render(),
                "chunk={chunk}"
            );
            let ing = out.ingest.expect("chunked runs report ingest stats");
            assert_eq!(ing.events, pt.trace.len() as u64);
            assert!(ing.bytes > 0);
            assert!(ing.chunks > 0);
            assert_eq!(out.events, pt.trace.len());
        }
    }

    /// Strided parallel writers: the compressed form coalesces each
    /// strand's sweep into runs the streaming path can consume wholesale.
    struct StridedRacy;
    impl CilkProgram for StridedRacy {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| {
                for i in 0..64usize {
                    c.store(0x1000 + i * 8, 8);
                }
            });
            for i in 0..64usize {
                c_load(ctx, 0x1000 + i * 8, 8);
            }
            ctx.sync();
        }
    }
    fn c_load<C: Cilk>(c: &mut C, a: usize, b: usize) {
        c.load(a, b);
    }

    #[test]
    fn wholesale_run_consumption_matches_expanded_replay() {
        let pt = PortableTrace::record(&mut StridedRacy);
        let expected = batch_detect(&pt, &cfg(3, 2, 0)).unwrap();
        let buf = compress(&pt, 64);
        let out = batch_detect_chunked(&buf[..], &cfg(3, 2, 0)).unwrap();
        assert_eq!(out.merged.render(), expected.merged.render());
        let ing = out.ingest.unwrap();
        assert!(
            ing.wholesale_runs > 0,
            "strided sweeps must be consumed wholesale"
        );
        // Wholesale consumption is the work win: the detectors touch far
        // fewer events than the trace holds.
        let touched: u64 = out.shards.iter().map(|s| s.events).sum();
        assert!(
            touched < ing.events / 2,
            "touched {touched} not well below {} decoded events",
            ing.events
        );
    }

    #[test]
    fn k1_partition_work_is_within_sequential_work() {
        // The tentpole's work bound: at K=1 the shard must touch no more
        // events than the trace holds (no clip-per-shard rescans).
        let pt = PortableTrace::record(&mut WideRacy);
        let out = batch_detect(&pt, &cfg(1, 1, 0)).unwrap();
        assert_eq!(out.shards.len(), 1);
        assert!(
            out.shards[0].events <= pt.trace.len() as u64,
            "K=1 routed {} > {} trace events",
            out.shards[0].events,
            pt.trace.len()
        );
    }

    #[test]
    fn partition_balances_skewed_traces() {
        // 90% of events in the low quarter of the span, 10% spread over the
        // rest: equal-width sharding would hand almost everything to shard
        // 0; quantile boundaries must cut inside the hot region. (The hot
        // region spans many histogram buckets on purpose — a single bucket
        // is indivisible.)
        struct Skewed;
        impl CilkProgram for Skewed {
            fn run<C: Cilk>(&mut self, ctx: &mut C) {
                ctx.spawn(|c| {
                    for i in 0..360usize {
                        c.store(0x1000 + (i % 1024) * 8, 4);
                    }
                });
                for i in 0..40usize {
                    ctx.load(0x4000 + i * 0x400, 4);
                }
                ctx.sync();
            }
        }
        let pt = PortableTrace::record(&mut Skewed);
        let out = batch_detect(&pt, &cfg(4, 2, 0)).unwrap();
        let events: Vec<u64> = out.shards.iter().map(|s| s.events).collect();
        let max = *events.iter().max().unwrap();
        let total: u64 = events.iter().sum();
        assert!(
            max <= total * 3 / 4,
            "one shard hogs the work: {events:?} (quantile balance failed)"
        );
    }

    #[test]
    fn race_free_program_stays_race_free() {
        let pt = PortableTrace::record(&mut CleanFanout);
        let out = batch_detect(&pt, &cfg(5, 2, 0)).unwrap();
        assert!(out.merged.is_race_free());
        assert!(out.merged.racy_words.is_empty());
        // Every access event lands in at least one shard.
        let routed: u64 = out.shards.iter().map(|s| s.events).sum();
        let accesses = pt
            .trace
            .events
            .iter()
            .filter(|e| e.op != TraceOp::StrandEnd)
            .count() as u64;
        assert!(routed >= accesses, "routed {routed} < accesses {accesses}");
    }

    #[test]
    fn empty_trace_is_handled() {
        let pt = PortableTrace {
            trace: Trace::default(),
            reach: FrozenReach::from_ranks(vec![0], vec![0]),
        };
        let out = batch_detect(&pt, &cfg(4, 1, 0)).unwrap();
        assert!(out.merged.is_race_free());
        assert_eq!(out.events, 0);
        // And the chunked path agrees on an empty compressed trace.
        let buf = compress(&pt, 16);
        let out = batch_detect_chunked(&buf[..], &cfg(4, 1, 0)).unwrap();
        assert!(out.merged.is_race_free());
        assert_eq!(out.events, 0);
    }

    #[test]
    fn merged_stats_sum_shard_work() {
        let pt = PortableTrace::record(&mut CleanFanout);
        let out = batch_detect(&pt, &cfg(3, 2, 0)).unwrap();
        assert!(out.stats.treap.ops > 0);
        assert!(out.stats.strands_flushed > 0);
        let per_shard: u64 = out.shards.iter().map(|s| s.stats.strands_flushed).sum();
        assert_eq!(out.stats.strands_flushed, per_shard);
    }

    #[test]
    fn out_of_range_strand_is_corrupt_not_a_panic() {
        let mut pt = PortableTrace::record(&mut WideRacy);
        pt.trace.events[0].strand = StrandId(10_000);
        let err = batch_detect(&pt, &cfg(2, 1, 0)).unwrap_err();
        assert!(matches!(err, DetectorError::CorruptTrace { .. }), "{err}");
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn load_trace_rejects_garbage_as_corrupt() {
        for bad in [
            "",
            "WRONG MAGIC\n",
            "STINT-TRACE v3\nstrands 0\nevents 0\n",
            "STINT-TRACE v2\nstrands 0\nevents 0\n",
            "STINT-TRACE v1\nstrands 1\n0 0\nevents 1\ns 99 0x40 4\n",
        ] {
            let err = load_trace(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, DetectorError::CorruptTrace { .. }), "{bad:?}");
            assert_eq!(err.exit_code(), 4, "{bad:?}");
        }
    }

    #[test]
    fn chunked_rejects_corrupted_streams_as_corrupt() {
        let pt = PortableTrace::record(&mut WideRacy);
        let buf = compress(&pt, 8);
        for frac in [1usize, 4, 7] {
            let cut = buf.len() * frac / 8;
            let err = batch_detect_chunked(&buf[..cut], &cfg(2, 1, 0)).unwrap_err();
            assert!(
                matches!(err, DetectorError::CorruptTrace { .. }),
                "truncation at {cut}: {err}"
            );
            assert_eq!(err.exit_code(), 4);
        }
        let mut flipped = buf.clone();
        let at = flipped.len() / 2;
        flipped[at] ^= 0x20;
        let err = batch_detect_chunked(&flipped[..], &cfg(2, 1, 0)).unwrap_err();
        assert!(matches!(err, DetectorError::CorruptTrace { .. }), "{err}");
    }

    #[test]
    fn witnessed_merge_is_k_invariant_and_verifiable() {
        let pt = PortableTrace::record(&mut WideRacy);
        let wcfg = |k| BatchConfig {
            shards: k,
            workers: 2,
            steal_seed: 0,
            witnesses: true,
        };
        let baseline = batch_detect(&pt, &wcfg(1)).unwrap().merged;
        assert!(!baseline.regions.is_empty());
        assert!(baseline.regions.iter().all(|r| r.witness.is_some()));
        // Every merge-time witness validates independently, trace included.
        let checker = stint::WitnessChecker::new(&pt.reach).with_trace(&pt.trace);
        for r in &baseline.regions {
            checker.check(r).unwrap();
        }
        // Byte-identical across K with witnesses on (render carries them).
        for k in [2, 7, 16] {
            let got = batch_detect(&pt, &wcfg(k)).unwrap().merged;
            assert_eq!(got.render(), baseline.render(), "K={k}");
            assert_eq!(got, baseline, "K={k}");
        }
        assert!(baseline.render().contains(" w prev=s"));
        // The chunked streaming path attaches identical witnesses.
        for chunk in [1usize, 8] {
            let buf = compress(&pt, chunk);
            let got = batch_detect_chunked(&buf[..], &wcfg(4)).unwrap().merged;
            assert_eq!(got.render(), baseline.render(), "chunk={chunk}");
        }
        // to_report keeps the witnesses on the rebuilt records.
        let rep = baseline.to_report();
        assert!(rep.races().iter().all(|r| r.witness.is_some()));
    }

    #[test]
    fn to_report_round_trips_the_merge() {
        let pt = PortableTrace::record(&mut WideRacy);
        let out = batch_detect(&pt, &cfg(4, 2, 0)).unwrap();
        let rep = out.merged.to_report();
        assert_eq!(rep.racy_words(), out.merged.racy_words);
        assert_eq!(rep.races().len(), out.merged.regions.len());
    }
}
