//! Sharded batch-mode race detection over recorded traces.
//!
//! The on-the-fly detectors in `stint` interleave detection with the
//! program's own execution on a single thread. This crate runs detection as
//! a **batch job** in two phases:
//!
//! 1. **Replay control flow sequentially** (or load a saved trace): the
//!    result is a [`PortableTrace`] — the full instrumentation stream plus a
//!    [`FrozenReach`] snapshot of SP-Order. After this phase the
//!    `series`/`parallel`/`left_of` relation is *read-only*: every query is
//!    a pair of rank comparisons on immutable vectors, safe to share across
//!    threads with no synchronization.
//! 2. **Fan the memory accesses out over address shards**: the 4-byte-word
//!    address space touched by the trace is split into `K` contiguous
//!    ranges, and each shard replays the subsequence of access events that
//!    overlaps its range (clipped at the shard boundary) through a private
//!    STINT interval detector. Shards run as fork-join tasks on the
//!    `stint-cilkrt` work-stealing pool.
//!
//! # Why address sharding preserves the race set
//!
//! The access history is keyed by address: whether two accesses race
//! depends only on the per-word history of that word and the (frozen)
//! SP-Order relation, never on accesses to other words. Routing each word's
//! events to exactly one shard therefore preserves, per word, the exact
//! event subsequence the sequential detector saw — in the same order, with
//! the same strand boundaries. The only differences are (a) interval
//! *fragmentation* (a range access straddling a shard boundary becomes two
//! clipped ranges) and (b) *delayed* strand-end flushes in shards where a
//! strand was clean (skipped via a dirty flag) — both are per-word no-ops:
//! same-strand entries never conflict (`parallel(s, s)` is false) and
//! per-word insert semantics are idempotent for the same strand. Hence the
//! per-word set of race triples `(word, kind, prev, cur)` is invariant in
//! `K`, which is exactly what the differential battery in
//! `tests/prop_batchdet.rs` checks.
//!
//! # Deterministic merge
//!
//! Raw per-shard race *records* are **not** invariant in `K` (the same racy
//! region fragments differently at different shard boundaries), so the
//! merged report is normalized per word and re-coalesced into maximal runs,
//! then sorted by address and SP rank ([`FrozenReach::english_rank`]). The
//! canonical [`MergedReport::render`] bytes are identical regardless of
//! shard count, worker count, or steal order — the metamorphic invariance
//! tests diff them directly.
//!
//! ```
//! use stint::{Cilk, CilkProgram, PortableTrace};
//! use stint_batchdet::{batch_detect, BatchConfig};
//!
//! struct Racy;
//! impl CilkProgram for Racy {
//!     fn run<C: Cilk>(&mut self, ctx: &mut C) {
//!         ctx.spawn(|c| c.store(0x40, 8));
//!         ctx.store(0x44, 4);
//!         ctx.sync();
//!     }
//! }
//!
//! let pt = PortableTrace::record(&mut Racy);
//! let out = batch_detect(&pt, &BatchConfig::default()).unwrap();
//! assert!(!out.merged.is_race_free());
//! ```

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use stint::{
    Detector, DetectorError, DetectorStats, PortableTrace, Race, RaceKind, RaceReport,
    StintDetector, Trace, TraceOp,
};
use stint_cilk::word_range;
use stint_cilkrt::ThreadPool;
use stint_obs::{Counter, Gauge};
use stint_sporder::{FrozenReach, StrandId};

static OBS_SHARD_RUNS: Counter = Counter::new("batchdet.shard.runs");
static OBS_SHARD_EVENTS: Counter = Counter::new("batchdet.shard.events");
static OBS_SHARD_RACES: Counter = Counter::new("batchdet.shard.races");
static OBS_MERGES: Counter = Counter::new("batchdet.merges");
/// Live access-history bytes held by in-flight shard detectors. Reconciled
/// back to zero when each shard's detector is dropped, so the gauge reads 0
/// after every batch run; its high-water mark records the peak.
static OBS_SHARD_BYTES: Gauge = Gauge::new("batchdet.shard.bytes");

/// Configuration for a batch detection run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of contiguous address shards (`K`). At least 1.
    pub shards: usize,
    /// Worker threads for the pool; `0` means one per hardware thread.
    pub workers: usize,
    /// Seed perturbing each worker's initial steal victim
    /// ([`ThreadPool::with_seed`]); `0` keeps the default order. The merged
    /// report is invariant in this — that is the point of the knob.
    pub steal_seed: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            shards: 4,
            workers: 0,
            steal_seed: 0,
        }
    }
}

/// One shard's contiguous word range `[word_lo, word_hi)`.
#[derive(Clone, Copy, Debug)]
struct Shard {
    index: usize,
    word_lo: u64,
    word_hi: u64,
}

/// What one shard's private detector saw.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    pub index: usize,
    /// The shard's word range `[word_lo, word_hi)`.
    pub word_lo: u64,
    pub word_hi: u64,
    /// Access/free events routed to this shard (after clipping).
    pub events: u64,
    /// Per-shard report (unbounded — see [`RaceReport::unbounded`]).
    pub report: RaceReport,
    pub stats: DetectorStats,
    /// First structured failure of the shard's detector (degraded soundly),
    /// e.g. an injected shadow cap.
    pub failure: Option<DetectorError>,
}

/// The canonical merged report: per-word-normalized race regions plus the
/// exact racy-word set, both deterministic functions of the trace alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MergedReport {
    /// Maximal-run race regions, sorted by `(word_lo, word_hi,
    /// english_rank(prev), english_rank(cur), kind)`.
    pub regions: Vec<Race>,
    /// The exact set of racy words, sorted.
    pub racy_words: Vec<u64>,
}

impl MergedReport {
    pub fn is_race_free(&self) -> bool {
        self.regions.is_empty()
    }

    /// Canonical text rendering — byte-identical across shard counts,
    /// worker counts, and steal schedules (the metamorphic tests diff it).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        s.push_str("STINT-BATCH-REPORT v1\n");
        let _ = writeln!(s, "racy-words {}", self.racy_words.len());
        for w in &self.racy_words {
            let _ = writeln!(s, "w {w:#x}");
        }
        let _ = writeln!(s, "regions {}", self.regions.len());
        for r in &self.regions {
            let _ = writeln!(
                s,
                "{} [{:#x},{:#x}) prev {} cur {}",
                r.kind, r.word_lo, r.word_hi, r.prev.0, r.cur.0
            );
        }
        s
    }

    /// Rebuild a [`RaceReport`] from the normalized regions, so existing
    /// report printers work on merged output.
    pub fn to_report(&self) -> RaceReport {
        let mut rep = RaceReport::unbounded(true);
        for r in &self.regions {
            rep.add(r.kind, r.word_lo, r.word_hi, r.prev, r.cur);
        }
        rep
    }
}

/// Result of a batch detection run.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardOutcome>,
    pub merged: MergedReport,
    /// Sum of the per-shard detector statistics.
    pub stats: DetectorStats,
    /// Total trace events (before routing).
    pub events: usize,
    pub strands: usize,
    /// Wall-clock time of the sharded phase (fan-out + detection).
    pub wall: Duration,
    /// First per-shard structured failure, by shard index, if any. The
    /// merged report is sound but only complete up to the failure point.
    pub degraded: Option<DetectorError>,
}

fn corrupt(detail: String) -> DetectorError {
    DetectorError::CorruptTrace { detail }
}

/// Parse **and validate** a `STINT-TRACE v1` stream for batch replay.
/// Truncated, bit-flipped, or wrong-version input comes back as a
/// structured [`DetectorError::CorruptTrace`] (exit code 4), never a panic.
pub fn load_trace<R: std::io::BufRead>(r: R) -> Result<PortableTrace, DetectorError> {
    let pt = PortableTrace::load(r).map_err(|e| corrupt(e.to_string()))?;
    pt.validate().map_err(corrupt)?;
    Ok(pt)
}

/// Batch-detect on a fresh pool built from `cfg` (worker count and steal
/// seed). See [`batch_detect_on`].
pub fn batch_detect(pt: &PortableTrace, cfg: &BatchConfig) -> Result<BatchOutcome, DetectorError> {
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.workers
    };
    let pool = ThreadPool::with_seed(workers, cfg.steal_seed);
    batch_detect_on(&pool, pt, cfg)
}

/// Phase 2: fan the trace's access events out over `cfg.shards` address
/// shards on `pool`, then merge deterministically.
///
/// The trace is validated first — a syntactically well-formed file whose
/// strand ids or ranges were corrupted is rejected as
/// [`DetectorError::CorruptTrace`] instead of indexing out of bounds. An
/// injected detector panic inside a shard surfaces as
/// [`DetectorError::Poisoned`] via the typed-panic protocol.
pub fn batch_detect_on(
    pool: &ThreadPool,
    pt: &PortableTrace,
    cfg: &BatchConfig,
) -> Result<BatchOutcome, DetectorError> {
    pt.validate().map_err(corrupt)?;
    let shards = partition(&pt.trace, cfg.shards);
    let trace = &pt.trace;
    let reach = &pt.reach;
    let t0 = Instant::now();
    let mut slots: Vec<Option<ShardOutcome>> = (0..shards.len()).map(|_| None).collect();
    catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| fan_out(pool, trace, reach, &shards, &mut slots));
    }))
    .map_err(DetectorError::from_panic)?;
    let wall = t0.elapsed();
    let outs: Vec<ShardOutcome> = slots
        .into_iter()
        .map(|s| s.expect("fan_out fills every shard slot"))
        .collect();
    let merged = merge_shards(&outs, reach);
    let mut stats = DetectorStats::default();
    for o in &outs {
        stats.merge(&o.stats);
    }
    let degraded = outs.iter().find_map(|o| o.failure.clone());
    Ok(BatchOutcome {
        merged,
        stats,
        events: pt.trace.len(),
        strands: pt.reach.strand_count(),
        wall,
        degraded,
        shards: outs,
    })
}

/// Word bounds `[lo, hi)` over all access/free events, or `None` if the
/// trace touches no memory.
fn word_bounds(trace: &Trace) -> Option<(u64, u64)> {
    let mut bounds: Option<(u64, u64)> = None;
    for e in &trace.events {
        if e.op == TraceOp::StrandEnd {
            continue;
        }
        let (lo, hi) = word_range(e.addr, e.bytes);
        bounds = Some(match bounds {
            None => (lo, hi),
            Some((a, b)) => (a.min(lo), b.max(hi)),
        });
    }
    bounds
}

/// Split the touched word space into `k` contiguous shards. Trailing shards
/// may be empty when the space is narrower than `k` words.
fn partition(trace: &Trace, k: usize) -> Vec<Shard> {
    let k = k.max(1);
    let Some((lo, hi)) = word_bounds(trace) else {
        // No memory accesses at all: k empty shards, so the shard count
        // (and the per-shard telemetry shape) is always what was asked for.
        return (0..k)
            .map(|i| Shard {
                index: i,
                word_lo: 0,
                word_hi: 0,
            })
            .collect();
    };
    let span = hi - lo;
    let width = (span / k as u64 + u64::from(span % k as u64 != 0)).max(1);
    (0..k)
        .map(|i| {
            let slo = (lo + width * i as u64).min(hi);
            let shi = slo.saturating_add(width).min(hi);
            Shard {
                index: i,
                word_lo: slo,
                word_hi: shi,
            }
        })
        .collect()
}

/// Recursive binary fan-out of the shard list over the pool's `join`.
/// `slots[i]` receives shard `shards[i]`'s outcome, so the result order is
/// the shard order no matter which worker ran what.
fn fan_out(
    pool: &ThreadPool,
    trace: &Trace,
    reach: &FrozenReach,
    shards: &[Shard],
    slots: &mut [Option<ShardOutcome>],
) {
    debug_assert_eq!(shards.len(), slots.len());
    match shards.len() {
        0 => {}
        1 => slots[0] = Some(run_shard(trace, reach, shards[0])),
        n => {
            let mid = n / 2;
            let (s_lo, s_hi) = shards.split_at(mid);
            let (o_lo, o_hi) = slots.split_at_mut(mid);
            pool.join(
                || fan_out(pool, trace, reach, s_lo, o_lo),
                || fan_out(pool, trace, reach, s_hi, o_hi),
            );
        }
    }
}

/// Replay the events overlapping one shard's word range through a private
/// STINT detector.
fn run_shard(trace: &Trace, reach: &FrozenReach, shard: Shard) -> ShardOutcome {
    let _span = stint_obs::span("batchdet.shard");
    OBS_SHARD_RUNS.incr();
    let mut det = StintDetector::new(RaceReport::unbounded(true));
    // Set when this shard holds unflushed accesses of the current strand;
    // strand ends in shards the strand never touched skip the detector call
    // entirely. Delayed flushing is per-word equivalent (module docs).
    let mut dirty = false;
    let mut routed = 0u64;
    let mut last = StrandId(0);
    for e in &trace.events {
        last = e.strand;
        if e.op == TraceOp::StrandEnd {
            if dirty {
                det.strand_end(e.strand, reach);
                dirty = false;
            }
            continue;
        }
        let (lo, hi) = word_range(e.addr, e.bytes);
        let lo = lo.max(shard.word_lo);
        let hi = hi.min(shard.word_hi);
        if lo >= hi {
            continue;
        }
        routed += 1;
        // Synthesize a word-aligned byte range that `word_range` maps back
        // to exactly the clipped `[lo, hi)`.
        let addr = (lo * 4) as usize;
        let bytes = ((hi - lo) * 4) as usize;
        match e.op {
            TraceOp::Load => det.load(e.strand, addr, bytes, reach),
            TraceOp::Store => det.store(e.strand, addr, bytes, reach),
            TraceOp::LoadRange => det.load_range(e.strand, addr, bytes, reach),
            TraceOp::StoreRange => det.store_range(e.strand, addr, bytes, reach),
            TraceOp::Free => {
                // `free` flushes the strand's pending accesses itself
                // before tombstoning the range.
                det.free(e.strand, addr, bytes, reach);
                dirty = false;
            }
            TraceOp::StrandEnd => unreachable!(),
        }
        if e.op != TraceOp::Free {
            dirty = true;
        }
    }
    det.finish(last, reach);
    let mut owned = 0u64;
    OBS_SHARD_BYTES.reconcile(&mut owned, det.stats.ah_bytes + det.stats.coalesce_bytes);
    OBS_SHARD_EVENTS.add(routed);
    OBS_SHARD_RACES.add(det.report.total);
    let failure = Detector::<FrozenReach>::failure(&det);
    let out = ShardOutcome {
        index: shard.index,
        word_lo: shard.word_lo,
        word_hi: shard.word_hi,
        events: routed,
        report: det.report,
        stats: det.stats,
        failure,
    };
    OBS_SHARD_BYTES.reconcile(&mut owned, 0);
    out
}

fn kind_code(k: RaceKind) -> u8 {
    match k {
        RaceKind::WriteWrite => 0,
        RaceKind::ReadWrite => 1,
        RaceKind::WriteRead => 2,
    }
}

fn kind_from(c: u8) -> RaceKind {
    match c {
        0 => RaceKind::WriteWrite,
        1 => RaceKind::ReadWrite,
        _ => RaceKind::WriteRead,
    }
}

/// Normalize per-shard race records per word, re-coalesce into maximal
/// runs, and sort by address then SP rank. See the module docs for why this
/// (and not the raw records) is the `K`-invariant object.
fn merge_shards(shards: &[ShardOutcome], reach: &FrozenReach) -> MergedReport {
    let _span = stint_obs::span("batchdet.merge");
    OBS_MERGES.incr();
    let mut triples: Vec<(u8, u32, u32, u64)> = Vec::new();
    let mut words: BTreeSet<u64> = BTreeSet::new();
    for sh in shards {
        for r in sh.report.races() {
            for w in r.word_lo..r.word_hi {
                triples.push((kind_code(r.kind), r.prev.0, r.cur.0, w));
            }
        }
        words.extend(sh.report.racy_words());
    }
    triples.sort_unstable();
    triples.dedup();
    let mut regions: Vec<Race> = Vec::new();
    for (k, p, c, w) in triples {
        if let Some(lastr) = regions.last_mut() {
            if kind_code(lastr.kind) == k
                && lastr.prev.0 == p
                && lastr.cur.0 == c
                && lastr.word_hi == w
            {
                lastr.word_hi = w + 1;
                continue;
            }
        }
        regions.push(Race {
            kind: kind_from(k),
            word_lo: w,
            word_hi: w + 1,
            prev: StrandId(p),
            cur: StrandId(c),
        });
    }
    regions.sort_by_key(|r| {
        (
            r.word_lo,
            r.word_hi,
            reach.english_rank(r.prev),
            reach.english_rank(r.cur),
            kind_code(r.kind),
        )
    });
    MergedReport {
        regions,
        racy_words: words.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint::{detect, Cilk, CilkProgram, Variant};

    /// Two parallel writers overlapping across a wide range plus a free —
    /// exercises range clipping, strand-end skipping, and tombstones.
    struct WideRacy;
    impl CilkProgram for WideRacy {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| {
                c.store_range(0x100, 64);
                c.load(0x200, 8);
            });
            ctx.store_range(0x120, 64);
            ctx.sync();
            ctx.free(0x100, 32);
            ctx.spawn(|c| c.store(0x104, 4));
            ctx.load(0x104, 4);
            ctx.sync();
        }
    }

    struct CleanFanout;
    impl CilkProgram for CleanFanout {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            for i in 0..6usize {
                ctx.spawn(move |c| {
                    c.store_range(0x1000 + i * 128, 128);
                    c.load_range(0x1000 + i * 128, 128);
                });
            }
            ctx.sync();
            ctx.load_range(0x1000, 6 * 128);
        }
    }

    fn cfg(shards: usize, workers: usize, seed: u64) -> BatchConfig {
        BatchConfig {
            shards,
            workers,
            steal_seed: seed,
        }
    }

    #[test]
    fn batch_matches_sequential_racy_words_for_any_shard_count() {
        let pt = PortableTrace::record(&mut WideRacy);
        let expected = detect(&mut WideRacy, Variant::Stint).report.racy_words();
        assert!(!expected.is_empty());
        for k in [1, 2, 3, 7, 16] {
            let out = batch_detect(&pt, &cfg(k, 2, 0)).unwrap();
            assert_eq!(out.merged.racy_words, expected, "K={k}");
            assert!(out.degraded.is_none());
            assert_eq!(out.shards.len(), k);
        }
    }

    #[test]
    fn render_is_invariant_in_shards_workers_and_seed() {
        let pt = PortableTrace::record(&mut WideRacy);
        let baseline = batch_detect(&pt, &cfg(1, 1, 0)).unwrap().merged.render();
        for (k, w, seed) in [(2, 1, 0), (4, 3, 0), (4, 3, 0xDEAD_BEEF), (9, 2, 7)] {
            let got = batch_detect(&pt, &cfg(k, w, seed)).unwrap().merged.render();
            assert_eq!(got, baseline, "K={k} workers={w} seed={seed}");
        }
    }

    #[test]
    fn race_free_program_stays_race_free() {
        let pt = PortableTrace::record(&mut CleanFanout);
        let out = batch_detect(&pt, &cfg(5, 2, 0)).unwrap();
        assert!(out.merged.is_race_free());
        assert!(out.merged.racy_words.is_empty());
        // Every access event lands in at least one shard.
        let routed: u64 = out.shards.iter().map(|s| s.events).sum();
        let accesses = pt
            .trace
            .events
            .iter()
            .filter(|e| e.op != TraceOp::StrandEnd)
            .count() as u64;
        assert!(routed >= accesses, "routed {routed} < accesses {accesses}");
    }

    #[test]
    fn empty_trace_is_handled() {
        let pt = PortableTrace {
            trace: Trace::default(),
            reach: FrozenReach::from_ranks(vec![0], vec![0]),
        };
        let out = batch_detect(&pt, &cfg(4, 1, 0)).unwrap();
        assert!(out.merged.is_race_free());
        assert_eq!(out.events, 0);
    }

    #[test]
    fn merged_stats_sum_shard_work() {
        let pt = PortableTrace::record(&mut CleanFanout);
        let out = batch_detect(&pt, &cfg(3, 2, 0)).unwrap();
        assert!(out.stats.treap.ops > 0);
        assert!(out.stats.strands_flushed > 0);
        let per_shard: u64 = out.shards.iter().map(|s| s.stats.strands_flushed).sum();
        assert_eq!(out.stats.strands_flushed, per_shard);
    }

    #[test]
    fn out_of_range_strand_is_corrupt_not_a_panic() {
        let mut pt = PortableTrace::record(&mut WideRacy);
        pt.trace.events[0].strand = StrandId(10_000);
        let err = batch_detect(&pt, &cfg(2, 1, 0)).unwrap_err();
        assert!(matches!(err, DetectorError::CorruptTrace { .. }), "{err}");
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn load_trace_rejects_garbage_as_corrupt() {
        for bad in [
            "",
            "WRONG MAGIC\n",
            "STINT-TRACE v2\nstrands 0\nevents 0\n",
            "STINT-TRACE v1\nstrands 1\n0 0\nevents 1\ns 99 0x40 4\n",
        ] {
            let err = load_trace(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, DetectorError::CorruptTrace { .. }), "{bad:?}");
            assert_eq!(err.exit_code(), 4, "{bad:?}");
        }
    }

    #[test]
    fn to_report_round_trips_the_merge() {
        let pt = PortableTrace::record(&mut WideRacy);
        let out = batch_detect(&pt, &cfg(4, 2, 0)).unwrap();
        let rep = out.merged.to_report();
        assert_eq!(rep.racy_words(), out.merged.racy_words);
        assert_eq!(rep.races().len(), out.merged.regions.len());
    }
}
