//! Parallel **online** detection against the live DePa substrate.
//!
//! The batch paths in this crate replay a *recorded* trace against a
//! [`stint_sporder::FrozenReach`] snapshot — reachability is immutable because execution is
//! over. This module removes the recording round-trip: the program executes
//! once under the sequential fork-join executor maintaining a
//! [`DePaReach`], and the instrumentation stream is detected **while the
//! program runs**, fanned out over the work-stealing pool in
//! bulk-synchronous chunks.
//!
//! The move that makes this sound is DePa's relabel-freedom: a strand's
//! depth-vector timestamp is assigned when the strand is created and never
//! rewritten, so `series`/`parallel`/`left_of` queries on *published*
//! strands are plain reads of immutable memory — safe to run from every
//! pool worker concurrently with no locks, while SP-Order's amortized
//! OM-list relabeling would invalidate concurrent readers mid-query. The
//! executor is paused inside a detector hook for the whole fan-out (bulk
//! synchrony), so no timestamp is *created* while workers query; every
//! strand id a buffered event mentions is already published.
//!
//! # Determinism
//!
//! The merged report is the same [`MergedReport`] normalization the batch
//! tier renders: per-word race triples, deduplicated, re-coalesced into
//! maximal runs and sorted by `(address, english rank)`. Chunking, shard
//! count, worker count and steal seed only change *which detector instance*
//! observes each per-word subsequence — never the per-word subsequence
//! itself — so the rendered bytes are identical to a one-worker run for any
//! `(workers, steal_seed, chunk_events)` choice, and the racy-interval set
//! equals what sequential STINT computes on the same program (the
//! differential battery in `tests/prop_detectors.rs` diffs both).
//!
//! # Degradation
//!
//! The exit-code contract matches the sequential and batch tiers exactly:
//! a per-shard budget trip makes that shard's detector go *dead* (sound but
//! partial) and surfaces as `degraded = ResourceExhausted` (exit 3); a
//! worker panic during a fan-out is caught at the leaf, rethrown once the
//! pool is quiescent, and poisons the whole run as
//! [`DetectorError::Poisoned`] (exit 4) — no partially-merged report is
//! published for a poisoned run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use stint::ctrace::partition_index;
use stint::{
    run_with_detector_r, CilkProgram, DePaReach, Detector, DetectorError, DetectorStats,
    EventSpans, ExecCounters, ResourceBudget, Trace, TraceEvent, TraceOp,
};
use stint_cilkrt::ThreadPool;
use stint_obs::Counter;
use stint_sporder::StrandId;

use crate::{
    fan_out, merge_shards, plan_shards, route_event, take_poison, MergedReport, Router,
    ShardOutcome, ShardState,
};

/// Bulk-synchronous merge cycles completed by the parallel-online engine
/// (one per chunk fan-out plus one for the final flush).
static OBS_DEPA_MERGES: Counter = Counter::new("depa.merges");

/// Configuration for a parallel online detection run.
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Number of contiguous address shards (`K`). At least 1.
    pub shards: usize,
    /// Worker threads for the pool; `0` means one per hardware thread.
    pub workers: usize,
    /// Steal-victim perturbation seed ([`ThreadPool::with_seed`]). The
    /// rendered report is invariant in this — that is the point of the knob.
    pub steal_seed: u64,
    /// Events buffered between bulk-synchronous fan-outs. Smaller chunks
    /// bound the buffered footprint; larger chunks amortize pool wake-ups.
    pub chunk_events: usize,
    /// Attach merge-time witnesses (see [`crate::BatchConfig::witnesses`]).
    pub witnesses: bool,
    /// Budget applied to every shard detector.
    pub budget: ResourceBudget,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            shards: 4,
            workers: 0,
            steal_seed: 0,
            chunk_events: 4096,
            witnesses: false,
            budget: ResourceBudget::default(),
        }
    }
}

/// Result of a parallel online run — the online analogue of
/// [`crate::BatchOutcome`].
#[derive(Clone, Debug)]
pub struct OnlineOutcome {
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardOutcome>,
    pub merged: MergedReport,
    /// Sum of the per-shard detector statistics.
    pub stats: DetectorStats,
    /// Instrumentation events the executor delivered (before routing).
    pub events: usize,
    pub strands: usize,
    /// Bulk-synchronous merge cycles (chunk fan-outs, final flush included).
    pub chunks: u64,
    /// Heap bytes held by the DePa substrate at finish.
    pub reach_bytes: u64,
    /// Executor counters (spawns/syncs/calls) of the instrumented run.
    pub counters: ExecCounters,
    /// Wall-clock time of the whole instrumented run (program + detection).
    pub wall: Duration,
    /// First per-shard structured failure, if any: the merged report is
    /// sound but only complete up to the failure point.
    pub degraded: Option<DetectorError>,
}

/// Shard plan materialized lazily at the first flush, once the first
/// chunk's address histogram is known.
struct Plan {
    router: Router,
    states: Vec<ShardState>,
}

/// A [`Detector`] over the live [`DePaReach`] that buffers the
/// instrumentation stream and fans each chunk out over persistent per-shard
/// [`stint::StintDetector`]s on a work-stealing pool.
///
/// Bulk-synchronous by construction: flushes happen *inside* a detector
/// hook, while the executor (and hence all timestamp maintenance) is
/// paused, so workers only ever query published, immutable timestamps.
pub struct OnlineEngine {
    cfg: OnlineConfig,
    pool: ThreadPool,
    buf: Vec<TraceEvent>,
    /// Monotone event ids for merge-time witness capture; equal to the
    /// index the event would have in a recorded trace.
    spans: Option<EventSpans>,
    ev_id: u64,
    events: usize,
    plan: Option<Plan>,
    chunks: u64,
    /// Poison captured from a fan-out: the engine is dead from here on
    /// (hooks no-op, finish publishes nothing) and [`online_detect`]
    /// rethrows it as the run's structured error.
    poisoned: Option<DetectorError>,
    outcome: Option<OnlineOutcome>,
}

impl OnlineEngine {
    pub fn new(cfg: OnlineConfig) -> OnlineEngine {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        OnlineEngine {
            pool: ThreadPool::with_seed(workers, cfg.steal_seed),
            buf: Vec::with_capacity(cfg.chunk_events.min(1 << 16)),
            spans: cfg.witnesses.then(EventSpans::default),
            ev_id: 0,
            events: 0,
            plan: None,
            chunks: 0,
            poisoned: None,
            outcome: None,
            cfg,
        }
    }

    /// The run's structured failure, if the engine was poisoned.
    pub fn poison(&self) -> Option<&DetectorError> {
        self.poisoned.as_ref()
    }

    /// Take the finished outcome (present after a non-poisoned `finish`).
    pub fn take_outcome(&mut self) -> Option<OnlineOutcome> {
        self.outcome.take()
    }

    #[inline]
    fn record(&mut self, op: TraceOp, s: StrandId, addr: usize, bytes: usize, reach: &DePaReach) {
        if self.poisoned.is_some() {
            return;
        }
        self.buf.push(TraceEvent {
            op,
            strand: s,
            addr,
            bytes,
        });
        if let Some(sp) = self.spans.as_mut() {
            sp.note(s, self.ev_id);
        }
        self.ev_id += 1;
        self.events += 1;
        if self.buf.len() >= self.cfg.chunk_events.max(1) {
            self.flush(reach);
        }
    }

    /// Route the buffered chunk and fan it out over the pool against the
    /// live substrate. The first flush plans the shards from the chunk's
    /// own partition index; later events outside the planned bounds still
    /// route deterministically (the router's last cut-point is `u64::MAX`
    /// and shard 0 extends down to word 0).
    fn flush(&mut self, reach: &DePaReach) {
        if self.buf.is_empty() || self.poisoned.is_some() {
            return;
        }
        if self.plan.is_none() {
            let mut probe = Trace::default();
            std::mem::swap(&mut probe.events, &mut self.buf);
            let (bounds, hist) = partition_index(&probe);
            std::mem::swap(&mut probe.events, &mut self.buf);
            let shards = plan_shards(bounds, &hist, self.cfg.shards);
            let states = shards
                .iter()
                .map(|&s| ShardState::new(s, self.cfg.budget))
                .collect();
            self.plan = Some(Plan {
                router: Router::new(&shards),
                states,
            });
        }
        let plan = self.plan.as_mut().expect("planned above");
        for e in self.buf.drain(..) {
            route_event(&mut plan.router, e, &mut plan.states);
        }
        let pool = &self.pool;
        let states = &mut plan.states;
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| fan_out(pool, reach, states));
        }));
        OBS_DEPA_MERGES.incr();
        self.chunks += 1;
        self.poisoned = match res {
            Err(p) => Some(DetectorError::from_panic(p)),
            Ok(()) => take_poison(states).err(),
        };
    }
}

impl Detector<DePaReach> for OnlineEngine {
    fn load(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &DePaReach) {
        self.record(TraceOp::Load, s, addr, bytes, reach);
    }
    fn store(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &DePaReach) {
        self.record(TraceOp::Store, s, addr, bytes, reach);
    }
    fn load_range(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &DePaReach) {
        self.record(TraceOp::LoadRange, s, addr, bytes, reach);
    }
    fn store_range(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &DePaReach) {
        self.record(TraceOp::StoreRange, s, addr, bytes, reach);
    }
    fn free(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &DePaReach) {
        self.record(TraceOp::Free, s, addr, bytes, reach);
    }
    fn strand_end(&mut self, s: StrandId, reach: &DePaReach) {
        self.record(TraceOp::StrandEnd, s, 0, 0, reach);
    }

    /// Final flush, per-shard finish against the live substrate, then the
    /// deterministic merge against the frozen ranks.
    fn finish(&mut self, s: StrandId, reach: &DePaReach) {
        self.record(TraceOp::StrandEnd, s, 0, 0, reach);
        self.flush(reach);
        if self.poisoned.is_some() {
            return;
        }
        let plan = match self.plan.take() {
            Some(p) => p,
            // No instrumented accesses at all: synthesize the empty shard
            // set so the outcome shape matches what was asked for.
            None => Plan {
                router: Router::new(&plan_shards(None, &[], self.cfg.shards)),
                states: plan_shards(None, &[], self.cfg.shards)
                    .iter()
                    .map(|&sh| ShardState::new(sh, self.cfg.budget))
                    .collect(),
            },
        };
        let frozen = reach.freeze();
        let outs: Vec<ShardOutcome> = plan
            .states
            .into_iter()
            .map(|st| st.finish(reach, s))
            .collect();
        let merged = merge_shards(&outs, &frozen, self.spans.as_ref());
        OBS_DEPA_MERGES.incr();
        self.chunks += 1;
        let mut stats = DetectorStats::default();
        for o in &outs {
            stats.merge(&o.stats);
        }
        let degraded = outs.iter().find_map(|o| o.failure.clone());
        self.outcome = Some(OnlineOutcome {
            merged,
            stats,
            events: self.events,
            strands: reach.strand_count(),
            chunks: self.chunks,
            reach_bytes: reach.heap_bytes(),
            counters: ExecCounters::default(),
            wall: Duration::default(),
            degraded,
            shards: outs,
        });
    }

    fn failure(&self) -> Option<DetectorError> {
        self.poisoned
            .clone()
            .or_else(|| self.outcome.as_ref().and_then(|o| o.degraded.clone()))
    }
}

/// Run `p` once under the instrumented executor on a [`DePaReach`]
/// substrate, detecting online over `cfg.workers` pool workers. Returns the
/// merged outcome, or the structured error if the run was poisoned (a
/// worker panic) or the executor itself raised (e.g. timestamp exhaustion).
pub fn online_detect<P: CilkProgram>(
    p: &mut P,
    cfg: &OnlineConfig,
) -> Result<OnlineOutcome, DetectorError> {
    let engine = OnlineEngine::new(*cfg);
    let (ex, wall) = catch_unwind(AssertUnwindSafe(|| {
        run_with_detector_r::<P, OnlineEngine, DePaReach>(p, engine)
    }))
    .map_err(DetectorError::from_panic)?;
    let counters = ex.counters;
    let mut engine = ex.into_detector();
    if let Some(err) = engine.poisoned.take() {
        return Err(err);
    }
    let mut out = engine
        .outcome
        .take()
        .ok_or_else(|| DetectorError::Poisoned {
            detail: "online engine finished without an outcome".into(),
        })?;
    out.wall = wall;
    out.counters = counters;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{batch_detect, BatchConfig};
    use stint::{detect, Cilk, PortableTrace, Variant};

    struct WideRacy;
    impl CilkProgram for WideRacy {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| {
                c.store_range(0x100, 64);
                c.load(0x200, 8);
            });
            ctx.store_range(0x120, 64);
            ctx.sync();
            ctx.free(0x100, 32);
            ctx.spawn(|c| c.store(0x104, 4));
            ctx.load(0x104, 4);
            ctx.sync();
        }
    }

    fn cfg(workers: usize, seed: u64, chunk: usize) -> OnlineConfig {
        OnlineConfig {
            shards: 4,
            workers,
            steal_seed: seed,
            chunk_events: chunk,
            witnesses: false,
            budget: ResourceBudget::default(),
        }
    }

    #[test]
    fn online_matches_sequential_stint_racy_words() {
        let expected = detect(&mut WideRacy, Variant::Stint).report.racy_words();
        assert!(!expected.is_empty());
        let out = online_detect(&mut WideRacy, &cfg(2, 0, 8)).unwrap();
        assert_eq!(out.merged.racy_words, expected);
        assert!(out.degraded.is_none());
        assert!(out.chunks > 1, "chunk=8 must force multiple merge cycles");
    }

    #[test]
    fn render_is_invariant_in_workers_seed_and_chunking() {
        let baseline = online_detect(&mut WideRacy, &cfg(1, 0, usize::MAX))
            .unwrap()
            .merged
            .render();
        for (w, seed, chunk) in [(1, 0, 4), (2, 0, 16), (4, 0xDEAD_BEEF, 3), (8, 7, 1)] {
            let got = online_detect(&mut WideRacy, &cfg(w, seed, chunk))
                .unwrap()
                .merged
                .render();
            assert_eq!(got, baseline, "workers={w} seed={seed} chunk={chunk}");
        }
    }

    #[test]
    fn online_render_matches_batch_render() {
        let pt = PortableTrace::record(&mut WideRacy);
        let batch = batch_detect(&pt, &BatchConfig::default()).unwrap();
        let online = online_detect(&mut WideRacy, &cfg(2, 0, 16)).unwrap();
        assert_eq!(online.merged.render(), batch.merged.render());
        assert_eq!(online.events, pt.trace.len());
        assert_eq!(online.strands, pt.reach.strand_count());
    }

    #[test]
    fn race_free_program_stays_race_free_online() {
        struct Clean;
        impl CilkProgram for Clean {
            fn run<C: Cilk>(&mut self, ctx: &mut C) {
                for i in 0..6usize {
                    ctx.spawn(move |c| c.store_range(0x1000 + i * 128, 128));
                }
                ctx.sync();
                ctx.load_range(0x1000, 6 * 128);
            }
        }
        let out = online_detect(&mut Clean, &cfg(3, 1, 5)).unwrap();
        assert!(out.merged.is_race_free());
        assert!(out.degraded.is_none());
        assert_eq!(out.shards.len(), 4);
    }

    #[test]
    fn empty_program_is_handled() {
        struct Empty;
        impl CilkProgram for Empty {
            fn run<C: Cilk>(&mut self, _: &mut C) {}
        }
        let out = online_detect(&mut Empty, &cfg(2, 0, 64)).unwrap();
        assert!(out.merged.is_race_free());
        assert_eq!(out.shards.len(), 4);
    }

    #[test]
    fn witnessed_online_regions_verify() {
        let mut wcfg = cfg(2, 0, 8);
        wcfg.witnesses = true;
        let out = online_detect(&mut WideRacy, &wcfg).unwrap();
        assert!(!out.merged.regions.is_empty());
        assert!(out.merged.regions.iter().all(|r| r.witness.is_some()));
        // Witness capture is merge-time and span-table-driven, exactly like
        // batch: the same program recorded and batch-detected with
        // witnesses renders the same bytes.
        let pt = PortableTrace::record(&mut WideRacy);
        let bcfg = BatchConfig {
            witnesses: true,
            ..BatchConfig::default()
        };
        let batch = batch_detect(&pt, &bcfg).unwrap();
        assert_eq!(out.merged.render(), batch.merged.render());
        let checker = stint::WitnessChecker::new(&pt.reach).with_trace(&pt.trace);
        for r in &out.merged.regions {
            checker.check(r).unwrap();
        }
    }

    #[test]
    fn shard_budget_degrades_soundly_online() {
        let mut bcfg = cfg(2, 0, 8);
        bcfg.budget = ResourceBudget {
            max_intervals: Some(1),
            ..ResourceBudget::default()
        };
        let out = online_detect(&mut WideRacy, &bcfg).unwrap();
        let deg = out.degraded.expect("1-interval budget must trip");
        assert_eq!(deg.exit_code(), 3);
    }
}
