//! Differential test: SP-Order vs the brute-force transitive-closure oracle
//! from `stint-spdag`, on thousands of random fork-join programs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stint_spdag::{random_func, simulate, Func, GenCfg, Stmt};
use stint_sporder::{SpOrder, StrandId};

/// Interpret a `Func` against SP-Order, mirroring the strand semantics of the
/// spdag reference simulator exactly, and record the SP-Order strand ids in
/// sequential execution order (so index `i` corresponds to spdag strand `i`).
struct Walker {
    sp: SpOrder,
    cur: StrandId,
    /// SP-Order id of each sim strand, in sequential order.
    map: Vec<StrandId>,
}

impl Walker {
    fn run(f: &Func) -> (SpOrder, Vec<StrandId>) {
        let (sp, root) = SpOrder::new();
        let mut w = Walker {
            sp,
            cur: root,
            map: vec![root],
        };
        w.func(f);
        (w.sp, w.map)
    }

    fn func(&mut self, f: &Func) {
        let mut sync_strand: Option<StrandId> = None;
        let mut spawned = false;
        for stmt in &f.0 {
            match stmt {
                Stmt::Compute(_) => {}
                Stmt::Spawn(g) => {
                    if sync_strand.is_none() {
                        sync_strand = Some(self.sp.new_sync_strand(self.cur));
                    }
                    spawned = true;
                    let s = self.sp.spawn(self.cur);
                    self.cur = s.child;
                    self.map.push(s.child);
                    self.func(g);
                    self.cur = s.continuation;
                    self.map.push(s.continuation);
                }
                Stmt::Sync => {
                    if spawned {
                        let j = sync_strand.take().unwrap();
                        self.cur = j;
                        self.map.push(j);
                        spawned = false;
                    }
                }
                Stmt::Call(g) => {
                    self.func(g);
                }
            }
        }
        // Implicit sync at function end.
        if spawned {
            let j = sync_strand.take().unwrap();
            self.cur = j;
            self.map.push(j);
        }
    }
}

fn check_program(f: &Func) {
    let sim = simulate(f);
    let (sp, map) = Walker::run(f);
    assert_eq!(
        sim.strand_count(),
        map.len(),
        "strand count mismatch between oracle and SP-Order walker"
    );
    let n = sim.strand_count() as u32;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let (sa, sb) = (map[a as usize], map[b as usize]);
            assert_eq!(
                sim.precedes(a, b),
                sp.series(sa, sb),
                "series({a},{b}) mismatch"
            );
            assert_eq!(
                sim.parallel(a, b),
                sp.parallel(sa, sb),
                "parallel({a},{b}) mismatch"
            );
            // English order must equal sequential order.
            assert_eq!(sp.english_precedes(sa, sb), a < b, "english({a},{b})");
        }
    }
    // left_of definition check against the oracle.
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let (sa, sb) = (map[a as usize], map[b as usize]);
            let expect = (sim.parallel(a, b) && a < b) || sim.precedes(b, a);
            assert_eq!(sp.left_of(sa, sb), expect, "left_of({a},{b})");
        }
    }
}

#[test]
fn random_programs_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let cfg = GenCfg::default();
    for i in 0..500 {
        let f = random_func(&mut rng, &cfg);
        // Avoid quadratic blowup on the rare huge program.
        if simulate(&f).strand_count() > 400 {
            continue;
        }
        check_program(&f);
        let _ = i;
    }
}

#[test]
fn deep_programs_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let cfg = GenCfg {
        max_depth: 8,
        max_stmts: 3,
        p_spawn: 0.5,
        p_sync: 0.2,
        ..GenCfg::default()
    };
    for _ in 0..300 {
        let f = random_func(&mut rng, &cfg);
        if simulate(&f).strand_count() > 400 {
            continue;
        }
        check_program(&f);
    }
}

#[test]
fn wide_programs_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let cfg = GenCfg {
        max_depth: 2,
        max_stmts: 12,
        p_spawn: 0.45,
        p_sync: 0.25,
        ..GenCfg::default()
    };
    for _ in 0..300 {
        let f = random_func(&mut rng, &cfg);
        if simulate(&f).strand_count() > 400 {
            continue;
        }
        check_program(&f);
    }
}
