//! SP-Order reachability for fork-join programs [Bender, Fineman, Gilbert,
//! Leiserson — SPAA 2004].
//!
//! SP-Order executes a fork-join computation *sequentially* (depth-first,
//! spawned-child first) and maintains two total orders over the executed
//! strands:
//!
//! * the **English** order — the sequential execution order (left-to-right
//!   traversal of the SP parse tree), and
//! * the **Hebrew** order — its mirror (right-to-left traversal).
//!
//! Two strands are **in series** (`a ≺ b`) iff `a` precedes `b` in *both*
//! orders, and **logically parallel** iff the orders disagree. Both orders are
//! kept in order-maintenance lists, so every query is O(1).
//!
//! # Maintenance rules
//!
//! Let `cur` be the strand executing a `spawn`, belonging to a *sync block*
//! (the region of its function between two syncs). The invariant is that all
//! OM nodes belonging to the block's subcomputation lie strictly between
//! `cur`'s nodes and the block's *sync strand* nodes in both lists.
//!
//! * On the **first spawn of a sync block**, create the block's sync strand
//!   `j` by inserting right after `cur` in both lists (everything inserted
//!   later lands between `cur` and `j`).
//! * On **every spawn**, create the child strand `c` and the continuation
//!   strand `k`:
//!   * English: insert after `cur` so the result is `cur, c, k`;
//!   * Hebrew: insert after `cur` so the result is `cur, k, c`.
//! * On **sync** (explicit, or the implicit one at a spawned function's
//!   return), execution continues as the block's sync strand `j` (a no-op if
//!   nothing was spawned since the previous sync).
//!
//! With these rules, for strands `a` executed before `b` (so `a <_E b`
//! always): `a ≺ b` iff `a <_H b`, and `a ∥ b` iff `b <_H a`.
//!
//! The correctness of these rules is differentially tested against the
//! brute-force transitive-closure oracle in `stint-spdag` on thousands of
//! random fork-join programs (see `tests/oracle.rs`).

use stint_om::{OmList, OrderList, TwoLevelOm};

mod cache;
mod depa;
pub use cache::ReachCache;
pub use depa::DePaReach;

// Observability (no-ops costing one relaxed load while `stint-obs` is
// disabled). Order queries are counted at the `SpOrderImpl` layer so both
// OM backends report into the same counters; the strand-local cache's
// hit/miss/flush counters live in `cache.rs`.
static OBS_SERIES_QUERIES: stint_obs::Counter = stint_obs::Counter::new("sporder.series_queries");
static OBS_PARALLEL_QUERIES: stint_obs::Counter =
    stint_obs::Counter::new("sporder.parallel_queries");
static OBS_LEFT_OF_QUERIES: stint_obs::Counter = stint_obs::Counter::new("sporder.left_of_queries");
static OBS_BYTES: stint_obs::Gauge = stint_obs::Gauge::new("sporder.bytes");

/// Identifier of an executed strand. Dense, allocated in creation order
/// (creation order is *not* the sequential execution order for sync strands,
/// which are created at the first spawn of their block).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StrandId(pub u32);

impl StrandId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The reachability interface race detectors consume.
///
/// The paper notes (§7) that its access history "would work out of the box in
/// other instances, such as race detectors for pipelines or 2D grids, since
/// it is still sufficient to store one reader and one writer for each memory
/// location". This trait is that seam: detectors are generic over it, and
/// `stint-grid` provides a coordinate-based implementation for 2-D wavefront
/// programs alongside [`SpOrder`] for fork-join programs.
///
/// Implementations must be consistent with some *sequential* execution order
/// in which the detector observes strands: for strands `a` observed before
/// `b`, exactly one of `series(a, b)` / `parallel(a, b)` holds.
pub trait Reachability {
    /// `a` logically precedes `b` (`a ≺ b`). False for `a == b`.
    fn series(&self, a: StrandId, b: StrandId) -> bool;
    /// `a` and `b` are logically parallel. False for `a == b`.
    fn parallel(&self, a: StrandId, b: StrandId) -> bool;
    /// `a` is *left of* `b` (see [`SpOrder::left_of`]). Under sequential
    /// observation this decides whether a new reader replaces the stored
    /// leftmost reader.
    fn left_of(&self, a: StrandId, b: StrandId) -> bool;

    /// The raw order evidence behind a `series`/`parallel` verdict:
    /// `(a <_E b, a <_H b)` — `a` before `b` in the English and Hebrew
    /// orders. Series iff both bits agree and are true; parallel iff the
    /// bits disagree. `(false, false)` for `a == b`. The default derives the
    /// bits from `series`/`left_of`; implementations holding the orders
    /// directly (ranks, OM lists) should override with direct comparisons.
    fn order_pair(&self, a: StrandId, b: StrandId) -> (bool, bool) {
        if a == b {
            (false, false)
        } else if self.series(a, b) {
            (true, true)
        } else if self.series(b, a) {
            (false, false)
        } else if self.left_of(a, b) {
            // Parallel with `a` sequentially first: a <_E b, b <_H a.
            (true, false)
        } else {
            (false, true)
        }
    }

    /// The strand that spawned (or sync-continued into) `s` — the edge of
    /// the spawn-tree lineage race witnesses carry. `None` when the
    /// implementation does not track lineage (it is explanatory context;
    /// the rank evidence above is the proof) or for the root strand.
    fn parent_of(&self, _s: StrandId) -> Option<StrandId> {
        None
    }
}

impl<L: OrderList> Reachability for SpOrderImpl<L> {
    #[inline]
    fn series(&self, a: StrandId, b: StrandId) -> bool {
        SpOrderImpl::series(self, a, b)
    }
    #[inline]
    fn parallel(&self, a: StrandId, b: StrandId) -> bool {
        SpOrderImpl::parallel(self, a, b)
    }
    #[inline]
    fn left_of(&self, a: StrandId, b: StrandId) -> bool {
        SpOrderImpl::left_of(self, a, b)
    }
    #[inline]
    fn order_pair(&self, a: StrandId, b: StrandId) -> (bool, bool) {
        // Direct rank comparison: one English and one Hebrew `precedes`
        // instead of the default's up-to-two `series` plus a `left_of`
        // (counted as a single series-shaped query).
        OBS_SERIES_QUERIES.incr();
        if a == b {
            return (false, false);
        }
        let (ae, ah) = self.strands[a.index()];
        let (be, bh) = self.strands[b.index()];
        (self.eng.precedes(ae, be), self.heb.precedes(ah, bh))
    }
    #[inline]
    fn parent_of(&self, s: StrandId) -> Option<StrandId> {
        SpOrderImpl::parent_of(self, s)
    }
}

/// The *maintenance* interface of a reachability substrate: what the
/// sequential executor (`stint-cilk`) needs to grow one alongside the
/// running program. [`Reachability`] is the query half that detectors see;
/// this is the construction half. Two substrates implement it:
/// [`SpOrderImpl`] (mutable order-maintenance lists) and [`DePaReach`]
/// (immutable depth-vector timestamps, lock-free queries).
///
/// The executor guarantees one call sequence per execution regardless of the
/// substrate — `new_sync_strand` before the block's first `spawn`, a
/// `call_enter`/`call_exit` bracket around serial calls, `child_return`
/// after a spawned child's subcomputation finishes — so both substrates
/// allocate identical [`StrandId`]s with identical lineage and freeze to
/// identical rank permutations.
pub trait ReachMaint: Reachability {
    /// Create the substrate together with the root strand.
    fn init() -> (Self, StrandId)
    where
        Self: Sized;
    /// Create the sync strand of the sync block whose first spawn `cur` is
    /// executing. Must precede that spawn's [`ReachMaint::spawn`].
    fn new_sync_strand(&mut self, cur: StrandId) -> StrandId;
    /// Register a spawn by `cur`; returns the child's first strand and the
    /// continuation strand (pushed in that id order).
    fn spawn(&mut self, cur: StrandId) -> SpawnStrands;
    /// `cur` performs a serial call (fresh sync scope). Default: no-op —
    /// SP-Order needs no frame bookkeeping.
    fn call_enter(&mut self, _cur: StrandId) {}
    /// The serial call returned (after its implicit sync). Default: no-op.
    fn call_exit(&mut self, _cur: StrandId) {}
    /// A spawned child's subcomputation finished (after its implicit sync);
    /// `cur` is its final strand. Default: no-op.
    fn child_return(&mut self, _cur: StrandId) {}
    /// Number of strands registered so far.
    fn strand_count(&self) -> usize;
    /// Heap bytes owned by the substrate (space accounting).
    fn heap_bytes(&self) -> u64;
    /// Snapshot into rank permutations (with lineage).
    fn freeze(&self) -> FrozenReach;
}

impl<L: OrderList> ReachMaint for SpOrderImpl<L> {
    fn init() -> (Self, StrandId) {
        SpOrderImpl::new()
    }
    #[inline]
    fn new_sync_strand(&mut self, cur: StrandId) -> StrandId {
        SpOrderImpl::new_sync_strand(self, cur)
    }
    #[inline]
    fn spawn(&mut self, cur: StrandId) -> SpawnStrands {
        SpOrderImpl::spawn(self, cur)
    }
    fn strand_count(&self) -> usize {
        SpOrderImpl::strand_count(self)
    }
    fn heap_bytes(&self) -> u64 {
        SpOrderImpl::heap_bytes(self)
    }
    fn freeze(&self) -> FrozenReach {
        SpOrderImpl::freeze(self)
    }
}

/// Result of registering a spawn: the spawned child's first strand and the
/// parent's continuation strand.
#[derive(Clone, Copy, Debug)]
pub struct SpawnStrands {
    pub child: StrandId,
    pub continuation: StrandId,
}

/// The SP-Order reachability structure, generic over the order-maintenance
/// implementation.
pub struct SpOrderImpl<L: OrderList = OmList> {
    eng: L,
    heb: L,
    /// Per strand: (English node, Hebrew node).
    strands: Vec<(L::Handle, L::Handle)>,
    /// Per strand: the strand that created it ([`NO_PARENT`] for the root) —
    /// the spawn-tree lineage race witnesses walk.
    parents: Vec<u32>,
    /// Bytes last reported to the `sporder.bytes` gauge for the strand table
    /// (the OM lists account for themselves via `om.bytes`).
    owned_bytes: u64,
}

/// Sentinel parent of the root strand in lineage tables.
pub const NO_PARENT: u32 = u32::MAX;

impl<L: OrderList> Drop for SpOrderImpl<L> {
    fn drop(&mut self) {
        OBS_BYTES.reconcile(&mut self.owned_bytes, 0);
    }
}

/// SP-Order over the single-level labelled list (the default; O(log n)
/// amortized maintenance, O(1) queries).
pub type SpOrder = SpOrderImpl<OmList>;

/// SP-Order over the two-level indirection list — O(1) amortized
/// maintenance, matching the asymptotics claimed by Bender et al.
pub type SpOrderO1 = SpOrderImpl<TwoLevelOm>;

impl<L: OrderList> Default for SpOrderImpl<L> {
    fn default() -> Self {
        Self::new().0
    }
}

impl<L: OrderList> SpOrderImpl<L> {
    /// Create the structure together with the root strand of the computation.
    pub fn new() -> (Self, StrandId) {
        let mut eng = L::default();
        let mut heb = L::default();
        let e = eng.insert_first();
        let h = heb.insert_first();
        (
            SpOrderImpl {
                eng,
                heb,
                strands: vec![(e, h)],
                parents: vec![NO_PARENT],
                owned_bytes: 0,
            },
            StrandId(0),
        )
    }

    /// Number of strands registered so far.
    #[inline]
    pub fn strand_count(&self) -> usize {
        self.strands.len()
    }

    /// Heap bytes owned by the strand table (the OM lists report their own
    /// footprint through `om.bytes`).
    pub fn heap_bytes(&self) -> u64 {
        (self.strands.capacity() * std::mem::size_of::<(L::Handle, L::Handle)>()
            + self.parents.capacity() * std::mem::size_of::<u32>()) as u64
    }

    fn push(&mut self, e: L::Handle, h: L::Handle, parent: u32) -> StrandId {
        let id = self.strands.len();
        assert!(id < u32::MAX as usize, "strand count exceeds u32");
        self.strands.push((e, h));
        self.parents.push(parent);
        if stint_obs::is_enabled() {
            let bytes = self.heap_bytes();
            OBS_BYTES.reconcile(&mut self.owned_bytes, bytes);
        }
        StrandId(id as u32)
    }

    /// Create the sync strand for a sync block whose first spawn is being
    /// executed by `cur`. Must be called *before* [`SpOrder::spawn`] for that
    /// spawn.
    pub fn new_sync_strand(&mut self, cur: StrandId) -> StrandId {
        let (ce, ch) = self.strands[cur.index()];
        let je = self.eng.insert_after(ce);
        let jh = self.heb.insert_after(ch);
        self.push(je, jh, cur.0)
    }

    /// Register a spawn executed by `cur`, returning the child's first strand
    /// and the continuation strand.
    pub fn spawn(&mut self, cur: StrandId) -> SpawnStrands {
        let (ce, ch) = self.strands[cur.index()];
        // English: cur, child, continuation  (insert cont first, then child).
        let ke = self.eng.insert_after(ce);
        let se = self.eng.insert_after(ce);
        // Hebrew: cur, continuation, child  (insert child first, then cont).
        let sh = self.heb.insert_after(ch);
        let kh = self.heb.insert_after(ch);
        let child = self.push(se, sh, cur.0);
        let continuation = self.push(ke, kh, cur.0);
        SpawnStrands {
            child,
            continuation,
        }
    }

    /// The strand that created `s` (`None` for the root).
    #[inline]
    pub fn parent_of(&self, s: StrandId) -> Option<StrandId> {
        let p = self.parents[s.index()];
        (p != NO_PARENT).then_some(StrandId(p))
    }

    /// True if strand `a` logically precedes strand `b` (series, `a ≺ b`).
    #[inline]
    pub fn series(&self, a: StrandId, b: StrandId) -> bool {
        OBS_SERIES_QUERIES.incr();
        if a == b {
            return false;
        }
        let (ae, ah) = self.strands[a.index()];
        let (be, bh) = self.strands[b.index()];
        self.eng.precedes(ae, be) && self.heb.precedes(ah, bh)
    }

    /// True if strands `a` and `b` are logically parallel.
    #[inline]
    pub fn parallel(&self, a: StrandId, b: StrandId) -> bool {
        OBS_PARALLEL_QUERIES.incr();
        if a == b {
            return false;
        }
        let (ae, ah) = self.strands[a.index()];
        let (be, bh) = self.strands[b.index()];
        self.eng.precedes(ae, be) != self.heb.precedes(ah, bh)
    }

    /// True if `a` is *left of* `b`: either `a ∥ b` and `a` precedes `b` in
    /// the sequential order, or `a` is in series with `b` and follows it.
    /// Equivalently: `b` precedes `a` in the Hebrew order... no — `a` is left
    /// of `b` iff `b <_H a` is false and... see below.
    ///
    /// Derivation: writing `<_E`/`<_H` for the two orders,
    /// * case 1 (parallel, `a` first sequentially): `a <_E b` and `b <_H a`;
    /// * case 2 (series, `a` after `b`): `b <_E a` and `b <_H a`.
    ///
    /// Both cases are exactly `b <_H a`, and conversely `b <_H a` implies one
    /// of the two cases. So `left_of(a, b) ⟺ b <_H a`.
    #[inline]
    pub fn left_of(&self, a: StrandId, b: StrandId) -> bool {
        OBS_LEFT_OF_QUERIES.incr();
        if a == b {
            return false;
        }
        let ah = self.strands[a.index()].1;
        let bh = self.strands[b.index()].1;
        self.heb.precedes(bh, ah)
    }

    /// True if `a` precedes `b` in the English (sequential) order.
    #[inline]
    pub fn english_precedes(&self, a: StrandId, b: StrandId) -> bool {
        let ae = self.strands[a.index()].0;
        let be = self.strands[b.index()].0;
        self.eng.precedes(ae, be)
    }
}

impl<L: OrderList> SpOrderImpl<L> {
    /// Snapshot the current orders into a [`FrozenReach`] (O(n log n)).
    pub fn freeze(&self) -> FrozenReach {
        let n = self.strands.len();
        let rank_of = |which_heb: bool| -> Vec<u32> {
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.sort_by(|&x, &y| {
                let hx = self.strands[x as usize];
                let hy = self.strands[y as usize];
                let before = if which_heb {
                    self.heb.precedes(hx.1, hy.1)
                } else {
                    self.eng.precedes(hx.0, hy.0)
                };
                if before {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            let mut rank = vec![0u32; n];
            for (r, &i) in idx.iter().enumerate() {
                rank[i as usize] = r as u32;
            }
            rank
        };
        FrozenReach {
            eng_rank: rank_of(false),
            heb_rank: rank_of(true),
            parents: Some(self.parents.clone()),
        }
    }
}

impl SpOrderImpl<OmList> {
    /// Statistics about the underlying OM lists (for benchmarks).
    pub fn om_stats(&self) -> OmStats {
        OmStats {
            english_relabels: self.eng.relabels(),
            hebrew_relabels: self.heb.relabels(),
            english_moved: self.eng.relabel_moved(),
            hebrew_moved: self.heb.relabel_moved(),
        }
    }
}

/// A reachability snapshot: each strand's rank in the English and Hebrew
/// orders. Freezing a [`SpOrderImpl`] yields a compact, serializable
/// structure that answers the same queries — useful for persisting recorded
/// traces (see `stint::trace`) and for replaying them in later processes.
#[derive(Clone, Debug)]
pub struct FrozenReach {
    eng_rank: Vec<u32>,
    heb_rank: Vec<u32>,
    /// Optional spawn-tree lineage ([`NO_PARENT`] marks the root). `None`
    /// when the snapshot came from a source that does not carry lineage
    /// (old v1 traces, the compressed v2 header, bare `from_ranks`); the
    /// reachability answers are identical either way — lineage only enriches
    /// race witnesses.
    parents: Option<Vec<u32>>,
}

/// Equality compares the *reachability substrate* (the two rank
/// permutations) only: a snapshot that lost its optional lineage on a
/// round-trip through a lineage-free encoding still answers every query
/// identically and must compare equal.
impl PartialEq for FrozenReach {
    fn eq(&self, other: &Self) -> bool {
        self.eng_rank == other.eng_rank && self.heb_rank == other.heb_rank
    }
}
impl Eq for FrozenReach {}

impl FrozenReach {
    /// Reconstruct from previously exported ranks.
    ///
    /// # Panics
    /// Panics if the two vectors differ in length or are not permutations of
    /// `0..n`.
    pub fn from_ranks(eng_rank: Vec<u32>, heb_rank: Vec<u32>) -> FrozenReach {
        assert_eq!(eng_rank.len(), heb_rank.len());
        let n = eng_rank.len() as u32;
        let check = |v: &[u32]| {
            let mut seen = vec![false; v.len()];
            for &r in v {
                assert!(r < n && !seen[r as usize], "ranks must be a permutation");
                seen[r as usize] = true;
            }
        };
        check(&eng_rank);
        check(&heb_rank);
        FrozenReach {
            eng_rank,
            heb_rank,
            parents: None,
        }
    }

    /// Attach a spawn-tree lineage table (one entry per strand,
    /// [`NO_PARENT`] for the root).
    ///
    /// # Panics
    /// Panics if the table's length disagrees with the strand count or an
    /// entry points at an out-of-range strand or at itself.
    pub fn with_parents(mut self, parents: Vec<u32>) -> FrozenReach {
        assert_eq!(parents.len(), self.eng_rank.len(), "one parent per strand");
        for (i, &p) in parents.iter().enumerate() {
            assert!(
                p == NO_PARENT || (p as usize) < parents.len() && p as usize != i,
                "parent {p} of strand {i} out of range or self-referential"
            );
        }
        self.parents = Some(parents);
        self
    }

    /// The raw lineage table, if this snapshot carries one.
    pub fn parents(&self) -> Option<&[u32]> {
        self.parents.as_deref()
    }

    /// The per-strand (English, Hebrew) ranks.
    pub fn ranks(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.eng_rank
            .iter()
            .copied()
            .zip(self.heb_rank.iter().copied())
    }

    pub fn strand_count(&self) -> usize {
        self.eng_rank.len()
    }

    /// The strand's rank in the English (left-to-right serial) order. The
    /// batch detector sorts merged race regions by this rank so the merged
    /// report is deterministic regardless of shard count or steal order.
    pub fn english_rank(&self, s: StrandId) -> u32 {
        self.eng_rank[s.index()]
    }
}

impl Reachability for FrozenReach {
    #[inline]
    fn series(&self, a: StrandId, b: StrandId) -> bool {
        a != b
            && self.eng_rank[a.index()] < self.eng_rank[b.index()]
            && self.heb_rank[a.index()] < self.heb_rank[b.index()]
    }
    #[inline]
    fn parallel(&self, a: StrandId, b: StrandId) -> bool {
        a != b
            && (self.eng_rank[a.index()] < self.eng_rank[b.index()])
                != (self.heb_rank[a.index()] < self.heb_rank[b.index()])
    }
    #[inline]
    fn left_of(&self, a: StrandId, b: StrandId) -> bool {
        a != b && self.heb_rank[b.index()] < self.heb_rank[a.index()]
    }
    #[inline]
    fn order_pair(&self, a: StrandId, b: StrandId) -> (bool, bool) {
        (
            self.eng_rank[a.index()] < self.eng_rank[b.index()],
            self.heb_rank[a.index()] < self.heb_rank[b.index()],
        )
    }
    #[inline]
    fn parent_of(&self, s: StrandId) -> Option<StrandId> {
        let p = self.parents.as_ref()?[s.index()];
        (p != NO_PARENT).then_some(StrandId(p))
    }
}

/// Relabelling statistics of the two OM lists.
#[derive(Clone, Copy, Debug, Default)]
pub struct OmStats {
    pub english_relabels: u64,
    pub hebrew_relabels: u64,
    pub english_moved: u64,
    pub hebrew_moved: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny executor mirroring the maintenance protocol, used to drive unit
    /// tests. (The real executor lives in `stint-cilk`.)
    struct Frame {
        sync_strand: Option<StrandId>,
    }
    pub struct Toy {
        pub sp: SpOrder,
        pub cur: StrandId,
        frames: Vec<Frame>,
    }
    impl Toy {
        pub fn new() -> Self {
            let (sp, root) = SpOrder::new();
            Toy {
                sp,
                cur: root,
                frames: vec![Frame { sync_strand: None }],
            }
        }
        pub fn spawn(&mut self, f: impl FnOnce(&mut Toy)) {
            if self.frames.last().unwrap().sync_strand.is_none() {
                let j = self.sp.new_sync_strand(self.cur);
                self.frames.last_mut().unwrap().sync_strand = Some(j);
            }
            let s = self.sp.spawn(self.cur);
            self.frames.push(Frame { sync_strand: None });
            self.cur = s.child;
            f(self);
            // implicit sync at spawned function return
            self.sync();
            self.frames.pop();
            self.cur = s.continuation;
        }
        pub fn sync(&mut self) {
            if let Some(j) = self.frames.last_mut().unwrap().sync_strand.take() {
                self.cur = j;
            }
        }
    }

    #[test]
    fn spawn_makes_child_parallel_to_continuation() {
        let mut t = Toy::new();
        let mut child = None;
        t.spawn(|t| child = Some(t.cur));
        let child = child.unwrap();
        let cont = t.cur;
        assert!(t.sp.parallel(child, cont));
        assert!(t.sp.left_of(child, cont), "child is left of continuation");
        assert!(!t.sp.left_of(cont, child));
    }

    #[test]
    fn sync_serializes() {
        let mut t = Toy::new();
        let root = t.cur;
        let mut child = None;
        t.spawn(|t| child = Some(t.cur));
        t.sync();
        let after = t.cur;
        let child = child.unwrap();
        assert!(t.sp.series(root, child));
        assert!(t.sp.series(child, after));
        assert!(t.sp.series(root, after));
        assert!(!t.sp.parallel(child, after));
        // After sync, the later strand is left of the earlier (series) one.
        assert!(t.sp.left_of(after, child));
    }

    #[test]
    fn two_children_are_parallel() {
        let mut t = Toy::new();
        let (mut c1, mut c2) = (None, None);
        t.spawn(|t| c1 = Some(t.cur));
        t.spawn(|t| c2 = Some(t.cur));
        t.sync();
        let (c1, c2) = (c1.unwrap(), c2.unwrap());
        assert!(t.sp.parallel(c1, c2));
        assert!(t.sp.left_of(c1, c2), "earlier sibling is left of later");
        assert!(t.sp.series(c1, t.cur));
        assert!(t.sp.series(c2, t.cur));
    }

    #[test]
    fn nested_spawn_parallel_with_uncle_continuation() {
        // spawn { spawn {A}; B } ; C ; sync   — A,B,C pairwise parallel.
        let mut t = Toy::new();
        let (mut a, mut b) = (None, None);
        t.spawn(|t| {
            t.spawn(|t| a = Some(t.cur));
            b = Some(t.cur);
        });
        let c = t.cur;
        t.sync();
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(t.sp.parallel(a, b));
        assert!(t.sp.parallel(a, c));
        assert!(t.sp.parallel(b, c));
        assert!(t.sp.series(a, t.cur));
        assert!(t.sp.series(b, t.cur));
    }

    #[test]
    fn second_sync_block_is_serial_after_first() {
        let mut t = Toy::new();
        let (mut a, mut b) = (None, None);
        t.spawn(|t| a = Some(t.cur));
        t.sync();
        t.spawn(|t| b = Some(t.cur));
        t.sync();
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(t.sp.series(a, b), "strands of block 1 precede block 2");
        assert!(t.sp.series(a, t.cur));
        assert!(t.sp.series(b, t.cur));
    }

    #[test]
    fn implicit_sync_at_child_return() {
        // spawn { spawn {A}; (implicit sync) }; after-child-return strand is
        // the continuation — A is parallel to it; but A is serial before the
        // strand following the outer sync.
        let mut t = Toy::new();
        let mut a = None;
        t.spawn(|t| {
            t.spawn(|t| a = Some(t.cur));
            // no explicit sync: implicit at return
        });
        let cont = t.cur;
        let a = a.unwrap();
        assert!(t.sp.parallel(a, cont));
        t.sync();
        assert!(t.sp.series(a, t.cur));
    }

    #[test]
    fn sync_without_spawn_is_noop() {
        let mut t = Toy::new();
        let before = t.cur;
        t.sync();
        assert_eq!(before, t.cur);
    }

    #[test]
    fn deep_chain_series() {
        let mut t = Toy::new();
        let mut ids = vec![t.cur];
        for _ in 0..100 {
            t.spawn(|_| {});
            t.sync();
            ids.push(t.cur);
        }
        for w in ids.windows(2) {
            assert!(t.sp.series(w[0], w[1]));
        }
        assert!(t.sp.series(ids[0], *ids.last().unwrap()));
    }

    #[test]
    fn frozen_reach_answers_like_live() {
        let mut t = Toy::new();
        let mut ids = vec![t.cur];
        t.spawn(|t| {
            ids.push(t.cur);
            t.spawn(|t| ids.push(t.cur));
            ids.push(t.cur);
        });
        ids.push(t.cur);
        t.sync();
        ids.push(t.cur);
        let frozen = t.sp.freeze();
        assert_eq!(frozen.strand_count(), t.sp.strand_count());
        for &a in &ids {
            for &b in &ids {
                assert_eq!(
                    t.sp.series(a, b),
                    Reachability::series(&frozen, a, b),
                    "series({a:?},{b:?})"
                );
                assert_eq!(
                    t.sp.parallel(a, b),
                    Reachability::parallel(&frozen, a, b),
                    "parallel({a:?},{b:?})"
                );
                assert_eq!(
                    t.sp.left_of(a, b),
                    Reachability::left_of(&frozen, a, b),
                    "left_of({a:?},{b:?})"
                );
            }
        }
        // Roundtrip through exported ranks.
        let (e, h): (Vec<u32>, Vec<u32>) = frozen.ranks().unzip();
        let back = FrozenReach::from_ranks(e, h);
        assert_eq!(back, frozen);
    }

    #[test]
    fn order_pair_matches_verdicts_and_lineage_reaches_root() {
        let mut t = Toy::new();
        let root = t.cur;
        let (mut a, mut b) = (None, None);
        t.spawn(|t| {
            t.spawn(|t| a = Some(t.cur));
            b = Some(t.cur);
        });
        t.sync();
        let (a, b) = (a.unwrap(), b.unwrap());
        let frozen = t.sp.freeze();
        for &(x, y) in &[(root, a), (a, b), (b, t.cur), (a, t.cur)] {
            for r in [&t.sp as &dyn Reachability, &frozen as &dyn Reachability] {
                let (e, h) = r.order_pair(x, y);
                assert_eq!(r.series(x, y), e && h, "series({x:?},{y:?})");
                assert_eq!(r.parallel(x, y), e != h, "parallel({x:?},{y:?})");
                // The pair is antisymmetric.
                let (re, rh) = r.order_pair(y, x);
                assert_eq!((re, rh), (!e, !h));
            }
            assert_eq!(
                (&t.sp as &dyn Reachability).order_pair(x, x),
                (false, false)
            );
        }
        // Every strand's lineage chain terminates at the root.
        for s in 0..frozen.strand_count() as u32 {
            let mut cur = StrandId(s);
            let mut hops = 0;
            while let Some(p) = frozen.parent_of(cur) {
                cur = p;
                hops += 1;
                assert!(hops <= frozen.strand_count(), "lineage cycle at {s}");
            }
            assert_eq!(cur, root);
            assert_eq!(t.sp.parent_of(StrandId(s)), frozen.parent_of(StrandId(s)));
        }
        // Lineage survives a rank round-trip only when re-attached; equality
        // ignores it (it is context, not substrate).
        let (e, h): (Vec<u32>, Vec<u32>) = frozen.ranks().unzip();
        let bare = FrozenReach::from_ranks(e, h);
        assert_eq!(bare, frozen);
        assert!(bare.parents().is_none());
        let back = bare.with_parents(frozen.parents().unwrap().to_vec());
        assert_eq!(back.parents(), frozen.parents());
    }

    #[test]
    fn wide_fanout_pairwise_parallel() {
        let mut t = Toy::new();
        let mut kids = Vec::new();
        for _ in 0..50 {
            t.spawn(|t| kids.push(t.cur));
        }
        t.sync();
        for i in 0..kids.len() {
            for j in (i + 1)..kids.len() {
                assert!(t.sp.parallel(kids[i], kids[j]));
                assert!(t.sp.left_of(kids[i], kids[j]));
            }
            assert!(t.sp.series(kids[i], t.cur));
        }
    }
}
