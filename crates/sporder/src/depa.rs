//! DePa-style relabel-free reachability for fork-join programs.
//!
//! SP-Order ([`SpOrderImpl`]) keeps the English/Hebrew orders in mutable
//! order-maintenance lists: every insertion may *relabel* existing nodes, so
//! a query is only valid while no maintenance runs — the structure is
//! inherently `&mut`-serialized. DePa (Westrick et al.) removes the mutation:
//! each strand gets an **immutable depth-vector timestamp** assigned once at
//! creation (spawn / sync / call), and every `series`/`parallel` verdict is a
//! pure comparison of two published vectors. Published timestamps are never
//! touched again — no relabeling, no locks — so any number of threads may
//! query a shared `&DePaReach` while it answers in O(depth).
//!
//! # Timestamps
//!
//! A strand's timestamp is its *path*: one packed coordinate per open
//! frame on the fork-join spine, ending at the strand's own slot. A
//! coordinate packs `(era, serial, step)`:
//!
//! * `era` — the frame's sync-block generation. Every sync bumps the era, so
//!   strands of era `g` are in series before everything of era `g+1`.
//! * `step` — the slot within the era, advanced at each spawn and at each
//!   serial-call return.
//! * `serial` — a tag on the path coordinate of a *called* subcomputation:
//!   a call runs serially inside its caller's strand, so its subtree is in
//!   series with later slots of the same era (a *spawned* subtree at the
//!   same depth would be parallel to them).
//!
//! # The comparison rule
//!
//! For paths `a`, `b`, find the first position `i` where the (serial-masked)
//! coordinates differ.
//!
//! * No such position: the shorter path is a prefix — a frame strand is in
//!   series before its whole subcomputation (`a ≺ b` iff `a` is shorter).
//! * Coordinates differ, `a[i] < b[i]` (symmetrically for `>`):
//!   * `a` **ends at `i`**: `a` is the frame strand owning slot `a[i]` and
//!     `b` lives in a later slot of the same frame — `a ≺ b`;
//!   * `era(a[i]) < era(b[i])`: a sync separates them — `a ≺ b`;
//!   * `a[i]` carries the **serial** tag: `a` is inside a call that returned
//!     (and implicitly synced) before `b`'s slot opened — `a ≺ b`;
//!   * otherwise both are spawned subtrees of the same sync block —
//!     `a ∥ b`, with `a` first in the sequential (English) order.
//!
//! The English order is therefore the masked-lexicographic path order with
//! prefixes first (= the sequential depth-first execution order), and the
//! Hebrew order is the same order with exactly the parallel pairs flipped.
//! [`DePaReach::freeze`] materializes both as rank permutations, producing a
//! [`FrozenReach`] interchangeable with an SP-Order snapshot of the same
//! execution.
//!
//! # Maintenance
//!
//! Maintenance mirrors the executor's frame stack and is `&mut` (the
//! executor owns the structure while the program runs); the published
//! timestamp arena is append-only with stable addresses (a power-of-two
//! brick spine), so maintenance never invalidates a concurrently held
//! timestamp reference. Era bumps are *lazy*: a sync block's sync strand is
//! created (at `era+1`) when the block's first spawn executes, but the frame
//! commits to the new era only when execution actually continues as that
//! strand (`resync`), keeping not-taken sync strands harmless.

use std::sync::OnceLock;

use crate::{FrozenReach, ReachMaint, Reachability, SpawnStrands, StrandId, NO_PARENT};

// Observability (no-ops costing one relaxed load while `stint-obs` is
// disabled). `depa.queries` counts order queries answered from published
// timestamps; `depa.timestamps` counts published strand timestamps;
// `depa.bytes` tracks the arena + lineage footprint. (`depa.merges` is
// counted where merging happens, in `stint-batchdet`'s online engine.)
static OBS_QUERIES: stint_obs::Counter = stint_obs::Counter::new("depa.queries");
static OBS_TIMESTAMPS: stint_obs::Counter = stint_obs::Counter::new("depa.timestamps");
static OBS_BYTES: stint_obs::Gauge = stint_obs::Gauge::new("depa.bytes");

/// Serial-call tag on a path coordinate (bit 32, between the step field and
/// the era field).
const SERIAL: u64 = 1 << 32;
/// Mask removing the serial tag for slot comparisons.
const MASK: u64 = !SERIAL;
/// Eras occupy the high 31 bits of a coordinate.
const MAX_ERA: u32 = (1 << 31) - 1;

#[inline]
fn coord(era: u32, step: u32) -> u64 {
    ((era as u64) << 33) | step as u64
}

#[inline]
fn era_of(masked: u64) -> u64 {
    masked >> 33
}

/// Pairwise relation of two timestamps, with the sequential-order direction
/// for parallel pairs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Rel {
    Equal,
    /// `a ≺ b`.
    SeriesAb,
    /// `b ≺ a`.
    SeriesBa,
    /// `a ∥ b`, `a` first in English order.
    ParallelAb,
    /// `a ∥ b`, `b` first in English order.
    ParallelBa,
}

/// The full comparison rule (module docs). Pure function of two published
/// paths — the concurrent-query guarantee rests on this taking `&[u64]`.
fn compare(a: &[u64], b: &[u64]) -> Rel {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] & MASK == b[i] & MASK {
        i += 1;
    }
    if i == n {
        return match a.len().cmp(&b.len()) {
            std::cmp::Ordering::Equal => Rel::Equal,
            std::cmp::Ordering::Less => Rel::SeriesAb,
            std::cmp::Ordering::Greater => Rel::SeriesBa,
        };
    }
    let (ca, cb) = (a[i] & MASK, b[i] & MASK);
    if ca < cb {
        if i + 1 == a.len() || era_of(ca) < era_of(cb) || a[i] & SERIAL != 0 {
            Rel::SeriesAb
        } else {
            Rel::ParallelAb
        }
    } else if i + 1 == b.len() || era_of(cb) < era_of(ca) || b[i] & SERIAL != 0 {
        Rel::SeriesBa
    } else {
        Rel::ParallelBa
    }
}

/// `a` before `b` in the English (sequential depth-first) order:
/// masked-lexicographic with prefixes first.
fn english_less(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    for i in 0..n {
        let (ca, cb) = (a[i] & MASK, b[i] & MASK);
        if ca != cb {
            return ca < cb;
        }
    }
    a.len() < b.len()
}

/// `a` before `b` in the Hebrew order: English with parallel pairs flipped.
fn hebrew_less(a: &[u64], b: &[u64]) -> bool {
    matches!(compare(a, b), Rel::SeriesAb | Rel::ParallelBa)
}

/// Append-only timestamp arena with stable addresses: a spine of
/// power-of-two *bricks*, each slot published exactly once through a
/// [`OnceLock`]. Growing the arena allocates a new brick and never moves a
/// published path, so a reader holding `&DePaReach` across later
/// publications (a future truly-concurrent runtime) stays valid; reading a
/// slot costs two acquire loads and no locks.
type Brick = Box<[OnceLock<Box<[u64]>>]>;

struct PathArena {
    spine: Vec<OnceLock<Brick>>,
    len: usize,
}

/// Brick index and offset for slot `i`: brick `b` holds slots
/// `[2^b - 1, 2^(b+1) - 1)`.
#[inline]
fn locate(i: usize) -> (usize, usize) {
    let k = i + 1;
    let b = (usize::BITS - 1 - k.leading_zeros()) as usize;
    (b, k - (1usize << b))
}

impl PathArena {
    fn new() -> Self {
        PathArena {
            spine: (0..32).map(|_| OnceLock::new()).collect(),
            len: 0,
        }
    }

    /// Publish `path` at the next slot; returns the heap bytes the push
    /// added (path storage plus any newly allocated brick).
    fn push(&mut self, path: Box<[u64]>) -> u64 {
        let (b, off) = locate(self.len);
        let mut added = (path.len() * std::mem::size_of::<u64>()) as u64;
        if self.spine[b].get().is_none() {
            added += ((1usize << b) * std::mem::size_of::<OnceLock<Box<[u64]>>>()) as u64;
        }
        let brick = self.spine[b].get_or_init(|| {
            (0..1usize << b)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        brick[off]
            .set(path)
            .expect("arena slot is published exactly once");
        self.len += 1;
        added
    }

    /// Read a published path. Lock-free: two acquire loads.
    #[inline]
    fn get(&self, i: usize) -> &[u64] {
        debug_assert!(i < self.len);
        let (b, off) = locate(i);
        self.spine[b].get().expect("brick published")[off]
            .get()
            .expect("path published")
    }
}

/// One maintenance frame, mirroring the executor's frame stack: the shared
/// path prefix of every strand the frame creates, the current era/step
/// cursor, and the not-yet-committed sync strand of the open sync block.
struct DFrame {
    base: Vec<u64>,
    era: u32,
    step: u32,
    pending: Option<StrandId>,
}

/// Relabel-free reachability: immutable per-strand depth-vector timestamps
/// (module docs). Queries take `&self` and are lock-free; maintenance takes
/// `&mut self` and never mutates a published timestamp.
pub struct DePaReach {
    arena: PathArena,
    /// Per strand: the strand that created it ([`NO_PARENT`] for the root) —
    /// the same spawn-tree lineage [`SpOrderImpl`](crate::SpOrderImpl)
    /// records, so race witnesses are substrate-independent.
    parents: Vec<u32>,
    frames: Vec<DFrame>,
    /// Measured footprint (arena + lineage), maintained incrementally.
    bytes: u64,
    /// Bytes last reported to the `depa.bytes` gauge.
    owned_bytes: u64,
}

impl Drop for DePaReach {
    fn drop(&mut self) {
        OBS_BYTES.reconcile(&mut self.owned_bytes, 0);
    }
}

impl Default for DePaReach {
    fn default() -> Self {
        Self::new().0
    }
}

impl DePaReach {
    /// Create the structure together with the root strand.
    pub fn new() -> (Self, StrandId) {
        let mut r = DePaReach {
            arena: PathArena::new(),
            parents: Vec::new(),
            frames: vec![DFrame {
                base: Vec::new(),
                era: 0,
                step: 0,
                pending: None,
            }],
            bytes: 0,
            owned_bytes: 0,
        };
        let root = r.push(Box::new([coord(0, 0)]), NO_PARENT);
        (r, root)
    }

    /// Number of strands registered so far.
    #[inline]
    pub fn strand_count(&self) -> usize {
        self.parents.len()
    }

    /// The published timestamp of a strand (exposed for tests and tools).
    #[inline]
    pub fn timestamp(&self, s: StrandId) -> &[u64] {
        self.arena.get(s.index())
    }

    /// Heap bytes owned by the timestamp arena, lineage table and frame
    /// stack.
    pub fn heap_bytes(&self) -> u64 {
        let frames: usize = self
            .frames
            .iter()
            .map(|f| f.base.capacity() * std::mem::size_of::<u64>())
            .sum();
        self.bytes
            + (self.parents.capacity() * std::mem::size_of::<u32>()) as u64
            + (frames + self.frames.capacity() * std::mem::size_of::<DFrame>()) as u64
    }

    fn push(&mut self, path: Box<[u64]>, parent: u32) -> StrandId {
        let id = self.parents.len();
        assert!(id < u32::MAX as usize, "strand count exceeds u32");
        OBS_TIMESTAMPS.incr();
        self.bytes += self.arena.push(path);
        self.parents.push(parent);
        if stint_obs::is_enabled() {
            let b = self.heap_bytes();
            OBS_BYTES.reconcile(&mut self.owned_bytes, b);
        }
        StrandId(id as u32)
    }

    /// Commit the open sync block's era bump if execution has continued as
    /// the block's sync strand. Ran by every maintenance hook first; bumping
    /// lazily keeps a created-but-never-reached sync strand harmless.
    fn resync(&mut self, cur: StrandId) {
        let f = self.frames.last_mut().expect("frame stack never empty");
        if f.pending == Some(cur) {
            // The +1 was range-checked when the sync strand was created.
            f.era += 1;
            f.step = 0;
            f.pending = None;
        }
    }

    fn bump_step(f: &mut DFrame) -> u32 {
        f.step = f.step.checked_add(1).unwrap_or_else(|| {
            stint_faults::DetectorError::ResourceExhausted {
                resource: stint_faults::Resource::OmTags,
                limit: u32::MAX as u64,
                at_word: None,
            }
            .raise()
        });
        f.step
    }

    /// Create the sync strand for the sync block whose first spawn `cur` is
    /// executing (timestamped at the frame's *next* era; committed lazily).
    pub fn new_sync_strand(&mut self, cur: StrandId) -> StrandId {
        self.resync(cur);
        let f = self.frames.last().expect("frame stack never empty");
        if f.era >= MAX_ERA {
            stint_faults::DetectorError::ResourceExhausted {
                resource: stint_faults::Resource::OmTags,
                limit: MAX_ERA as u64,
                at_word: None,
            }
            .raise()
        }
        let mut path = Vec::with_capacity(f.base.len() + 1);
        path.extend_from_slice(&f.base);
        path.push(coord(f.era + 1, 0));
        let id = self.push(path.into_boxed_slice(), cur.0);
        self.frames.last_mut().expect("frame").pending = Some(id);
        id
    }

    /// Register a spawn executed by `cur`: the child takes the frame's
    /// current slot (its subtree extends it), the continuation takes the
    /// next slot, and a frame for the child's subcomputation opens.
    pub fn spawn(&mut self, cur: StrandId) -> SpawnStrands {
        self.resync(cur);
        let f = self.frames.last().expect("frame stack never empty");
        let mut child_base = Vec::with_capacity(f.base.len() + 1);
        child_base.extend_from_slice(&f.base);
        child_base.push(coord(f.era, f.step));
        let mut child_path = Vec::with_capacity(child_base.len() + 1);
        child_path.extend_from_slice(&child_base);
        child_path.push(coord(0, 0));
        let era = f.era;
        let next = Self::bump_step(self.frames.last_mut().expect("frame"));
        let f = self.frames.last().expect("frame");
        let mut cont_path = Vec::with_capacity(f.base.len() + 1);
        cont_path.extend_from_slice(&f.base);
        cont_path.push(coord(era, next));
        let child = self.push(child_path.into_boxed_slice(), cur.0);
        let continuation = self.push(cont_path.into_boxed_slice(), cur.0);
        self.frames.push(DFrame {
            base: child_base,
            era: 0,
            step: 0,
            pending: None,
        });
        SpawnStrands {
            child,
            continuation,
        }
    }

    /// A serial call by `cur` opens: its subtree occupies the frame's
    /// current slot with the serial tag (in series with every later slot of
    /// the era — the call implicitly syncs before returning).
    pub fn call_enter(&mut self, cur: StrandId) {
        self.resync(cur);
        let f = self.frames.last().expect("frame stack never empty");
        let mut base = Vec::with_capacity(f.base.len() + 1);
        base.extend_from_slice(&f.base);
        base.push(coord(f.era, f.step) | SERIAL);
        self.frames.push(DFrame {
            base,
            era: 0,
            step: 0,
            pending: None,
        });
    }

    /// The serial call returns (after its implicit sync): close its frame
    /// and advance the caller past the serial-tagged slot.
    pub fn call_exit(&mut self, cur: StrandId) {
        self.resync(cur);
        self.frames.pop();
        Self::bump_step(self.frames.last_mut().expect("caller frame remains"));
    }

    /// A spawned child's subcomputation finished (after its implicit sync):
    /// close its frame. The caller's step was already advanced at the spawn.
    pub fn child_return(&mut self, cur: StrandId) {
        self.resync(cur);
        self.frames.pop();
    }

    #[inline]
    fn cmp_ids(&self, a: StrandId, b: StrandId) -> Rel {
        OBS_QUERIES.incr();
        compare(self.arena.get(a.index()), self.arena.get(b.index()))
    }

    /// The strand that created `s` (`None` for the root).
    #[inline]
    pub fn parent_of(&self, s: StrandId) -> Option<StrandId> {
        let p = self.parents[s.index()];
        (p != NO_PARENT).then_some(StrandId(p))
    }

    /// Snapshot the English/Hebrew orders into a [`FrozenReach`]
    /// (O(n log n · depth)). The ranks are identical to those an
    /// [`SpOrderImpl`](crate::SpOrderImpl) maintaining the same execution
    /// would freeze — the merged-report byte-identity across substrates
    /// rests on this.
    pub fn freeze(&self) -> FrozenReach {
        let n = self.parents.len();
        let rank_of = |heb: bool| -> Vec<u32> {
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.sort_by(|&x, &y| {
                let (pa, pb) = (self.arena.get(x as usize), self.arena.get(y as usize));
                let before = if heb {
                    hebrew_less(pa, pb)
                } else {
                    english_less(pa, pb)
                };
                if before {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            let mut rank = vec![0u32; n];
            for (r, &i) in idx.iter().enumerate() {
                rank[i as usize] = r as u32;
            }
            rank
        };
        FrozenReach::from_ranks(rank_of(false), rank_of(true)).with_parents(self.parents.clone())
    }
}

impl Reachability for DePaReach {
    #[inline]
    fn series(&self, a: StrandId, b: StrandId) -> bool {
        self.cmp_ids(a, b) == Rel::SeriesAb
    }
    #[inline]
    fn parallel(&self, a: StrandId, b: StrandId) -> bool {
        matches!(self.cmp_ids(a, b), Rel::ParallelAb | Rel::ParallelBa)
    }
    #[inline]
    fn left_of(&self, a: StrandId, b: StrandId) -> bool {
        // `left_of(a, b) ⟺ b <_H a`: either parallel with `a` sequentially
        // first, or series with `b` first (see `SpOrderImpl::left_of`).
        matches!(self.cmp_ids(a, b), Rel::SeriesBa | Rel::ParallelAb)
    }
    #[inline]
    fn order_pair(&self, a: StrandId, b: StrandId) -> (bool, bool) {
        // Direct single-comparison override (the default would issue up to
        // three queries).
        match self.cmp_ids(a, b) {
            Rel::Equal | Rel::SeriesBa => (false, false),
            Rel::SeriesAb => (true, true),
            Rel::ParallelAb => (true, false),
            Rel::ParallelBa => (false, true),
        }
    }
    #[inline]
    fn parent_of(&self, s: StrandId) -> Option<StrandId> {
        DePaReach::parent_of(self, s)
    }
}

impl ReachMaint for DePaReach {
    fn init() -> (Self, StrandId) {
        DePaReach::new()
    }
    #[inline]
    fn new_sync_strand(&mut self, cur: StrandId) -> StrandId {
        DePaReach::new_sync_strand(self, cur)
    }
    #[inline]
    fn spawn(&mut self, cur: StrandId) -> SpawnStrands {
        DePaReach::spawn(self, cur)
    }
    #[inline]
    fn call_enter(&mut self, cur: StrandId) {
        DePaReach::call_enter(self, cur)
    }
    #[inline]
    fn call_exit(&mut self, cur: StrandId) {
        DePaReach::call_exit(self, cur)
    }
    #[inline]
    fn child_return(&mut self, cur: StrandId) {
        DePaReach::child_return(self, cur)
    }
    fn strand_count(&self) -> usize {
        DePaReach::strand_count(self)
    }
    fn heap_bytes(&self) -> u64 {
        DePaReach::heap_bytes(self)
    }
    fn freeze(&self) -> FrozenReach {
        DePaReach::freeze(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny executor mirroring the full maintenance protocol including call
    /// frames (the real executor lives in `stint-cilk`).
    struct Frame {
        sync_strand: Option<StrandId>,
    }
    struct Toy {
        r: DePaReach,
        cur: StrandId,
        frames: Vec<Frame>,
    }
    impl Toy {
        fn new() -> Self {
            let (r, root) = DePaReach::new();
            Toy {
                r,
                cur: root,
                frames: vec![Frame { sync_strand: None }],
            }
        }
        fn spawn(&mut self, f: impl FnOnce(&mut Toy)) {
            if self.frames.last().unwrap().sync_strand.is_none() {
                let j = self.r.new_sync_strand(self.cur);
                self.frames.last_mut().unwrap().sync_strand = Some(j);
            }
            let s = self.r.spawn(self.cur);
            self.frames.push(Frame { sync_strand: None });
            self.cur = s.child;
            f(self);
            self.sync();
            self.frames.pop();
            self.r.child_return(self.cur);
            self.cur = s.continuation;
        }
        fn sync(&mut self) {
            if let Some(j) = self.frames.last_mut().unwrap().sync_strand.take() {
                self.cur = j;
            }
        }
        fn call(&mut self, f: impl FnOnce(&mut Toy)) {
            self.r.call_enter(self.cur);
            self.frames.push(Frame { sync_strand: None });
            f(self);
            self.sync();
            self.frames.pop();
            self.r.call_exit(self.cur);
        }
    }

    #[test]
    fn spawn_makes_child_parallel_to_continuation() {
        let mut t = Toy::new();
        let mut child = None;
        t.spawn(|t| child = Some(t.cur));
        let child = child.unwrap();
        let cont = t.cur;
        assert!(t.r.parallel(child, cont));
        assert!(t.r.left_of(child, cont), "child is left of continuation");
        assert!(!t.r.left_of(cont, child));
        assert_eq!(t.r.order_pair(child, cont), (true, false));
    }

    #[test]
    fn sync_serializes() {
        let mut t = Toy::new();
        let root = t.cur;
        let mut child = None;
        t.spawn(|t| child = Some(t.cur));
        t.sync();
        let after = t.cur;
        let child = child.unwrap();
        assert!(t.r.series(root, child));
        assert!(t.r.series(child, after));
        assert!(t.r.series(root, after));
        assert!(!t.r.parallel(child, after));
        assert!(t.r.left_of(after, child));
    }

    #[test]
    fn two_children_are_parallel() {
        let mut t = Toy::new();
        let (mut c1, mut c2) = (None, None);
        t.spawn(|t| c1 = Some(t.cur));
        t.spawn(|t| c2 = Some(t.cur));
        t.sync();
        let (c1, c2) = (c1.unwrap(), c2.unwrap());
        assert!(t.r.parallel(c1, c2));
        assert!(t.r.left_of(c1, c2), "earlier sibling is left of later");
        assert!(t.r.series(c1, t.cur));
        assert!(t.r.series(c2, t.cur));
    }

    #[test]
    fn nested_spawn_parallel_with_uncle_continuation() {
        // spawn { spawn {A}; B } ; C ; sync — A,B,C pairwise parallel.
        let mut t = Toy::new();
        let (mut a, mut b) = (None, None);
        t.spawn(|t| {
            t.spawn(|t| a = Some(t.cur));
            b = Some(t.cur);
        });
        let c = t.cur;
        t.sync();
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(t.r.parallel(a, b));
        assert!(t.r.parallel(a, c));
        assert!(t.r.parallel(b, c));
        assert!(t.r.series(a, t.cur));
        assert!(t.r.series(b, t.cur));
    }

    #[test]
    fn second_sync_block_is_serial_after_first() {
        let mut t = Toy::new();
        let (mut a, mut b) = (None, None);
        t.spawn(|t| a = Some(t.cur));
        t.sync();
        t.spawn(|t| b = Some(t.cur));
        t.sync();
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(t.r.series(a, b), "strands of block 1 precede block 2");
        assert!(t.r.series(a, t.cur));
        assert!(t.r.series(b, t.cur));
    }

    #[test]
    fn call_scopes_sync_to_callee() {
        // call { spawn A; } ; B — the callee's implicit sync (the serial
        // tag) orders A before B.
        let mut t = Toy::new();
        let mut a = None;
        t.call(|t| {
            t.spawn(|t| a = Some(t.cur));
        });
        let b = t.cur;
        let a = a.unwrap();
        assert!(t.r.series(a, b), "callee child must precede post-call code");
    }

    #[test]
    fn call_does_not_serialize_outstanding_children() {
        // spawn A; call { spawn B; } ; C — the call syncs only its own
        // children: A stays parallel with B and C.
        let mut t = Toy::new();
        let (mut a, mut b) = (None, None);
        t.spawn(|t| a = Some(t.cur));
        t.call(|t| {
            t.spawn(|t| b = Some(t.cur));
        });
        let c = t.cur;
        t.sync();
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(t.r.parallel(a, b), "call must not sync the caller's child");
        assert!(t.r.parallel(a, c));
        assert!(t.r.series(b, c), "callee synced before the caller resumed");
        assert!(t.r.series(a, t.cur));
        assert!(t.r.series(b, t.cur));
    }

    #[test]
    fn serial_calls_in_sequence_are_ordered() {
        let mut t = Toy::new();
        let (mut a, mut b) = (None, None);
        t.call(|t| t.spawn(|t| a = Some(t.cur)));
        t.call(|t| t.spawn(|t| b = Some(t.cur)));
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(t.r.series(a, b));
        assert!(t.r.series(b, t.cur));
    }

    #[test]
    fn spawned_subtree_parallel_with_later_call() {
        // spawn {A}; call { spawn B; } — A ∥ B (the spawn is outstanding
        // while the call runs).
        let mut t = Toy::new();
        let (mut a, mut b) = (None, None);
        t.spawn(|t| a = Some(t.cur));
        t.call(|t| t.spawn(|t| b = Some(t.cur)));
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(t.r.parallel(a, b));
        assert!(t.r.left_of(a, b));
    }

    #[test]
    fn sync_then_spawn_inside_callee() {
        // Deep sync chains inside a call frame exercise the lazy era bump
        // in a nested frame.
        let mut t = Toy::new();
        let mut ids = Vec::new();
        t.call(|t| {
            for _ in 0..20 {
                t.spawn(|t| ids.push(t.cur));
                t.sync();
                ids.push(t.cur);
            }
        });
        // A call returns *as* the callee's final strand; spawn+sync once to
        // reach a strictly later strand.
        t.spawn(|_| {});
        t.sync();
        ids.push(t.cur);
        for w in ids.windows(2) {
            assert!(t.r.series(w[0], w[1]), "{:?} ≺ {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn deep_chain_series() {
        let mut t = Toy::new();
        let mut ids = vec![t.cur];
        for _ in 0..100 {
            t.spawn(|_| {});
            t.sync();
            ids.push(t.cur);
        }
        for w in ids.windows(2) {
            assert!(t.r.series(w[0], w[1]));
        }
        assert!(t.r.series(ids[0], *ids.last().unwrap()));
    }

    #[test]
    fn wide_fanout_pairwise_parallel() {
        let mut t = Toy::new();
        let mut kids = Vec::new();
        for _ in 0..50 {
            t.spawn(|t| kids.push(t.cur));
        }
        t.sync();
        for i in 0..kids.len() {
            for j in (i + 1)..kids.len() {
                assert!(t.r.parallel(kids[i], kids[j]));
                assert!(t.r.left_of(kids[i], kids[j]));
            }
            assert!(t.r.series(kids[i], t.cur));
        }
    }

    #[test]
    fn frozen_matches_live_queries() {
        let mut t = Toy::new();
        let (mut a, mut b) = (None, None);
        t.spawn(|t| {
            t.spawn(|t| a = Some(t.cur));
            b = Some(t.cur);
        });
        t.call(|t| t.spawn(|_| {}));
        t.sync();
        let frozen = t.r.freeze();
        assert_eq!(frozen.strand_count(), t.r.strand_count());
        let n = t.r.strand_count() as u32;
        for x in 0..n {
            for y in 0..n {
                let (x, y) = (StrandId(x), StrandId(y));
                assert_eq!(t.r.series(x, y), frozen.series(x, y), "series {x:?} {y:?}");
                assert_eq!(
                    t.r.parallel(x, y),
                    frozen.parallel(x, y),
                    "parallel {x:?} {y:?}"
                );
                assert_eq!(
                    t.r.left_of(x, y),
                    frozen.left_of(x, y),
                    "left_of {x:?} {y:?}"
                );
                assert_eq!(
                    t.r.order_pair(x, y),
                    frozen.order_pair(x, y),
                    "order_pair {x:?} {y:?}"
                );
            }
        }
        assert_eq!(frozen.parents(), Some(&t.r.parents[..]));
        let _ = (a.unwrap(), b.unwrap());
    }

    #[test]
    fn timestamps_are_immutable_and_stable() {
        // Hold raw pointers to early timestamps across enough pushes to
        // allocate several new bricks; the arena must never move them.
        let mut t = Toy::new();
        let p0 = t.r.timestamp(StrandId(0)).as_ptr();
        let v0: Vec<u64> = t.r.timestamp(StrandId(0)).to_vec();
        for _ in 0..200 {
            t.spawn(|_| {});
        }
        t.sync();
        assert_eq!(t.r.timestamp(StrandId(0)).as_ptr(), p0);
        assert_eq!(t.r.timestamp(StrandId(0)), &v0[..]);
    }

    #[test]
    fn query_path_is_shareable() {
        // &DePaReach is Sync: queries run concurrently from plain threads.
        let mut t = Toy::new();
        let mut kids = Vec::new();
        for _ in 0..8 {
            t.spawn(|t| kids.push(t.cur));
        }
        t.sync();
        let last = t.cur;
        let r = &t.r;
        let kids = &kids;
        std::thread::scope(|s| {
            for &k in kids {
                s.spawn(move || {
                    assert!(r.series(k, last));
                    for &k2 in kids {
                        assert_eq!(r.parallel(k, k2), k != k2);
                    }
                });
            }
        });
    }

    #[test]
    fn heap_bytes_grows_with_strands() {
        let mut t = Toy::new();
        let before = t.r.heap_bytes();
        for _ in 0..32 {
            t.spawn(|_| {});
        }
        t.sync();
        assert!(t.r.heap_bytes() > before);
    }
}
