//! Strand-local memoization of reachability queries.
//!
//! Every query a detector issues while flushing a strand `s` has the shape
//! `(old, s)` where `old` is a stored accessor: `parallel(old, s)` decides
//! whether a conflict is a race, `left_of(s, old)` decides whether `s`
//! replaces the stored leftmost reader. The set of distinct `old` values per
//! strand is tiny (a handful of recently-active strands own the touched
//! shadow state), so a small direct-mapped cache keyed by `old` turns most
//! order-maintenance list walks into one array probe — the same access
//! locality DePa and CSSTs exploit for order queries.
//!
//! The answers are only valid for a fixed current strand: the cache carries
//! a generation counter bumped by [`ReachCache::begin_strand`] whenever the
//! current strand changes, which invalidates every slot in O(1). Each of the
//! two answers is filled lazily on first demand — a write-side miss asks
//! only `parallel`, and computing `left_of` for it would double the miss
//! cost for nothing.

use crate::{Reachability, StrandId};

const SLOTS: usize = 64;

// Observability mirrors of the per-instance `hits`/`misses`/`flushes`
// fields, aggregated process-wide (no-ops while `stint-obs` is disabled).
static OBS_HITS: stint_obs::Counter = stint_obs::Counter::new("sporder.reach_cache_hits");
static OBS_MISSES: stint_obs::Counter = stint_obs::Counter::new("sporder.reach_cache_misses");
static OBS_FLUSHES: stint_obs::Counter = stint_obs::Counter::new("sporder.reach_cache_flushes");
static OBS_CACHE_BYTES: stint_obs::Gauge = stint_obs::Gauge::new("sporder.reach_cache_bytes");

/// `Slot::have` bit: the `parallel` answer is present.
const HAVE_PARALLEL: u8 = 1;
/// `Slot::have` bit: the `left_of` answer is present.
const HAVE_LEFT_OF: u8 = 2;

#[derive(Clone, Copy)]
struct Slot {
    gen: u64,
    old: StrandId,
    have: u8,
    parallel: bool,
    left_of: bool,
}

const EMPTY_SLOT: Slot = Slot {
    gen: 0,
    old: StrandId(u32::MAX),
    have: 0,
    parallel: false,
    left_of: false,
};

/// Direct-mapped, generation-invalidated cache for `(old, current-strand)`
/// reachability queries. See the module docs for the validity argument.
pub struct ReachCache {
    cur: StrandId,
    gen: u64,
    slots: [Slot; SLOTS],
    /// Queries answered from a slot.
    pub hits: u64,
    /// Queries that walked the underlying [`Reachability`] structure.
    pub misses: u64,
    /// Strand-boundary invalidations.
    pub flushes: u64,
    /// Bytes last reported to the `sporder.reach_cache_bytes` gauge. The
    /// cache is embedded by value in its detector, so its footprint is its
    /// own `size_of` — reported at creation, returned at drop.
    owned_bytes: u64,
}

impl Default for ReachCache {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ReachCache {
    fn drop(&mut self) {
        OBS_CACHE_BYTES.reconcile(&mut self.owned_bytes, 0);
    }
}

impl ReachCache {
    pub fn new() -> Self {
        let mut c = ReachCache {
            cur: StrandId(u32::MAX),
            // Slots start at gen 0; the live generation starts at 1 so every
            // slot begins invalid.
            gen: 1,
            slots: [EMPTY_SLOT; SLOTS],
            hits: 0,
            misses: 0,
            flushes: 0,
            owned_bytes: 0,
        };
        OBS_CACHE_BYTES.reconcile(&mut c.owned_bytes, std::mem::size_of::<ReachCache>() as u64);
        c
    }

    /// The strand whose queries the cache currently memoizes.
    #[inline]
    pub fn current(&self) -> StrandId {
        self.cur
    }

    /// Point the cache at strand `s`. If the strand changed, every cached
    /// answer is invalidated (O(1): the generation counter moves past them).
    #[inline]
    pub fn begin_strand(&mut self, s: StrandId) {
        if s != self.cur {
            self.cur = s;
            self.gen += 1;
            self.flushes += 1;
            OBS_FLUSHES.incr();
        }
    }

    /// Memoized `reach.parallel(old, current)`.
    #[inline]
    pub fn parallel_with_cur(&mut self, old: StrandId, reach: &impl Reachability) -> bool {
        if old == self.cur {
            // Degenerate self-query — `parallel` is irreflexive, and stored
            // accessors usually *are* the current strand (a strand re-touching
            // its own data). The raw structures answer this with one compare;
            // don't burn a slot probe (or skew the hit/miss stats) on it.
            return false;
        }
        let gen = self.gen;
        let slot = &mut self.slots[old.0 as usize & (SLOTS - 1)];
        let live = slot.gen == gen && slot.old == old;
        if live && slot.have & HAVE_PARALLEL != 0 {
            self.hits += 1;
            OBS_HITS.incr();
            return slot.parallel;
        }
        self.misses += 1;
        OBS_MISSES.incr();
        let parallel = reach.parallel(old, self.cur);
        if live {
            slot.have |= HAVE_PARALLEL;
            slot.parallel = parallel;
        } else {
            *slot = Slot {
                gen,
                old,
                have: HAVE_PARALLEL,
                parallel,
                left_of: false,
            };
        }
        parallel
    }

    /// Memoized `reach.left_of(current, old)`.
    #[inline]
    pub fn cur_left_of(&mut self, old: StrandId, reach: &impl Reachability) -> bool {
        if old == self.cur {
            // `left_of` is irreflexive too; see `parallel_with_cur`.
            return false;
        }
        let gen = self.gen;
        let slot = &mut self.slots[old.0 as usize & (SLOTS - 1)];
        let live = slot.gen == gen && slot.old == old;
        if live && slot.have & HAVE_LEFT_OF != 0 {
            self.hits += 1;
            OBS_HITS.incr();
            return slot.left_of;
        }
        self.misses += 1;
        OBS_MISSES.incr();
        let left_of = reach.left_of(self.cur, old);
        if live {
            slot.have |= HAVE_LEFT_OF;
            slot.left_of = left_of;
        } else {
            *slot = Slot {
                gen,
                old,
                have: HAVE_LEFT_OF,
                parallel: false,
                left_of,
            };
        }
        left_of
    }

    /// Fraction of queries served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpOrder;

    /// Root spawns two children in one sync block, then syncs.
    fn fixture() -> (SpOrder, Vec<StrandId>) {
        let (mut sp, root) = SpOrder::new();
        let j = sp.new_sync_strand(root);
        let s1 = sp.spawn(root);
        let s2 = sp.spawn(s1.continuation);
        let all = vec![
            root,
            s1.child,
            s1.continuation,
            s2.child,
            s2.continuation,
            j,
        ];
        (sp, all)
    }

    #[test]
    fn cached_answers_match_uncached_for_all_pairs() {
        let (sp, all) = fixture();
        let mut cache = ReachCache::new();
        for &s in &all {
            cache.begin_strand(s);
            // Ask twice: the second round must be all hits with the same
            // answers.
            for _ in 0..2 {
                for &old in &all {
                    assert_eq!(
                        cache.parallel_with_cur(old, &sp),
                        sp.parallel(old, s),
                        "parallel({old:?}, {s:?})"
                    );
                    assert_eq!(
                        cache.cur_left_of(old, &sp),
                        sp.left_of(s, old),
                        "left_of({s:?}, {old:?})"
                    );
                }
            }
        }
        assert!(cache.hits > 0 && cache.misses > 0);
    }

    #[test]
    fn strand_change_invalidates() {
        let (sp, all) = fixture();
        let (a, b) = (all[1], all[2]); // child ∥ continuation
        let mut cache = ReachCache::new();
        cache.begin_strand(b);
        // b vs a: parallel.
        assert!(cache.parallel_with_cur(a, &sp));
        let flushes_before = cache.flushes;
        cache.begin_strand(all[5]); // the sync strand: serial after a
        assert_eq!(cache.flushes, flushes_before + 1);
        assert!(!cache.parallel_with_cur(a, &sp), "stale answer survived");
        // Re-pointing at the same strand must NOT flush.
        cache.begin_strand(all[5]);
        assert_eq!(cache.flushes, flushes_before + 1);
    }

    #[test]
    fn colliding_ids_evict_not_corrupt() {
        // Strand ids 64 apart map to the same slot; force a long chain so
        // such ids exist, then alternate queries between them.
        let (mut sp, root) = SpOrder::new();
        let mut cur = root;
        let mut ids = vec![root];
        for _ in 0..130 {
            let j = sp.new_sync_strand(cur);
            let s = sp.spawn(cur);
            ids.push(s.child);
            ids.push(s.continuation);
            cur = j;
            ids.push(j);
        }
        let a = ids[3];
        let b = *ids
            .iter()
            .find(|x| x.0 != a.0 && x.0 as usize % SLOTS == a.0 as usize % SLOTS)
            .expect("130 sync blocks produce colliding strand ids");
        let mut cache = ReachCache::new();
        cache.begin_strand(cur);
        for _ in 0..4 {
            assert_eq!(cache.parallel_with_cur(a, &sp), sp.parallel(a, cur));
            assert_eq!(cache.parallel_with_cur(b, &sp), sp.parallel(b, cur));
            assert_eq!(cache.cur_left_of(a, &sp), sp.left_of(cur, a));
            assert_eq!(cache.cur_left_of(b, &sp), sp.left_of(cur, b));
        }
    }

    #[test]
    fn hit_rate_reflects_traffic() {
        let (sp, all) = fixture();
        let mut cache = ReachCache::new();
        assert_eq!(cache.hit_rate(), 0.0);
        cache.begin_strand(all[5]);
        cache.parallel_with_cur(all[0], &sp); // miss
        cache.parallel_with_cur(all[0], &sp); // hit
        cache.cur_left_of(all[0], &sp); // miss (answers fill lazily)
        cache.cur_left_of(all[0], &sp); // hit
        assert_eq!(cache.misses, 2);
        assert_eq!(cache.hits, 2);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }
}
