//! `chol` — Cholesky factorization by recursive blocked elimination.
//!
//! The Cilk-5 `cholesky` benchmark factors a sparse matrix held in a
//! quadtree; we substitute the dense blocked recursion with the same
//! fork-join shape and the same access-pattern property the paper exploits
//! (strands work on contiguous row segments of the lower triangle — chol is
//! one of the paper's best coalescers: 1466M accesses → 2.1M intervals).
//! See DESIGN.md §2 for the substitution note.
//!
//! In-place factorization of the lower triangle, `A = L·Lᵀ`:
//!
//! ```text
//! chol(A):            [ A11      ]      1. chol(A11)
//!                     [ A21  A22 ]      2. trsm:  A21 ← A21 · L11⁻ᵀ      (rows of A21 in parallel)
//!                                       3. syrk:  A22 ← A22 − A21·A21ᵀ  (disjoint blocks in parallel)
//!                                       4. chol(A22)
//! ```

use crate::util::MatMut;
use crate::Scale;
use stint_cilk::{Cilk, CilkProgram};

/// The `chol` benchmark instance.
pub struct Chol {
    pub n: usize,
    pub b: usize,
    a: Vec<f64>,
    /// The true factor used to build the input (for verification).
    l_true: Vec<f64>,
    verify_limit: usize,
}

impl Chol {
    pub fn new(n: usize, b: usize, seed: u64) -> Chol {
        assert!(n >= 1 && b >= 1);
        // Build A = L·Lᵀ from a random lower-triangular L with a dominant
        // positive diagonal: Cholesky of an SPD matrix is unique, so the
        // factorization must reproduce L exactly (up to rounding).
        let raw = crate::util::random_f64s(n * n, seed ^ 0xC0);
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..i {
                l[i * n + j] = raw[i * n + j] * 0.25;
            }
            l[i * n + i] = 1.0 + raw[i * n + i].abs();
        }
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += l[i * n + k] * l[j * n + k];
                }
                a[i * n + j] = s;
                a[j * n + i] = s;
            }
        }
        Chol {
            n,
            b,
            a,
            l_true: l,
            verify_limit: 1024,
        }
    }

    /// Paper parameters: n = 2000, b = 16 (on the sparse quadtree variant).
    pub fn with_scale(scale: Scale) -> Chol {
        match scale {
            Scale::Test => Chol::new(48, 8, 6),
            Scale::S => Chol::new(384, 16, 6),
            Scale::M => Chol::new(1024, 16, 6),
            Scale::Paper => Chol::new(2000, 16, 6),
        }
    }

    /// The computed factor occupies the lower triangle of the matrix.
    pub fn factor(&self) -> &[f64] {
        &self.a
    }

    pub fn verify(&self) -> Result<(), String> {
        if self.n > self.verify_limit {
            return Ok(());
        }
        let mut worst = 0.0f64;
        for i in 0..self.n {
            for j in 0..=i {
                worst = worst.max((self.a[i * self.n + j] - self.l_true[i * self.n + j]).abs());
            }
        }
        if worst < 1e-8 * self.n as f64 {
            Ok(())
        } else {
            Err(format!(
                "chol: max abs deviation from true factor = {worst}"
            ))
        }
    }
}

impl CilkProgram for Chol {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let n = self.n;
        let a = MatMut::from_slice(&mut self.a, n, n);
        chol_rec(ctx, a, self.b);
    }
}

fn chol_rec<C: Cilk>(ctx: &mut C, a: MatMut, b: usize) {
    let n = a.rows;
    if n <= b {
        chol_base(ctx, a);
        return;
    }
    let h = n / 2;
    let a11 = a.sub(0, 0, h, h);
    let a21 = a.sub(h, 0, n - h, h);
    let a22 = a.sub(h, h, n - h, n - h);
    chol_rec(ctx, a11, b);
    trsm(ctx, a21, a11, b);
    ctx.sync();
    syrk(ctx, a22, a21, b);
    ctx.sync();
    chol_rec(ctx, a22, b);
}

/// Serial left-looking base case over row segments of the lower triangle.
fn chol_base<C: Cilk>(ctx: &mut C, a: MatMut) {
    let n = a.rows;
    for j in 0..n {
        // Row j's prefix is read repeatedly below; its diagonal is written.
        ctx.load_range(a.addr(j, 0), (j + 1) * 8);
        ctx.store(a.addr(j, j), 8);
        let mut d = a.get(j, j);
        for k in 0..j {
            d -= a.get(j, k) * a.get(j, k);
        }
        let d = d.max(1e-300).sqrt();
        a.set(j, j, d);
        for i in (j + 1)..n {
            ctx.load_range(a.addr(i, 0), (j + 1) * 8);
            ctx.store(a.addr(i, j), 8);
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= a.get(i, k) * a.get(j, k);
            }
            a.set(i, j, s / d);
        }
    }
}

/// `x ← x · l⁻ᵀ` where `l` is lower triangular: forward substitution on every
/// row of `x`, rows processed in parallel (recursive split).
fn trsm<C: Cilk>(ctx: &mut C, x: MatMut, l: MatMut, b: usize) {
    let m = x.rows;
    if m <= b {
        trsm_base(ctx, x, l);
        return;
    }
    let h = m / 2;
    let xt = x.sub(0, 0, h, x.cols);
    let xb = x.sub(h, 0, m - h, x.cols);
    ctx.spawn(move |c| trsm(c, xt, l, b));
    trsm(ctx, xb, l, b);
    ctx.sync();
}

fn trsm_base<C: Cilk>(ctx: &mut C, x: MatMut, l: MatMut) {
    let k = x.cols;
    for i in 0..x.rows {
        // The whole row of x is read and rewritten in place.
        ctx.load_range(x.addr(i, 0), k * 8);
        ctx.store_range(x.addr(i, 0), k * 8);
        for j in 0..k {
            ctx.load_range(l.addr(j, 0), (j + 1) * 8);
            let mut s = x.get(i, j);
            for p in 0..j {
                s -= x.get(i, p) * l.get(j, p);
            }
            x.set(i, j, s / l.get(j, j));
        }
    }
}

/// `c ← c − x·xᵀ` on the lower triangle of `c` (`c` is `m×m`, `x` is `m×k`).
/// The diagonal blocks and the off-diagonal block are disjoint and run in
/// parallel.
fn syrk<C: Cilk>(ctx: &mut C, c: MatMut, x: MatMut, b: usize) {
    let m = c.rows;
    if m <= b {
        syrk_base(ctx, c, x);
        return;
    }
    let h = m / 2;
    let c11 = c.sub(0, 0, h, h);
    let c21 = c.sub(h, 0, m - h, h);
    let c22 = c.sub(h, h, m - h, m - h);
    let xt = x.sub(0, 0, h, x.cols);
    let xb = x.sub(h, 0, m - h, x.cols);
    ctx.spawn(move |cx| syrk(cx, c11, xt, b));
    ctx.spawn(move |cx| syrk(cx, c22, xb, b));
    gemm_nt(ctx, c21, xb, xt, b);
    ctx.sync();
}

fn syrk_base<C: Cilk>(ctx: &mut C, c: MatMut, x: MatMut) {
    let k = x.cols;
    for i in 0..c.rows {
        ctx.load_range(c.addr(i, 0), (i + 1) * 8);
        ctx.store_range(c.addr(i, 0), (i + 1) * 8);
        ctx.load_range(x.addr(i, 0), k * 8);
        for j in 0..=i {
            if i != j {
                ctx.load_range(x.addr(j, 0), k * 8);
            }
            let mut s = c.get(i, j);
            for p in 0..k {
                s -= x.get(i, p) * x.get(j, p);
            }
            c.set(i, j, s);
        }
    }
}

/// `c ← c − x·yᵀ` (`c` is `m×n`, `x` is `m×k`, `y` is `n×k`): recursive
/// quadrant split over the rows of `x` and `y`; the four result blocks are
/// disjoint, so all four recursions run in parallel.
fn gemm_nt<C: Cilk>(ctx: &mut C, c: MatMut, x: MatMut, y: MatMut, b: usize) {
    let (m, n) = (c.rows, c.cols);
    if m <= b || n <= b {
        gemm_nt_base(ctx, c, x, y);
        return;
    }
    let (hm, hn) = (m / 2, n / 2);
    let [c11, c12, c21, c22] = c.quadrants(hm, hn);
    let xt = x.sub(0, 0, hm, x.cols);
    let xb = x.sub(hm, 0, m - hm, x.cols);
    let yt = y.sub(0, 0, hn, y.cols);
    let yb = y.sub(hn, 0, n - hn, y.cols);
    ctx.spawn(move |cx| gemm_nt(cx, c11, xt, yt, b));
    ctx.spawn(move |cx| gemm_nt(cx, c12, xt, yb, b));
    ctx.spawn(move |cx| gemm_nt(cx, c21, xb, yt, b));
    gemm_nt(ctx, c22, xb, yb, b);
    ctx.sync();
}

fn gemm_nt_base<C: Cilk>(ctx: &mut C, c: MatMut, x: MatMut, y: MatMut) {
    let k = x.cols;
    for i in 0..c.rows {
        ctx.load_range(c.addr(i, 0), c.cols * 8);
        ctx.store_range(c.addr(i, 0), c.cols * 8);
        ctx.load_range(x.addr(i, 0), k * 8);
        for j in 0..c.cols {
            ctx.load_range(y.addr(j, 0), k * 8);
            let mut s = c.get(i, j);
            for p in 0..k {
                s -= x.get(i, p) * y.get(j, p);
            }
            c.set(i, j, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_cilk::run_baseline;

    #[test]
    fn recovers_the_true_factor() {
        for (n, b) in [(4, 2), (16, 4), (48, 8), (65, 8), (128, 16)] {
            let mut c = Chol::new(n, b, 13);
            run_baseline(&mut c);
            c.verify().unwrap_or_else(|e| panic!("n={n} b={b}: {e}"));
        }
    }

    #[test]
    fn base_case_only() {
        let mut c = Chol::new(24, 64, 3);
        run_baseline(&mut c);
        c.verify().unwrap();
    }

    #[test]
    fn llt_reconstructs_input() {
        // Independent check: L·Lᵀ from the computed factor equals A.
        let n = 40;
        let mut c = Chol::new(n, 8, 21);
        let a0 = c.a.clone();
        run_baseline(&mut c);
        let l = c.factor();
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j.min(i) {
                    s += l[i * n + k] * l[j * n + k];
                }
                worst = worst.max((s - a0[i * n + j]).abs());
            }
        }
        assert!(worst < 1e-9 * n as f64, "L·Lᵀ deviates by {worst}");
    }
}
