//! `stra` / `straz` — Strassen's matrix multiplication (Cilk-5 `strassen`),
//! in two storage layouts:
//!
//! * [`Strassen`] (`stra`) — ordinary row-major storage: submatrix rows are
//!   contiguous segments, so operand sums and the combine step coalesce per
//!   row.
//! * [`StrassenZ`] (`straz`) — Morton Z layout: the matrix is stored as four
//!   recursively laid-out quadrant blocks, so every submatrix at every
//!   recursion level is one contiguous slice and whole-block accesses
//!   coalesce.
//!
//! The recursion computes the seven Strassen products in parallel, each in a
//! spawned task that builds its operand sums in freshly allocated
//! temporaries and frees them (via the [`stint_cilk::Cilk::free`] hook — see
//! the allocator-integration notes in `stint-cilk`) before returning:
//!
//! ```text
//! P1=(A11+A22)(B11+B22)  P2=(A21+A22)B11      P3=A11(B12−B22)
//! P4=A22(B21−B11)        P5=(A11+A12)B22      P6=(A21−A11)(B11+B12)
//! P7=(A12−A22)(B21+B22)
//! C11=P1+P4−P5+P7  C12=P3+P5  C21=P2+P4  C22=P1−P2+P3+P6
//! ```

use crate::util::{addr, max_abs_diff, naive_matmul, random_f64s, MatMut};
use crate::Scale;
use stint_cilk::{Cilk, CilkProgram};

// ---------------------------------------------------------------- row-major

/// The `stra` benchmark instance (row-major layout).
pub struct Strassen {
    pub n: usize,
    pub b: usize,
    a: Vec<f64>,
    bm: Vec<f64>,
    c: Vec<f64>,
    verify_limit: usize,
}

impl Strassen {
    pub fn new(n: usize, b: usize, seed: u64) -> Strassen {
        assert!(n.is_power_of_two() && b >= 2);
        Strassen {
            n,
            b,
            a: random_f64s(n * n, seed ^ 0x5A),
            bm: random_f64s(n * n, seed ^ 0x5B),
            c: vec![0.0; n * n],
            verify_limit: 512,
        }
    }

    /// Paper parameters: n = 2048, b = 64.
    pub fn with_scale(scale: Scale) -> Strassen {
        match scale {
            Scale::Test => Strassen::new(32, 8, 14),
            Scale::S => Strassen::new(256, 32, 14),
            Scale::M => Strassen::new(512, 64, 14),
            Scale::Paper => Strassen::new(2048, 64, 14),
        }
    }

    pub fn result(&self) -> &[f64] {
        &self.c
    }

    pub fn verify(&self) -> Result<(), String> {
        if self.n > self.verify_limit {
            return Ok(());
        }
        let mut want = vec![0.0; self.n * self.n];
        naive_matmul(&mut want, &self.a, &self.bm, self.n);
        let err = max_abs_diff(&self.c, &want);
        if err < 1e-8 * self.n as f64 {
            Ok(())
        } else {
            Err(format!("stra: max abs error {err}"))
        }
    }
}

impl CilkProgram for Strassen {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let n = self.n;
        let c = MatMut::from_slice(&mut self.c, n, n);
        let a = MatMut::from_slice(&mut self.a, n, n);
        let b = MatMut::from_slice(&mut self.bm, n, n);
        strassen_rm(ctx, c, a, b, self.b);
    }
}

/// `dst = x + sign*y`, row-coalesced.
fn mat_add<C: Cilk>(ctx: &mut C, dst: MatMut, x: MatMut, y: MatMut, sign: f64) {
    let (m, n) = (dst.rows, dst.cols);
    for i in 0..m {
        ctx.load_range(x.addr(i, 0), n * 8);
        ctx.load_range(y.addr(i, 0), n * 8);
        ctx.store_range(dst.addr(i, 0), n * 8);
        for j in 0..n {
            dst.set(i, j, x.get(i, j) + sign * y.get(i, j));
        }
    }
}

/// Base case: `c = a · b` (overwrite), Algorithm-1 instrumentation minus the
/// initial read of `c`.
fn base_set<C: Cilk>(ctx: &mut C, c: MatMut, a: MatMut, b: MatMut) {
    let (m, p, q) = (c.rows, c.cols, a.cols);
    for i in 0..m {
        ctx.store_range(c.addr(i, 0), p * 8);
        ctx.load_range(a.addr(i, 0), q * 8);
        for j in 0..p {
            let mut t = 0.0;
            for k in 0..q {
                ctx.load(b.addr(k, j), 8);
                t += a.get(i, k) * b.get(k, j);
            }
            c.set(i, j, t);
        }
    }
}

/// One spawned Strassen product: build up to two operand sums in fresh
/// temporaries, recurse, free the temporaries.
///
/// `xa`/`xb` describe the operands: either a quadrant directly or a
/// `(quadrant, quadrant, sign)` sum.
#[derive(Clone, Copy)]
enum Operand {
    Plain(MatMut),
    Sum(MatMut, MatMut, f64),
}

fn product<C: Cilk>(ctx: &mut C, dst: MatMut, xa: Operand, xb: Operand, bs: usize) {
    let h = dst.rows;
    let mut buf_a;
    let mut buf_b;
    let (mut free_a, mut free_b) = (0usize, 0usize);
    let av = match xa {
        Operand::Plain(m) => m,
        Operand::Sum(x, y, s) => {
            buf_a = vec![0.0; h * h];
            free_a = addr(&buf_a, 0);
            let v = MatMut::from_slice(&mut buf_a, h, h);
            mat_add(ctx, v, x, y, s);
            v
        }
    };
    let bv = match xb {
        Operand::Plain(m) => m,
        Operand::Sum(x, y, s) => {
            buf_b = vec![0.0; h * h];
            free_b = addr(&buf_b, 0);
            let v = MatMut::from_slice(&mut buf_b, h, h);
            mat_add(ctx, v, x, y, s);
            v
        }
    };
    strassen_rm(ctx, dst, av, bv, bs);
    // Clear the temporaries' access history before the allocator may hand
    // their addresses to a logically parallel sibling product.
    if free_a != 0 {
        ctx.free(free_a, h * h * 8);
    }
    if free_b != 0 {
        ctx.free(free_b, h * h * 8);
    }
}

fn strassen_rm<C: Cilk>(ctx: &mut C, c: MatMut, a: MatMut, b: MatMut, bs: usize) {
    let n = c.rows;
    if n <= bs {
        base_set(ctx, c, a, b);
        return;
    }
    let h = n / 2;
    let [c11, c12, c21, c22] = c.quadrants(h, h);
    let [a11, a12, a21, a22] = a.quadrants(h, h);
    let [b11, b12, b21, b22] = b.quadrants(h, h);
    // The seven products live in buffers owned by this frame.
    let mut bufs: Vec<Vec<f64>> = (0..7).map(|_| vec![0.0; h * h]).collect();
    let p: Vec<MatMut> = bufs
        .iter_mut()
        .map(|v| MatMut::from_slice(v, h, h))
        .collect();
    let (p1, p2, p3, p4, p5, p6, p7) = (p[0], p[1], p[2], p[3], p[4], p[5], p[6]);
    ctx.spawn(move |x| {
        product(
            x,
            p1,
            Operand::Sum(a11, a22, 1.0),
            Operand::Sum(b11, b22, 1.0),
            bs,
        )
    });
    ctx.spawn(move |x| product(x, p2, Operand::Sum(a21, a22, 1.0), Operand::Plain(b11), bs));
    ctx.spawn(move |x| product(x, p3, Operand::Plain(a11), Operand::Sum(b12, b22, -1.0), bs));
    ctx.spawn(move |x| product(x, p4, Operand::Plain(a22), Operand::Sum(b21, b11, -1.0), bs));
    ctx.spawn(move |x| product(x, p5, Operand::Sum(a11, a12, 1.0), Operand::Plain(b22), bs));
    ctx.spawn(move |x| {
        product(
            x,
            p6,
            Operand::Sum(a21, a11, -1.0),
            Operand::Sum(b11, b12, 1.0),
            bs,
        )
    });
    product(
        ctx,
        p7,
        Operand::Sum(a12, a22, -1.0),
        Operand::Sum(b21, b22, 1.0),
        bs,
    );
    ctx.sync();
    // Combine (row-coalesced reads of the products, stores of C).
    for i in 0..h {
        ctx.load_range(p1.addr(i, 0), h * 8);
        ctx.load_range(p2.addr(i, 0), h * 8);
        ctx.load_range(p3.addr(i, 0), h * 8);
        ctx.load_range(p4.addr(i, 0), h * 8);
        ctx.load_range(p5.addr(i, 0), h * 8);
        ctx.load_range(p6.addr(i, 0), h * 8);
        ctx.load_range(p7.addr(i, 0), h * 8);
        ctx.store_range(c11.addr(i, 0), h * 8);
        ctx.store_range(c12.addr(i, 0), h * 8);
        ctx.store_range(c21.addr(i, 0), h * 8);
        ctx.store_range(c22.addr(i, 0), h * 8);
        for j in 0..h {
            c11.set(
                i,
                j,
                p1.get(i, j) + p4.get(i, j) - p5.get(i, j) + p7.get(i, j),
            );
            c12.set(i, j, p3.get(i, j) + p5.get(i, j));
            c21.set(i, j, p2.get(i, j) + p4.get(i, j));
            c22.set(
                i,
                j,
                p1.get(i, j) - p2.get(i, j) + p3.get(i, j) + p6.get(i, j),
            );
        }
    }
    for buf in &bufs {
        ctx.free(addr(buf, 0), buf.len() * 8);
    }
}

// ------------------------------------------------------------------ Z order

/// The `straz` benchmark instance (Morton Z layout).
///
/// Layout: a matrix of side `n > b` is the concatenation of its four
/// quadrants `[Q11, Q12, Q21, Q22]`, each recursively laid out; a matrix of
/// side `≤ b` is a plain row-major block. Every submatrix the recursion
/// touches is therefore one contiguous slice.
pub struct StrassenZ {
    pub n: usize,
    pub b: usize,
    a: Vec<f64>,
    bm: Vec<f64>,
    c: Vec<f64>,
    a_rm: Vec<f64>,
    b_rm: Vec<f64>,
    verify_limit: usize,
}

impl StrassenZ {
    pub fn new(n: usize, b: usize, seed: u64) -> StrassenZ {
        assert!(n.is_power_of_two() && b.is_power_of_two() && b >= 2 && b <= n);
        let a_rm = random_f64s(n * n, seed ^ 0x5C);
        let b_rm = random_f64s(n * n, seed ^ 0x5D);
        StrassenZ {
            n,
            b,
            a: rowmajor_to_z(&a_rm, n, b),
            bm: rowmajor_to_z(&b_rm, n, b),
            c: vec![0.0; n * n],
            a_rm,
            b_rm,
            verify_limit: 512,
        }
    }

    /// Paper parameters: n = 2048, b = 64.
    pub fn with_scale(scale: Scale) -> StrassenZ {
        match scale {
            Scale::Test => StrassenZ::new(32, 8, 15),
            Scale::S => StrassenZ::new(256, 32, 15),
            Scale::M => StrassenZ::new(512, 64, 15),
            Scale::Paper => StrassenZ::new(2048, 64, 15),
        }
    }

    /// Result converted back to row-major.
    pub fn result_rowmajor(&self) -> Vec<f64> {
        z_to_rowmajor(&self.c, self.n, self.b)
    }

    pub fn verify(&self) -> Result<(), String> {
        if self.n > self.verify_limit {
            return Ok(());
        }
        let mut want = vec![0.0; self.n * self.n];
        naive_matmul(&mut want, &self.a_rm, &self.b_rm, self.n);
        let err = max_abs_diff(&self.result_rowmajor(), &want);
        if err < 1e-8 * self.n as f64 {
            Ok(())
        } else {
            Err(format!("straz: max abs error {err}"))
        }
    }
}

impl CilkProgram for StrassenZ {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let n = self.n;
        let b = self.b;
        strassen_z(ctx, &mut self.c, &self.a, &self.bm, n, b);
    }
}

/// Convert a row-major matrix to the Z layout with block floor `b`.
pub fn rowmajor_to_z(src: &[f64], n: usize, b: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    fn rec(src: &[f64], ld: usize, out: &mut [f64], n: usize, b: usize) {
        if n <= b {
            for i in 0..n {
                out[i * n..(i + 1) * n].copy_from_slice(&src[i * ld..i * ld + n]);
            }
            return;
        }
        let h = n / 2;
        let q = h * h;
        let (o11, rest) = out.split_at_mut(q);
        let (o12, rest) = rest.split_at_mut(q);
        let (o21, o22) = rest.split_at_mut(q);
        rec(src, ld, o11, h, b);
        rec(&src[h..], ld, o12, h, b);
        rec(&src[h * ld..], ld, o21, h, b);
        rec(&src[h * ld + h..], ld, o22, h, b);
    }
    rec(src, n, &mut out, n, b);
    out
}

/// Convert a Z-layout matrix back to row-major.
pub fn z_to_rowmajor(src: &[f64], n: usize, b: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    fn rec(src: &[f64], out: &mut [f64], off: usize, ld: usize, n: usize, b: usize) {
        if n <= b {
            for i in 0..n {
                out[off + i * ld..off + i * ld + n].copy_from_slice(&src[i * n..(i + 1) * n]);
            }
            return;
        }
        let h = n / 2;
        let q = h * h;
        rec(&src[..q], out, off, ld, h, b);
        rec(&src[q..2 * q], out, off + h, ld, h, b);
        rec(&src[2 * q..3 * q], out, off + h * ld, ld, h, b);
        rec(&src[3 * q..], out, off + h * ld + h, ld, h, b);
    }
    rec(src, &mut out, 0, n, n, b);
    out
}

fn quads(s: &[f64]) -> (&[f64], &[f64], &[f64], &[f64]) {
    let q = s.len() / 4;
    (&s[..q], &s[q..2 * q], &s[2 * q..3 * q], &s[3 * q..])
}

/// `dst = x + sign*y` over contiguous Z blocks: one coalesced hook each.
fn z_add<C: Cilk>(ctx: &mut C, dst: &mut [f64], x: &[f64], y: &[f64], sign: f64) {
    ctx.load_range(addr(x, 0), x.len() * 8);
    ctx.load_range(addr(y, 0), y.len() * 8);
    ctx.store_range(addr(dst, 0), dst.len() * 8);
    for ((d, &a), &b) in dst.iter_mut().zip(x).zip(y) {
        *d = a + sign * b;
    }
}

enum ZOperand<'a> {
    Plain(&'a [f64]),
    Sum(&'a [f64], &'a [f64], f64),
}

fn z_product<C: Cilk>(
    ctx: &mut C,
    dst: &mut [f64],
    xa: ZOperand,
    xb: ZOperand,
    n: usize,
    bs: usize,
) {
    let mut buf_a;
    let mut buf_b;
    let (mut free_a, mut free_b) = (0usize, 0usize);
    let av: &[f64] = match xa {
        ZOperand::Plain(m) => m,
        ZOperand::Sum(x, y, s) => {
            buf_a = vec![0.0; n * n];
            free_a = addr(&buf_a, 0);
            z_add(ctx, &mut buf_a, x, y, s);
            &buf_a
        }
    };
    let bv: &[f64] = match xb {
        ZOperand::Plain(m) => m,
        ZOperand::Sum(x, y, s) => {
            buf_b = vec![0.0; n * n];
            free_b = addr(&buf_b, 0);
            z_add(ctx, &mut buf_b, x, y, s);
            &buf_b
        }
    };
    strassen_z(ctx, dst, av, bv, n, bs);
    if free_a != 0 {
        ctx.free(free_a, n * n * 8);
    }
    if free_b != 0 {
        ctx.free(free_b, n * n * 8);
    }
}

fn strassen_z<C: Cilk>(ctx: &mut C, c: &mut [f64], a: &[f64], b: &[f64], n: usize, bs: usize) {
    if n <= bs {
        // A Z block is a contiguous row-major block; the operands are
        // read-only views into the shared base case.
        let cm = MatMut::from_slice(c, n, n);
        let am = MatMut::from_slice_ref(a, n, n);
        let bm = MatMut::from_slice_ref(b, n, n);
        base_set(ctx, cm, am, bm);
        return;
    }
    let h = n / 2;
    let (a11, a12, a21, a22) = quads(a);
    let (b11, b12, b21, b22) = quads(b);
    let q = h * h;
    let (c11, rest) = c.split_at_mut(q);
    let (c12, rest) = rest.split_at_mut(q);
    let (c21, c22) = rest.split_at_mut(q);
    let mut bufs: Vec<Vec<f64>> = (0..7).map(|_| vec![0.0; q]).collect();
    {
        let mut it = bufs.iter_mut();
        let (p1, p2, p3, p4, p5, p6, p7) = (
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
        );
        ctx.spawn(|x| {
            z_product(
                x,
                p1,
                ZOperand::Sum(a11, a22, 1.0),
                ZOperand::Sum(b11, b22, 1.0),
                h,
                bs,
            )
        });
        ctx.spawn(|x| {
            z_product(
                x,
                p2,
                ZOperand::Sum(a21, a22, 1.0),
                ZOperand::Plain(b11),
                h,
                bs,
            )
        });
        ctx.spawn(|x| {
            z_product(
                x,
                p3,
                ZOperand::Plain(a11),
                ZOperand::Sum(b12, b22, -1.0),
                h,
                bs,
            )
        });
        ctx.spawn(|x| {
            z_product(
                x,
                p4,
                ZOperand::Plain(a22),
                ZOperand::Sum(b21, b11, -1.0),
                h,
                bs,
            )
        });
        ctx.spawn(|x| {
            z_product(
                x,
                p5,
                ZOperand::Sum(a11, a12, 1.0),
                ZOperand::Plain(b22),
                h,
                bs,
            )
        });
        ctx.spawn(|x| {
            z_product(
                x,
                p6,
                ZOperand::Sum(a21, a11, -1.0),
                ZOperand::Sum(b11, b12, 1.0),
                h,
                bs,
            )
        });
        z_product(
            ctx,
            p7,
            ZOperand::Sum(a12, a22, -1.0),
            ZOperand::Sum(b21, b22, 1.0),
            h,
            bs,
        );
        ctx.sync();
        // Combine: whole contiguous blocks, fully coalesced.
        for s in [&*p1, &*p2, &*p3, &*p4, &*p5, &*p6, &*p7] {
            ctx.load_range(addr(s, 0), q * 8);
        }
        ctx.store_range(addr(c11, 0), q * 8);
        ctx.store_range(addr(c12, 0), q * 8);
        ctx.store_range(addr(c21, 0), q * 8);
        ctx.store_range(addr(c22, 0), q * 8);
        for i in 0..q {
            c11[i] = p1[i] + p4[i] - p5[i] + p7[i];
            c12[i] = p3[i] + p5[i];
            c21[i] = p2[i] + p4[i];
            c22[i] = p1[i] - p2[i] + p3[i] + p6[i];
        }
    }
    for buf in &bufs {
        ctx.free(addr(buf, 0), buf.len() * 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_cilk::run_baseline;

    #[test]
    fn stra_matches_naive() {
        for (n, b) in [(8, 2), (16, 4), (32, 8), (64, 16), (128, 32)] {
            let mut s = Strassen::new(n, b, 17);
            run_baseline(&mut s);
            s.verify().unwrap_or_else(|e| panic!("n={n} b={b}: {e}"));
        }
    }

    #[test]
    fn straz_matches_naive() {
        for (n, b) in [(8, 2), (16, 4), (32, 8), (64, 16), (128, 32)] {
            let mut s = StrassenZ::new(n, b, 18);
            run_baseline(&mut s);
            s.verify().unwrap_or_else(|e| panic!("n={n} b={b}: {e}"));
        }
    }

    #[test]
    fn z_layout_roundtrip() {
        for (n, b) in [(8, 2), (16, 8), (64, 16)] {
            let rm = random_f64s(n * n, 33);
            let z = rowmajor_to_z(&rm, n, b);
            assert_eq!(z_to_rowmajor(&z, n, b), rm);
        }
    }

    #[test]
    fn z_layout_blocks_are_contiguous() {
        // In a 4x4 matrix with b=2, quadrant Q12 occupies elements 4..8.
        let rm: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let z = rowmajor_to_z(&rm, 4, 2);
        assert_eq!(&z[4..8], &[2.0, 3.0, 6.0, 7.0], "Q12 block");
    }

    #[test]
    fn stra_and_straz_agree() {
        let mut s1 = Strassen::new(64, 8, 99);
        let mut s2 = StrassenZ::new(64, 8, 77);
        // Force identical inputs.
        s2.a_rm = s1.a.clone();
        s2.b_rm = s1.bm.clone();
        s2.a = rowmajor_to_z(&s2.a_rm, 64, 8);
        s2.bm = rowmajor_to_z(&s2.b_rm, 64, 8);
        run_baseline(&mut s1);
        run_baseline(&mut s2);
        let d = max_abs_diff(s1.result(), &s2.result_rowmajor());
        assert!(d < 1e-9, "layouts disagree by {d}");
    }
}
