//! `mmul` — recursive divide-and-conquer dense matrix multiplication
//! (Cilk-5 `matmul`), the benchmark whose base case is the paper's
//! Algorithm 1.
//!
//! `C += A·B` on square power-of-two matrices stored row-major. The
//! recursion splits all three matrices into quadrants and performs the eight
//! quadrant products in two fully parallel phases of four (the two phases
//! write the same `C` quadrants and are separated by a `sync`):
//!
//! ```text
//! phase 1: C11+=A11·B11  C12+=A11·B12  C21+=A21·B11  C22+=A21·B12   sync
//! phase 2: C11+=A12·B21  C12+=A12·B22  C21+=A22·B21  C22+=A22·B22   sync
//! ```
//!
//! The base case follows Algorithm 1's instrumentation exactly: coalesced
//! load+store of each `C` row segment, coalesced load of each `A` row
//! segment, and *uncoalesced* per-element loads of `B` — the `k` loop reads
//! `B` in column-major order, which the compiler cannot coalesce.

use crate::util::{max_abs_diff, naive_matmul, random_f64s, MatMut};
use crate::Scale;
use stint_cilk::{Cilk, CilkProgram};

/// The `mmul` benchmark instance.
pub struct Mmul {
    pub n: usize,
    pub b: usize,
    a: Vec<f64>,
    bm: Vec<f64>,
    c: Vec<f64>,
    verify_limit: usize,
}

impl Mmul {
    /// `n` must be a power of two; `b` is the base-case size.
    pub fn new(n: usize, b: usize, seed: u64) -> Mmul {
        assert!(n.is_power_of_two() && b >= 1);
        Mmul {
            n,
            b,
            a: random_f64s(n * n, seed ^ 0xA),
            bm: random_f64s(n * n, seed ^ 0xB),
            c: vec![0.0; n * n],
            verify_limit: 512,
        }
    }

    /// Paper parameters: n = 2048, b = 64.
    pub fn with_scale(scale: Scale) -> Mmul {
        match scale {
            Scale::Test => Mmul::new(32, 8, 1),
            Scale::S => Mmul::new(256, 32, 1),
            Scale::M => Mmul::new(512, 64, 1),
            Scale::Paper => Mmul::new(2048, 64, 1),
        }
    }

    /// Compare against the naive product (skipped above `verify_limit`).
    pub fn verify(&self) -> Result<(), String> {
        if self.n > self.verify_limit {
            return Ok(());
        }
        let mut want = vec![0.0; self.n * self.n];
        naive_matmul(&mut want, &self.a, &self.bm, self.n);
        let err = max_abs_diff(&self.c, &want);
        if err < 1e-9 * self.n as f64 {
            Ok(())
        } else {
            Err(format!("mmul: max abs error {err}"))
        }
    }

    /// The result matrix (for tests).
    pub fn result(&self) -> &[f64] {
        &self.c
    }
}

impl CilkProgram for Mmul {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let n = self.n;
        let c = MatMut::from_slice(&mut self.c, n, n);
        let a = MatMut::from_slice(&mut self.a, n, n);
        let b = MatMut::from_slice(&mut self.bm, n, n);
        mm(ctx, c, a, b, self.b);
    }
}

/// `c += a · b`, recursive quadrant decomposition.
pub(crate) fn mm<C: Cilk>(ctx: &mut C, c: MatMut, a: MatMut, b: MatMut, bsize: usize) {
    let n = c.rows;
    if n <= bsize {
        base(ctx, c, a, b);
        return;
    }
    let h = n / 2;
    let [c11, c12, c21, c22] = c.quadrants(h, h);
    let [a11, a12, a21, a22] = a.quadrants(h, h);
    let [b11, b12, b21, b22] = b.quadrants(h, h);
    // Phase 1: contributions of A's left column of quadrants.
    ctx.spawn(move |x| mm(x, c11, a11, b11, bsize));
    ctx.spawn(move |x| mm(x, c12, a11, b12, bsize));
    ctx.spawn(move |x| mm(x, c21, a21, b11, bsize));
    ctx.spawn(move |x| mm(x, c22, a21, b12, bsize));
    ctx.sync();
    // Phase 2: contributions of A's right column of quadrants.
    ctx.spawn(move |x| mm(x, c11, a12, b21, bsize));
    ctx.spawn(move |x| mm(x, c12, a12, b22, bsize));
    ctx.spawn(move |x| mm(x, c21, a22, b21, bsize));
    ctx.spawn(move |x| mm(x, c22, a22, b22, bsize));
    ctx.sync();
}

/// Serial base case with Algorithm 1's instrumentation.
pub(crate) fn base<C: Cilk>(ctx: &mut C, c: MatMut, a: MatMut, b: MatMut) {
    let (m, p, q) = (c.rows, c.cols, a.cols);
    debug_assert_eq!(b.rows, q);
    for i in 0..m {
        // __coalesced_load_hook / __coalesced_store_hook on C's row segment
        // (the j loop loads and stores all of it), and a coalesced load of
        // A's row segment (the k loop reads all of it).
        ctx.load_range(c.addr(i, 0), p * 8);
        ctx.store_range(c.addr(i, 0), p * 8);
        ctx.load_range(a.addr(i, 0), q * 8);
        for j in 0..p {
            let mut t = c.get(i, j);
            for k in 0..q {
                // __load_hook: B is read in column-major order — not
                // contiguous in row-major storage, so not coalescible.
                ctx.load(b.addr(k, j), 8);
                t += a.get(i, k) * b.get(k, j);
            }
            c.set(i, j, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_cilk::run_baseline;

    #[test]
    fn computes_correct_product() {
        for (n, b) in [(8, 2), (16, 4), (32, 8), (64, 32)] {
            let mut m = Mmul::new(n, b, 7);
            run_baseline(&mut m);
            m.verify().unwrap();
        }
    }

    #[test]
    fn base_case_only() {
        let mut m = Mmul::new(16, 16, 3); // n == b: single base call
        run_baseline(&mut m);
        m.verify().unwrap();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut m1 = Mmul::new(32, 8, 9);
        let mut m2 = Mmul::new(32, 8, 9);
        run_baseline(&mut m1);
        run_baseline(&mut m2);
        assert_eq!(m1.result(), m2.result());
    }
}
