//! `fft` — parallel complex FFT in the six-step (Bailey) formulation used by
//! Cilk-5's `fft`, which views the length-`n` input (`n = r·r`, `r` a power
//! of two) as an `r × r` matrix:
//!
//! 1. transpose, 2. FFT each row (size `r`), 3. scale by the twiddle
//!    factors `w_n^(j·k)`, 4. transpose, 5. FFT each row again, 6. transpose.
//!
//! The row FFTs and the twiddle scaling touch contiguous rows (coalescible),
//! but the **transposes** read or write column-major — with 16-byte complex
//! elements every transposed element is its own 4-word access that can never
//! merge with its neighbours. This is exactly the access signature that
//! makes fft the paper's adverse case for interval-based access histories:
//! little interval reduction and small average interval size (Figures 6–8).

use crate::util::Mat2D;
use crate::Scale;
use std::f64::consts::PI;
use stint_cilk::{Cilk, CilkProgram};

/// A complex number, 16 bytes, the unit of FFT memory traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cx {
    pub re: f64,
    pub im: f64,
}

impl std::ops::Add for Cx {
    type Output = Cx;
    #[inline]
    fn add(self, o: Cx) -> Cx {
        Cx::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Cx {
    type Output = Cx;
    #[inline]
    fn sub(self, o: Cx) -> Cx {
        Cx::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Cx {
    type Output = Cx;
    #[inline]
    fn mul(self, o: Cx) -> Cx {
        Cx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Cx {
    #[inline]
    pub fn new(re: f64, im: f64) -> Cx {
        Cx { re, im }
    }
    /// e^{-2πi k / n} (forward-transform twiddle).
    #[inline]
    pub fn twiddle(k: usize, n: usize) -> Cx {
        let a = -2.0 * PI * (k as f64) / (n as f64);
        Cx::new(a.cos(), a.sin())
    }
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

type CxMat = Mat2D<Cx>;

/// The `fft` benchmark instance.
pub struct Fft {
    /// Total points; a perfect square of a power of two.
    pub n: usize,
    /// Rows per leaf strand in the row-FFT passes and leaf block size in the
    /// transposes.
    pub b: usize,
    data: Vec<Cx>,
    orig: Vec<Cx>,
    verify_limit: usize,
}

impl Fft {
    /// `n` must be `4^k` so the matrix is square with power-of-two sides.
    pub fn new(n: usize, b: usize, seed: u64) -> Fft {
        let r = (n as f64).sqrt() as usize;
        assert_eq!(r * r, n, "n must be a perfect square (use 4^k)");
        assert!(r.is_power_of_two());
        let re = crate::util::random_f64s(n, seed ^ 0xF0);
        let im = crate::util::random_f64s(n, seed ^ 0xF1);
        let data: Vec<Cx> = re.into_iter().zip(im).map(|(a, b)| Cx::new(a, b)).collect();
        Fft {
            n,
            b: b.max(1),
            orig: data.clone(),
            data,
            verify_limit: 1 << 12,
        }
    }

    /// Paper parameters: n = 2^26, b = 128.
    pub fn with_scale(scale: Scale) -> Fft {
        match scale {
            Scale::Test => Fft::new(1 << 10, 4, 4),
            Scale::S => Fft::new(1 << 16, 16, 4),
            Scale::M => Fft::new(1 << 20, 64, 4),
            Scale::Paper => Fft::new(1 << 26, 128, 4),
        }
    }

    pub fn result(&self) -> &[Cx] {
        &self.data
    }

    /// Verification: against the naive O(n²) DFT for small sizes; via an
    /// uninstrumented inverse-transform round trip otherwise.
    pub fn verify(&self) -> Result<(), String> {
        let scale = (self.n as f64).sqrt();
        if self.n <= self.verify_limit {
            let mut worst = 0.0f64;
            for k in 0..self.n {
                let mut acc = Cx::default();
                for (j, &x) in self.orig.iter().enumerate() {
                    acc = acc + x * Cx::twiddle((j * k) % self.n, self.n);
                }
                worst = worst.max((acc - self.data[k]).norm_sq().sqrt());
            }
            if worst < 1e-6 * scale {
                Ok(())
            } else {
                Err(format!("fft: max abs error vs naive DFT = {worst}"))
            }
        } else {
            // Inverse transform: conjugate → forward → conjugate → 1/n.
            let mut inv: Vec<Cx> = self.data.iter().map(|c| Cx::new(c.re, -c.im)).collect();
            let mut prog = RawFft {
                data: &mut inv,
                b: self.b,
            };
            stint_cilk::run_baseline(&mut prog);
            let nf = self.n as f64;
            let mut worst = 0.0f64;
            for (y, x) in inv.iter().zip(&self.orig) {
                let back = Cx::new(y.re / nf, -y.im / nf);
                worst = worst.max((back - *x).norm_sq().sqrt());
            }
            if worst < 1e-8 * scale {
                Ok(())
            } else {
                Err(format!("fft: round-trip error = {worst}"))
            }
        }
    }
}

impl CilkProgram for Fft {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let mut prog = RawFft {
            data: &mut self.data,
            b: self.b,
        };
        prog.run(ctx);
    }
}

/// The six-step FFT over a borrowed buffer (also used for the verification
/// round trip).
struct RawFft<'a> {
    data: &'a mut [Cx],
    b: usize,
}

impl CilkProgram for RawFft<'_> {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let n = self.data.len();
        let r = (n as f64).sqrt() as usize;
        let m = CxMat::from_slice(self.data, r, r);
        let b = self.b;
        transpose(ctx, m, b);
        ctx.sync();
        fft_rows(ctx, m, b, n, false);
        ctx.sync();
        transpose(ctx, m, b);
        ctx.sync();
        fft_rows(ctx, m, b, n, true); // second pass includes twiddle scaling
        ctx.sync();
        transpose(ctx, m, b);
        ctx.sync();
    }
}

/// In-place parallel transpose of a square matrix: diagonal quadrants
/// recurse (spawned), off-diagonal quadrants are swapped blockwise.
fn transpose<C: Cilk>(ctx: &mut C, m: CxMat, b: usize) {
    let n = m.rows;
    if n <= b {
        // Leaf: element-wise swaps across the diagonal. Column-major
        // partners ⇒ per-element (uncoalescible) hooks.
        for i in 0..n {
            for j in 0..i {
                ctx.load(m.addr(i, j), 16);
                ctx.load(m.addr(j, i), 16);
                ctx.store(m.addr(i, j), 16);
                ctx.store(m.addr(j, i), 16);
                let t = m.get(i, j);
                m.set(i, j, m.get(j, i));
                m.set(j, i, t);
            }
        }
        return;
    }
    let h = n / 2;
    let [q11, q12, q21, q22] = m.quadrants(h, h);
    ctx.spawn(move |x| transpose(x, q11, b));
    ctx.spawn(move |x| transpose(x, q22, b));
    swap_blocks(ctx, q12, q21, b);
    ctx.sync();
}

/// `a[i][j] <-> b[j][i]` for two disjoint equal-size blocks, recursively.
fn swap_blocks<C: Cilk>(ctx: &mut C, a: CxMat, b_: CxMat, bs: usize) {
    let n = a.rows;
    if n <= bs {
        for i in 0..n {
            // Row of `a` is contiguous (coalescible); the partners in `b`
            // form a column — per-element hooks.
            ctx.load_range(a.addr(i, 0), n * 16);
            ctx.store_range(a.addr(i, 0), n * 16);
            for j in 0..n {
                ctx.load(b_.addr(j, i), 16);
                ctx.store(b_.addr(j, i), 16);
                let t = a.get(i, j);
                a.set(i, j, b_.get(j, i));
                b_.set(j, i, t);
            }
        }
        return;
    }
    let h = n / 2;
    let [a11, a12, a21, a22] = a.quadrants(h, h);
    let [b11, b12, b21, b22] = b_.quadrants(h, h);
    ctx.spawn(move |x| swap_blocks(x, a11, b11, bs));
    ctx.spawn(move |x| swap_blocks(x, a12, b21, bs));
    ctx.spawn(move |x| swap_blocks(x, a21, b12, bs));
    swap_blocks(ctx, a22, b22, bs);
    ctx.sync();
}

/// FFT every row of `m` in parallel (recursive split over row ranges). When
/// `twiddle` is set, each row `j` is first scaled by `w_n^{j·k}` (step 3 of
/// the six-step algorithm, fused with the second row pass).
fn fft_rows<C: Cilk>(ctx: &mut C, m: CxMat, b: usize, n: usize, twiddle: bool) {
    rows_rec(ctx, m, 0, m.rows, b, n, twiddle);
}

#[allow(clippy::too_many_arguments)]
fn rows_rec<C: Cilk>(
    ctx: &mut C,
    m: CxMat,
    lo: usize,
    hi: usize,
    b: usize,
    n: usize,
    twiddle: bool,
) {
    if hi - lo <= b {
        for j in lo..hi {
            if twiddle {
                twiddle_row(ctx, m, j, n);
            }
            fft_row(ctx, m, j);
        }
        return;
    }
    let mid = (lo + hi) / 2;
    ctx.spawn(move |x| rows_rec(x, m, lo, mid, b, n, twiddle));
    rows_rec(ctx, m, mid, hi, b, n, twiddle);
    ctx.sync();
}

/// Scale row `j` by the six-step twiddles: `m[j][k] *= w_n^{j·k}`.
fn twiddle_row<C: Cilk>(ctx: &mut C, m: CxMat, j: usize, n: usize) {
    let r = m.cols;
    ctx.load_range(m.addr(j, 0), r * 16);
    ctx.store_range(m.addr(j, 0), r * 16);
    let step = Cx::twiddle(j, n);
    let mut w = Cx::new(1.0, 0.0);
    for k in 0..r {
        // Re-anchor the rotation periodically to bound drift.
        if k % 64 == 0 {
            w = Cx::twiddle((j * k) % n, n);
        }
        m.set(j, k, m.get(j, k) * w);
        w = w * step;
    }
}

/// Iterative in-place radix-2 FFT of row `j` (bit-reversal + butterflies).
/// The permutation gathers and the strided butterflies are per-element
/// hooks; within one strand they coalesce back into the row's interval.
fn fft_row<C: Cilk>(ctx: &mut C, m: CxMat, j: usize) {
    let r = m.cols;
    if r <= 1 {
        return;
    }
    let bits = r.trailing_zeros();
    // Bit-reversal permutation.
    for k in 0..r {
        let rk = (k.reverse_bits() >> (usize::BITS - bits)) & (r - 1);
        if k < rk {
            ctx.load(m.addr(j, k), 16);
            ctx.load(m.addr(j, rk), 16);
            ctx.store(m.addr(j, k), 16);
            ctx.store(m.addr(j, rk), 16);
            let t = m.get(j, k);
            m.set(j, k, m.get(j, rk));
            m.set(j, rk, t);
        }
    }
    // Butterfly stages.
    let mut len = 2usize;
    while len <= r {
        let step = Cx::twiddle(1, len);
        let mut base = 0usize;
        while base < r {
            let mut w = Cx::new(1.0, 0.0);
            for k in 0..len / 2 {
                let (i0, i1) = (base + k, base + k + len / 2);
                ctx.load(m.addr(j, i0), 16);
                ctx.load(m.addr(j, i1), 16);
                ctx.store(m.addr(j, i0), 16);
                ctx.store(m.addr(j, i1), 16);
                let u = m.get(j, i0);
                let v = m.get(j, i1) * w;
                m.set(j, i0, u + v);
                m.set(j, i1, u - v);
                w = w * step;
            }
            base += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_cilk::run_baseline;

    #[test]
    fn matches_naive_dft() {
        for (n, b) in [(16, 1), (64, 2), (256, 4), (1024, 8)] {
            let mut f = Fft::new(n, b, 9);
            run_baseline(&mut f);
            f.verify().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn roundtrip_at_medium_size() {
        let mut f = Fft::new(1 << 14, 8, 9);
        run_baseline(&mut f);
        f.verify().unwrap();
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut f = Fft::new(64, 2, 0);
        for c in f.data.iter_mut() {
            *c = Cx::default();
        }
        f.data[0] = Cx::new(1.0, 0.0);
        f.orig = f.data.clone();
        run_baseline(&mut f);
        for (k, c) in f.result().iter().enumerate() {
            assert!(
                (c.re - 1.0).abs() < 1e-9 && c.im.abs() < 1e-9,
                "X[{k}] = {c:?}"
            );
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut f = Fft::new(256, 4, 0);
        for c in f.data.iter_mut() {
            *c = Cx::new(1.0, 0.0);
        }
        f.orig = f.data.clone();
        run_baseline(&mut f);
        let r = f.result();
        assert!((r[0].re - 256.0).abs() < 1e-8);
        for (k, c) in r.iter().enumerate().skip(1) {
            assert!(c.norm_sq().sqrt() < 1e-8, "X[{k}] = {c:?}");
        }
    }
}
