//! The seven task-parallel benchmarks of the paper's evaluation (Section 5),
//! written against the [`stint_cilk::Cilk`] trait:
//!
//! | name    | kernel | paper parameters |
//! |---------|--------|------------------|
//! | `chol`  | recursive blocked Cholesky factorization | n=2000, b=16 (paper uses a sparse quadtree variant; see DESIGN.md §2) |
//! | `fft`   | recursive radix-2 Cooley–Tukey FFT       | n=2^26, b=128 |
//! | `heat`  | 2-D Jacobi heat diffusion                | 2048×2048, b=10 |
//! | `mmul`  | recursive divide-and-conquer matmul      | n=2048, b=64 |
//! | `sort`  | cilksort (4-way mergesort, parallel merge, quicksort/insertion base) | n=2.5e7, b=2048 |
//! | `stra`  | Strassen multiplication, row-major       | n=2048, b=64 |
//! | `straz` | Strassen multiplication, Morton-Z layout | n=2048, b=64 |
//!
//! Every kernel performs its real computation on real data, and issues
//! instrumentation hooks for exactly the bytes it touches. Accesses the
//! paper's Tapir analysis can prove contiguous use the coalesced hooks
//! (`load_range`/`store_range`); statically non-contiguous or data-dependent
//! accesses (matmul's column-major `B` reads — Algorithm 1; sorting's
//! value-dependent moves — Algorithm 2; FFT's strided deinterleave) use the
//! plain hooks. All benchmarks are determinacy-race-free; the `buggy` module
//! provides broken variants for positive detector tests.

pub mod buggy;
pub mod chol;
pub mod fft;
pub mod heat;
pub mod mmul;
pub mod sort;
pub mod strassen;
pub mod util;

use stint_cilk::{Cilk, CilkProgram};

/// Input-size presets.
///
/// `Paper` reproduces the paper's parameters (minutes to hours under
/// detection — the paper's machine needed 84–488 s per benchmark under
/// `vanilla`); `S` is sized so the full figure harness completes in minutes
/// on a laptop; `Test` is for the test suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Test,
    S,
    M,
    Paper,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "test" => Some(Scale::Test),
            "s" | "small" => Some(Scale::S),
            "m" | "medium" => Some(Scale::M),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// The benchmark names in the paper's (alphabetical) table order.
pub const NAMES: [&str; 7] = ["chol", "fft", "heat", "mmul", "sort", "stra", "straz"];

/// Seeded-bug variants constructible by name — deterministic *racy*
/// workloads for positive-path tooling (recording racy traces, witness
/// smoke tests). Not part of [`NAMES`]: the figure harness iterates the
/// race-free suite only.
pub const BUGGY_NAMES: [&str; 3] = ["buggy-heat", "buggy-merge", "buggy-mmul"];

/// A ready-to-run benchmark instance. Construction is deterministic; run it
/// once (kernels mutate their data in place).
pub enum Workload {
    Chol(chol::Chol),
    Fft(fft::Fft),
    Heat(heat::Heat),
    Mmul(mmul::Mmul),
    Sort(sort::Sort),
    Stra(strassen::Strassen),
    Straz(strassen::StrassenZ),
    BuggyHeat(buggy::HeatMissingBarrier),
    BuggyMerge(buggy::OverlappingMerge),
    BuggyMmul(buggy::MmulMissingSync),
}

impl Workload {
    /// Build a fresh instance of the named benchmark at the given scale.
    /// Accepts the race-free [`NAMES`] and the seeded-bug [`BUGGY_NAMES`].
    ///
    /// # Panics
    /// Panics on an unknown name.
    pub fn by_name(name: &str, scale: Scale) -> Workload {
        match name {
            "chol" => Workload::Chol(chol::Chol::with_scale(scale)),
            "fft" => Workload::Fft(fft::Fft::with_scale(scale)),
            "heat" => Workload::Heat(heat::Heat::with_scale(scale)),
            "mmul" => Workload::Mmul(mmul::Mmul::with_scale(scale)),
            "sort" => Workload::Sort(sort::Sort::with_scale(scale)),
            "stra" => Workload::Stra(strassen::Strassen::with_scale(scale)),
            "straz" => Workload::Straz(strassen::StrassenZ::with_scale(scale)),
            "buggy-heat" => {
                let (n, steps, b) = match scale {
                    Scale::Test => (16, 3, 4),
                    Scale::S => (64, 4, 8),
                    Scale::M | Scale::Paper => (128, 5, 8),
                };
                Workload::BuggyHeat(buggy::HeatMissingBarrier::new(n, n, steps, b, 7))
            }
            "buggy-merge" => {
                let (n, overlap) = match scale {
                    Scale::Test => (64, 4),
                    Scale::S => (1024, 16),
                    Scale::M | Scale::Paper => (8192, 32),
                };
                Workload::BuggyMerge(buggy::OverlappingMerge::new(n, overlap, 7))
            }
            "buggy-mmul" => {
                let (n, b) = match scale {
                    Scale::Test => (16, 4),
                    Scale::S => (64, 8),
                    Scale::M | Scale::Paper => (128, 16),
                };
                Workload::BuggyMmul(buggy::MmulMissingSync::new(n, b, 7))
            }
            _ => panic!("unknown benchmark {name:?}"),
        }
    }

    /// Benchmark name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Chol(_) => "chol",
            Workload::Fft(_) => "fft",
            Workload::Heat(_) => "heat",
            Workload::Mmul(_) => "mmul",
            Workload::Sort(_) => "sort",
            Workload::Stra(_) => "stra",
            Workload::Straz(_) => "straz",
            Workload::BuggyHeat(_) => "buggy-heat",
            Workload::BuggyMerge(_) => "buggy-merge",
            Workload::BuggyMmul(_) => "buggy-mmul",
        }
    }

    /// Check the computation's output (call after running). Returns an error
    /// description on failure. Verification may be skipped (Ok) at large
    /// scales where the reference computation would dominate. The buggy
    /// variants always pass: their outputs are deliberately undefined — the
    /// race report is the interesting artifact.
    pub fn verify(&self) -> Result<(), String> {
        match self {
            Workload::Chol(b) => b.verify(),
            Workload::Fft(b) => b.verify(),
            Workload::Heat(b) => b.verify(),
            Workload::Mmul(b) => b.verify(),
            Workload::Sort(b) => b.verify(),
            Workload::Stra(b) => b.verify(),
            Workload::Straz(b) => b.verify(),
            Workload::BuggyHeat(_) | Workload::BuggyMerge(_) | Workload::BuggyMmul(_) => Ok(()),
        }
    }
}

impl CilkProgram for Workload {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        match self {
            Workload::Chol(b) => b.run(ctx),
            Workload::Fft(b) => b.run(ctx),
            Workload::Heat(b) => b.run(ctx),
            Workload::Mmul(b) => b.run(ctx),
            Workload::Sort(b) => b.run(ctx),
            Workload::Stra(b) => b.run(ctx),
            Workload::Straz(b) => b.run(ctx),
            Workload::BuggyHeat(b) => b.run(ctx),
            Workload::BuggyMerge(b) => b.run(ctx),
            Workload::BuggyMmul(b) => b.run(ctx),
        }
    }
}
