//! Deliberately broken variants of the benchmarks, used as positive tests:
//! every detector variant must report these (and must report the same racy
//! words — see the integration tests).

use crate::util::{addr, random_f64s, random_i64s, MatMut};
use stint_cilk::{Cilk, CilkProgram};

/// Wrap any program with one guaranteed race on a sentinel cell: the wrapped
/// program runs in a spawned child while the continuation writes a flag the
/// child also writes.
pub struct WithInjectedRace<P> {
    pub inner: P,
    flag: Box<[u8; 64]>,
}

impl<P> WithInjectedRace<P> {
    pub fn new(inner: P) -> Self {
        WithInjectedRace {
            inner,
            flag: Box::new([0; 64]),
        }
    }

    /// The word range of the sentinel cell (for assertions).
    pub fn sentinel_words(&self) -> (u64, u64) {
        stint_cilk::word_range(self.flag.as_ptr() as usize, 8)
    }
}

impl<P: CilkProgram> CilkProgram for WithInjectedRace<P> {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let a = self.flag.as_ptr() as usize;
        let inner = &mut self.inner;
        ctx.spawn(move |c| {
            c.store(a, 8);
            inner.run(c);
        });
        ctx.store(a, 8); // races with the child's store
        ctx.sync();
    }
}

/// `mmul` with the sync between the two accumulation phases removed: the
/// phase-2 products read and write `C` quadrants in parallel with phase 1 —
/// the classic forgotten-sync bug.
pub struct MmulMissingSync {
    pub n: usize,
    pub b: usize,
    a: Vec<f64>,
    bm: Vec<f64>,
    c: Vec<f64>,
}

impl MmulMissingSync {
    pub fn new(n: usize, b: usize, seed: u64) -> Self {
        assert!(n.is_power_of_two() && n > b);
        MmulMissingSync {
            n,
            b,
            a: random_f64s(n * n, seed ^ 0xA),
            bm: random_f64s(n * n, seed ^ 0xB),
            c: vec![0.0; n * n],
        }
    }
}

impl CilkProgram for MmulMissingSync {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let n = self.n;
        let c = MatMut::from_slice(&mut self.c, n, n);
        let a = MatMut::from_slice(&mut self.a, n, n);
        let b = MatMut::from_slice(&mut self.bm, n, n);
        let bs = self.b;
        let h = n / 2;
        let [c11, c12, c21, c22] = c.quadrants(h, h);
        let [a11, a12, a21, a22] = a.quadrants(h, h);
        let [b11, b12, b21, b22] = b.quadrants(h, h);
        ctx.spawn(move |x| crate::mmul::mm(x, c11, a11, b11, bs));
        ctx.spawn(move |x| crate::mmul::mm(x, c12, a11, b12, bs));
        ctx.spawn(move |x| crate::mmul::mm(x, c21, a21, b11, bs));
        ctx.spawn(move |x| crate::mmul::mm(x, c22, a21, b12, bs));
        // BUG: missing ctx.sync() here — phase 2 races with phase 1.
        ctx.spawn(move |x| crate::mmul::mm(x, c11, a12, b21, bs));
        ctx.spawn(move |x| crate::mmul::mm(x, c12, a12, b22, bs));
        ctx.spawn(move |x| crate::mmul::mm(x, c21, a22, b21, bs));
        ctx.spawn(move |x| crate::mmul::mm(x, c22, a22, b22, bs));
        ctx.sync();
    }
}

/// `heat` without the barrier between timesteps: step `t+1` reads the rows
/// step `t` is still writing.
pub struct HeatMissingBarrier {
    pub nx: usize,
    pub ny: usize,
    pub steps: usize,
    pub b: usize,
    grid_a: Vec<f64>,
    grid_b: Vec<f64>,
}

impl HeatMissingBarrier {
    pub fn new(nx: usize, ny: usize, steps: usize, b: usize, seed: u64) -> Self {
        assert!(steps >= 2, "need two steps for the missing barrier to race");
        let init = random_f64s(nx * ny, seed);
        HeatMissingBarrier {
            nx,
            ny,
            steps,
            b,
            grid_a: init.clone(),
            grid_b: init,
        }
    }
}

impl CilkProgram for HeatMissingBarrier {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let (nx, ny, b) = (self.nx, self.ny, self.b);
        for t in 0..self.steps {
            let (old, new) = if t % 2 == 0 {
                (&mut self.grid_a, &mut self.grid_b)
            } else {
                (&mut self.grid_b, &mut self.grid_a)
            };
            let old = MatMut::from_slice(old, nx, ny);
            let new = MatMut::from_slice(new, nx, ny);
            // Spawn the whole step and DON'T sync: steps overlap.
            ctx.spawn(move |x| step(x, old, new, b));
        }
        ctx.sync();
    }
}

fn step<C: Cilk>(ctx: &mut C, old: MatMut, new: MatMut, b: usize) {
    let nx = old.rows;
    let ny = old.cols;
    let mut lo = 1;
    while lo < nx - 1 {
        let hi = (lo + b).min(nx - 1);
        ctx.spawn(move |x| {
            for i in lo..hi {
                x.load_range(old.addr(i - 1, 0), ny * 8);
                x.load_range(old.addr(i, 0), ny * 8);
                x.load_range(old.addr(i + 1, 0), ny * 8);
                x.store_range(new.addr(i, 1), (ny - 2) * 8);
                for j in 1..ny - 1 {
                    let v = old.get(i, j)
                        + 0.1
                            * (old.get(i - 1, j)
                                + old.get(i + 1, j)
                                + old.get(i, j - 1)
                                + old.get(i, j + 1)
                                - 4.0 * old.get(i, j));
                    new.set(i, j, v);
                }
            }
        });
        lo = hi;
    }
    ctx.sync();
}

/// A parallel merge whose output ranges overlap by `overlap` elements: the
/// two merging strands race on the shared slots.
pub struct OverlappingMerge {
    pub n: usize,
    pub overlap: usize,
    data: Vec<i64>,
    out: Vec<i64>,
}

impl OverlappingMerge {
    pub fn new(n: usize, overlap: usize, seed: u64) -> Self {
        assert!(overlap >= 1 && overlap < n / 2);
        let mut data = random_i64s(n, seed);
        let h = n / 2;
        data[..h].sort_unstable();
        data[h..].sort_unstable();
        OverlappingMerge {
            n,
            overlap,
            out: vec![0; n],
            data,
        }
    }
}

impl CilkProgram for OverlappingMerge {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let h = self.n / 2;
        let (x, y) = self.data.split_at(h);
        let (xl, xr) = x.split_at(h / 2);
        let (yl, yr) = y.split_at(h / 2);
        let mid = h - self.overlap; // BUG: left output overruns into right
        let o = addr(&self.out, 0);
        let n = self.n;
        let overlap = self.overlap;
        ctx.spawn(move |c| copy_merge(c, xl, yl, o, mid + overlap));
        copy_merge(ctx, xr, yr, o + mid * 8, n - mid);
        ctx.sync();
    }
}

/// Simplified merge writing `len` slots starting at byte address `base`.
fn copy_merge<C: Cilk>(ctx: &mut C, x: &[i64], y: &[i64], base: usize, len: usize) {
    ctx.store_range(base, len * 8);
    for i in 0..x.len().min(len) {
        ctx.load(addr(x, i), 8);
    }
    for i in 0..y.len().min(len) {
        ctx.load(addr(y, i), 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_cilk::run_baseline;

    #[test]
    fn buggy_programs_still_run_under_baseline() {
        run_baseline(&mut MmulMissingSync::new(16, 4, 1));
        run_baseline(&mut HeatMissingBarrier::new(12, 12, 3, 3, 1));
        run_baseline(&mut OverlappingMerge::new(64, 4, 1));
        run_baseline(&mut WithInjectedRace::new(crate::mmul::Mmul::new(8, 4, 1)));
    }
}
