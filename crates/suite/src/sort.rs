//! `sort` — cilksort (Cilk-5): 4-way parallel mergesort with a parallel
//! divide-and-conquer merge, a serial quicksort base case, and the
//! insertion-sort innermost base case of the paper's Algorithm 2.
//!
//! Instrumentation notes: the moves performed by quicksort's partition and
//! by insertion sort are value-dependent — the compiler cannot coalesce them
//! (Algorithm 2), but at runtime they densely cover the base-case range and
//! coalesce into a handful of intervals. The serial merge reads its two
//! input runs in a data-dependent interleaving (per-element loads) but its
//! output range is statically known, so the store is emitted coalesced.

use crate::util::{addr, random_i64s};
use crate::Scale;
use stint_cilk::{Cilk, CilkProgram};

/// Below this length, quicksort switches to insertion sort (Cilk-5 constant).
const INSERTION_MAX: usize = 20;

/// The `sort` benchmark instance.
pub struct Sort {
    pub n: usize,
    /// Base-case size: runs of at most `b` elements are sorted serially.
    pub b: usize,
    data: Vec<i64>,
    tmp: Vec<i64>,
    reference: Vec<i64>,
    verify_limit: usize,
}

impl Sort {
    pub fn new(n: usize, b: usize, seed: u64) -> Sort {
        let data = random_i64s(n, seed);
        Sort {
            n,
            b: b.max(4),
            tmp: vec![0; n],
            reference: data.clone(),
            data,
            verify_limit: 50_000_000,
        }
    }

    /// Paper parameters: n = 2.5e7, b = 2048.
    pub fn with_scale(scale: Scale) -> Sort {
        match scale {
            Scale::Test => Sort::new(1_500, 64, 3),
            Scale::S => Sort::new(300_000, 2048, 3),
            Scale::M => Sort::new(2_500_000, 2048, 3),
            Scale::Paper => Sort::new(25_000_000, 2048, 3),
        }
    }

    pub fn result(&self) -> &[i64] {
        &self.data
    }

    /// Sortedness + permutation check against `std` sort of the input.
    pub fn verify(&self) -> Result<(), String> {
        if self.n > self.verify_limit {
            return Ok(());
        }
        let mut want = self.reference.clone();
        want.sort_unstable();
        if self.data == want {
            Ok(())
        } else {
            Err("sort: output differs from std sort".into())
        }
    }
}

impl CilkProgram for Sort {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        cilksort(ctx, &mut self.data, &mut self.tmp, self.b);
    }
}

/// Sort `a` using `tmp` as scratch (both the same length).
fn cilksort<C: Cilk>(ctx: &mut C, a: &mut [i64], tmp: &mut [i64], b: usize) {
    let n = a.len();
    if n <= b {
        seqquick(ctx, a);
        return;
    }
    let q = n / 4;
    // Sort the four quarters in parallel...
    {
        let (a1, rest) = a.split_at_mut(q);
        let (a2, rest) = rest.split_at_mut(q);
        let (a3, a4) = rest.split_at_mut(q);
        let (t1, trest) = tmp.split_at_mut(q);
        let (t2, trest) = trest.split_at_mut(q);
        let (t3, t4) = trest.split_at_mut(q);
        ctx.spawn(|x| cilksort(x, a1, t1, b));
        ctx.spawn(|x| cilksort(x, a2, t2, b));
        ctx.spawn(|x| cilksort(x, a3, t3, b));
        cilksort(ctx, a4, t4, b);
        ctx.sync();
    }
    // ...merge pairs of quarters into tmp, in parallel...
    {
        let (alo, ahi) = a.split_at(2 * q);
        let (a1, a2) = alo.split_at(q);
        let (a3, a4) = ahi.split_at(q);
        let (tlo, thi) = tmp.split_at_mut(2 * q);
        ctx.spawn(|x| merge(x, a1, a2, tlo));
        merge(ctx, a3, a4, thi);
        ctx.sync();
    }
    // ...and merge the two halves back into a.
    let (tlo, thi) = tmp.split_at(2 * q);
    merge(ctx, tlo, thi, a);
    ctx.sync();
}

/// Parallel merge of sorted runs `x` and `y` into `out` (divide & conquer).
fn merge<C: Cilk>(ctx: &mut C, x: &[i64], y: &[i64], out: &mut [i64]) {
    debug_assert_eq!(x.len() + y.len(), out.len());
    // Keep the larger run as the one we bisect.
    let (x, y) = if x.len() >= y.len() { (x, y) } else { (y, x) };
    if out.len() <= 2048 || y.is_empty() {
        seq_merge(ctx, x, y, out);
        return;
    }
    let mx = x.len() / 2;
    ctx.load(addr(x, mx), 8);
    let pivot = x[mx];
    // Binary search y for the pivot's partition point (hooked probes).
    let mut lo = 0usize;
    let mut hi = y.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        ctx.load(addr(y, mid), 8);
        if y[mid] < pivot {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let my = lo;
    let (xl, xr) = x.split_at(mx);
    let (yl, yr) = y.split_at(my);
    let (ol, or_) = out.split_at_mut(mx + my);
    ctx.spawn(|c| merge(c, xl, yl, ol));
    merge(ctx, xr, yr, or_);
    ctx.sync();
}

/// Serial merge: per-element data-dependent loads, coalesced output store.
fn seq_merge<C: Cilk>(ctx: &mut C, x: &[i64], y: &[i64], out: &mut [i64]) {
    if !out.is_empty() {
        // The output range is statically known: coalesced store.
        ctx.store_range(addr(out, 0), out.len() * 8);
    }
    let (mut i, mut j) = (0usize, 0usize);
    for slot in out.iter_mut() {
        let take_x = if i == x.len() {
            false
        } else if j == y.len() {
            true
        } else {
            ctx.load(addr(x, i), 8);
            ctx.load(addr(y, j), 8);
            x[i] <= y[j]
        };
        if take_x {
            if j == y.len() {
                ctx.load(addr(x, i), 8);
            }
            *slot = x[i];
            i += 1;
        } else {
            if i == x.len() {
                ctx.load(addr(y, j), 8);
            }
            *slot = y[j];
            j += 1;
        }
    }
}

/// Serial quicksort with median-of-three pivoting and the insertion-sort
/// base case of Algorithm 2.
fn seqquick<C: Cilk>(ctx: &mut C, a: &mut [i64]) {
    let n = a.len();
    if n <= INSERTION_MAX {
        insertion(ctx, a);
        return;
    }
    // Median-of-three pivot selection (hooked loads), pivot parked at the end.
    ctx.load(addr(a, 0), 8);
    ctx.load(addr(a, n / 2), 8);
    ctx.load(addr(a, n - 1), 8);
    let (x, y, z) = (a[0], a[n / 2], a[n - 1]);
    let med = x.max(y.min(z)).min(y.max(z));
    let pi = if med == x {
        0
    } else if med == y {
        n / 2
    } else {
        n - 1
    };
    if pi != n - 1 {
        ctx.store(addr(a, pi), 8);
        ctx.store(addr(a, n - 1), 8);
        a.swap(pi, n - 1);
    }
    let pivot = a[n - 1];
    // Lomuto partition (hooked per-element loads and per-swap stores).
    let mut store = 0usize;
    for i in 0..n - 1 {
        ctx.load(addr(a, i), 8);
        if a[i] < pivot {
            if i != store {
                ctx.store(addr(a, i), 8);
                ctx.store(addr(a, store), 8);
            }
            a.swap(i, store);
            store += 1;
        }
    }
    ctx.store(addr(a, store), 8);
    ctx.store(addr(a, n - 1), 8);
    a.swap(store, n - 1);
    // The pivot at `store` is final: recurse on strictly smaller parts.
    let (lo, hi) = a.split_at_mut(store);
    seqquick(ctx, lo);
    seqquick(ctx, &mut hi[1..]);
}

/// Insertion sort — the paper's Algorithm 2, hook for hook.
fn insertion<C: Cilk>(ctx: &mut C, a: &mut [i64]) {
    for q in 1..a.len() {
        ctx.load(addr(a, q), 8);
        let key = a[q];
        let mut p = q;
        while p > 0 {
            ctx.load(addr(a, p - 1), 8);
            if a[p - 1] > key {
                ctx.store(addr(a, p), 8);
                a[p] = a[p - 1];
                p -= 1;
            } else {
                break;
            }
        }
        ctx.store(addr(a, p), 8);
        a[p] = key;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_cilk::run_baseline;

    #[test]
    fn sorts_correctly_various_sizes() {
        for (n, b) in [
            (1, 4),
            (7, 4),
            (50, 8),
            (1000, 32),
            (4096, 64),
            (10_000, 128),
        ] {
            let mut s = Sort::new(n, b, 11);
            run_baseline(&mut s);
            s.verify().unwrap_or_else(|e| panic!("n={n} b={b}: {e}"));
        }
    }

    #[test]
    fn sorts_adversarial_patterns() {
        for pattern in 0..4 {
            let n = 3000;
            let mut s = Sort::new(n, 64, 0);
            // Overwrite the random data with an adversarial pattern.
            for i in 0..n {
                s.data[i] = match pattern {
                    0 => i as i64,       // sorted
                    1 => (n - i) as i64, // reverse sorted
                    2 => 42,             // all equal
                    _ => (i % 7) as i64, // few distinct values
                };
            }
            s.reference = s.data.clone();
            run_baseline(&mut s);
            s.verify()
                .unwrap_or_else(|e| panic!("pattern={pattern}: {e}"));
        }
    }

    #[test]
    fn base_case_only() {
        let mut s = Sort::new(64, 4096, 2);
        run_baseline(&mut s);
        s.verify().unwrap();
    }
}
