//! `heat` — 2-D Jacobi heat diffusion on a grid (Cilk-5 `heat`).
//!
//! Each timestep computes `new[i][j]` from the 5-point stencil over `old`
//! and then the roles swap. Within a step, the interior rows are divided
//! recursively and the halves spawned; rows are row-major, so each leaf
//! strand reads three contiguous row segments of `old` (coalesced loads) and
//! writes one contiguous row of `new` (coalesced store) — heat coalesces
//! extremely well, exactly as in the paper (5274M accesses → 2.2M intervals).

use crate::util::{max_abs_diff, random_f64s, MatMut};
use crate::Scale;
use stint_cilk::{Cilk, CilkProgram};

/// The `heat` benchmark instance.
pub struct Heat {
    pub nx: usize,
    pub ny: usize,
    pub steps: usize,
    /// Base-case number of rows per leaf strand.
    pub b: usize,
    grid_a: Vec<f64>,
    grid_b: Vec<f64>,
    init: Vec<f64>,
    verify_limit: usize,
}

impl Heat {
    pub fn new(nx: usize, ny: usize, steps: usize, b: usize, seed: u64) -> Heat {
        assert!(nx >= 3 && ny >= 3 && b >= 1);
        let init = random_f64s(nx * ny, seed);
        Heat {
            nx,
            ny,
            steps,
            b,
            grid_a: init.clone(),
            grid_b: init.clone(),
            init,
            verify_limit: 1 << 22,
        }
    }

    /// Paper parameters: nx = ny = 2048, b = 10.
    pub fn with_scale(scale: Scale) -> Heat {
        match scale {
            Scale::Test => Heat::new(24, 24, 4, 3, 2),
            Scale::S => Heat::new(512, 512, 20, 10, 2),
            Scale::M => Heat::new(1024, 1024, 50, 10, 2),
            Scale::Paper => Heat::new(2048, 2048, 100, 10, 2),
        }
    }

    /// The grid holding the final state.
    pub fn result(&self) -> &[f64] {
        if self.steps.is_multiple_of(2) {
            &self.grid_a
        } else {
            &self.grid_b
        }
    }

    /// Recompute serially from the saved initial state and compare.
    pub fn verify(&self) -> Result<(), String> {
        if self.nx * self.ny * self.steps > self.verify_limit {
            return Ok(());
        }
        let mut a = self.init.clone();
        let mut b = self.init.clone();
        let (nx, ny) = (self.nx, self.ny);
        for _ in 0..self.steps {
            for i in 1..nx - 1 {
                for j in 1..ny - 1 {
                    b[i * ny + j] = a[i * ny + j]
                        + 0.1
                            * (a[(i - 1) * ny + j]
                                + a[(i + 1) * ny + j]
                                + a[i * ny + j - 1]
                                + a[i * ny + j + 1]
                                - 4.0 * a[i * ny + j]);
                }
            }
            std::mem::swap(&mut a, &mut b);
        }
        let err = max_abs_diff(&a, self.result());
        if err < 1e-12 {
            Ok(())
        } else {
            Err(format!("heat: max abs error {err}"))
        }
    }
}

impl CilkProgram for Heat {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let (nx, ny) = (self.nx, self.ny);
        for t in 0..self.steps {
            let (old, new) = if t % 2 == 0 {
                (&mut self.grid_a, &mut self.grid_b)
            } else {
                (&mut self.grid_b, &mut self.grid_a)
            };
            let old = MatMut::from_slice(old, nx, ny);
            let new = MatMut::from_slice(new, nx, ny);
            rows_rec(ctx, old, new, 1, nx - 1, self.b);
            // Barrier between timesteps.
            ctx.sync();
        }
    }
}

/// Recursively split the interior row range [lo, hi), spawning the halves.
fn rows_rec<C: Cilk>(ctx: &mut C, old: MatMut, new: MatMut, lo: usize, hi: usize, b: usize) {
    if hi - lo <= b {
        leaf(ctx, old, new, lo, hi);
        return;
    }
    let mid = (lo + hi) / 2;
    ctx.spawn(move |x| rows_rec(x, old, new, lo, mid, b));
    rows_rec(ctx, old, new, mid, hi, b);
    ctx.sync();
}

/// One leaf strand: stencil over rows [lo, hi).
fn leaf<C: Cilk>(ctx: &mut C, old: MatMut, new: MatMut, lo: usize, hi: usize) {
    let ny = old.cols;
    for i in lo..hi {
        // Three contiguous row reads, one contiguous row write — all
        // statically coalescible.
        ctx.load_range(old.addr(i - 1, 0), ny * 8);
        ctx.load_range(old.addr(i, 0), ny * 8);
        ctx.load_range(old.addr(i + 1, 0), ny * 8);
        ctx.store_range(new.addr(i, 1), (ny - 2) * 8);
        for j in 1..ny - 1 {
            let v = old.get(i, j)
                + 0.1
                    * (old.get(i - 1, j)
                        + old.get(i + 1, j)
                        + old.get(i, j - 1)
                        + old.get(i, j + 1)
                        - 4.0 * old.get(i, j));
            new.set(i, j, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_cilk::run_baseline;

    #[test]
    fn matches_serial_reference() {
        for (nx, ny, steps, b) in [(8, 8, 3, 2), (24, 16, 5, 3), (33, 17, 4, 4)] {
            let mut h = Heat::new(nx, ny, steps, b, 5);
            run_baseline(&mut h);
            h.verify().unwrap();
        }
    }

    #[test]
    fn zero_steps_is_identity() {
        let mut h = Heat::new(8, 8, 0, 2, 5);
        run_baseline(&mut h);
        h.verify().unwrap();
        assert_eq!(h.result(), &h.init[..]);
    }

    #[test]
    fn boundary_rows_untouched() {
        let mut h = Heat::new(10, 10, 3, 2, 5);
        run_baseline(&mut h);
        let r = h.result();
        for j in 0..10 {
            assert_eq!(r[j], h.init[j], "top row changed");
            assert_eq!(r[90 + j], h.init[90 + j], "bottom row changed");
        }
    }
}
