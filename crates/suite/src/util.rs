//! Shared helpers: instrumentation addresses, matrix views, data generation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Byte address of element `i` of slice `s` — what the instrumentation hooks
/// report. Real pointer addresses, exactly like compiler instrumentation.
#[inline]
pub fn addr<T>(s: &[T], i: usize) -> usize {
    s.as_ptr() as usize + i * std::mem::size_of::<T>()
}

/// Deterministic `f64` data in (-1, 1).
pub fn random_f64s(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
}

/// Deterministic `i64` data.
pub fn random_i64s(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.random_range(i64::MIN / 4..i64::MAX / 4))
        .collect()
}

/// Max absolute difference between two slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// A mutable dense-matrix *view*: base pointer, dimensions and leading
/// dimension (row stride), in elements.
///
/// Divide-and-conquer matrix kernels hand disjoint quadrants of one
/// allocation to logically parallel subtasks. Rust slices cannot express
/// "rows r0..r1 × cols c0..c1 of a strided matrix" disjointly, so the
/// kernels use raw-pointer views — the standard trusted-kernel pattern.
///
/// SAFETY contract: every algorithm in this crate only splits a view into
/// non-overlapping sub-views and only runs such sub-views in logically
/// parallel strands when they are disjoint. This is precisely the property
/// the race detector verifies dynamically: the detectors observing these
/// kernels report them race-free, and the `buggy` variants show the same
/// machinery catching violations.
pub struct Mat2D<T> {
    ptr: *mut T,
    pub rows: usize,
    pub cols: usize,
    pub ld: usize,
}

// Manual impls: `T` is always a plain scalar here and views are Copy.
impl<T> Clone for Mat2D<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Mat2D<T> {}

// SAFETY: a view is just (pointer, shape); sending or sharing it across
// threads is safe because all *uses* are governed by the aliasing contract
// above (parallel strands touch disjoint regions — dynamically verified by
// the race detectors).
unsafe impl<T: Send> Send for Mat2D<T> {}
unsafe impl<T: Send + Sync> Sync for Mat2D<T> {}

/// The common `f64` view used by the dense-matrix kernels.
pub type MatMut = Mat2D<f64>;

impl<T: Copy> Mat2D<T> {
    /// View over an entire `rows x cols` row-major buffer.
    pub fn from_slice(s: &mut [T], rows: usize, cols: usize) -> Mat2D<T> {
        assert!(s.len() >= rows * cols);
        Mat2D {
            ptr: s.as_mut_ptr(),
            rows,
            cols,
            ld: cols,
        }
    }

    /// Read-only view over a shared buffer. The caller must never call
    /// [`Mat2D::set`]/[`Mat2D::add`] on it (or on any sub-view of it).
    pub fn from_slice_ref(s: &[T], rows: usize, cols: usize) -> Mat2D<T> {
        assert!(s.len() >= rows * cols);
        Mat2D {
            ptr: s.as_ptr() as *mut T,
            rows,
            cols,
            ld: cols,
        }
    }

    /// Sub-view of `r` rows × `c` cols starting at (i, j).
    #[inline]
    pub fn sub(self, i: usize, j: usize, r: usize, c: usize) -> Mat2D<T> {
        debug_assert!(i + r <= self.rows && j + c <= self.cols);
        Mat2D {
            // SAFETY: offset stays within the original allocation.
            ptr: unsafe { self.ptr.add(i * self.ld + j) },
            rows: r,
            cols: c,
            ld: self.ld,
        }
    }

    /// Split into four quadrants at (`ri`, `ci`).
    pub fn quadrants(self, ri: usize, ci: usize) -> [Mat2D<T>; 4] {
        [
            self.sub(0, 0, ri, ci),
            self.sub(0, ci, ri, self.cols - ci),
            self.sub(ri, 0, self.rows - ri, ci),
            self.sub(ri, ci, self.rows - ri, self.cols - ci),
        ]
    }

    /// Byte address of element (i, j) — for instrumentation hooks.
    #[inline]
    pub fn addr(self, i: usize, j: usize) -> usize {
        (self.ptr as usize) + (i * self.ld + j) * std::mem::size_of::<T>()
    }

    /// Read element (i, j).
    ///
    /// SAFETY: in-bounds per the view contract; aliasing discipline is the
    /// caller's responsibility (see type docs).
    #[inline]
    pub fn get(self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(i * self.ld + j) }
    }

    /// Write element (i, j).
    #[inline]
    pub fn set(self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(i * self.ld + j) = v }
    }
}

impl Mat2D<f64> {
    /// Add `v` into element (i, j).
    #[inline]
    pub fn add(self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(i * self.ld + j) += v }
    }
}

/// Naive O(n^3) reference matmul: `c += a * b` (row-major, square `n`).
pub fn naive_matmul(c: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_is_linear_in_index() {
        let v = vec![0f64; 8];
        assert_eq!(addr(&v, 3) - addr(&v, 0), 24);
        let w = vec![0i64; 8];
        assert_eq!(addr(&w, 1) - addr(&w, 0), 8);
    }

    #[test]
    fn matview_quadrants_are_disjoint() {
        let mut buf = vec![0f64; 16];
        let m = MatMut::from_slice(&mut buf, 4, 4);
        let [q11, q12, q21, q22] = m.quadrants(2, 2);
        q11.set(0, 0, 1.0);
        q12.set(0, 0, 2.0);
        q21.set(0, 0, 3.0);
        q22.set(1, 1, 4.0);
        assert_eq!(buf[0], 1.0);
        assert_eq!(buf[2], 2.0);
        assert_eq!(buf[8], 3.0);
        assert_eq!(buf[15], 4.0);
    }

    #[test]
    fn matview_addr_matches_memory_layout() {
        let mut buf = vec![0f64; 36];
        let base = buf.as_ptr() as usize;
        let m = MatMut::from_slice(&mut buf, 6, 6);
        let s = m.sub(2, 3, 2, 2);
        assert_eq!(s.addr(0, 0), base + (2 * 6 + 3) * 8);
        assert_eq!(s.addr(1, 1), base + (3 * 6 + 4) * 8);
    }

    #[test]
    fn data_generation_is_deterministic() {
        assert_eq!(random_f64s(100, 42), random_f64s(100, 42));
        assert_ne!(random_f64s(100, 42), random_f64s(100, 43));
        assert_eq!(random_i64s(50, 1), random_i64s(50, 1));
    }
}
