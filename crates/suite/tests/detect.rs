//! Detection-level integration tests for the benchmark suite: every real
//! benchmark is determinacy-race-free under every detector variant (no false
//! positives), every buggy variant is caught by every variant (no false
//! negatives), and all variants agree on the racy words.

use stint::{detect, Variant};

/// Racy words are absolute heap addresses, which differ between program
/// instances; compare them relative to the region's first racy word.
fn rel(words: Vec<u64>) -> Vec<u64> {
    let base = words.first().copied().unwrap_or(0);
    words.into_iter().map(|w| w - base).collect()
}
use stint_suite::buggy::{HeatMissingBarrier, MmulMissingSync, OverlappingMerge, WithInjectedRace};
use stint_suite::{Scale, Workload, NAMES};

const VARIANTS: [Variant; 5] = [
    Variant::Vanilla,
    Variant::Compiler,
    Variant::CompRts,
    Variant::Stint,
    Variant::StintFlat,
];

#[test]
fn all_benchmarks_race_free_under_all_variants() {
    for name in NAMES {
        for v in VARIANTS {
            let mut w = Workload::by_name(name, Scale::Test);
            let o = detect(&mut w, v);
            assert!(
                o.report.is_race_free(),
                "{name} under {v}: {} false races, first: {:?}",
                o.report.total,
                o.report.races().first()
            );
            w.verify()
                .unwrap_or_else(|e| panic!("{name} under {v} produced wrong output: {e}"));
        }
    }
}

#[test]
fn variants_agree_on_detection_stats_sanity() {
    for name in NAMES {
        let mut w = Workload::by_name(name, Scale::Test);
        let o = detect(&mut w, Variant::Stint);
        let s = &o.stats;
        assert!(s.read.words > 0, "{name}: no reads observed");
        assert!(s.write.words > 0, "{name}: no writes observed");
        assert!(
            s.read.intervals <= s.read.words,
            "{name}: more intervals than word accesses"
        );
        assert!(s.treap.ops > 0, "{name}: treap never used");
        assert!(o.strands > 1, "{name}: no parallelism observed");
    }
}

#[test]
fn injected_race_caught_by_all_variants() {
    for v in VARIANTS {
        let mut w = WithInjectedRace::new(Workload::by_name("mmul", Scale::Test));
        let (lo, _hi) = w.sentinel_words();
        let o = detect(&mut w, v);
        assert!(!o.report.is_race_free(), "{v} missed the injected race");
        assert!(
            o.report.racy_words().contains(&lo),
            "{v} reported the wrong words"
        );
    }
}

#[test]
fn mmul_missing_sync_caught_and_variants_agree() {
    let mut expected: Option<Vec<u64>> = None;
    for v in VARIANTS {
        let o = detect(&mut MmulMissingSync::new(16, 4, 5), v);
        assert!(!o.report.is_race_free(), "{v} missed the missing-sync race");
        let words = rel(o.report.racy_words());
        match &expected {
            None => expected = Some(words),
            Some(e) => assert_eq!(&words, e, "{v} disagrees on racy words"),
        }
    }
}

#[test]
fn heat_missing_barrier_caught() {
    for v in VARIANTS {
        let o = detect(&mut HeatMissingBarrier::new(16, 16, 3, 4, 5), v);
        assert!(!o.report.is_race_free(), "{v} missed the missing barrier");
    }
}

#[test]
fn overlapping_merge_caught_with_exact_region() {
    let mut expected: Option<Vec<u64>> = None;
    for v in VARIANTS {
        let mut p = OverlappingMerge::new(64, 4, 5);
        let o = detect(&mut p, v);
        assert!(!o.report.is_race_free(), "{v} missed the overlapping merge");
        // The racy region is exactly the `overlap` shared output slots
        // (4 slots × 2 words each).
        let words = rel(o.report.racy_words());
        assert_eq!(words.len(), 8, "{v}: wrong racy region size");
        match &expected {
            None => expected = Some(words),
            Some(e) => assert_eq!(&words, e, "{v} disagrees"),
        }
    }
}

/// Fixing each bug removes all reports (the clean counterparts above), and
/// detection does not perturb results: outputs under detection match the
/// baseline run exactly (identical instruction streams).
#[test]
fn detection_does_not_perturb_results() {
    for name in NAMES {
        let mut base = Workload::by_name(name, Scale::Test);
        stint::run_baseline(&mut base);
        let mut det = Workload::by_name(name, Scale::Test);
        detect(&mut det, Variant::Stint);
        let same = match (&base, &det) {
            (Workload::Mmul(a), Workload::Mmul(b)) => a.result() == b.result(),
            (Workload::Sort(a), Workload::Sort(b)) => a.result() == b.result(),
            (Workload::Heat(a), Workload::Heat(b)) => a.result() == b.result(),
            (Workload::Fft(a), Workload::Fft(b)) => a.result() == b.result(),
            (Workload::Chol(a), Workload::Chol(b)) => a.factor() == b.factor(),
            (Workload::Stra(a), Workload::Stra(b)) => a.result() == b.result(),
            (Workload::Straz(a), Workload::Straz(b)) => a.result_rowmajor() == b.result_rowmajor(),
            _ => unreachable!(),
        };
        assert!(same, "{name}: detection changed the computed result");
    }
}
