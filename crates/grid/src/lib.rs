//! Race detection for **2-D grid computations** — the generalization the
//! paper sketches in Section 7:
//!
//! > "our design would work out of the box in other instances, such as race
//! > detector for pipelines or 2D grids, since it is still sufficient to
//! > store one reader and one writer for each memory location."
//!
//! A 2-D grid computation (pipelines, wavefront dynamic programming — cf.
//! Dimitrov, Vechev & Sarkar, SPAA 2015; Xu, Lee & Agrawal, PPoPP 2018)
//! executes a `rows × cols` grid of cells where cell `(i, j)` depends on its
//! north and west neighbours: `(i, j) ≺ (i', j')` iff `i ≤ i'` and
//! `j ≤ j'`. Reachability is therefore a coordinate comparison — no data
//! structure at all — and the whole access-history machinery (the bit-shadow
//! runtime coalescer, the interval treap, the word shadow) plugs in
//! unchanged through the [`Reachability`] trait.
//!
//! Cells are executed in row-major order (a valid sequential schedule) and
//! each cell is one *strand*.

use stint::{Detector, StintDetector, VanillaDetector};
use stint_sporder::{Reachability, StrandId};

/// Coordinate-based reachability for a `rows × cols` grid: strand ids encode
/// `(i, j)` as `i * cols + j`.
#[derive(Clone, Copy, Debug)]
pub struct GridReach {
    pub rows: u32,
    pub cols: u32,
}

impl GridReach {
    pub fn new(rows: usize, cols: usize) -> GridReach {
        assert!(rows > 0 && cols > 0);
        assert!((rows as u64) * (cols as u64) < u32::MAX as u64);
        GridReach {
            rows: rows as u32,
            cols: cols as u32,
        }
    }

    /// Strand id of cell `(i, j)`.
    #[inline]
    pub fn strand(&self, i: usize, j: usize) -> StrandId {
        debug_assert!(i < self.rows as usize && j < self.cols as usize);
        StrandId(i as u32 * self.cols + j as u32)
    }

    /// Cell coordinates of a strand id.
    #[inline]
    pub fn cell(&self, s: StrandId) -> (u32, u32) {
        (s.0 / self.cols, s.0 % self.cols)
    }
}

impl Reachability for GridReach {
    #[inline]
    fn series(&self, a: StrandId, b: StrandId) -> bool {
        if a == b {
            return false;
        }
        let (ai, aj) = self.cell(a);
        let (bi, bj) = self.cell(b);
        ai <= bi && aj <= bj
    }

    #[inline]
    fn parallel(&self, a: StrandId, b: StrandId) -> bool {
        if a == b {
            return false;
        }
        let (ai, aj) = self.cell(a);
        let (bi, bj) = self.cell(b);
        // Strictly incomparable under the coordinate-wise partial order.
        (ai < bi && aj > bj) || (ai > bi && aj < bj)
    }

    #[inline]
    fn left_of(&self, a: StrandId, b: StrandId) -> bool {
        if a == b {
            return false;
        }
        // Definition (paper §2): a ∥ b and a precedes b in the sequential
        // (here: row-major) order, or b ≺ a.
        (self.parallel(a, b) && a.0 < b.0) || self.series(b, a)
    }
}

/// Per-cell instrumentation context: the grid analogue of the `Cilk` trait's
/// memory hooks (there is no spawn/sync — the grid shape *is* the dag).
pub struct CellCtx<'a, R: Reachability, D: Detector<R>> {
    det: &'a mut D,
    reach: &'a R,
    strand: StrandId,
}

impl<R: Reachability, D: Detector<R>> CellCtx<'_, R, D> {
    #[inline]
    pub fn load(&mut self, addr: usize, bytes: usize) {
        self.det.load(self.strand, addr, bytes, self.reach);
    }
    #[inline]
    pub fn store(&mut self, addr: usize, bytes: usize) {
        self.det.store(self.strand, addr, bytes, self.reach);
    }
    #[inline]
    pub fn load_range(&mut self, addr: usize, bytes: usize) {
        self.det.load_range(self.strand, addr, bytes, self.reach);
    }
    #[inline]
    pub fn store_range(&mut self, addr: usize, bytes: usize) {
        self.det.store_range(self.strand, addr, bytes, self.reach);
    }
    #[inline]
    pub fn free(&mut self, addr: usize, bytes: usize) {
        self.det.free(self.strand, addr, bytes, self.reach);
    }
}

/// Execute a `rows × cols` grid program sequentially (row-major), feeding
/// the detector one strand per cell. Returns the detector.
pub fn run_grid<D, F>(rows: usize, cols: usize, mut cell: F, mut det: D) -> (D, GridReach)
where
    D: Detector<GridReach>,
    F: FnMut(usize, usize, &mut CellCtx<'_, GridReach, D>),
{
    let reach = GridReach::new(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            let strand = reach.strand(i, j);
            {
                let mut ctx = CellCtx {
                    det: &mut det,
                    reach: &reach,
                    strand,
                };
                cell(i, j, &mut ctx);
            }
            det.strand_end(strand, &reach);
        }
    }
    let last = reach.strand(rows - 1, cols - 1);
    det.finish(last, &reach);
    (det, reach)
}

/// Race detect a grid program with STINT's interval-treap access history.
///
/// ```
/// // A legal wavefront: cell (i, j) reads its north/west neighbours.
/// let dp = vec![0u64; 16];
/// let at = |i: usize, j: usize| dp.as_ptr() as usize + (i * 4 + j) * 8;
/// let report = stint_grid::detect_grid_stint(4, 4, |i, j, ctx| {
///     if i > 0 { ctx.load(at(i - 1, j), 8); }
///     if j > 0 { ctx.load(at(i, j - 1), 8); }
///     ctx.store(at(i, j), 8);
/// });
/// assert!(report.is_race_free());
/// ```
pub fn detect_grid_stint<F>(rows: usize, cols: usize, cell: F) -> stint::RaceReport
where
    F: FnMut(usize, usize, &mut CellCtx<'_, GridReach, StintDetector>),
{
    let det = StintDetector::new(stint::RaceReport::default());
    let (det, _) = run_grid(rows, cols, cell, det);
    det.report
}

/// Race detect a grid program with the vanilla word-granularity history.
pub fn detect_grid_vanilla<F>(rows: usize, cols: usize, cell: F) -> stint::RaceReport
where
    F: FnMut(usize, usize, &mut CellCtx<'_, GridReach, VanillaDetector>),
{
    let det = VanillaDetector::new(true, stint::RaceReport::default());
    let (det, _) = run_grid(rows, cols, cell, det);
    det.report
}

pub mod wavefront;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_axioms() {
        let g = GridReach::new(4, 5);
        let a = g.strand(1, 2);
        let b = g.strand(2, 3);
        let c = g.strand(0, 4);
        assert!(g.series(a, b));
        assert!(!g.series(b, a));
        assert!(!g.parallel(a, b));
        assert!(g.parallel(a, c)); // (1,2) vs (0,4): incomparable
        assert!(g.parallel(c, a));
        assert!(!g.series(a, a) && !g.parallel(a, a));
    }

    #[test]
    fn left_of_matches_definition() {
        let g = GridReach::new(4, 4);
        let a = g.strand(0, 3);
        let b = g.strand(1, 1);
        // a ∥ b, a earlier in row-major: a left of b, not vice versa.
        assert!(g.parallel(a, b));
        assert!(g.left_of(a, b));
        assert!(!g.left_of(b, a));
        // series successor is left of its predecessor.
        let p = g.strand(0, 0);
        let q = g.strand(2, 2);
        assert!(g.series(p, q));
        assert!(g.left_of(q, p));
        assert!(!g.left_of(p, q));
    }

    #[test]
    fn wavefront_stencil_is_race_free() {
        // dp[i][j] reads dp[i-1][j], dp[i][j-1], dp[i-1][j-1]: the canonical
        // legal wavefront pattern.
        let (n, m) = (8, 9);
        let dp = vec![0u64; n * m];
        let base = dp.as_ptr() as usize;
        let at = |i: usize, j: usize| base + (i * m + j) * 8;
        let report = detect_grid_stint(n, m, |i, j, ctx| {
            if i > 0 {
                ctx.load(at(i - 1, j), 8);
            }
            if j > 0 {
                ctx.load(at(i, j - 1), 8);
            }
            if i > 0 && j > 0 {
                ctx.load(at(i - 1, j - 1), 8);
            }
            ctx.store(at(i, j), 8);
        });
        assert!(report.is_race_free(), "{:?}", report.races().first());
    }

    #[test]
    fn anti_dependency_violation_races() {
        // Cell (i, j) also reads dp[i+1][j-1] — a south-west neighbour,
        // which is parallel to (i, j): racy with that cell's write.
        let (n, m) = (6, 6);
        let dp = vec![0u64; n * m];
        let base = dp.as_ptr() as usize;
        let at = |i: usize, j: usize| base + (i * m + j) * 8;
        let report = detect_grid_stint(n, m, |i, j, ctx| {
            if i + 1 < n && j > 0 {
                ctx.load(at(i + 1, j - 1), 8); // BUG
            }
            ctx.store(at(i, j), 8);
        });
        assert!(!report.is_race_free());
    }

    #[test]
    fn vanilla_and_stint_agree_on_grid() {
        let (n, m) = (5, 7);
        let dp = vec![0u64; n * m];
        let base = dp.as_ptr() as usize;
        let at = |i: usize, j: usize| base + (i * m + j) * 8;
        let cellfn = |i: usize, j: usize, l: &mut dyn FnMut(usize), s: &mut dyn FnMut(usize)| {
            if i > 0 {
                l(at(i - 1, j));
            }
            if j > 1 {
                l(at(i, j - 2)); // skip-one read: still legal (series)
            }
            if i + 1 < n && j + 2 < m {
                l(at(i + 1, j + 2)); // illegal: (i+1, j+2) not ≺ (i, j)...
            }
            s(at(i, j));
        };
        // Note: reading (i+1, j+2) is a *forward* read — (i,j) ≺ (i+1,j+2),
        // so the read races with the later write? No: the read strand (i,j)
        // precedes the writer (i+1,j+2) in series — NOT a race. Use a
        // genuinely parallel cell instead: (i+1, j-1).
        let _ = cellfn;
        let run_words = |stint: bool| {
            let f = |i: usize, j: usize, loads: &mut Vec<usize>, stores: &mut Vec<usize>| {
                if i + 1 < n && j > 0 {
                    loads.push(at(i + 1, j - 1));
                }
                stores.push(at(i, j));
            };
            let mut loads = Vec::new();
            let mut stores = Vec::new();
            let cell = move |i: usize, j: usize, ctx: &mut dyn FnMut(bool, usize)| {
                loads.clear();
                stores.clear();
                f(i, j, &mut loads, &mut stores);
                for &a in &loads {
                    ctx(false, a);
                }
                for &a in &stores {
                    ctx(true, a);
                }
            };
            let mut cell = cell;
            if stint {
                detect_grid_stint(n, m, |i, j, ctx| {
                    cell(i, j, &mut |w, a| {
                        if w {
                            ctx.store(a, 8)
                        } else {
                            ctx.load(a, 8)
                        }
                    })
                })
                .racy_words()
            } else {
                detect_grid_vanilla(n, m, |i, j, ctx| {
                    cell(i, j, &mut |w, a| {
                        if w {
                            ctx.store(a, 8)
                        } else {
                            ctx.load(a, 8)
                        }
                    })
                })
                .racy_words()
            }
        };
        let a = run_words(true);
        let b = run_words(false);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
