//! Real 2-D grid applications: wavefront dynamic programming
//! (Smith–Waterman local alignment) and a software pipeline — the two
//! program classes the paper names for its Section 7 generalization.

use crate::{detect_grid_stint, CellCtx};
use stint::{Detector, RaceReport};

/// Smith–Waterman local alignment over byte sequences `a` (rows) and `b`
/// (columns) with linear gap penalty. Cell `(i, j)` reads its NW/N/W
/// neighbours and writes `h[i][j]` — the canonical wavefront.
pub struct SmithWaterman {
    pub a: Vec<u8>,
    pub b: Vec<u8>,
    /// Scoring matrix, (len(a)+1) × (len(b)+1), row-major.
    pub h: Vec<i32>,
    /// Inject a bug: cells also read their *south-west* neighbour, which is
    /// logically parallel — a race.
    pub buggy: bool,
}

impl SmithWaterman {
    pub fn new(a: &[u8], b: &[u8]) -> SmithWaterman {
        SmithWaterman {
            h: vec![0; (a.len() + 1) * (b.len() + 1)],
            a: a.to_vec(),
            b: b.to_vec(),
            buggy: false,
        }
    }

    fn dims(&self) -> (usize, usize) {
        (self.a.len() + 1, self.b.len() + 1)
    }

    /// Run under STINT with grid reachability; returns the race report.
    /// The scoring matrix is computed for real as a side effect.
    pub fn detect(&mut self) -> RaceReport {
        let (rows, cols) = self.dims();
        let base = self.h.as_ptr() as usize;
        let h = &mut self.h;
        let a = &self.a;
        let b = &self.b;
        let buggy = self.buggy;
        detect_grid_stint(rows, cols, move |i, j, ctx| {
            cell(h, base, a, b, cols, i, j, buggy, ctx)
        })
    }

    /// Best local-alignment score.
    pub fn score(&self) -> i32 {
        self.h.iter().copied().max().unwrap_or(0)
    }

    /// Serial reference (no instrumentation) for verification.
    pub fn reference_score(a: &[u8], b: &[u8]) -> i32 {
        let (rows, cols) = (a.len() + 1, b.len() + 1);
        let mut h = vec![0i32; rows * cols];
        for i in 1..rows {
            for j in 1..cols {
                let m = if a[i - 1] == b[j - 1] { 2 } else { -1 };
                let v = (h[(i - 1) * cols + j - 1] + m)
                    .max(h[(i - 1) * cols + j] - 1)
                    .max(h[i * cols + j - 1] - 1)
                    .max(0);
                h[i * cols + j] = v;
            }
        }
        h.into_iter().max().unwrap_or(0)
    }
}

#[allow(clippy::too_many_arguments)]
fn cell<R: stint_sporder::Reachability, D: Detector<R>>(
    h: &mut [i32],
    base: usize,
    a: &[u8],
    b: &[u8],
    cols: usize,
    i: usize,
    j: usize,
    buggy: bool,
    ctx: &mut CellCtx<'_, R, D>,
) {
    let at = |r: usize, c: usize| base + (r * cols + c) * 4;
    if i == 0 || j == 0 {
        ctx.store(at(i, j), 4);
        h[i * cols + j] = 0;
        return;
    }
    ctx.load(at(i - 1, j - 1), 4);
    ctx.load(at(i - 1, j), 4);
    ctx.load(at(i, j - 1), 4);
    if buggy && i + 1 < a.len() + 1 && j > 0 {
        // BUG: south-west neighbour is parallel to (i, j).
        ctx.load(at(i + 1, j - 1), 4);
    }
    ctx.store(at(i, j), 4);
    let m = if a[i - 1] == b[j - 1] { 2 } else { -1 };
    let v = (h[(i - 1) * cols + j - 1] + m)
        .max(h[(i - 1) * cols + j] - 1)
        .max(h[i * cols + j - 1] - 1)
        .max(0);
    h[i * cols + j] = v;
}

/// A software pipeline: `stages` filters over a stream of `items`. Stage `s`
/// of item `t` reads the buffer cell written by stage `s-1` of item `t` and
/// its own state from item `t-1` — i.e. exactly the 2-D grid dependence
/// structure (rows = items, cols = stages, like Cilk-P pipelines).
pub struct Pipeline {
    pub items: usize,
    pub stages: usize,
    /// `buf[t][s]`: output of stage `s` on item `t`.
    pub buf: Vec<u64>,
    /// Per-stage running state, updated serially down each column.
    pub state: Vec<u64>,
    /// Inject a bug: stage `s` peeks at the *next* item's stage-`s-1` output
    /// (`buf[t+1][s-1]`), which is parallel to cell `(t, s)`.
    pub buggy: bool,
}

impl Pipeline {
    pub fn new(items: usize, stages: usize) -> Pipeline {
        Pipeline {
            items,
            stages,
            buf: vec![0; items * stages],
            state: vec![0xABCD; stages],
            buggy: false,
        }
    }

    pub fn detect(&mut self) -> RaceReport {
        let (items, stages) = (self.items, self.stages);
        let bbase = self.buf.as_ptr() as usize;
        let sbase = self.state.as_ptr() as usize;
        let buf = &mut self.buf;
        let state = &mut self.state;
        let buggy = self.buggy;
        // Grid: rows = items (t), cols = stages (s).
        detect_grid_stint(items, stages, move |t, s, ctx| {
            let b_at = |t: usize, s: usize| bbase + (t * stages + s) * 8;
            // Read the previous stage's output for this item (west-ish: the
            // dependence (t, s-1) ≺ (t, s) holds since t ≤ t, s-1 ≤ s).
            let input = if s == 0 {
                t as u64
            } else {
                ctx.load(b_at(t, s - 1), 8);
                buf[t * stages + s - 1]
            };
            if buggy && t + 1 < items && s > 0 {
                // BUG: peeks at the next item's previous-stage slot, which
                // is written by cell (t+1, s-1) — parallel to (t, s).
                ctx.load(b_at(t + 1, s - 1), 8);
            }
            // Serial per-stage state: written by (t-1, s), read by (t, s) —
            // legal since (t-1, s) ≺ (t, s).
            ctx.load(sbase + s * 8, 8);
            ctx.store(sbase + s * 8, 8);
            state[s] = state[s]
                .wrapping_mul(6364136223846793005)
                .wrapping_add(input);
            ctx.store(b_at(t, s), 8);
            buf[t * stages + s] = state[s] ^ (input << 1);
        })
    }

    /// Serial reference of the final buffer (no instrumentation).
    pub fn reference(items: usize, stages: usize) -> Vec<u64> {
        let mut buf = vec![0u64; items * stages];
        let mut state = vec![0xABCDu64; stages];
        for t in 0..items {
            for s in 0..stages {
                let input = if s == 0 {
                    t as u64
                } else {
                    buf[t * stages + s - 1]
                };
                state[s] = state[s]
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(input);
                buf[t * stages + s] = state[s] ^ (input << 1);
            }
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridReach;

    #[test]
    fn smith_waterman_race_free_and_correct() {
        let a = b"GATTACAGATTACAGGGACT";
        let b = b"GCATGCGATTACATTTACGT";
        let mut sw = SmithWaterman::new(a, b);
        let report = sw.detect();
        assert!(report.is_race_free(), "{:?}", report.races().first());
        assert_eq!(sw.score(), SmithWaterman::reference_score(a, b));
        assert!(sw.score() > 0, "related sequences must align");
    }

    #[test]
    fn smith_waterman_buggy_races() {
        let mut sw = SmithWaterman::new(b"ACGTACGT", b"TGCATGCA");
        sw.buggy = true;
        let report = sw.detect();
        assert!(!report.is_race_free());
        // Every report must involve genuinely parallel cells.
        let g = GridReach::new(sw.a.len() + 1, sw.b.len() + 1);
        for r in report.races() {
            assert!(
                stint_sporder::Reachability::parallel(&g, r.prev, r.cur),
                "reported race between non-parallel cells"
            );
        }
    }

    #[test]
    fn pipeline_race_free_and_correct() {
        let mut p = Pipeline::new(12, 5);
        let report = p.detect();
        assert!(report.is_race_free(), "{:?}", report.races().first());
        assert_eq!(p.buf, Pipeline::reference(12, 5));
    }

    #[test]
    fn pipeline_peeking_races() {
        let mut p = Pipeline::new(10, 4);
        p.buggy = true;
        assert!(!p.detect().is_race_free());
    }
}
