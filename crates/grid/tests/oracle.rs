//! Differential test of the grid detector against a brute-force all-pairs
//! oracle: random per-cell access patterns over a small word space, compared
//! on the exact set of racy words. This empirically validates the paper's
//! Section 7 claim that one stored reader + one stored writer per location
//! suffice for 2-D grid computations, under the row-major sequential
//! schedule and the leftmost-reader replacement rule.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;
use stint_grid::{detect_grid_stint, detect_grid_vanilla, GridReach};
use stint_sporder::Reachability;

#[derive(Clone, Copy)]
struct Acc {
    write: bool,
    word: u64,
    len: u64,
    coalesced: bool,
}

/// Random grid program: per cell, a few random accesses.
fn random_cells(rng: &mut StdRng, rows: usize, cols: usize, space: u64) -> Vec<Vec<Acc>> {
    (0..rows * cols)
        .map(|_| {
            let k = rng.random_range(0..4);
            (0..k)
                .map(|_| Acc {
                    write: rng.random_bool(0.45),
                    word: rng.random_range(0..space),
                    len: rng.random_range(1..6),
                    coalesced: rng.random_bool(0.5),
                })
                .collect()
        })
        .collect()
}

/// Brute force: all pairs of cells, all pairs of conflicting accesses.
fn oracle(cells: &[Vec<Acc>], g: &GridReach) -> Vec<u64> {
    let n = cells.len() as u32;
    let mut racy = BTreeSet::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if !g.parallel(stint_sporder::StrandId(a), stint_sporder::StrandId(b)) {
                continue;
            }
            for x in &cells[a as usize] {
                for y in &cells[b as usize] {
                    if !x.write && !y.write {
                        continue;
                    }
                    let lo = x.word.max(y.word);
                    let hi = (x.word + x.len).min(y.word + y.len);
                    for w in lo..hi {
                        racy.insert(w);
                    }
                }
            }
        }
    }
    racy.into_iter().collect()
}

fn run_case(rows: usize, cols: usize, cells: &[Vec<Acc>]) {
    let g = GridReach::new(rows, cols);
    let expected = oracle(cells, &g);
    let drive = |ctx_load: &mut dyn FnMut(bool, bool, usize, usize), i: usize, j: usize| {
        for a in &cells[i * cols + j] {
            ctx_load(
                a.write,
                a.coalesced,
                (a.word * 4) as usize,
                (a.len * 4) as usize,
            );
        }
    };
    let stint_words = detect_grid_stint(rows, cols, |i, j, ctx| {
        drive(
            &mut |w, co, addr, bytes| match (w, co) {
                (true, true) => ctx.store_range(addr, bytes),
                (true, false) => ctx.store(addr, bytes),
                (false, true) => ctx.load_range(addr, bytes),
                (false, false) => ctx.load(addr, bytes),
            },
            i,
            j,
        )
    })
    .racy_words();
    assert_eq!(stint_words, expected, "STINT vs oracle on {rows}x{cols}");
    let vanilla_words = detect_grid_vanilla(rows, cols, |i, j, ctx| {
        drive(
            &mut |w, co, addr, bytes| match (w, co) {
                (true, true) => ctx.store_range(addr, bytes),
                (true, false) => ctx.store(addr, bytes),
                (false, true) => ctx.load_range(addr, bytes),
                (false, false) => ctx.load(addr, bytes),
            },
            i,
            j,
        )
    })
    .racy_words();
    assert_eq!(
        vanilla_words, expected,
        "vanilla vs oracle on {rows}x{cols}"
    );
}

#[test]
fn random_grids_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0x6121D);
    for round in 0..150 {
        let rows = rng.random_range(1..8);
        let cols = rng.random_range(1..8);
        let cells = random_cells(&mut rng, rows, cols, 24);
        run_case(rows, cols, &cells);
        let _ = round;
    }
}

#[test]
fn degenerate_grids_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD0D0);
    // 1×n and n×1 grids are totally ordered: never any race.
    for _ in 0..40 {
        let n = rng.random_range(1..12);
        let cells = random_cells(&mut rng, 1, n, 12);
        let g = GridReach::new(1, n);
        assert!(oracle(&cells, &g).is_empty(), "1xN grid cannot race");
        run_case(1, n, &cells);
        let cells = random_cells(&mut rng, n, 1, 12);
        run_case(n, 1, &cells);
    }
}

#[test]
fn antichain_heavy_grids_match_oracle() {
    // Tall-thin and wide grids maximize antichains (many parallel pairs):
    // the stress case for the single-reader-slot policy.
    let mut rng = StdRng::seed_from_u64(0xA57A);
    for _ in 0..60 {
        let cells = random_cells(&mut rng, 12, 2, 10);
        run_case(12, 2, &cells);
        let cells = random_cells(&mut rng, 2, 12, 10);
        run_case(2, 12, &cells);
    }
}
