//! The bit hashmap used for runtime coalescing (paper Section 3.2).
//!
//! While a strand executes, every access sets the bits of the 4-byte words it
//! touches; coalesced hooks set whole bit ranges at once with bit-level
//! parallelism. When the strand ends, [`BitShadow::extract_and_clear`]
//! returns the *maximal disjoint word intervals* covered by set bits — this
//! single step performs the paper's spatial coalescing (adjacent and
//! overlapping accesses merge), temporal coalescing and deduplication
//! (repeated accesses set the same bits once).
//!
//! The table is two-level: a [`PageMap`] from chunk number to a lazily
//! allocated chunk of 1024 `u64` bitmap groups (one chunk covers 2^16 words =
//! 256 KiB of program data). A dirty vector remembers every bitmap group that
//! became non-zero during the strand, so extraction and clearing cost
//! O(groups touched · log) — independent of how much of the table is
//! allocated. (The `log` is the sort that puts the intervals in address
//! order; the paper's "vectors … to remember indices" serve the same role.)

use crate::pagemap::PageMap;
use crate::WordIv;
use stint_faults::{DetectorError, Resource};

// Observability (no-ops costing one relaxed load while `stint-obs` is
// disabled).
static OBS_CHUNK_ALLOCS: stint_obs::Counter = stint_obs::Counter::new("shadow.chunk_allocs");
static OBS_FILTER_ELISIONS: stint_obs::Counter = stint_obs::Counter::new("shadow.filter_elisions");
static OBS_BIT_BYTES: stint_obs::Gauge = stint_obs::Gauge::new("shadow.bit_bytes");

/// log2 of bitmap groups per chunk.
const GROUPS_PER_CHUNK_BITS: u32 = 10;
const GROUPS_PER_CHUNK: usize = 1 << GROUPS_PER_CHUNK_BITS;

/// Sentinel slot meaning "chunk could not be allocated; drop these bits".
///
/// Unlike [`crate::WordShadow`]'s sink page, a shared chunk would be
/// *unsound* here: [`BitShadow::extract_and_clear`] merges dirty groups into
/// intervals, and aliased groups from different chunks would merge into
/// intervals the program never accessed. Dropping the bits instead only ever
/// *under*-reports accesses past the exhaustion point — the documented
/// "sound up to that point" degradation.
const DROPPED: u32 = u32::MAX;

/// The runtime-coalescing bit table. One instance tracks one access kind
/// (the detector keeps separate read and write instances, as in the paper).
///
/// ```
/// use stint_shadow::BitShadow;
///
/// let mut bits = BitShadow::new();
/// bits.set_range(10, 14);  // words
/// bits.set_range(14, 20);  // adjacent: coalesces
/// bits.set_range(12, 13);  // duplicate: deduplicates
/// bits.set_range(100, 101);
/// let mut intervals = Vec::new();
/// bits.extract_and_clear(&mut intervals);
/// assert_eq!(intervals, [(10, 20), (100, 101)]);
/// assert!(bits.is_clear());
/// ```
pub struct BitShadow {
    map: PageMap,
    chunks: Vec<Box<[u64]>>,
    /// Global bitmap-group ids (`word >> 6`) that became non-zero during the
    /// current strand, in first-touch order.
    dirty: Vec<u64>,
    /// Cache of the last (chunk_no, slot) to skip the map on sequential hits.
    last_chunk: (u64, u32),
    /// Total `set_range` invocations (hook-level operations).
    pub set_calls: u64,
    /// Total bitmap groups made dirty across all strands.
    pub groups_touched: u64,
    /// Maximum number of chunks that may be allocated (`u64::MAX` when
    /// unbounded; set by a budget or a `shadow-pages` fault).
    chunk_cap: u64,
    /// Allocation index that should fail with simulated OOM (`shadow-oom-at`
    /// fault; `u64::MAX` when disabled).
    oom_at: u64,
    /// First failure, recorded once; later unallocatable bits are dropped.
    exhausted: Option<DetectorError>,
    /// Bytes last reported to the `shadow.bit_bytes` gauge (zero while obs
    /// is disabled — `Gauge::reconcile` no-ops).
    owned_bytes: u64,
}

impl Default for BitShadow {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for BitShadow {
    fn drop(&mut self) {
        OBS_BIT_BYTES.reconcile(&mut self.owned_bytes, 0);
    }
}

/// Hook-side filter for redundant [`BitShadow::set_range`] calls.
///
/// Within one strand the bit table is monotone — bits only accumulate until
/// the next [`BitShadow::extract_and_clear`] — so a range covered by an
/// earlier `set_range` of the same strand can skip the table entirely. The
/// filter keeps the last two distinct set ranges (two, because inner loops
/// commonly alternate between two arrays); a recorded range that overlaps or
/// abuts the most recent entry merges into it, so sequential scans collapse
/// into one growing entry. Must be [`reset`](SetFilter::reset) whenever the
/// table is extracted or cleared.
///
/// The filter is self-regulating: per-workload hit rates are strongly bimodal
/// (a phase either re-touches whole ranges constantly or essentially never),
/// so it evaluates itself every [`TRIAL`](SetFilter::TRIAL) probes. A window
/// with a hit rate below 1/4 switches the filter off for a penalty period
/// (doubling per consecutive failure, capped), reducing the per-hook cost on
/// filter-hostile traffic to one predictable branch; the periodic re-trial
/// lets it come back when the workload enters a re-touching phase.
#[derive(Clone, Copy, Debug)]
pub struct SetFilter {
    ranges: [(u64, u64); 2],
    /// `set_range` calls skipped because the range was already covered
    /// (cumulative over the whole run, for statistics).
    pub hits: u64,
    /// Probes and hits in the current evaluation window.
    w_probes: u32,
    w_hits: u32,
    /// Remaining `covers` calls to wave through while switched off.
    skip: u32,
    /// Length of the next off period; doubles per consecutive failed trial.
    penalty: u32,
}

impl Default for SetFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl SetFilter {
    /// Evaluation-window length. Long enough to see past a cold start, short
    /// enough that a hostile phase pays a negligible fraction of its hooks.
    pub const TRIAL: u32 = 4096;
    /// Shortest off period after a failed trial.
    pub const MIN_PENALTY: u32 = 4 * Self::TRIAL;
    /// Backoff cap: even permanently hostile traffic re-trials this often.
    pub const MAX_PENALTY: u32 = 64 * Self::TRIAL;

    pub const fn new() -> Self {
        SetFilter {
            // (1, 0) is empty: it covers nothing.
            ranges: [(1, 0); 2],
            hits: 0,
            w_probes: 0,
            w_hits: 0,
            skip: 0,
            penalty: Self::MIN_PENALTY,
        }
    }

    /// True if every word of `[lo, hi)` is known to be set already (the
    /// caller may skip `set_range`).
    #[inline]
    pub fn covers(&mut self, lo: u64, hi: u64) -> bool {
        if self.skip > 0 {
            self.skip -= 1;
            return false;
        }
        self.w_probes += 1;
        let mut hit = false;
        for (a, b) in self.ranges {
            if lo >= a && hi <= b {
                hit = true;
                break;
            }
        }
        if hit {
            self.hits += 1;
            self.w_hits += 1;
            OBS_FILTER_ELISIONS.incr();
        }
        if self.w_probes == Self::TRIAL {
            if self.w_hits * 4 < Self::TRIAL {
                self.skip = self.penalty;
                self.penalty = (self.penalty * 2).min(Self::MAX_PENALTY);
            } else {
                self.penalty = Self::MIN_PENALTY;
            }
            self.w_probes = 0;
            self.w_hits = 0;
        }
        hit
    }

    /// Record that `[lo, hi)` has been set (callers pass non-empty ranges).
    #[inline]
    pub fn record(&mut self, lo: u64, hi: u64) {
        if self.skip > 0 {
            return;
        }
        let (a, b) = self.ranges[0];
        if lo <= b && hi >= a {
            // Overlapping or abutting the newest entry: their union is fully
            // set, so grow it in place.
            self.ranges[0] = (a.min(lo), b.max(hi));
        } else {
            self.ranges[1] = self.ranges[0];
            self.ranges[0] = (lo, hi);
        }
    }

    /// Forget the ranges (the table was extracted or cleared). The trial
    /// state persists — on/off is a property of the traffic, not the strand.
    #[inline]
    pub fn reset(&mut self) {
        self.ranges = [(1, 0); 2];
    }
}

impl BitShadow {
    /// Create an empty table. Samples the installed fault plan (if any), so
    /// plans must be installed before the structures they should affect are
    /// built.
    pub fn new() -> Self {
        let mut b = BitShadow {
            map: PageMap::new(),
            chunks: Vec::new(),
            dirty: Vec::new(),
            last_chunk: (u64::MAX, 0),
            set_calls: 0,
            groups_touched: 0,
            chunk_cap: u64::MAX,
            oom_at: u64::MAX,
            exhausted: None,
            owned_bytes: 0,
        };
        if stint_faults::is_active() {
            if let Some(cap) = stint_faults::shadow_page_cap() {
                b.chunk_cap = cap;
            }
            if let Some(at) = stint_faults::shadow_oom_at() {
                b.oom_at = at;
            }
        }
        b
    }

    /// Number of chunks allocated (they persist across strands).
    pub fn chunks_allocated(&self) -> usize {
        self.chunks.len()
    }

    /// Total heap bytes owned: chunk bitmaps, the chunk directory vec, the
    /// dirty list and the first-level map.
    pub fn heap_bytes(&self) -> u64 {
        (self.chunks.len() * GROUPS_PER_CHUNK * 8
            + self.chunks.capacity() * std::mem::size_of::<Box<[u64]>>()
            + self.dirty.capacity() * std::mem::size_of::<u64>()) as u64
            + self.map.heap_bytes()
    }

    /// Publish the live footprint to the `shadow.bit_bytes` gauge (no-op
    /// while obs is disabled; called from the cold allocation path and after
    /// dirty-list growth at extraction).
    #[inline]
    fn note_mem(&mut self) {
        let bytes = self.heap_bytes();
        OBS_BIT_BYTES.reconcile(&mut self.owned_bytes, bytes);
    }

    /// Cap chunk allocations at `chunks` (a `--max-shadow-mb` budget
    /// translated to chunks). A fault-injected cap, if tighter, wins.
    pub fn set_chunk_cap(&mut self, chunks: u64) {
        self.chunk_cap = self.chunk_cap.min(chunks);
    }

    /// Shadow bytes one chunk costs (for budget math).
    pub const BYTES_PER_CHUNK: u64 = (GROUPS_PER_CHUNK * 8) as u64;

    /// The first allocation failure, if any: bits for words past this point
    /// were dropped and the run's verdict is sound only up to it.
    pub fn exhausted(&self) -> Option<DetectorError> {
        self.exhausted.clone()
    }

    #[inline]
    fn chunk_slot(&mut self, chunk_no: u64) -> u32 {
        if self.last_chunk.0 == chunk_no {
            return self.last_chunk.1;
        }
        if let Some(slot) = self.map.get(chunk_no) {
            self.last_chunk = (chunk_no, slot);
            return slot;
        }
        self.chunk_slot_alloc(chunk_no)
    }

    /// Miss path: allocate the chunk, or record exhaustion and report
    /// [`DROPPED`] when the cap is reached or the simulated OOM fires.
    #[cold]
    fn chunk_slot_alloc(&mut self, chunk_no: u64) -> u32 {
        let allocs = self.chunks.len() as u64;
        let capped = allocs >= self.chunk_cap;
        if capped || allocs == self.oom_at {
            if self.exhausted.is_none() {
                stint_obs::event("fault.shadow_chunk_exhausted");
                self.exhausted = Some(DetectorError::ResourceExhausted {
                    resource: Resource::ShadowPages,
                    limit: allocs,
                    at_word: Some(chunk_no << (GROUPS_PER_CHUNK_BITS + 6)),
                });
            }
            self.last_chunk = (chunk_no, DROPPED);
            return DROPPED;
        }
        OBS_CHUNK_ALLOCS.incr();
        let chunks = &mut self.chunks;
        let slot = self.map.get_or_insert_with(chunk_no, || {
            let idx = chunks.len() as u32;
            chunks.push(vec![0u64; GROUPS_PER_CHUNK].into_boxed_slice());
            idx
        });
        self.last_chunk = (chunk_no, slot);
        self.note_mem();
        slot
    }

    /// Mark the words `[start, end)` as accessed in the current strand.
    #[inline]
    pub fn set_range(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        self.set_calls += 1;
        let first_group = start >> 6;
        let last_group = (end - 1) >> 6;
        for g in first_group..=last_group {
            let lo = if g == first_group { start & 63 } else { 0 };
            let hi = if g == last_group {
                ((end - 1) & 63) + 1
            } else {
                64
            };
            let mask = if hi - lo == 64 {
                !0u64
            } else {
                ((1u64 << (hi - lo)) - 1) << lo
            };
            let slot = self.chunk_slot(g >> GROUPS_PER_CHUNK_BITS);
            if slot == DROPPED {
                continue;
            }
            let cell = &mut self.chunks[slot as usize][(g as usize) & (GROUPS_PER_CHUNK - 1)];
            if *cell == 0 {
                self.dirty.push(g);
                self.groups_touched += 1;
            }
            *cell |= mask;
        }
    }

    /// True if no bits are currently set.
    pub fn is_clear(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Extract the maximal disjoint intervals of set words in ascending
    /// address order, appending them to `out`, and clear the table for the
    /// next strand. Cost: O(d log d) in the number of dirty groups.
    pub fn extract_and_clear(&mut self, out: &mut Vec<WordIv>) {
        if self.dirty.is_empty() {
            return;
        }
        self.dirty.sort_unstable();
        let mut open: Option<WordIv> = None;
        // Take dirty out of self to appease the borrow checker.
        let dirty = std::mem::take(&mut self.dirty);
        for &g in &dirty {
            let slot = self.chunk_slot(g >> GROUPS_PER_CHUNK_BITS) as usize;
            let cell = &mut self.chunks[slot][(g as usize) & (GROUPS_PER_CHUNK - 1)];
            let mut bits = *cell;
            *cell = 0;
            debug_assert_ne!(bits, 0, "dirty group with no bits set");
            let base = g << 6;
            while bits != 0 {
                let tz = bits.trailing_zeros() as u64;
                let run = ((!(bits >> tz)).trailing_zeros() as u64).min(64 - tz);
                let (rs, re) = (base + tz, base + tz + run);
                match open {
                    Some((s, e)) if e == rs => open = Some((s, re)),
                    Some(iv) => {
                        out.push(iv);
                        open = Some((rs, re));
                    }
                    None => open = Some((rs, re)),
                }
                if tz + run >= 64 {
                    bits = 0;
                } else {
                    bits &= !(((1u64 << run) - 1) << tz);
                }
            }
        }
        self.dirty = dirty;
        self.dirty.clear();
        if let Some(iv) = open {
            out.push(iv);
        }
        if stint_obs::is_enabled() {
            // The dirty list may have grown this strand; extraction is the
            // per-strand boundary where re-measuring it is cheap.
            self.note_mem();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn extract(b: &mut BitShadow) -> Vec<WordIv> {
        let mut v = Vec::new();
        b.extract_and_clear(&mut v);
        v
    }

    #[test]
    fn single_word() {
        let mut b = BitShadow::new();
        b.set_range(5, 6);
        assert_eq!(extract(&mut b), vec![(5, 6)]);
        assert!(b.is_clear());
        assert_eq!(extract(&mut b), vec![]);
    }

    #[test]
    fn adjacent_accesses_coalesce() {
        let mut b = BitShadow::new();
        b.set_range(10, 12);
        b.set_range(12, 20);
        b.set_range(8, 10);
        assert_eq!(extract(&mut b), vec![(8, 20)]);
    }

    #[test]
    fn duplicates_dedup() {
        let mut b = BitShadow::new();
        for _ in 0..100 {
            b.set_range(100, 108);
        }
        assert_eq!(extract(&mut b), vec![(100, 108)]);
        assert_eq!(b.set_calls, 100);
    }

    #[test]
    fn disjoint_stay_disjoint() {
        let mut b = BitShadow::new();
        b.set_range(0, 4);
        b.set_range(6, 8);
        b.set_range(100, 101);
        assert_eq!(extract(&mut b), vec![(0, 4), (6, 8), (100, 101)]);
    }

    #[test]
    fn run_across_group_boundary() {
        let mut b = BitShadow::new();
        b.set_range(60, 70); // spans groups 0 and 1
        assert_eq!(extract(&mut b), vec![(60, 70)]);
    }

    #[test]
    fn capped_chunks_drop_bits_soundly() {
        let mut b = BitShadow::new();
        b.set_chunk_cap(1);
        b.set_range(10, 20);
        assert!(b.exhausted().is_none());
        // A second chunk (words >= 2^16) cannot be allocated: its bits are
        // dropped, not aliased into an existing chunk.
        let far = 5u64 << 16;
        b.set_range(far, far + 8);
        let err = b.exhausted().expect("cap must be recorded");
        match err {
            DetectorError::ResourceExhausted {
                resource: Resource::ShadowPages,
                limit: 1,
                at_word: Some(at),
            } => assert_eq!(at, far),
            other => panic!("unexpected error {other:?}"),
        }
        // The tracked interval survives; the dropped one never appears.
        assert_eq!(extract(&mut b), vec![(10, 20)]);
        // Subsequent strands keep working within the allocated chunk.
        b.set_range(30, 32);
        b.set_range(far + 100, far + 200);
        assert_eq!(extract(&mut b), vec![(30, 32)]);
        assert_eq!(b.chunks_allocated(), 1);
    }

    #[test]
    fn run_across_chunk_boundary() {
        let mut b = BitShadow::new();
        let boundary = 1u64 << 16;
        b.set_range(boundary - 3, boundary + 3);
        assert_eq!(extract(&mut b), vec![(boundary - 3, boundary + 3)]);
        assert_eq!(b.chunks_allocated(), 2);
    }

    #[test]
    fn full_group_runs() {
        let mut b = BitShadow::new();
        b.set_range(0, 256); // four full groups
        assert_eq!(extract(&mut b), vec![(0, 256)]);
    }

    #[test]
    fn interleaved_bits_in_one_group() {
        let mut b = BitShadow::new();
        // every other word in [0, 16)
        for w in (0..16).step_by(2) {
            b.set_range(w, w + 1);
        }
        let ivs = extract(&mut b);
        assert_eq!(ivs.len(), 8);
        for (i, iv) in ivs.iter().enumerate() {
            assert_eq!(*iv, (2 * i as u64, 2 * i as u64 + 1));
        }
    }

    #[test]
    fn clears_between_strands() {
        let mut b = BitShadow::new();
        b.set_range(0, 100);
        extract(&mut b);
        b.set_range(50, 60);
        assert_eq!(extract(&mut b), vec![(50, 60)]);
    }

    #[test]
    fn out_of_order_insertion_sorted_output() {
        let mut b = BitShadow::new();
        b.set_range(1000, 1001);
        b.set_range(5, 6);
        b.set_range(70, 90);
        assert_eq!(extract(&mut b), vec![(5, 6), (70, 90), (1000, 1001)]);
    }

    #[test]
    fn set_filter_covers_and_merges() {
        let mut f = SetFilter::new();
        assert!(!f.covers(0, 1), "empty filter covers nothing");
        f.record(10, 20);
        assert!(f.covers(10, 20));
        assert!(f.covers(12, 15));
        assert!(!f.covers(5, 12));
        assert!(!f.covers(15, 25));
        // Abutting range merges into one growing entry.
        f.record(20, 30);
        assert!(f.covers(10, 30));
        // A distant range occupies the second slot; both stay covered.
        f.record(100, 110);
        assert!(f.covers(100, 110));
        assert!(f.covers(10, 30));
        // A third distinct range evicts the oldest.
        f.record(200, 210);
        assert!(f.covers(200, 210));
        assert!(f.covers(100, 110));
        assert!(!f.covers(10, 30));
        assert!(f.hits >= 6);
        f.reset();
        assert!(!f.covers(200, 210));
    }

    #[test]
    fn set_filter_backs_off_and_retrials() {
        let mut f = SetFilter::new();
        // All-miss traffic: every probe sees a fresh range.
        for i in 0..SetFilter::TRIAL as u64 {
            assert!(!f.covers(i * 100, i * 100 + 1));
            f.record(i * 100, i * 100 + 1);
        }
        // Off now: even a just-recorded range no longer reports covered, and
        // record calls are ignored for the whole penalty period.
        let last = (SetFilter::TRIAL as u64 - 1) * 100;
        assert!(!f.covers(last, last + 1));
        f.record(7, 9);
        assert!(!f.covers(7, 9));
        assert_eq!(f.hits, 0);
        // Burn the remaining penalty (two probes consumed above), then show
        // the re-trial window is live again: hits start counting.
        for _ in 0..SetFilter::MIN_PENALTY - 2 {
            assert!(!f.covers(0, 1));
        }
        f.record(0, 64);
        assert!(f.covers(3, 10));
        assert_eq!(f.hits, 1);

        // A hit-rich stream keeps the filter on across many windows.
        let mut f = SetFilter::new();
        f.record(0, 64);
        for _ in 0..4 * SetFilter::TRIAL {
            assert!(f.covers(3, 10));
        }
    }

    /// Randomized: a `BitShadow` guarded by the filter extracts the same
    /// intervals as an unguarded one.
    #[test]
    fn set_filter_differential() {
        let mut state: u64 = 0x5E7F_17E8;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..100 {
            let mut plain = BitShadow::new();
            let mut filtered = BitShadow::new();
            let mut f = SetFilter::new();
            for _ in 0..(next() % 30 + 1) {
                let lo = next() % 300;
                let hi = lo + next() % 50 + 1;
                plain.set_range(lo, hi);
                if !f.covers(lo, hi) {
                    filtered.set_range(lo, hi);
                    f.record(lo, hi);
                }
            }
            assert_eq!(extract(&mut plain), extract(&mut filtered));
        }
    }

    /// Randomized differential test against a BTreeSet of words.
    #[test]
    fn random_vs_reference() {
        let mut state: u64 = 0xABCDEF;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..200 {
            let mut b = BitShadow::new();
            let mut reference = BTreeSet::new();
            let n = (next() % 40 + 1) as usize;
            for _ in 0..n {
                let start = next() % 500;
                let len = next() % 80 + 1;
                b.set_range(start, start + len);
                for w in start..start + len {
                    reference.insert(w);
                }
            }
            // Expected intervals from the reference set.
            let mut want: Vec<WordIv> = Vec::new();
            for &w in &reference {
                match want.last_mut() {
                    Some((_, e)) if *e == w => *e = w + 1,
                    _ => want.push((w, w + 1)),
                }
            }
            assert_eq!(extract(&mut b), want);
        }
    }
}
