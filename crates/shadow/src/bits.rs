//! The bit hashmap used for runtime coalescing (paper Section 3.2).
//!
//! While a strand executes, every access sets the bits of the 4-byte words it
//! touches; coalesced hooks set whole bit ranges at once with bit-level
//! parallelism. When the strand ends, [`BitShadow::extract_and_clear`]
//! returns the *maximal disjoint word intervals* covered by set bits — this
//! single step performs the paper's spatial coalescing (adjacent and
//! overlapping accesses merge), temporal coalescing and deduplication
//! (repeated accesses set the same bits once).
//!
//! The table is two-level: a [`PageMap`] from chunk number to a lazily
//! allocated chunk of 1024 `u64` bitmap groups (one chunk covers 2^16 words =
//! 256 KiB of program data). A dirty vector remembers every bitmap group that
//! became non-zero during the strand, so extraction and clearing cost
//! O(groups touched · log) — independent of how much of the table is
//! allocated. (The `log` is the sort that puts the intervals in address
//! order; the paper's "vectors … to remember indices" serve the same role.)

use crate::pagemap::PageMap;
use crate::WordIv;

/// log2 of bitmap groups per chunk.
const GROUPS_PER_CHUNK_BITS: u32 = 10;
const GROUPS_PER_CHUNK: usize = 1 << GROUPS_PER_CHUNK_BITS;

/// The runtime-coalescing bit table. One instance tracks one access kind
/// (the detector keeps separate read and write instances, as in the paper).
///
/// ```
/// use stint_shadow::BitShadow;
///
/// let mut bits = BitShadow::new();
/// bits.set_range(10, 14);  // words
/// bits.set_range(14, 20);  // adjacent: coalesces
/// bits.set_range(12, 13);  // duplicate: deduplicates
/// bits.set_range(100, 101);
/// let mut intervals = Vec::new();
/// bits.extract_and_clear(&mut intervals);
/// assert_eq!(intervals, [(10, 20), (100, 101)]);
/// assert!(bits.is_clear());
/// ```
pub struct BitShadow {
    map: PageMap,
    chunks: Vec<Box<[u64]>>,
    /// Global bitmap-group ids (`word >> 6`) that became non-zero during the
    /// current strand, in first-touch order.
    dirty: Vec<u64>,
    /// Cache of the last (chunk_no, slot) to skip the map on sequential hits.
    last_chunk: (u64, u32),
    /// Total `set_range` invocations (hook-level operations).
    pub set_calls: u64,
    /// Total bitmap groups made dirty across all strands.
    pub groups_touched: u64,
}

impl Default for BitShadow {
    fn default() -> Self {
        Self::new()
    }
}

impl BitShadow {
    pub fn new() -> Self {
        BitShadow {
            map: PageMap::new(),
            chunks: Vec::new(),
            dirty: Vec::new(),
            last_chunk: (u64::MAX, 0),
            set_calls: 0,
            groups_touched: 0,
        }
    }

    /// Number of chunks allocated (they persist across strands).
    pub fn chunks_allocated(&self) -> usize {
        self.chunks.len()
    }

    #[inline]
    fn chunk_slot(&mut self, chunk_no: u64) -> u32 {
        if self.last_chunk.0 == chunk_no {
            return self.last_chunk.1;
        }
        let chunks = &mut self.chunks;
        let slot = self.map.get_or_insert_with(chunk_no, || {
            let idx = chunks.len() as u32;
            chunks.push(vec![0u64; GROUPS_PER_CHUNK].into_boxed_slice());
            idx
        });
        self.last_chunk = (chunk_no, slot);
        slot
    }

    /// Mark the words `[start, end)` as accessed in the current strand.
    #[inline]
    pub fn set_range(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        self.set_calls += 1;
        let first_group = start >> 6;
        let last_group = (end - 1) >> 6;
        for g in first_group..=last_group {
            let lo = if g == first_group { start & 63 } else { 0 };
            let hi = if g == last_group {
                ((end - 1) & 63) + 1
            } else {
                64
            };
            let mask = if hi - lo == 64 {
                !0u64
            } else {
                ((1u64 << (hi - lo)) - 1) << lo
            };
            let slot = self.chunk_slot(g >> GROUPS_PER_CHUNK_BITS) as usize;
            let cell = &mut self.chunks[slot][(g as usize) & (GROUPS_PER_CHUNK - 1)];
            if *cell == 0 {
                self.dirty.push(g);
                self.groups_touched += 1;
            }
            *cell |= mask;
        }
    }

    /// True if no bits are currently set.
    pub fn is_clear(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Extract the maximal disjoint intervals of set words in ascending
    /// address order, appending them to `out`, and clear the table for the
    /// next strand. Cost: O(d log d) in the number of dirty groups.
    pub fn extract_and_clear(&mut self, out: &mut Vec<WordIv>) {
        if self.dirty.is_empty() {
            return;
        }
        self.dirty.sort_unstable();
        let mut open: Option<WordIv> = None;
        // Take dirty out of self to appease the borrow checker.
        let dirty = std::mem::take(&mut self.dirty);
        for &g in &dirty {
            let slot = self.chunk_slot(g >> GROUPS_PER_CHUNK_BITS) as usize;
            let cell = &mut self.chunks[slot][(g as usize) & (GROUPS_PER_CHUNK - 1)];
            let mut bits = *cell;
            *cell = 0;
            debug_assert_ne!(bits, 0, "dirty group with no bits set");
            let base = g << 6;
            while bits != 0 {
                let tz = bits.trailing_zeros() as u64;
                let run = ((!(bits >> tz)).trailing_zeros() as u64).min(64 - tz);
                let (rs, re) = (base + tz, base + tz + run);
                match open {
                    Some((s, e)) if e == rs => open = Some((s, re)),
                    Some(iv) => {
                        out.push(iv);
                        open = Some((rs, re));
                    }
                    None => open = Some((rs, re)),
                }
                if tz + run >= 64 {
                    bits = 0;
                } else {
                    bits &= !(((1u64 << run) - 1) << tz);
                }
            }
        }
        self.dirty = dirty;
        self.dirty.clear();
        if let Some(iv) = open {
            out.push(iv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn extract(b: &mut BitShadow) -> Vec<WordIv> {
        let mut v = Vec::new();
        b.extract_and_clear(&mut v);
        v
    }

    #[test]
    fn single_word() {
        let mut b = BitShadow::new();
        b.set_range(5, 6);
        assert_eq!(extract(&mut b), vec![(5, 6)]);
        assert!(b.is_clear());
        assert_eq!(extract(&mut b), vec![]);
    }

    #[test]
    fn adjacent_accesses_coalesce() {
        let mut b = BitShadow::new();
        b.set_range(10, 12);
        b.set_range(12, 20);
        b.set_range(8, 10);
        assert_eq!(extract(&mut b), vec![(8, 20)]);
    }

    #[test]
    fn duplicates_dedup() {
        let mut b = BitShadow::new();
        for _ in 0..100 {
            b.set_range(100, 108);
        }
        assert_eq!(extract(&mut b), vec![(100, 108)]);
        assert_eq!(b.set_calls, 100);
    }

    #[test]
    fn disjoint_stay_disjoint() {
        let mut b = BitShadow::new();
        b.set_range(0, 4);
        b.set_range(6, 8);
        b.set_range(100, 101);
        assert_eq!(extract(&mut b), vec![(0, 4), (6, 8), (100, 101)]);
    }

    #[test]
    fn run_across_group_boundary() {
        let mut b = BitShadow::new();
        b.set_range(60, 70); // spans groups 0 and 1
        assert_eq!(extract(&mut b), vec![(60, 70)]);
    }

    #[test]
    fn run_across_chunk_boundary() {
        let mut b = BitShadow::new();
        let boundary = 1u64 << 16;
        b.set_range(boundary - 3, boundary + 3);
        assert_eq!(extract(&mut b), vec![(boundary - 3, boundary + 3)]);
        assert_eq!(b.chunks_allocated(), 2);
    }

    #[test]
    fn full_group_runs() {
        let mut b = BitShadow::new();
        b.set_range(0, 256); // four full groups
        assert_eq!(extract(&mut b), vec![(0, 256)]);
    }

    #[test]
    fn interleaved_bits_in_one_group() {
        let mut b = BitShadow::new();
        // every other word in [0, 16)
        for w in (0..16).step_by(2) {
            b.set_range(w, w + 1);
        }
        let ivs = extract(&mut b);
        assert_eq!(ivs.len(), 8);
        for (i, iv) in ivs.iter().enumerate() {
            assert_eq!(*iv, (2 * i as u64, 2 * i as u64 + 1));
        }
    }

    #[test]
    fn clears_between_strands() {
        let mut b = BitShadow::new();
        b.set_range(0, 100);
        extract(&mut b);
        b.set_range(50, 60);
        assert_eq!(extract(&mut b), vec![(50, 60)]);
    }

    #[test]
    fn out_of_order_insertion_sorted_output() {
        let mut b = BitShadow::new();
        b.set_range(1000, 1001);
        b.set_range(5, 6);
        b.set_range(70, 90);
        assert_eq!(extract(&mut b), vec![(5, 6), (70, 90), (1000, 1001)]);
    }

    /// Randomized differential test against a BTreeSet of words.
    #[test]
    fn random_vs_reference() {
        let mut state: u64 = 0xABCDEF;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..200 {
            let mut b = BitShadow::new();
            let mut reference = BTreeSet::new();
            let n = (next() % 40 + 1) as usize;
            for _ in 0..n {
                let start = next() % 500;
                let len = next() % 80 + 1;
                b.set_range(start, start + len);
                for w in start..start + len {
                    reference.insert(w);
                }
            }
            // Expected intervals from the reference set.
            let mut want: Vec<WordIv> = Vec::new();
            for &w in &reference {
                match want.last_mut() {
                    Some((_, e)) if *e == w => *e = w + 1,
                    _ => want.push((w, w + 1)),
                }
            }
            assert_eq!(extract(&mut b), want);
        }
    }
}
