//! The vanilla word-granularity access history ("shadow memory").
//!
//! Maps every 4-byte word to a [`WordEntry`] holding the strand ids of the
//! word's *last writer* and *leftmost reader* — the two accessors that
//! suffice for sequential race detection of fork-join programs
//! [Feng & Leiserson 1997]. The structure is the paper's "optimized two-level
//! page-table-like hashmap": the word's page number indexes a [`PageMap`],
//! pages are dense arrays allocated lazily on first touch.
//!
//! The race-checking *logic* lives in the detector crate; this type only
//! provides fast per-word and per-range access to the entries, so that the
//! same storage serves the `vanilla`, `compiler` and `comp+rts` variants.

use crate::pagemap::PageMap;

/// Sentinel strand id meaning "no recorded accessor".
pub const NO_STRAND: u32 = u32::MAX;

/// Words per shadow page (16 KiB of program data per page).
const PAGE_BITS: u32 = 12;
const PAGE_WORDS: usize = 1 << PAGE_BITS;

/// Shadow state of one 4-byte word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WordEntry {
    /// Strand id of the last writer (sequential order), or [`NO_STRAND`].
    pub writer: u32,
    /// Strand id of the leftmost reader, or [`NO_STRAND`].
    pub reader: u32,
}

impl WordEntry {
    pub const EMPTY: WordEntry = WordEntry {
        writer: NO_STRAND,
        reader: NO_STRAND,
    };
}

/// Two-level word-granularity shadow memory.
pub struct WordShadow {
    map: PageMap,
    pages: Vec<Box<[WordEntry]>>,
    /// Number of individual word operations served (for the paper's
    /// `hash ops` column in Figure 8).
    pub ops: u64,
}

impl Default for WordShadow {
    fn default() -> Self {
        Self::new()
    }
}

impl WordShadow {
    pub fn new() -> Self {
        WordShadow {
            map: PageMap::new(),
            pages: Vec::new(),
            ops: 0,
        }
    }

    /// Number of shadow pages allocated.
    pub fn pages_allocated(&self) -> usize {
        self.pages.len()
    }

    /// Bytes of shadow memory allocated (second level only).
    pub fn shadow_bytes(&self) -> usize {
        self.pages.len() * PAGE_WORDS * std::mem::size_of::<WordEntry>()
    }

    #[inline]
    fn page_slot(&mut self, page_no: u64) -> usize {
        let pages = &mut self.pages;
        self.map.get_or_insert_with(page_no, || {
            let idx = pages.len() as u32;
            pages.push(vec![WordEntry::EMPTY; PAGE_WORDS].into_boxed_slice());
            idx
        }) as usize
    }

    /// Mutable access to the entry of `word` (allocating its page lazily).
    /// Counts as one shadow operation.
    #[inline]
    pub fn entry_mut(&mut self, word: u64) -> &mut WordEntry {
        self.ops += 1;
        let slot = self.page_slot(word >> PAGE_BITS);
        &mut self.pages[slot][(word as usize) & (PAGE_WORDS - 1)]
    }

    /// Apply `f` to every word entry in `[start, end)`, traversing each page
    /// only once (this is what makes the *compiler* variant's coalesced
    /// hooks cheaper than per-word lookups). Each word counts as one shadow
    /// operation.
    #[inline]
    pub fn for_range_mut(&mut self, start: u64, end: u64, mut f: impl FnMut(u64, &mut WordEntry)) {
        if start >= end {
            return;
        }
        self.ops += end - start;
        let mut w = start;
        while w < end {
            let page_no = w >> PAGE_BITS;
            let page_end = ((page_no + 1) << PAGE_BITS).min(end);
            let slot = self.page_slot(page_no);
            let page = &mut self.pages[slot];
            for word in w..page_end {
                f(word, &mut page[(word as usize) & (PAGE_WORDS - 1)]);
            }
            w = page_end;
        }
    }

    /// Reset all entries in `[start, end)` to [`WordEntry::EMPTY`], touching
    /// only pages that already exist (used for allocator `free` integration;
    /// does not count as shadow operations).
    pub fn clear_range(&mut self, start: u64, end: u64) {
        let mut w = start;
        while w < end {
            let page_no = w >> PAGE_BITS;
            let page_end = ((page_no + 1) << PAGE_BITS).min(end);
            if let Some(slot) = self.map.get(page_no) {
                let page = &mut self.pages[slot as usize];
                for word in w..page_end {
                    page[(word as usize) & (PAGE_WORDS - 1)] = WordEntry::EMPTY;
                }
            }
            w = page_end;
        }
    }

    /// Read-only lookup; `None` if the page was never touched.
    pub fn get(&self, word: u64) -> Option<WordEntry> {
        let slot = self.map.get(word >> PAGE_BITS)?;
        Some(self.pages[slot as usize][(word as usize) & (PAGE_WORDS - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_pages() {
        let mut s = WordShadow::new();
        assert_eq!(s.pages_allocated(), 0);
        assert_eq!(s.get(123), None);
        s.entry_mut(123).writer = 1;
        assert_eq!(s.pages_allocated(), 1);
        assert_eq!(
            s.get(123),
            Some(WordEntry {
                writer: 1,
                reader: NO_STRAND
            })
        );
        // Same page, different word: untouched entry is EMPTY.
        assert_eq!(s.get(124), Some(WordEntry::EMPTY));
        // Far-away word allocates a second page.
        s.entry_mut(1 << 40).reader = 2;
        assert_eq!(s.pages_allocated(), 2);
    }

    #[test]
    fn range_spanning_pages() {
        let mut s = WordShadow::new();
        let start = (1u64 << PAGE_BITS) - 5;
        let end = (1u64 << PAGE_BITS) + 5;
        let mut visited = Vec::new();
        s.for_range_mut(start, end, |w, e| {
            visited.push(w);
            e.writer = 9;
        });
        assert_eq!(visited, (start..end).collect::<Vec<_>>());
        assert_eq!(s.pages_allocated(), 2);
        for w in start..end {
            assert_eq!(s.get(w).unwrap().writer, 9);
        }
        assert_eq!(s.get(start - 1).unwrap(), WordEntry::EMPTY);
        assert_eq!(s.get(end).unwrap(), WordEntry::EMPTY);
    }

    #[test]
    fn empty_range_is_noop() {
        let mut s = WordShadow::new();
        s.for_range_mut(10, 10, |_, _| panic!("must not be called"));
        s.for_range_mut(10, 5, |_, _| panic!("must not be called"));
        assert_eq!(s.ops, 0);
        assert_eq!(s.pages_allocated(), 0);
    }

    #[test]
    fn ops_counting() {
        let mut s = WordShadow::new();
        s.entry_mut(0);
        s.entry_mut(1);
        s.for_range_mut(0, 10, |_, _| {});
        assert_eq!(s.ops, 12);
    }
}
