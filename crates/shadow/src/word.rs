//! The vanilla word-granularity access history ("shadow memory").
//!
//! Maps every 4-byte word to a [`WordEntry`] holding the strand ids of the
//! word's *last writer* and *leftmost reader* — the two accessors that
//! suffice for sequential race detection of fork-join programs
//! [Feng & Leiserson 1997]. The structure is the paper's "optimized two-level
//! page-table-like hashmap": the word's page number indexes a [`PageMap`],
//! pages are dense arrays allocated lazily on first touch.
//!
//! The race-checking *logic* lives in the detector crate; this type only
//! provides fast per-word and per-range access to the entries, so that the
//! same storage serves the `vanilla`, `compiler` and `comp+rts` variants.
//!
//! # Allocation caps & graceful degradation
//!
//! Page allocation can be capped, either by a `shadow-pages`/`shadow-oom-at`
//! fault plan (sampled at construction) or by a real `--max-shadow-mb`
//! budget ([`WordShadow::set_page_cap`]). Once the cap is hit the structure
//! records a [`stint_faults::DetectorError`] and degrades *soundly*: words
//! on unallocatable pages are served from a single **sink page** whose
//! entries are reset to [`WordEntry::EMPTY`] at every handout. An
//! always-empty entry can never satisfy a race predicate, so the detector
//! reports no false races — it merely stops tracking the untrackable words,
//! which is exactly the "results sound up to that point" contract.

use crate::pagemap::PageMap;
use stint_faults::{DetectorError, Resource};

// Observability (no-ops costing one relaxed load while `stint-obs` is
// disabled). Pages are never freed individually — the whole structure drops
// at the end of a run — so allocation counters are the interesting signal.
static OBS_PAGE_ALLOCS: stint_obs::Counter = stint_obs::Counter::new("shadow.page_allocs");
static OBS_SINK_HANDOUTS: stint_obs::Counter = stint_obs::Counter::new("shadow.sink_handouts");
static OBS_WORD_BYTES: stint_obs::Gauge = stint_obs::Gauge::new("shadow.word_bytes");

/// Sentinel strand id meaning "no recorded accessor".
pub const NO_STRAND: u32 = u32::MAX;

/// Words per shadow page (16 KiB of program data per page).
const PAGE_BITS: u32 = 12;
const PAGE_WORDS: usize = 1 << PAGE_BITS;

/// Shadow state of one 4-byte word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WordEntry {
    /// Strand id of the last writer (sequential order), or [`NO_STRAND`].
    pub writer: u32,
    /// Strand id of the leftmost reader, or [`NO_STRAND`].
    pub reader: u32,
}

impl WordEntry {
    pub const EMPTY: WordEntry = WordEntry {
        writer: NO_STRAND,
        reader: NO_STRAND,
    };
}

/// Two-level word-granularity shadow memory.
pub struct WordShadow {
    map: PageMap,
    pages: Vec<Box<[WordEntry]>>,
    /// Last page resolved by the batched path: `(page_no, slot)`. Slots are
    /// stable (pages are only ever appended), so a hit is always valid; the
    /// sentinel slot `u32::MAX` marks the cache as empty.
    last_page: (u64, u32),
    /// Number of individual word operations served (for the paper's
    /// `hash ops` column in Figure 8).
    pub ops: u64,
    /// Page runs resolved by the batched API ([`WordShadow::with_page`]).
    pub batches: u64,
    /// Words covered by those page runs (`batched_words / batches` is the
    /// average batch length).
    pub batched_words: u64,
    /// Maximum number of real pages that may be allocated (`u64::MAX` when
    /// unbounded; set by a budget or a `shadow-pages` fault).
    page_cap: u64,
    /// Allocation index that should fail with simulated OOM (`shadow-oom-at`
    /// fault; `u64::MAX` when disabled).
    oom_at: u64,
    /// Real page allocations performed so far.
    allocs: u64,
    /// Slot of the sink page serving untrackable words, `u32::MAX` until the
    /// first failed allocation.
    sink: u32,
    /// First failure, recorded once; later allocations silently sink.
    exhausted: Option<DetectorError>,
    /// Bytes last reported to the `shadow.word_bytes` gauge (zero while obs
    /// is disabled — `Gauge::reconcile` no-ops).
    owned_bytes: u64,
}

impl Drop for WordShadow {
    fn drop(&mut self) {
        OBS_WORD_BYTES.reconcile(&mut self.owned_bytes, 0);
    }
}

impl Default for WordShadow {
    fn default() -> Self {
        Self::new()
    }
}

impl WordShadow {
    /// Create an empty shadow. Samples the installed fault plan (if any), so
    /// plans must be installed before the structures they should affect are
    /// built.
    pub fn new() -> Self {
        let mut s = WordShadow {
            map: PageMap::new(),
            pages: Vec::new(),
            last_page: (0, u32::MAX),
            ops: 0,
            batches: 0,
            batched_words: 0,
            page_cap: u64::MAX,
            oom_at: u64::MAX,
            allocs: 0,
            sink: u32::MAX,
            exhausted: None,
            owned_bytes: 0,
        };
        if stint_faults::is_active() {
            if let Some(cap) = stint_faults::shadow_page_cap() {
                s.page_cap = cap;
            }
            if let Some(at) = stint_faults::shadow_oom_at() {
                s.oom_at = at;
            }
        }
        s
    }

    /// Cap real page allocations at `pages` (a `--max-shadow-mb` budget
    /// translated to pages). A fault-injected cap, if tighter, wins.
    pub fn set_page_cap(&mut self, pages: u64) {
        self.page_cap = self.page_cap.min(pages);
    }

    /// Bytes of program memory one shadow page covers (for budget math).
    pub const BYTES_TRACKED_PER_PAGE: u64 = (PAGE_WORDS as u64) * 4;

    /// Shadow bytes one page costs (for budget math).
    pub const BYTES_PER_PAGE: u64 = (PAGE_WORDS * std::mem::size_of::<WordEntry>()) as u64;

    /// The first allocation failure, if any: the shadow stopped tracking new
    /// pages at that point and the run's verdict is sound only up to it.
    pub fn exhausted(&self) -> Option<DetectorError> {
        self.exhausted.clone()
    }

    /// Number of shadow pages allocated.
    pub fn pages_allocated(&self) -> usize {
        self.pages.len()
    }

    /// Bytes of shadow memory allocated (second level only).
    pub fn shadow_bytes(&self) -> usize {
        self.pages.len() * PAGE_WORDS * std::mem::size_of::<WordEntry>()
    }

    /// Total heap bytes owned: page data, the page directory vec and the
    /// first-level map.
    pub fn heap_bytes(&self) -> u64 {
        self.shadow_bytes() as u64
            + (self.pages.capacity() * std::mem::size_of::<Box<[WordEntry]>>()) as u64
            + self.map.heap_bytes()
    }

    #[inline]
    fn page_slot(&mut self, page_no: u64) -> usize {
        if let Some(slot) = self.map.get(page_no) {
            return slot as usize;
        }
        self.page_slot_alloc(page_no)
    }

    /// Miss path: allocate the page, or degrade to the sink when the cap is
    /// reached or the simulated OOM fires. Out of line — it runs once per
    /// page (or once per miss in the exhausted regime).
    #[cold]
    fn page_slot_alloc(&mut self, page_no: u64) -> usize {
        let capped = self.allocs >= self.page_cap;
        if capped || self.allocs == self.oom_at {
            if self.exhausted.is_none() {
                stint_obs::event("fault.shadow_page_exhausted");
                self.exhausted = Some(DetectorError::ResourceExhausted {
                    resource: Resource::ShadowPages,
                    limit: if capped { self.page_cap } else { self.allocs },
                    at_word: Some(page_no << PAGE_BITS),
                });
            }
            OBS_SINK_HANDOUTS.incr();
            // Note: the failed page is *not* registered in the map, so the
            // map stays bounded and reads via `get` keep reporting the page
            // as never touched.
            if self.sink == u32::MAX {
                self.sink = self.pages.len() as u32;
                self.pages
                    .push(vec![WordEntry::EMPTY; PAGE_WORDS].into_boxed_slice());
                self.note_mem();
            }
            return self.sink as usize;
        }
        self.allocs += 1;
        OBS_PAGE_ALLOCS.incr();
        let pages = &mut self.pages;
        let slot = self.map.get_or_insert_with(page_no, || {
            let idx = pages.len() as u32;
            pages.push(vec![WordEntry::EMPTY; PAGE_WORDS].into_boxed_slice());
            idx
        }) as usize;
        self.note_mem();
        slot
    }

    /// Publish the live footprint to the `shadow.word_bytes` gauge (no-op
    /// while obs is disabled; only called from the cold allocation path).
    #[inline]
    fn note_mem(&mut self) {
        let bytes = self.heap_bytes();
        OBS_WORD_BYTES.reconcile(&mut self.owned_bytes, bytes);
    }

    /// Mutable access to the entry of `word` (allocating its page lazily).
    /// Counts as one shadow operation.
    #[inline]
    pub fn entry_mut(&mut self, word: u64) -> &mut WordEntry {
        self.ops += 1;
        let slot = self.page_slot(word >> PAGE_BITS);
        let entry = &mut self.pages[slot][(word as usize) & (PAGE_WORDS - 1)];
        // Sink entries are reset at every handout: the sink aliases all
        // untrackable words, and a stale accessor would surface as a false
        // race. (`sink` is `u32::MAX` until exhaustion, so this is one
        // always-false compare on the healthy path.)
        if slot as u32 == self.sink {
            *entry = WordEntry::EMPTY;
        }
        entry
    }

    /// Apply `f` to every word entry in `[start, end)`, traversing each page
    /// only once (this is what makes the *compiler* variant's coalesced
    /// hooks cheaper than per-word lookups). Each word counts as one shadow
    /// operation.
    #[inline]
    pub fn for_range_mut(&mut self, start: u64, end: u64, mut f: impl FnMut(u64, &mut WordEntry)) {
        if start >= end {
            return;
        }
        self.ops += end - start;
        let mut w = start;
        while w < end {
            let page_no = w >> PAGE_BITS;
            let page_end = ((page_no + 1) << PAGE_BITS).min(end);
            let slot = self.page_slot(page_no);
            let page = &mut self.pages[slot];
            if slot as u32 == self.sink {
                page.fill(WordEntry::EMPTY);
            }
            for word in w..page_end {
                f(word, &mut page[(word as usize) & (PAGE_WORDS - 1)]);
            }
            w = page_end;
        }
    }

    /// Like [`WordShadow::page_slot`], but checks the one-entry page cache
    /// first — consecutive intervals overwhelmingly land on the same shadow
    /// page, so most batched resolutions skip the [`PageMap`] probe entirely.
    #[inline]
    fn page_slot_cached(&mut self, page_no: u64) -> usize {
        let (cached_no, cached_slot) = self.last_page;
        if cached_no == page_no && cached_slot != u32::MAX {
            return cached_slot as usize;
        }
        let slot = self.page_slot(page_no);
        self.last_page = (page_no, slot as u32);
        slot
    }

    /// The batched-access primitive: resolve the page containing `start`
    /// *once* and hand `f` the contiguous entry slice covering
    /// `[start, min(end, page_end))`, together with the word number of its
    /// first element. Returns the first word *not* covered, so callers loop
    /// until the return value reaches `end`. Each covered word counts as one
    /// shadow operation (same accounting as [`WordShadow::for_range_mut`]).
    #[inline]
    pub fn with_page(
        &mut self,
        start: u64,
        end: u64,
        f: impl FnOnce(u64, &mut [WordEntry]),
    ) -> u64 {
        debug_assert!(start < end);
        let page_no = start >> PAGE_BITS;
        let run_end = ((page_no + 1) << PAGE_BITS).min(end);
        let covered = run_end - start;
        self.ops += covered;
        self.batches += 1;
        self.batched_words += covered;
        let slot = self.page_slot_cached(page_no);
        let base = (start as usize) & (PAGE_WORDS - 1);
        let slice = &mut self.pages[slot][base..base + covered as usize];
        if slot as u32 == self.sink {
            slice.fill(WordEntry::EMPTY);
        }
        f(start, slice);
        run_end
    }

    /// Apply `f` to the entry slice of every page run in `[start, end)` —
    /// the batched counterpart of [`WordShadow::for_range_mut`]. The second
    /// level is resolved once per up-to-4096-word page run (with a
    /// same-page fast path) and `f` iterates each page slice directly, so
    /// the per-word cost is a slice step instead of an index + mask + bounds
    /// check through `self.pages`.
    #[inline]
    pub fn process_range_on_page(
        &mut self,
        start: u64,
        end: u64,
        mut f: impl FnMut(u64, &mut [WordEntry]),
    ) {
        let mut w = start;
        while w < end {
            w = self.with_page(w, end, &mut f);
        }
    }

    /// Reset all entries in `[start, end)` to [`WordEntry::EMPTY`], touching
    /// only pages that already exist (used for allocator `free` integration;
    /// does not count as shadow operations).
    pub fn clear_range(&mut self, start: u64, end: u64) {
        let mut w = start;
        while w < end {
            let page_no = w >> PAGE_BITS;
            let page_end = ((page_no + 1) << PAGE_BITS).min(end);
            if let Some(slot) = self.map.get(page_no) {
                let page = &mut self.pages[slot as usize];
                for word in w..page_end {
                    page[(word as usize) & (PAGE_WORDS - 1)] = WordEntry::EMPTY;
                }
            }
            w = page_end;
        }
    }

    /// Read-only lookup; `None` if the page was never touched.
    pub fn get(&self, word: u64) -> Option<WordEntry> {
        let slot = self.map.get(word >> PAGE_BITS)?;
        Some(self.pages[slot as usize][(word as usize) & (PAGE_WORDS - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_pages() {
        let mut s = WordShadow::new();
        assert_eq!(s.pages_allocated(), 0);
        assert_eq!(s.get(123), None);
        s.entry_mut(123).writer = 1;
        assert_eq!(s.pages_allocated(), 1);
        assert_eq!(
            s.get(123),
            Some(WordEntry {
                writer: 1,
                reader: NO_STRAND
            })
        );
        // Same page, different word: untouched entry is EMPTY.
        assert_eq!(s.get(124), Some(WordEntry::EMPTY));
        // Far-away word allocates a second page.
        s.entry_mut(1 << 40).reader = 2;
        assert_eq!(s.pages_allocated(), 2);
    }

    #[test]
    fn capped_pages_degrade_to_empty_sink() {
        let mut s = WordShadow::new();
        s.set_page_cap(2);
        // Two real pages fill the cap.
        s.entry_mut(0).writer = 1;
        s.entry_mut(1 << PAGE_BITS).writer = 2;
        assert!(s.exhausted().is_none());
        // Third page cannot be allocated: writes land in the sink...
        let w3 = 5u64 << PAGE_BITS;
        s.entry_mut(w3).writer = 3;
        let err = s.exhausted().expect("cap must be recorded");
        match err {
            DetectorError::ResourceExhausted {
                resource: Resource::ShadowPages,
                limit: 2,
                at_word: Some(at),
            } => assert_eq!(at, w3),
            other => panic!("unexpected error {other:?}"),
        }
        // ...and every sink handout is reset, so the stale writer can never
        // resurface as a false race — not at the same word, not at another
        // word aliasing the same sink page.
        assert_eq!(*s.entry_mut(w3), WordEntry::EMPTY);
        assert_eq!(*s.entry_mut((7 << PAGE_BITS) + 9), WordEntry::EMPTY);
        s.process_range_on_page(w3, w3 + 4, |_, entries| {
            assert!(entries.iter().all(|e| *e == WordEntry::EMPTY));
        });
        // Untrackable pages read as never touched; real pages kept their data.
        assert_eq!(s.get(w3), None);
        assert_eq!(s.get(0).unwrap().writer, 1);
        assert_eq!(s.get(1 << PAGE_BITS).unwrap().writer, 2);
    }

    #[test]
    fn range_spanning_pages() {
        let mut s = WordShadow::new();
        let start = (1u64 << PAGE_BITS) - 5;
        let end = (1u64 << PAGE_BITS) + 5;
        let mut visited = Vec::new();
        s.for_range_mut(start, end, |w, e| {
            visited.push(w);
            e.writer = 9;
        });
        assert_eq!(visited, (start..end).collect::<Vec<_>>());
        assert_eq!(s.pages_allocated(), 2);
        for w in start..end {
            assert_eq!(s.get(w).unwrap().writer, 9);
        }
        assert_eq!(s.get(start - 1).unwrap(), WordEntry::EMPTY);
        assert_eq!(s.get(end).unwrap(), WordEntry::EMPTY);
    }

    #[test]
    fn empty_range_is_noop() {
        let mut s = WordShadow::new();
        s.for_range_mut(10, 10, |_, _| panic!("must not be called"));
        s.for_range_mut(10, 5, |_, _| panic!("must not be called"));
        assert_eq!(s.ops, 0);
        assert_eq!(s.pages_allocated(), 0);
    }

    #[test]
    fn ops_counting() {
        let mut s = WordShadow::new();
        s.entry_mut(0);
        s.entry_mut(1);
        s.for_range_mut(0, 10, |_, _| {});
        assert_eq!(s.ops, 12);
    }

    #[test]
    fn with_page_covers_single_page_run() {
        let mut s = WordShadow::new();
        let start = (1u64 << PAGE_BITS) - 3;
        // Run is clipped at the page boundary.
        let covered_to = s.with_page(start, start + 100, |base, entries| {
            assert_eq!(base, start);
            assert_eq!(entries.len(), 3);
            for e in entries.iter_mut() {
                e.writer = 7;
            }
        });
        assert_eq!(covered_to, 1 << PAGE_BITS);
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_words, 3);
        assert_eq!(s.ops, 3);
        for w in start..covered_to {
            assert_eq!(s.get(w).unwrap().writer, 7);
        }
    }

    #[test]
    fn process_range_matches_for_range_mut() {
        // Differential: the batched path must visit exactly the words the
        // per-word path visits, in the same order, with the same entries.
        let ranges = [
            (0u64, 10u64),
            ((1 << PAGE_BITS) - 5, (1 << PAGE_BITS) + 5),
            (100, 100 + 3 * (1 << PAGE_BITS)),
            ((1 << 40) - 1, (1 << 40) + 1),
        ];
        for &(start, end) in &ranges {
            let mut a = WordShadow::new();
            let mut b = WordShadow::new();
            let mut va = Vec::new();
            let mut vb = Vec::new();
            a.for_range_mut(start, end, |w, e| {
                va.push(w);
                e.writer = (w % 97) as u32;
            });
            b.process_range_on_page(start, end, |base, entries| {
                for (i, e) in entries.iter_mut().enumerate() {
                    let w = base + i as u64;
                    vb.push(w);
                    e.writer = (w % 97) as u32;
                }
            });
            assert_eq!(va, vb, "visit order diverged for {start}..{end}");
            assert_eq!(a.ops, b.ops, "ops accounting diverged");
            for w in start..end {
                assert_eq!(a.get(w), b.get(w), "entry diverged at {w}");
            }
        }
    }

    #[test]
    fn page_cache_skips_map_probe_but_stays_correct() {
        let mut s = WordShadow::new();
        // Two far-apart pages, alternating: the cache must never serve a
        // stale slot.
        for round in 0..10u64 {
            s.process_range_on_page(0, 4, |base, entries| {
                assert_eq!(base, 0);
                for e in entries.iter_mut() {
                    e.writer = round as u32;
                }
            });
            s.process_range_on_page(1 << 30, (1 << 30) + 4, |base, entries| {
                assert_eq!(base, 1 << 30);
                for e in entries.iter_mut() {
                    e.reader = round as u32;
                }
            });
        }
        assert_eq!(s.get(0).unwrap().writer, 9);
        assert_eq!(s.get(1 << 30).unwrap().reader, 9);
        assert_eq!(s.pages_allocated(), 2);
        assert_eq!(s.batches, 20);
    }
}
