//! Shadow-memory substrates for race detection.
//!
//! Two data structures from the paper live here:
//!
//! * [`WordShadow`] — the *vanilla* access history (Section 1): an optimized
//!   two-level page-table-like hashmap mapping every 4-byte word to its last
//!   writer and leftmost reader. Used by the `vanilla`, `compiler` and
//!   `comp+rts` detector variants.
//! * [`BitShadow`] — the *bit hashmap* used for **runtime coalescing**
//!   (Section 3.2): a compact two-level table whose second level is an array
//!   of 64-bit integers, one bit per 4-byte word. Bits are set with
//!   bit-level parallelism while a strand runs; at strand end the maximal
//!   disjoint word intervals are extracted (spatial coalescing +
//!   deduplication) and the table is cleared in time proportional to the
//!   number of entries touched, thanks to dirty-index vectors.
//!
//! Both are built on [`PageMap`], a small open-addressing `u64 → u32` map
//! (the "optimized … hashmap" of the paper; `std::collections::HashMap`'s
//! SipHash would dominate the cost of every shadow access).

pub mod bits;
pub mod pagemap;
pub mod word;

pub use bits::{BitShadow, SetFilter};
pub use pagemap::PageMap;
pub use word::{WordEntry, WordShadow, NO_STRAND};

/// A contiguous range of 4-byte shadow words `[start, end)`.
pub type WordIv = (u64, u64);
