//! A minimal open-addressing hash map from `u64` page numbers to `u32` slot
//! indices, specialized for the first level of the shadow tables.
//!
//! Both shadow structures look a page number up on (nearly) every access, so
//! this map is on the hottest path of the whole detector. It uses Fibonacci
//! hashing, linear probing, power-of-two capacity and no deletion (shadow
//! pages are never freed during a run), which makes a lookup a handful of
//! instructions.

const EMPTY: u32 = u32::MAX;

/// Open-addressing `u64 → u32` map without deletion.
#[derive(Clone, Debug)]
pub struct PageMap {
    /// (key, value) slots; value == EMPTY marks a free slot.
    slots: Box<[(u64, u32)]>,
    mask: usize,
    len: usize,
}

impl Default for PageMap {
    fn default() -> Self {
        Self::new()
    }
}

impl PageMap {
    pub fn new() -> Self {
        Self::with_capacity_pow2(64)
    }

    fn with_capacity_pow2(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        PageMap {
            slots: vec![(0, EMPTY); cap].into_boxed_slice(),
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes held by the slot array.
    #[inline]
    pub fn heap_bytes(&self) -> u64 {
        (self.slots.len() * std::mem::size_of::<(u64, u32)>()) as u64
    }

    #[inline]
    fn bucket(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply by 2^64/φ and take the top bits.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.mask.count_ones())) as usize & self.mask
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        let mut i = self.bucket(key);
        loop {
            let (k, v) = self.slots[i];
            if v == EMPTY {
                return None;
            }
            if k == key {
                return Some(v);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Look up `key`, inserting `make()` if absent. Returns the value.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> u32) -> u32 {
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            let (k, v) = self.slots[i];
            if v == EMPTY {
                let val = make();
                debug_assert_ne!(val, EMPTY, "EMPTY sentinel is reserved");
                self.slots[i] = (key, val);
                self.len += 1;
                return val;
            }
            if k == key {
                return v;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![(0, EMPTY); new_cap].into_boxed_slice(),
        );
        self.mask = new_cap - 1;
        for (k, v) in old.iter().copied() {
            if v != EMPTY {
                let mut i = self.bucket(k);
                while self.slots[i].1 != EMPTY {
                    i = (i + 1) & self.mask;
                }
                self.slots[i] = (k, v);
            }
        }
    }

    /// Iterate over (key, value) pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.slots.iter().copied().filter(|&(_, v)| v != EMPTY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_and_get() {
        let mut m = PageMap::new();
        assert_eq!(m.get(42), None);
        let v = m.get_or_insert_with(42, || 7);
        assert_eq!(v, 7);
        assert_eq!(m.get(42), Some(7));
        // Second insert returns the existing value.
        let v = m.get_or_insert_with(42, || 99);
        assert_eq!(v, 7);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_and_matches_reference() {
        let mut m = PageMap::new();
        let mut r = HashMap::new();
        let mut state: u64 = 1;
        for i in 0..10_000u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Adversarial-ish keys: clustered pages plus random spray.
            let key = if i % 3 == 0 {
                (i / 3) as u64
            } else {
                state >> 16
            };
            let v = m.get_or_insert_with(key, || i);
            let rv = *r.entry(key).or_insert(i);
            assert_eq!(v, rv, "key {key}");
        }
        assert_eq!(m.len(), r.len());
        for (&k, &v) in &r {
            assert_eq!(m.get(k), Some(v));
        }
        // Iterator yields exactly the reference contents.
        let mut got: Vec<_> = m.iter().collect();
        let mut want: Vec<_> = r.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn dense_sequential_keys() {
        let mut m = PageMap::new();
        for k in 0..5000u64 {
            m.get_or_insert_with(k, || k as u32);
        }
        for k in 0..5000u64 {
            assert_eq!(m.get(k), Some(k as u32));
        }
        assert_eq!(m.get(5000), None);
    }
}
