//! `stint-serve` — detection as a service.
//!
//! A persistent daemon that accepts recorded traces over a length-prefixed
//! framed protocol (unix socket, or stdin/stdout for CI), runs each one as
//! an isolated *session* on a shared work-stealing pool, and answers with a
//! structured report. The CLI's 0–4 exit-code contract becomes a
//! per-response status byte (`Ok`/`Racy`/`Usage`/`Degraded`/`Corrupt`, plus
//! the transport-level `Busy` and `Bye`).
//!
//! Robustness is the point, not an afterthought:
//!
//! * **budgets + timeouts** — every session carries a `ResourceBudget` and
//!   a wall-clock deadline ([`stint_batchdet::SessionLimits`]); a tripped
//!   limit degrades the session to a partial-but-sound report instead of
//!   wedging a worker;
//! * **backpressure** — admission is a bounded queue; a full queue answers
//!   `Busy` with a retry-after hint instead of growing without bound;
//! * **isolation** — sessions run under `catch_unwind`; a poisoned session
//!   answers `Corrupt` (kind `poisoned`) and its worker lives on;
//! * **drain** — SIGTERM or a `SHUTDOWN` frame stops admission, finishes
//!   the queue, and answers `Bye`; idle socket clients are disconnected by
//!   a read timeout so half-open connections cannot pin slots.
//!
//! The crate splits into [`protocol`] (wire frames and session option
//! specs), [`engine`] (the bounded queue, session workers, and the
//! detection itself), and [`server`] (byte-stream transports and signal
//! handling). The `stint-serve` binary wires them to stdio or a unix
//! socket and also provides client-side helpers (`frame`, `decode`,
//! `send`) so shell scripts can speak the protocol.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod engine;
pub mod journal;
pub mod protocol;
pub mod server;

pub use engine::{Engine, EngineConfig, TotalsSnapshot};
pub use journal::{ReplaySummary, SessionEvent, SessionJournal};
pub use protocol::{Request, Response, SessionOpts, Status};

/// Where the panic hook dumps the flight recorder. Set once at startup
/// (from `--flight-dump`); never read on the session hot path.
static FLIGHT_DUMP_PATH: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();

/// Register the flight-recorder dump path so an *unexpected* daemon panic
/// (not a contained session panic) still leaves a post-mortem artifact.
pub fn set_flight_dump_path(path: std::path::PathBuf) {
    let _ = FLIGHT_DUMP_PATH.set(path);
}

/// Install a panic hook suitable for daemon processes: session panics are
/// already contained by the worker's `catch_unwind` and answered as
/// `poisoned`, so the default hook's per-panic backtrace is pure noise —
/// especially under the `serve-panic-session` chaos knob, which fires one
/// panic per Nth session by design. Structured [`DetectorError`] payloads
/// and injected chaos panics are silenced; anything else still prints, and
/// a broken stdout pipe exits quietly like the CLI does.
///
/// [`DetectorError`]: stint_faults::DetectorError
pub fn install_panic_hook() {
    std::panic::set_hook(Box::new(|info| {
        if info
            .payload()
            .downcast_ref::<stint_faults::DetectorError>()
            .is_some()
        {
            return;
        }
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("injected serve session panic") {
            return;
        }
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        // A panic that escapes the session sandbox is a daemon bug: dump
        // the flight-recorder ring before the backtrace so the last ~1k
        // lifecycle events survive the crash.
        if let Some(path) = FLIGHT_DUMP_PATH.get() {
            if let Ok(f) = std::fs::File::create(path) {
                let _ = stint_obs::flight::write_json(std::io::BufWriter::new(f));
            }
        }
        eprintln!("{info}");
    }));
}
