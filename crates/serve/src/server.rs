//! Byte-stream transports: serve a framed stream (stdin/stdout for CI, a
//! unix socket for daemons) against an [`Engine`], plus signal-driven
//! shutdown.
//!
//! Each stream gets one reader (the calling thread) and one writer thread;
//! session replies arrive on an mpsc channel in completion order and are
//! framed onto the wire tagged with their session id. The writer stays
//! alive exactly as long as any in-flight session for this stream holds a
//! reply sender — so a drain flushes every pending reply before the stream
//! closes.

use std::io::{self, BufReader, Read, Write};
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use stint_obs::Counter;

use crate::engine::Engine;
use crate::protocol::{self, FrameError, Request, Response, Status};

/// Half-open / idle clients disconnected by the read timeout.
static OBS_IDLE_CLOSED: Counter = Counter::new("serve.idle_closed");
/// Streams abandoned after a malformed frame.
static OBS_BAD_FRAMES: Counter = Counter::new("serve.bad_frames");

static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

extern "C" {
    // Raw libc `signal(2)`; the handler type is pointer-shaped on every
    // platform this builds on, and we never inspect the return value.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// Route SIGINT/SIGTERM to a flag the accept/read loops poll — the start of
/// a graceful drain, not an abort.
pub fn install_signal_handlers() {
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

pub fn shutdown_requested() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Serve one framed byte stream. Returns `true` if this stream asked the
/// daemon to shut down (SHUTDOWN frame or a signal observed mid-loop).
///
/// `drain_on_close` distinguishes the stdio transport (EOF means the one
/// client is done — drain and flush every reply before exiting) from a
/// socket connection (EOF is one client hanging up; the daemon lives on).
/// A SHUTDOWN frame always drains. The writer applies the
/// `serve-trunc-frame=N` fault knob, damaging every Nth response on the
/// wire so clients' truncation detection can be exercised end to end.
pub fn run_frames<R: Read, W: Write + Send + 'static>(
    engine: &Arc<Engine>,
    r: R,
    w: W,
    drain_on_close: bool,
) -> io::Result<bool> {
    let (tx, rx) = mpsc::channel::<Response>();
    let trunc_every = stint_faults::serve_trunc_frame();
    let writer = std::thread::spawn(move || -> io::Result<W> {
        let mut w = w;
        for (i, resp) in rx.into_iter().enumerate() {
            let frames = i as u64 + 1;
            if trunc_every.is_some_and(|p| frames.is_multiple_of(p)) {
                protocol::write_truncated_response(&mut w, &resp)?;
            } else {
                protocol::write_response(&mut w, &resp)?;
            }
            w.flush()?;
        }
        Ok(w)
    });
    let mut br = BufReader::new(r);
    let mut shutdown = false;
    let read_err = loop {
        if shutdown_requested() {
            shutdown = true;
            break None;
        }
        match protocol::read_request(&mut br) {
            Ok(None) => break None,
            Ok(Some(Request::Ping)) => {
                let _ = tx.send(Response::new(Status::Ok, 0, "kind: pong\n"));
            }
            Ok(Some(Request::Stats)) => {
                let _ = tx.send(Response::new(Status::Ok, 0, engine.stats_payload()));
            }
            Ok(Some(Request::Health)) => {
                let _ = tx.send(Response::new(Status::Ok, 0, engine.health_payload()));
            }
            Ok(Some(Request::Shutdown)) => {
                shutdown = true;
                break None;
            }
            Ok(Some(Request::Detect { opts, trace })) => {
                engine.try_submit(opts, trace, tx.clone());
            }
            Err(FrameError::Malformed(m)) => {
                // The stream is desynchronized — answer once, then abandon
                // it. Sessions already admitted still complete and flush.
                OBS_BAD_FRAMES.incr();
                let _ = tx.send(Response::new(
                    Status::Usage,
                    0,
                    format!("kind: usage\nerror: malformed frame: {m}\n"),
                ));
                break None;
            }
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle-session read timeout: a half-open client cannot pin
                // this slot. Close without draining the daemon.
                OBS_IDLE_CLOSED.incr();
                break None;
            }
            Err(FrameError::Io(e)) => break Some(e),
        }
    };
    if shutdown || drain_on_close {
        engine.drain();
    }
    if shutdown {
        let _ = tx.send(Response::new(Status::Bye, 0, "kind: bye\n"));
    }
    // Dropping our sender lets the writer exit once every admitted
    // session's reply (each job holds a clone) has been flushed.
    drop(tx);
    let writer_result = writer
        .join()
        .unwrap_or_else(|_| Err(io::Error::other("writer thread panicked")));
    if let Some(e) = read_err {
        return Err(e);
    }
    // A vanished client (EPIPE on the reply path) is the client's problem,
    // not a daemon failure.
    let _ = writer_result?;
    Ok(shutdown)
}

/// CI transport: frames on stdin, responses on stdout, EOF or SHUTDOWN
/// drains and exits.
pub fn run_stdio(engine: &Arc<Engine>) -> io::Result<bool> {
    let stdin = io::stdin().lock();
    let stdout = io::stdout();
    run_frames(engine, stdin, stdout, true)
}

/// Daemon transport: accept loop on a unix socket, one reader thread per
/// connection, `idle_timeout_ms` bounding how long a silent client may hold
/// its connection. Returns when a SHUTDOWN frame arrives on any connection
/// or a signal fires; queued sessions finish before the socket is removed.
pub fn run_socket(engine: &Arc<Engine>, path: &str, idle_timeout_ms: u64) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) && !shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                if idle_timeout_ms > 0 {
                    stream.set_read_timeout(Some(Duration::from_millis(idle_timeout_ms)))?;
                }
                let engine = Arc::clone(engine);
                let stop = Arc::clone(&stop);
                conns.push(std::thread::spawn(move || {
                    let reader = match stream.try_clone() {
                        Ok(r) => r,
                        Err(_) => return,
                    };
                    if let Ok(true) = run_frames(&engine, reader, stream, false) {
                        stop.store(true, Ordering::Release);
                    }
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(e);
            }
        }
        // Reap finished connection threads; dropping a handle detaches it,
        // which is fine — live ones are joined below.
        conns.retain(|h| !h.is_finished());
    }
    engine.drain();
    for h in conns {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}
