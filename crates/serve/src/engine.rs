//! The session engine: a bounded admission queue, a fixed crew of session
//! workers, and one shared work-stealing pool.
//!
//! ## Lifecycle of a session
//!
//! ```text
//! submit ──(queue full)──► Busy + retry-after-ms
//!    │
//!    ▼ queued (serve.queue_bytes)
//!  worker pops ── catch_unwind ► run_session (serve.inflight)
//!    │   parse opts ──(bad token)──► Usage
//!    │   sniff magic: v2 → stream chunks / v1 → load / else → Corrupt
//!    │   detect under SessionLimits on the shared cilkrt pool
//!    ▼
//!  reply: Ok | Racy | Degraded (partial report) | Corrupt (kind corrupt
//!         or poisoned)
//! ```
//!
//! ## Degradation matrix
//!
//! | failure                     | status     | payload `kind:` | report?  |
//! |-----------------------------|------------|-----------------|----------|
//! | wall-clock timeout          | `Degraded` | `degraded`      | partial  |
//! | budget (shadow / intervals) | `Degraded` | `degraded`      | partial  |
//! | session panic               | `Corrupt`  | `poisoned`      | none     |
//! | unparsable / truncated trace| `Corrupt`  | `corrupt`       | none     |
//! | bad option spec             | `Usage`    | `usage`         | none     |
//! | queue full                  | `Busy`     | `busy`          | none     |
//!
//! A panic unwinding out of a session is caught by the worker, mapped
//! through [`DetectorError::from_panic`], and answered like any other
//! failure — the worker thread, its queue neighbors, and the shared pool
//! all survive. The `serve.inflight` and `serve.queue_bytes` gauges are
//! balanced outside the unwind boundary, so they reconcile to zero after
//! every drain even when sessions time out or poison themselves.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stint::{sniff_magic, DetectorError, ResourceBudget, TraceMagic};
use stint_batchdet::{
    batch_detect_chunked_limited_on, batch_detect_limited_on, load_trace, BatchConfig,
    SessionLimits,
};
use stint_cilkrt::ThreadPool;
use stint_obs::{flight, Counter, Gauge, Histogram};

use crate::journal::{
    ReplaySummary, SessionJournal, EV_ADMITTED, EV_BUSY, EV_BYE, EV_DRAINED, EV_STARTED,
    EV_TIMEOUT, EV_VERDICT,
};
use crate::protocol::{Response, SessionOpts, Status};

static OBS_SESSIONS: Counter = Counter::new("serve.sessions");
static OBS_OK: Counter = Counter::new("serve.sessions.ok");
static OBS_RACY: Counter = Counter::new("serve.sessions.racy");
static OBS_USAGE: Counter = Counter::new("serve.sessions.usage");
static OBS_DEGRADED: Counter = Counter::new("serve.sessions.degraded");
static OBS_CORRUPT: Counter = Counter::new("serve.sessions.corrupt");
static OBS_POISONED: Counter = Counter::new("serve.sessions.poisoned");
static OBS_BUSY: Counter = Counter::new("serve.busy");
/// Witnesses captured across all sessions that opted in (`witness=1`);
/// counts captures, not wire deliveries — the reply strips detail past
/// [`MAX_WIRE_WITNESSES`] but the counter sees everything.
static OBS_WITNESSES: Counter = Counter::new("serve.witnesses");
/// Witness-detail cap per DETECT reply: races past this keep their record
/// but lose the attached witness, bounding reply-frame growth.
const MAX_WIRE_WITNESSES: usize = 64;
/// Bytes of trace payload sitting in the admission queue. Bounded by
/// `queue_depth × frame cap`; back to zero after every drain.
static OBS_QUEUE_BYTES: Gauge = Gauge::new("serve.queue_bytes");
/// Sessions currently executing on workers.
static OBS_INFLIGHT: Gauge = Gauge::new("serve.inflight");
// Per-status session latency (admission to verdict, milliseconds). The
// daemon-side ground truth the offline driver's client-side percentiles
// are cross-checked against.
static OBS_LAT_OK: Histogram = Histogram::new("serve.latency_ms.ok");
static OBS_LAT_RACY: Histogram = Histogram::new("serve.latency_ms.racy");
static OBS_LAT_USAGE: Histogram = Histogram::new("serve.latency_ms.usage");
static OBS_LAT_DEGRADED: Histogram = Histogram::new("serve.latency_ms.degraded");
static OBS_LAT_CORRUPT: Histogram = Histogram::new("serve.latency_ms.corrupt");
static OBS_LAT_POISONED: Histogram = Histogram::new("serve.latency_ms.poisoned");
/// How long jobs sat in the admission queue before a worker picked them
/// up (milliseconds).
static OBS_QUEUE_AGE: Histogram = Histogram::new("serve.queue_age_ms");

/// Daemon-level configuration (per-session knobs ride in the DETECT frame).
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Session workers: concurrent sessions in flight.
    pub session_workers: usize,
    /// Admission queue capacity; a full queue answers `Busy`.
    pub queue_depth: usize,
    /// Threads of the shared detection pool (all sessions fan out on it —
    /// `ThreadPool::install` is safe from concurrent external threads).
    pub pool_workers: usize,
    /// Wall-clock budget for sessions that do not pick their own.
    pub default_timeout_ms: u64,
    /// Hint carried in `Busy` responses.
    pub retry_after_ms: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            session_workers: 2,
            queue_depth: 64,
            pool_workers: 2,
            default_timeout_ms: 10_000,
            retry_after_ms: 25,
        }
    }
}

/// Monotonic totals, kept in plain atomics so they exist even when the obs
/// layer is disabled (the load bench and STATS frame read them).
#[derive(Default)]
struct Totals {
    sessions: AtomicU64,
    ok: AtomicU64,
    racy: AtomicU64,
    usage: AtomicU64,
    degraded: AtomicU64,
    corrupt: AtomicU64,
    poisoned: AtomicU64,
    busy: AtomicU64,
}

/// A point-in-time copy of the engine totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TotalsSnapshot {
    /// Sessions that reached a worker (admitted, whatever their verdict).
    pub sessions: u64,
    pub ok: u64,
    pub racy: u64,
    pub usage: u64,
    pub degraded: u64,
    pub corrupt: u64,
    pub poisoned: u64,
    /// Admissions refused with `Busy` (not counted in `sessions`).
    pub busy: u64,
}

impl Totals {
    fn snapshot(&self) -> TotalsSnapshot {
        TotalsSnapshot {
            sessions: self.sessions.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            racy: self.racy.load(Ordering::Relaxed),
            usage: self.usage.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
        }
    }
}

/// How a session ended. Finer-grained than [`Status`]: poisoned and corrupt
/// share a wire status (the CLI's exit-4 bucket) but are counted apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    Ok,
    Racy,
    Usage,
    Degraded,
    Corrupt,
    Poisoned,
}

impl Verdict {
    fn status(self) -> Status {
        match self {
            Verdict::Ok => Status::Ok,
            Verdict::Racy => Status::Racy,
            Verdict::Usage => Status::Usage,
            Verdict::Degraded => Status::Degraded,
            Verdict::Corrupt | Verdict::Poisoned => Status::Corrupt,
        }
    }

    fn kind(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Racy => "racy",
            Verdict::Usage => "usage",
            Verdict::Degraded => "degraded",
            Verdict::Corrupt => "corrupt",
            Verdict::Poisoned => "poisoned",
        }
    }

    /// Stable wire/journal code (also `crate::journal::verdict_name`).
    fn code(self) -> u16 {
        match self {
            Verdict::Ok => 0,
            Verdict::Racy => 1,
            Verdict::Usage => 2,
            Verdict::Degraded => 3,
            Verdict::Corrupt => 4,
            Verdict::Poisoned => 5,
        }
    }

    fn latency_hist(self) -> &'static Histogram {
        match self {
            Verdict::Ok => &OBS_LAT_OK,
            Verdict::Racy => &OBS_LAT_RACY,
            Verdict::Usage => &OBS_LAT_USAGE,
            Verdict::Degraded => &OBS_LAT_DEGRADED,
            Verdict::Corrupt => &OBS_LAT_CORRUPT,
            Verdict::Poisoned => &OBS_LAT_POISONED,
        }
    }
}

/// Every registered `serve.latency_ms.*` histogram with samples, as
/// `(status, histogram)` pairs — feeds STATS/HEALTH quantiles and the
/// load driver's daemon-side cross-check.
pub fn latency_histograms() -> Vec<(&'static str, &'static Histogram)> {
    [
        ("ok", &OBS_LAT_OK),
        ("racy", &OBS_LAT_RACY),
        ("usage", &OBS_LAT_USAGE),
        ("degraded", &OBS_LAT_DEGRADED),
        ("corrupt", &OBS_LAT_CORRUPT),
        ("poisoned", &OBS_LAT_POISONED),
    ]
    .into_iter()
    .filter(|(_, h)| h.count() > 0)
    .collect()
}

struct Job {
    id: u32,
    opts: String,
    trace: Vec<u8>,
    reply: Sender<Response>,
    queued_at: Instant,
}

struct Shared {
    cfg: EngineConfig,
    pool: ThreadPool,
    queue: Mutex<VecDeque<Job>>,
    cond: Condvar,
    draining: AtomicBool,
    totals: Totals,
    /// Session journal, if the daemon runs with one.
    journal: Option<SessionJournal>,
    /// Engine start (uptime origin for HEALTH).
    started_at: Instant,
    /// Watermark of queue wait (µs) — how stale the queue has been.
    queue_age_us_hw: AtomicU64,
    /// EWMA of per-session service time (µs), `ema ← (7·ema + x) / 8`.
    /// Plain atomics independent of the obs gate: the measured
    /// retry-after hint must work with observability off.
    svc_ema_us: AtomicU64,
    /// Sessions currently on a worker, with their admission time — the
    /// HEALTH frame's in-flight set. Maintained outside the session
    /// unwind boundary, like the gauges.
    running: Mutex<BTreeMap<u32, Instant>>,
}

impl Shared {
    fn journal_log(&self, session: u32, kind: u16, code: u16, payload: u64) {
        if let Some(j) = &self.journal {
            j.log(session, kind, code, payload);
        }
        flight::record(session, kind, code, payload);
    }

    /// Busy hint from measured drain rate: expected time for the current
    /// queue to clear at the observed per-session service time, floored
    /// at the configured constant (which also covers the cold start
    /// before any session has completed) and capped at one minute.
    fn retry_hint_ms(&self, queue_len: usize) -> u64 {
        let ema_us = self.svc_ema_us.load(Ordering::Relaxed);
        if ema_us == 0 {
            return self.cfg.retry_after_ms;
        }
        let workers = self.cfg.session_workers.max(1) as u64;
        let est_ms = (queue_len as u64 + 1) * (ema_us / 1000) / workers;
        est_ms.clamp(self.cfg.retry_after_ms, 60_000)
    }
}

/// The detection service: owns the queue, the workers, and the pool.
/// Cheap to share behind an `Arc`; [`Engine::drain`] is idempotent.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
}

impl Engine {
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine::with_journal(cfg, None)
    }

    /// Build an engine appending lifecycle records to `journal`. Session
    /// ids resume *above* the highest id the journal's replay saw, so a
    /// restarted daemon never reuses an id that might still be in a
    /// client's hands.
    pub fn with_journal(cfg: EngineConfig, journal: Option<SessionJournal>) -> Engine {
        let first_id = journal
            .as_ref()
            .map(|j| u64::from(j.recovered().max_session) + 1)
            .unwrap_or(1);
        let shared = Arc::new(Shared {
            cfg,
            pool: ThreadPool::new(cfg.pool_workers.max(1)),
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            draining: AtomicBool::new(false),
            totals: Totals::default(),
            journal,
            started_at: Instant::now(),
            queue_age_us_hw: AtomicU64::new(0),
            svc_ema_us: AtomicU64::new(0),
            running: Mutex::new(BTreeMap::new()),
        });
        let workers = (0..cfg.session_workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Engine {
            shared,
            workers: Mutex::new(workers),
            next_id: AtomicU64::new(first_id),
        }
    }

    /// What the journal replay found at startup (`None` without a
    /// journal): the crash-forensics view of the previous run.
    pub fn recovered(&self) -> Option<&ReplaySummary> {
        self.shared.journal.as_ref().map(|j| j.recovered())
    }

    /// The live session journal, if any.
    pub fn journal(&self) -> Option<&SessionJournal> {
        self.shared.journal.as_ref()
    }

    pub fn config(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    pub fn totals(&self) -> TotalsSnapshot {
        self.shared.totals.snapshot()
    }

    pub fn queue_len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("queue mutex poisoned")
            .len()
    }

    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Admit a session, or answer immediately on the reply channel with
    /// `Busy` (queue full) / `Bye` (draining). Returns the session id.
    pub fn try_submit(&self, opts: String, trace: Vec<u8>, reply: Sender<Response>) -> u32 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) as u32;
        let mut q = self.shared.queue.lock().expect("queue mutex poisoned");
        if self.shared.draining.load(Ordering::Acquire) {
            drop(q);
            self.shared.journal_log(id, EV_BYE, 0, 0);
            let _ = reply.send(Response::new(
                Status::Bye,
                id,
                "kind: bye\nerror: server is draining\n",
            ));
            return id;
        }
        if q.len() >= self.shared.cfg.queue_depth {
            let hint = self.shared.retry_hint_ms(q.len());
            drop(q);
            self.shared.totals.busy.fetch_add(1, Ordering::Relaxed);
            OBS_BUSY.incr();
            self.shared.journal_log(id, EV_BUSY, 0, hint);
            let _ = reply.send(Response::new(
                Status::Busy,
                id,
                format!("kind: busy\nretry-after-ms: {hint}\n"),
            ));
            return id;
        }
        OBS_QUEUE_BYTES.add(trace.len() as u64);
        // Journaled under the queue lock, so a session's `admitted`
        // record always precedes its `started` record on disk.
        self.shared.journal_log(id, EV_ADMITTED, 0, q.len() as u64);
        q.push_back(Job {
            id,
            opts,
            trace,
            reply,
            queued_at: Instant::now(),
        });
        drop(q);
        self.shared.cond.notify_one();
        id
    }

    /// The STATS frame payload: engine totals, queue occupancy, and — when
    /// the obs layer is on — every gauge plus the full metrics JSON.
    pub fn stats_payload(&self) -> String {
        use std::fmt::Write;
        let t = self.totals();
        let mut s = String::new();
        let _ = writeln!(s, "kind: stats");
        let _ = writeln!(s, "sessions: {}", t.sessions);
        let _ = writeln!(s, "ok: {}", t.ok);
        let _ = writeln!(s, "racy: {}", t.racy);
        let _ = writeln!(s, "usage: {}", t.usage);
        let _ = writeln!(s, "degraded: {}", t.degraded);
        let _ = writeln!(s, "corrupt: {}", t.corrupt);
        let _ = writeln!(s, "poisoned: {}", t.poisoned);
        let _ = writeln!(s, "busy: {}", t.busy);
        let _ = writeln!(s, "queued: {}", self.queue_len());
        let _ = writeln!(s, "session-workers: {}", self.shared.cfg.session_workers);
        let _ = writeln!(s, "pool-workers: {}", self.shared.cfg.pool_workers);
        let enabled = stint_obs::is_enabled();
        let _ = writeln!(s, "obs: {}", if enabled { "enabled" } else { "disabled" });
        if stint_obs::registry_initialized() {
            for (name, cur, hw) in stint_obs::gauges_snapshot() {
                let _ = writeln!(s, "gauge {name} {cur} {hw}");
            }
            for (status, h) in latency_histograms() {
                let _ = writeln!(
                    s,
                    "latency-ms {status} count {} p50 {:.2} p99 {:.2}",
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.99)
                );
            }
        }
        if enabled {
            s.push_str("metrics:\n");
            s.push_str(&stint_obs::metrics_json());
        }
        s
    }

    /// Watermark of how long any job has waited in the queue, in
    /// milliseconds (measured at worker pickup).
    pub fn queue_age_hw_ms(&self) -> u64 {
        self.shared.queue_age_us_hw.load(Ordering::Relaxed) / 1000
    }

    /// The measured `retry-after-ms` hint a Busy bounce would carry right
    /// now.
    pub fn retry_hint_ms(&self) -> u64 {
        self.shared.retry_hint_ms(self.queue_len())
    }

    /// The HEALTH frame payload: uptime, queue state, the live in-flight
    /// set, the journal/crash-recovery digest, and per-status latency
    /// quantiles when the obs layer is on.
    pub fn health_payload(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "kind: health");
        let _ = writeln!(
            s,
            "uptime-ms: {}",
            self.shared.started_at.elapsed().as_millis()
        );
        let _ = writeln!(
            s,
            "draining: {}",
            if self.is_draining() { "true" } else { "false" }
        );
        let _ = writeln!(s, "queued: {}", self.queue_len());
        let _ = writeln!(s, "queue-age-hw-ms: {}", self.queue_age_hw_ms());
        let _ = writeln!(s, "retry-after-ms: {}", self.retry_hint_ms());
        {
            let running = self
                .shared
                .running
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let _ = writeln!(s, "in-flight: {}", running.len());
            if !running.is_empty() {
                let ids: Vec<String> = running.keys().map(|id| id.to_string()).collect();
                let _ = writeln!(s, "in-flight-ids: {}", ids.join(","));
            }
        }
        match &self.shared.journal {
            Some(j) => {
                let _ = writeln!(
                    s,
                    "journal: {}",
                    j.path()
                        .map(|p| p.display().to_string())
                        .unwrap_or_else(|| "<sink>".into())
                );
                let _ = writeln!(s, "journal-records: {}", j.records_appended());
                let rec = j.recovered();
                let _ = writeln!(s, "recovered-records: {}", rec.records);
                let _ = writeln!(s, "recovered-in-flight: {}", rec.in_flight().len());
                if !rec.in_flight().is_empty() {
                    let ids: Vec<String> =
                        rec.in_flight().iter().map(|id| id.to_string()).collect();
                    let _ = writeln!(s, "recovered-in-flight-ids: {}", ids.join(","));
                }
                if let Some(c) = &rec.corruption {
                    let _ = writeln!(s, "recovered-corruption: {c}");
                }
            }
            None => {
                let _ = writeln!(s, "journal: off");
            }
        }
        let _ = writeln!(
            s,
            "flight-records: {}",
            stint_obs::flight::records_written()
        );
        if stint_obs::registry_initialized() {
            for (status, h) in latency_histograms() {
                let _ = writeln!(
                    s,
                    "latency-ms {status} count {} p50 {:.2} p99 {:.2}",
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.99)
                );
            }
        }
        s
    }

    /// Graceful drain: stop admitting, finish every queued session, park
    /// the workers. Idempotent — later calls (and calls racing from several
    /// transport threads) join nothing and return immediately.
    pub fn drain(&self) {
        let first = !self.shared.draining.swap(true, Ordering::AcqRel);
        self.shared.cond.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers mutex poisoned"));
        for h in workers {
            let _ = h.join();
        }
        if first {
            // One drain record after the queue has emptied: the journal's
            // last word is "everything admitted was answered".
            self.shared.journal_log(
                0,
                EV_DRAINED,
                0,
                self.shared.totals.sessions.load(Ordering::Relaxed),
            );
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue mutex poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                q = shared.cond.wait(q).expect("queue mutex poisoned");
            }
        };
        // Gauge discipline: gauges and the in-flight set move *outside*
        // the unwind boundary, so a poisoned or timed-out session still
        // balances them.
        OBS_QUEUE_BYTES.sub(job.trace.len() as u64);
        OBS_INFLIGHT.add(1);
        shared.totals.sessions.fetch_add(1, Ordering::Relaxed);
        OBS_SESSIONS.incr();
        let queue_age = job.queued_at.elapsed();
        shared
            .queue_age_us_hw
            .fetch_max(queue_age.as_micros() as u64, Ordering::Relaxed);
        OBS_QUEUE_AGE.observe(queue_age.as_millis() as u64);
        shared
            .running
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(job.id, job.queued_at);
        shared.journal_log(job.id, EV_STARTED, 0, queue_age.as_millis() as u64);
        let run_start = Instant::now();
        let (verdict, payload) = match catch_unwind(AssertUnwindSafe(|| run_session(shared, &job)))
        {
            Ok(vp) => vp,
            Err(p) => error_payload(&DetectorError::from_panic(p)),
        };
        // Feed the measured drain rate (plain atomics — works with obs
        // off): ema ← (7·ema + sample) / 8.
        let svc_us = run_start.elapsed().as_micros() as u64;
        let _ = shared
            .svc_ema_us
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |ema| {
                Some(if ema == 0 {
                    svc_us
                } else {
                    (7 * ema + svc_us) / 8
                })
            });
        let latency_ms = job.queued_at.elapsed().as_millis() as u64;
        verdict.latency_hist().observe(latency_ms);
        OBS_INFLIGHT.sub(1);
        shared
            .running
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&job.id);
        bump(&shared.totals, verdict);
        if verdict == Verdict::Degraded && payload.contains("wall-clock budget") {
            shared.journal_log(job.id, EV_TIMEOUT, verdict.code(), latency_ms);
        }
        // Verdict is journaled *before* the reply leaves: a session whose
        // answer a client has seen always has its verdict on disk.
        shared.journal_log(job.id, EV_VERDICT, verdict.code(), latency_ms);
        let _ = job
            .reply
            .send(Response::new(verdict.status(), job.id, payload));
    }
}

fn bump(totals: &Totals, v: Verdict) {
    let (cell, obs) = match v {
        Verdict::Ok => (&totals.ok, &OBS_OK),
        Verdict::Racy => (&totals.racy, &OBS_RACY),
        Verdict::Usage => (&totals.usage, &OBS_USAGE),
        Verdict::Degraded => (&totals.degraded, &OBS_DEGRADED),
        Verdict::Corrupt => (&totals.corrupt, &OBS_CORRUPT),
        Verdict::Poisoned => (&totals.poisoned, &OBS_POISONED),
    };
    cell.fetch_add(1, Ordering::Relaxed);
    obs.incr();
}

/// One session, start to verdict. Runs under the worker's `catch_unwind`;
/// everything that can fail comes back as a structured verdict.
fn run_session(shared: &Shared, job: &Job) -> (Verdict, String) {
    let opts = match SessionOpts::parse(&job.opts) {
        Ok(o) => o,
        Err(e) => return (Verdict::Usage, format!("kind: usage\nerror: {e}\n")),
    };
    // Chaos knob: every Nth session dies mid-flight. The worker's
    // catch_unwind turns this into a poisoned reply; neighbors are
    // untouched.
    if let Some(n) = stint_faults::serve_panic_session() {
        if u64::from(job.id) % n == 0 {
            panic!("injected serve session panic (session {})", job.id);
        }
    }
    if let Some(ms) = opts.stall_ms {
        std::thread::sleep(Duration::from_millis(ms));
    }
    let mut budget = ResourceBudget::default();
    if let Some(mb) = opts.max_shadow_mb {
        budget = budget.with_shadow_mb(mb);
    }
    budget.max_intervals = opts.max_intervals;
    let timeout = opts.timeout_ms.unwrap_or(shared.cfg.default_timeout_ms);
    let limits = SessionLimits {
        budget,
        ..SessionLimits::default()
    }
    .timeout_after(Duration::from_millis(timeout));
    let bcfg = BatchConfig {
        shards: opts.shards.unwrap_or_else(|| BatchConfig::default().shards),
        witnesses: opts.witness,
        ..BatchConfig::default()
    };
    let result = match sniff_magic(&job.trace) {
        // v2 streams straight off the frame buffer chunk by chunk: peak
        // detector-side memory is one chunk plus the shard detectors.
        TraceMagic::V2 => {
            batch_detect_chunked_limited_on(&shared.pool, &job.trace[..], &bcfg, &limits)
        }
        TraceMagic::V1 => load_trace(&job.trace[..])
            .and_then(|pt| batch_detect_limited_on(&shared.pool, &pt, &bcfg, &limits)),
        TraceMagic::Unknown => Err(DetectorError::CorruptTrace {
            detail: "unrecognized trace magic (expected STINT-TRACE v1 or v2)".into(),
        }),
    };
    match result {
        Ok(mut out) => {
            use std::fmt::Write;
            let verdict = if out.degraded.is_some() {
                Verdict::Degraded
            } else if !out.merged.is_race_free() {
                Verdict::Racy
            } else {
                Verdict::Ok
            };
            let mut p = String::new();
            let _ = writeln!(p, "kind: {}", verdict.kind());
            let _ = writeln!(p, "races: {}", out.merged.racy_words.len());
            let _ = writeln!(p, "events: {}", out.events);
            let _ = writeln!(p, "strands: {}", out.strands);
            let _ = writeln!(p, "wall-ms: {}", out.wall.as_millis());
            if opts.witness {
                // Count every captured witness, then cap what actually rides
                // the wire: regions past the cap keep their race record but
                // drop witness detail, so a pathological report can't blow
                // the reply frame up. The counts make the cap visible.
                let captured = out
                    .merged
                    .regions
                    .iter()
                    .filter(|r| r.witness.is_some())
                    .count();
                OBS_WITNESSES.add(captured as u64);
                let mut shown = 0usize;
                for r in &mut out.merged.regions {
                    if r.witness.is_none() {
                        continue;
                    }
                    if shown < MAX_WIRE_WITNESSES {
                        shown += 1;
                    } else {
                        r.witness = None;
                    }
                }
                let _ = writeln!(p, "witnesses: {captured}");
                let _ = writeln!(p, "witnesses-shown: {shown}");
            }
            if let Some(e) = &out.degraded {
                let _ = writeln!(p, "error: {e}");
            }
            p.push_str("report:\n");
            p.push_str(&out.merged.render());
            (verdict, p)
        }
        Err(e) => error_payload(&e),
    }
}

fn error_payload(e: &DetectorError) -> (Verdict, String) {
    let v = match e {
        DetectorError::ResourceExhausted { .. } => Verdict::Degraded,
        DetectorError::Poisoned { .. } => Verdict::Poisoned,
        DetectorError::CorruptTrace { .. } => Verdict::Corrupt,
    };
    (v, format!("kind: {}\nerror: {e}\n", v.kind()))
}
