//! The session journal: every lifecycle transition of every session,
//! appended as a checksummed `stint-journal-v1` record (see
//! `stint::journal` for the framing) and mirrored into the obs flight
//! recorder. After a crash, [`SessionJournal::open`] replays the file and
//! reports the sessions that were admitted but never reached a verdict —
//! the daemon's post-mortem answer to "what was in flight".
//!
//! ## Record payload (`SessionEvent`)
//!
//! Six LEB128 varints: `seq`, `t_ms` (milliseconds since the journal was
//! opened), `session`, `kind`, `code`, `payload`. Kinds are the lifecycle
//! transitions below; `code` carries the verdict kind on `verdict`
//! records; `payload` is one context word (queue length on admission,
//! latency ms on verdict, retry hint on busy).
//!
//! | kind | meaning | code | payload |
//! |---|---|---|---|
//! | `admitted` | session entered the queue | 0 | queue length |
//! | `started` | a worker picked it up | 0 | queue-age ms |
//! | `verdict` | session finished | verdict code | latency ms |
//! | `busy` | bounced, queue full | 0 | retry-after ms |
//! | `timeout` | verdict was a wall-clock degrade | 0 | budget ms |
//! | `drained` | daemon drain (session 0) | 0 | sessions completed |
//! | `bye` | bounced, daemon draining | 0 | 0 |
//!
//! Opening a journal with a torn or corrupted tail **repairs** it: the
//! intact prefix is rewritten in place and appending resumes after it, so
//! records written before the damage are never lost and the file never
//! accumulates unparsable bytes mid-stream. The corruption detail is kept
//! in the replay summary for the HEALTH frame and the `journal` CLI.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use stint::journal::{replay, FsyncPolicy, JournalWriter, MAGIC};
use stint_obs::Counter;

/// Journal append I/O failures (the session proceeds; its record is lost).
static OBS_JOURNAL_ERRORS: Counter = Counter::new("serve.journal.errors");
/// Records appended to the session journal.
static OBS_JOURNAL_RECORDS: Counter = Counter::new("serve.journal.records");

// Lifecycle event kinds — shared between the journal records and the
// flight-recorder `kind` field.
pub const EV_ADMITTED: u16 = 1;
pub const EV_STARTED: u16 = 2;
pub const EV_VERDICT: u16 = 3;
pub const EV_BUSY: u16 = 4;
pub const EV_TIMEOUT: u16 = 5;
pub const EV_DRAINED: u16 = 6;
pub const EV_BYE: u16 = 7;

/// Human name of a lifecycle event kind.
pub fn event_name(kind: u16) -> &'static str {
    match kind {
        EV_ADMITTED => "admitted",
        EV_STARTED => "started",
        EV_VERDICT => "verdict",
        EV_BUSY => "busy",
        EV_TIMEOUT => "timeout",
        EV_DRAINED => "drained",
        EV_BYE => "bye",
        _ => "unknown",
    }
}

/// Human name of a verdict code (the `code` field of `verdict` records;
/// same order as the engine's verdict enum).
pub fn verdict_name(code: u16) -> &'static str {
    match code {
        0 => "ok",
        1 => "racy",
        2 => "usage",
        3 => "degraded",
        4 => "corrupt",
        5 => "poisoned",
        _ => "unknown",
    }
}

/// One decoded journal record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionEvent {
    pub seq: u64,
    /// Milliseconds since the journal epoch (open time of the writer that
    /// appended this record).
    pub t_ms: u64,
    pub session: u32,
    pub kind: u16,
    /// Verdict code on `verdict` records, 0 otherwise.
    pub code: u16,
    /// One context word (see the kind table in the module docs).
    pub payload: u64,
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err("short varint".into());
        };
        *pos += 1;
        if shift >= 64 {
            return Err("varint overflow".into());
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

impl SessionEvent {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        put_varint(&mut out, self.seq);
        put_varint(&mut out, self.t_ms);
        put_varint(&mut out, u64::from(self.session));
        put_varint(&mut out, u64::from(self.kind));
        put_varint(&mut out, u64::from(self.code));
        put_varint(&mut out, self.payload);
        out
    }

    /// Decode one record payload. Trailing bytes are tolerated (forward
    /// compatibility: a later version may append fields).
    pub fn decode(buf: &[u8]) -> Result<SessionEvent, String> {
        let mut pos = 0usize;
        let seq = get_varint(buf, &mut pos)?;
        let t_ms = get_varint(buf, &mut pos)?;
        let session = get_varint(buf, &mut pos)?;
        let kind = get_varint(buf, &mut pos)?;
        let code = get_varint(buf, &mut pos)?;
        let payload = get_varint(buf, &mut pos)?;
        let narrow = |v: u64, what: &str| -> Result<u64, String> {
            if v > u64::from(u32::MAX) {
                Err(format!("{what} out of range: {v}"))
            } else {
                Ok(v)
            }
        };
        Ok(SessionEvent {
            seq,
            t_ms,
            session: narrow(session, "session id")? as u32,
            kind: kind.min(u64::from(u16::MAX)) as u16,
            code: code.min(u64::from(u16::MAX)) as u16,
            payload,
        })
    }
}

/// What a journal replay found: the event-level digest the daemon reports
/// on startup and the `journal` CLI prints.
#[derive(Clone, Debug, Default)]
pub struct ReplaySummary {
    /// Intact records decoded.
    pub records: u64,
    /// Frames that passed the checksum but did not decode as events.
    pub decode_errors: u64,
    /// Framing-level damage detail (torn tail, checksum mismatch, …).
    pub corruption: Option<String>,
    /// Sessions with an `admitted` record.
    pub admitted: BTreeSet<u32>,
    /// Sessions with a `verdict` record.
    pub finished: BTreeSet<u32>,
    /// Busy bounces journaled.
    pub busy_bounced: u64,
    /// Daemon drains journaled.
    pub drains: u64,
    /// Highest session id seen (restart seeds ids above this).
    pub max_session: u32,
    /// Verdict-name → count.
    pub verdicts: BTreeMap<&'static str, u64>,
}

impl ReplaySummary {
    /// Sessions admitted but never finished — what was in flight (queued
    /// or running) when the journal stopped.
    pub fn in_flight(&self) -> BTreeSet<u32> {
        self.admitted.difference(&self.finished).copied().collect()
    }

    pub fn is_clean(&self) -> bool {
        self.corruption.is_none() && self.decode_errors == 0
    }

    /// Fold one event into the digest.
    fn absorb(&mut self, ev: &SessionEvent) {
        self.records += 1;
        self.max_session = self.max_session.max(ev.session);
        match ev.kind {
            EV_ADMITTED => {
                self.admitted.insert(ev.session);
            }
            EV_VERDICT => {
                self.finished.insert(ev.session);
                *self.verdicts.entry(verdict_name(ev.code)).or_insert(0) += 1;
            }
            EV_BUSY => self.busy_bounced += 1,
            EV_DRAINED => self.drains += 1,
            _ => {}
        }
    }

    /// Digest raw journal frames (the output of `stint::journal::replay`).
    pub fn from_frames(frames: &[Vec<u8>], corruption: Option<String>) -> ReplaySummary {
        let mut s = ReplaySummary {
            corruption,
            ..ReplaySummary::default()
        };
        for f in frames {
            match SessionEvent::decode(f) {
                Ok(ev) => s.absorb(&ev),
                Err(_) => s.decode_errors += 1,
            }
        }
        s
    }

    /// Multi-line human rendering (the `journal replay` subcommand and the
    /// daemon's startup report).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "records: {}", self.records);
        let _ = writeln!(
            s,
            "clean: {}",
            if self.is_clean() { "true" } else { "false" }
        );
        if let Some(c) = &self.corruption {
            let _ = writeln!(s, "corruption: {c}");
        }
        if self.decode_errors > 0 {
            let _ = writeln!(s, "decode-errors: {}", self.decode_errors);
        }
        let _ = writeln!(s, "admitted: {}", self.admitted.len());
        let _ = writeln!(s, "finished: {}", self.finished.len());
        let _ = writeln!(s, "busy-bounced: {}", self.busy_bounced);
        let _ = writeln!(s, "drains: {}", self.drains);
        let _ = writeln!(s, "max-session: {}", self.max_session);
        for (name, n) in &self.verdicts {
            let _ = writeln!(s, "verdict {name}: {n}");
        }
        let inflight = self.in_flight();
        let _ = writeln!(s, "in-flight: {}", inflight.len());
        if !inflight.is_empty() {
            let ids: Vec<String> = inflight.iter().map(|id| id.to_string()).collect();
            let _ = writeln!(s, "in-flight-ids: {}", ids.join(","));
        }
        s
    }
}

/// Replay a journal file into (decoded events, summary). Never panics on
/// damage — the summary carries the corruption detail and the intact
/// prefix. A missing file is a clean empty journal.
pub fn replay_file(path: &Path) -> io::Result<(Vec<SessionEvent>, ReplaySummary)> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let rep = replay(&bytes[..])?;
    let summary = ReplaySummary::from_frames(&rep.records, rep.corruption);
    let events = rep
        .records
        .iter()
        .filter_map(|f| SessionEvent::decode(f).ok())
        .collect();
    Ok((events, summary))
}

/// The live journal the engine appends to: a `stint::journal` writer
/// behind a mutex, plus the replay summary of whatever the file held when
/// it was opened.
pub struct SessionJournal {
    writer: Mutex<JournalWriter>,
    seq: AtomicU64,
    epoch: Instant,
    path: Option<PathBuf>,
    recovered: ReplaySummary,
    fsync: FsyncPolicy,
}

impl SessionJournal {
    /// Open (or create) the journal at `path`. An existing file is
    /// replayed first; a damaged tail is repaired in place (the intact
    /// prefix is rewritten, appending resumes after it) and reported via
    /// [`SessionJournal::recovered`].
    pub fn open(path: &Path, fsync: FsyncPolicy) -> io::Result<SessionJournal> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let rep = replay(&bytes[..])?;
        let recovered = ReplaySummary::from_frames(&rep.records, rep.corruption.clone());
        let writer = if bytes.is_empty() {
            JournalWriter::create(Box::new(File::create(path)?), fsync)?
        } else if rep.is_clean() {
            let f = OpenOptions::new().append(true).open(path)?;
            JournalWriter::append_to(Box::new(f), fsync)
        } else {
            // Repair: rewrite the intact prefix so the damage does not sit
            // mid-stream under new appends.
            let mut w = JournalWriter::create(Box::new(File::create(path)?), fsync)?;
            for frame in &rep.records {
                w.append(frame)?;
            }
            w
        };
        Ok(SessionJournal {
            writer: Mutex::new(writer),
            seq: AtomicU64::new(recovered.records),
            epoch: Instant::now(),
            path: Some(path.to_path_buf()),
            recovered,
            fsync,
        })
    }

    /// Journal into an in-memory (or any custom) sink — tests.
    pub fn from_sink(sink: Box<dyn stint::journal::JournalSink>) -> io::Result<SessionJournal> {
        let writer = JournalWriter::create(sink, FsyncPolicy::Off)?;
        Ok(SessionJournal {
            writer: Mutex::new(writer),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
            path: None,
            recovered: ReplaySummary::default(),
            fsync: FsyncPolicy::Off,
        })
    }

    /// What the journal held when it was opened (crash forensics).
    pub fn recovered(&self) -> &ReplaySummary {
        &self.recovered
    }

    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// Append one lifecycle event. Journal I/O failure never fails the
    /// session — it is counted (`serve.journal.errors`) and the record is
    /// dropped.
    pub fn log(&self, session: u32, kind: u16, code: u16, payload: u64) {
        let ev = SessionEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_ms: self.epoch.elapsed().as_millis() as u64,
            session,
            kind,
            code,
            payload,
        };
        let frame = ev.encode();
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        match w.append(&frame) {
            Ok(()) => OBS_JOURNAL_RECORDS.incr(),
            Err(_) => OBS_JOURNAL_ERRORS.incr(),
        }
    }

    /// Records appended by *this* process (excludes recovered ones).
    pub fn records_appended(&self) -> u64 {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records()
    }
}

/// Validate a journal byte stream for the `jsoncheck journal` gate:
/// `Ok(records)` when the magic line parses, every frame checksums, and
/// every record decodes as a [`SessionEvent`]; `Err(detail)` otherwise.
pub fn validate_stream<R: Read>(r: R) -> Result<u64, String> {
    let mut br = io::BufReader::new(r);
    let mut bytes = Vec::new();
    br.read_to_end(&mut bytes)
        .map_err(|e| format!("read: {e}"))?;
    if bytes.is_empty() {
        return Ok(0);
    }
    if !bytes.starts_with(MAGIC.as_bytes()) {
        return Err(format!("missing {MAGIC:?} magic line"));
    }
    let rep = replay(&bytes[..]).map_err(|e| format!("io: {e}"))?;
    if let Some(c) = rep.corruption {
        return Err(c);
    }
    for (i, frame) in rep.records.iter().enumerate() {
        SessionEvent::decode(frame).map_err(|e| format!("record {}: {e}", i + 1))?;
    }
    Ok(rep.records.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_codec_round_trips() {
        let ev = SessionEvent {
            seq: 42,
            t_ms: 123_456,
            session: 7,
            kind: EV_VERDICT,
            code: 1,
            payload: 99,
        };
        assert_eq!(SessionEvent::decode(&ev.encode()), Ok(ev));
        let short = &ev.encode()[..3];
        assert!(SessionEvent::decode(short).is_err());
    }

    #[test]
    fn summary_computes_in_flight_as_admitted_minus_finished() {
        let mk = |session, kind, code| SessionEvent {
            seq: 0,
            t_ms: 0,
            session,
            kind,
            code,
            payload: 0,
        };
        let frames: Vec<Vec<u8>> = [
            mk(1, EV_ADMITTED, 0),
            mk(2, EV_ADMITTED, 0),
            mk(3, EV_ADMITTED, 0),
            mk(1, EV_STARTED, 0),
            mk(1, EV_VERDICT, 0),
            mk(4, EV_BUSY, 0),
            mk(2, EV_STARTED, 0),
        ]
        .iter()
        .map(|e| e.encode())
        .collect();
        let s = ReplaySummary::from_frames(&frames, None);
        assert_eq!(s.records, 7);
        assert!(s.is_clean());
        assert_eq!(s.in_flight(), BTreeSet::from([2, 3]));
        assert_eq!(s.busy_bounced, 1);
        assert_eq!(s.max_session, 4);
        assert_eq!(s.verdicts.get("ok"), Some(&1));
        let shown = s.render();
        assert!(shown.contains("in-flight: 2"), "{shown}");
        assert!(shown.contains("in-flight-ids: 2,3"), "{shown}");
    }

    #[test]
    fn open_replay_repair_cycle() {
        let dir = std::env::temp_dir().join(format!("stint-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("j1.journal");
        let _ = std::fs::remove_file(&path);
        {
            let j = SessionJournal::open(&path, FsyncPolicy::Off).expect("open fresh");
            assert!(j.recovered().is_clean());
            assert_eq!(j.recovered().records, 0);
            j.log(1, EV_ADMITTED, 0, 0);
            j.log(1, EV_VERDICT, 0, 12);
            j.log(2, EV_ADMITTED, 0, 1);
            assert_eq!(j.records_appended(), 3);
        }
        // Reopen: session 2 is in flight.
        {
            let j = SessionJournal::open(&path, FsyncPolicy::Off).expect("reopen");
            assert_eq!(j.recovered().records, 3);
            assert_eq!(j.recovered().in_flight(), BTreeSet::from([2]));
        }
        // Tear the tail and reopen: the damage is reported and repaired.
        let mut bytes = std::fs::read(&path).expect("read");
        let torn = bytes.len() - 2;
        bytes.truncate(torn);
        std::fs::write(&path, &bytes).expect("tear");
        {
            let j = SessionJournal::open(&path, FsyncPolicy::Off).expect("open torn");
            assert!(!j.recovered().is_clean());
            assert_eq!(j.recovered().records, 2, "intact prefix survives");
            j.log(3, EV_ADMITTED, 0, 0);
        }
        // After the repair + append, the file replays clean with 3 records.
        let (events, summary) = replay_file(&path).expect("replay");
        assert!(summary.is_clean(), "{:?}", summary.corruption);
        assert_eq!(summary.records, 3);
        assert_eq!(events.last().map(|e| e.session), Some(3));
        assert_eq!(
            validate_stream(&std::fs::read(&path).expect("read")[..]),
            Ok(3)
        );
        let _ = std::fs::remove_file(&path);
    }
}
