//! `stint-serve` — the detection-as-a-service daemon and its client-side
//! helpers.
//!
//! ```text
//! stint-serve serve [--stdio | --socket PATH] [options]   run the daemon
//! stint-serve frame detect [--opts SPEC] FILE|-           emit a DETECT frame
//! stint-serve frame stats|shutdown|ping                   emit a control frame
//! stint-serve decode                                      pretty-print response frames
//! stint-serve send --socket PATH [--opts SPEC] FILE...    one-shot client
//! ```
//!
//! `frame` writes request frames to stdout, so shell pipelines build a whole
//! conversation by concatenation:
//!
//! ```text
//! { stint-serve frame ping; stint-serve frame detect t.trace; \
//!   stint-serve frame shutdown; } | stint-serve serve --stdio | stint-serve decode
//! ```
//!
//! `decode` exits 1 if the response stream is truncated or damaged (the
//! `serve-trunc-frame` chaos knob produces exactly that), 0 otherwise.
//! `send` exits with the worst status it saw, mapped onto the CLI's 0–4
//! exit-code contract.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::sync::Arc;

use stint_serve::protocol::{self, FrameError, Request};
use stint_serve::server;
use stint_serve::{Engine, EngineConfig};

const USAGE: &str = "\
stint-serve — detection as a service

USAGE:
  stint-serve serve [--stdio | --socket PATH]
        [--session-workers N] [--queue-depth N] [--pool-workers N]
        [--timeout-ms N] [--retry-after-ms N] [--idle-timeout-ms N]
        [--fault-plan SPEC] [--obs SPEC]
  stint-serve frame detect [--opts SPEC] FILE|-
  stint-serve frame stats|shutdown|ping
  stint-serve decode
  stint-serve send --socket PATH [--opts SPEC] [--stats] [--ping]
        [--shutdown] [FILE...]

Session opts (DETECT frames): shards=K, timeout-ms=N, max-shadow-mb=N,
max-intervals=N, stall-ms=N.

Response statuses: 0 ok, 1 racy, 2 usage, 3 degraded, 4 corrupt (kind
corrupt|poisoned), 5 busy (retry-after-ms hint), 6 bye.";

fn main() -> ExitCode {
    stint_serve::install_panic_hook();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let args: Vec<&str> = argv.iter().map(String::as_str).collect();
    match args.first().copied() {
        None | Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some("serve") => cmd_serve(&args[1..]),
        Some("frame") => cmd_frame(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("send") => cmd_send(&args[1..]),
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, val: Option<&&str>) -> Result<T, String> {
    let v = val.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("{flag}: {v:?} is not a valid number"))
}

fn cmd_serve(args: &[&str]) -> Result<ExitCode, String> {
    let mut cfg = EngineConfig::default();
    let mut socket: Option<String> = None;
    let mut stdio = false;
    let mut idle_timeout_ms = 30_000u64;
    let mut fault_plan: Option<String> = None;
    let mut obs_spec: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match *a {
            "--stdio" => stdio = true,
            "--socket" => {
                socket = Some(
                    it.next()
                        .ok_or_else(|| "--socket needs a path".to_string())?
                        .to_string(),
                )
            }
            "--session-workers" => cfg.session_workers = parse_num(a, it.next())?,
            "--queue-depth" => cfg.queue_depth = parse_num(a, it.next())?,
            "--pool-workers" => cfg.pool_workers = parse_num(a, it.next())?,
            "--timeout-ms" => cfg.default_timeout_ms = parse_num(a, it.next())?,
            "--retry-after-ms" => cfg.retry_after_ms = parse_num(a, it.next())?,
            "--idle-timeout-ms" => idle_timeout_ms = parse_num(a, it.next())?,
            "--fault-plan" => {
                fault_plan = Some(
                    it.next()
                        .ok_or_else(|| "--fault-plan needs a spec".to_string())?
                        .to_string(),
                )
            }
            "--obs" => {
                obs_spec = Some(
                    it.next()
                        .ok_or_else(|| "--obs needs a spec".to_string())?
                        .to_string(),
                )
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    if stdio && socket.is_some() {
        return Err("--stdio and --socket are mutually exclusive".into());
    }
    // Fault plans and observability: environment first, then the flag
    // (which wins) — and both before the engine exists, because fault knobs
    // are sampled at construction time. A malformed spec names its
    // offending token and exits 2.
    stint_faults::install_from_env().map_err(|e| e.to_string())?;
    if let Some(spec) = &fault_plan {
        let plan = stint_faults::FaultPlan::parse(spec)
            .map_err(|e| format!("--fault-plan {spec:?}: {e}"))?;
        stint_faults::install(plan);
    }
    stint::obs::enable_from_env().map_err(|e| e.to_string())?;
    if let Some(spec) = &obs_spec {
        match stint::obs::ObsConfig::parse(spec).map_err(|e| format!("--obs {spec:?}: {e}"))? {
            Some(c) => stint::obs::enable(c),
            None => stint::obs::disable(),
        }
    }
    let engine = Arc::new(Engine::new(cfg));
    server::install_signal_handlers();
    if let Some(path) = socket {
        eprintln!("stint-serve: listening on {path}");
        server::run_socket(&engine, &path, idle_timeout_ms).map_err(|e| e.to_string())?;
    } else {
        server::run_stdio(&engine).map_err(|e| e.to_string())?;
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_frame(args: &[&str]) -> Result<ExitCode, String> {
    let mut stdout = io::stdout().lock();
    let req = match args.first().copied() {
        Some("stats") => Request::Stats,
        Some("shutdown") => Request::Shutdown,
        Some("ping") => Request::Ping,
        Some("detect") => {
            let mut opts = String::new();
            let mut file: Option<&str> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match *a {
                    "--opts" => {
                        opts = it
                            .next()
                            .ok_or_else(|| "--opts needs a spec".to_string())?
                            .to_string()
                    }
                    other => file = Some(other),
                }
            }
            let file = file.ok_or_else(|| "frame detect needs a trace file (or -)".to_string())?;
            let trace = read_input(file)?;
            Request::Detect { opts, trace }
        }
        _ => return Err("frame needs one of: detect, stats, shutdown, ping".into()),
    };
    protocol::write_request(&mut stdout, &req).map_err(|e| format!("write frame: {e}"))?;
    stdout.flush().map_err(|e| format!("write frame: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

fn read_input(path: &str) -> Result<Vec<u8>, String> {
    let mut buf = Vec::new();
    if path == "-" {
        io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("read stdin: {e}"))?;
    } else {
        buf = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    }
    Ok(buf)
}

fn cmd_decode(args: &[&str]) -> Result<ExitCode, String> {
    if !args.is_empty() {
        return Err("decode takes no arguments (responses on stdin)".into());
    }
    let mut stdin = io::stdin().lock();
    loop {
        match protocol::read_response(&mut stdin) {
            Ok(None) => return Ok(ExitCode::SUCCESS),
            Ok(Some(resp)) => {
                println!("-- session {}: {}", resp.session, resp.status);
                for line in resp.payload.lines() {
                    println!("   {line}");
                }
            }
            Err(FrameError::Malformed(m)) => {
                eprintln!("decode: response stream damaged: {m}");
                return Ok(ExitCode::from(1));
            }
            Err(FrameError::Io(e)) => return Err(format!("read responses: {e}")),
        }
    }
}

fn cmd_send(args: &[&str]) -> Result<ExitCode, String> {
    let mut socket: Option<&str> = None;
    let mut opts = String::new();
    let mut stats = false;
    let mut ping = false;
    let mut shutdown = false;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match *a {
            "--socket" => socket = it.next().copied(),
            "--opts" => {
                opts = it
                    .next()
                    .ok_or_else(|| "--opts needs a spec".to_string())?
                    .to_string()
            }
            "--stats" => stats = true,
            "--ping" => ping = true,
            "--shutdown" => shutdown = true,
            other => files.push(other),
        }
    }
    let socket = socket.ok_or_else(|| "send needs --socket PATH".to_string())?;
    if files.is_empty() && !stats && !ping && !shutdown {
        return Err("send needs at least one trace file or --stats/--ping/--shutdown".into());
    }
    let stream = UnixStream::connect(socket).map_err(|e| format!("connect {socket}: {e}"))?;
    let mut reader = stream
        .try_clone()
        .map_err(|e| format!("clone socket: {e}"))?;
    let mut w = io::BufWriter::new(stream);
    let mut expected = 0usize;
    if ping {
        protocol::write_request(&mut w, &Request::Ping).map_err(|e| e.to_string())?;
        expected += 1;
    }
    for f in &files {
        let trace = read_input(f)?;
        protocol::write_request(
            &mut w,
            &Request::Detect {
                opts: opts.clone(),
                trace,
            },
        )
        .map_err(|e| e.to_string())?;
        expected += 1;
    }
    if stats {
        protocol::write_request(&mut w, &Request::Stats).map_err(|e| e.to_string())?;
        expected += 1;
    }
    if shutdown {
        protocol::write_request(&mut w, &Request::Shutdown).map_err(|e| e.to_string())?;
        expected += 1;
    }
    w.flush().map_err(|e| e.to_string())?;
    let mut worst = 0u8;
    for _ in 0..expected {
        match protocol::read_response(&mut reader) {
            Ok(None) => break,
            Ok(Some(resp)) => {
                println!("-- session {}: {}", resp.session, resp.status);
                for line in resp.payload.lines() {
                    println!("   {line}");
                }
                worst = worst.max(resp.status.exit_code());
            }
            Err(FrameError::Malformed(m)) => {
                eprintln!("send: response stream damaged: {m}");
                return Ok(ExitCode::from(4));
            }
            Err(FrameError::Io(e)) => return Err(format!("read responses: {e}")),
        }
    }
    Ok(ExitCode::from(worst))
}
