//! `stint-serve` — the detection-as-a-service daemon and its client-side
//! helpers.
//!
//! ```text
//! stint-serve serve [--stdio | --socket PATH] [options]   run the daemon
//! stint-serve frame detect [--opts SPEC] FILE|-           emit a DETECT frame
//! stint-serve frame stats|shutdown|ping                   emit a control frame
//! stint-serve decode                                      pretty-print response frames
//! stint-serve send --socket PATH [--opts SPEC] FILE...    one-shot client
//! ```
//!
//! `frame` writes request frames to stdout, so shell pipelines build a whole
//! conversation by concatenation:
//!
//! ```text
//! { stint-serve frame ping; stint-serve frame detect t.trace; \
//!   stint-serve frame shutdown; } | stint-serve serve --stdio | stint-serve decode
//! ```
//!
//! `decode` exits 1 if the response stream is truncated or damaged (the
//! `serve-trunc-frame` chaos knob produces exactly that), 0 otherwise.
//! `send` exits with the worst status it saw, mapped onto the CLI's 0–4
//! exit-code contract.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::sync::Arc;

use stint_serve::protocol::{self, FrameError, Request};
use stint_serve::server;
use stint_serve::{Engine, EngineConfig};

const USAGE: &str = "\
stint-serve — detection as a service

USAGE:
  stint-serve serve [--stdio | --socket PATH]
        [--session-workers N] [--queue-depth N] [--pool-workers N]
        [--timeout-ms N] [--retry-after-ms N] [--idle-timeout-ms N]
        [--fault-plan SPEC] [--obs SPEC]
        [--journal PATH] [--journal-fsync always|off|every=N]
        [--prom-out PATH] [--flight-dump PATH]
  stint-serve frame detect [--opts SPEC] FILE|-
  stint-serve frame stats|shutdown|ping|health
  stint-serve decode
  stint-serve send --socket PATH [--opts SPEC] [--stats] [--ping]
        [--health] [--shutdown] [FILE...]
  stint-serve journal inspect|replay PATH

Session opts (DETECT frames): shards=K, timeout-ms=N, max-shadow-mb=N,
max-intervals=N, stall-ms=N.

Response statuses: 0 ok, 1 racy, 2 usage, 3 degraded, 4 corrupt (kind
corrupt|poisoned), 5 busy (retry-after-ms hint), 6 bye.

Ops plane: --journal appends every session lifecycle transition to a
crash-safe stint-journal-v1 file replayed on restart; --prom-out and
--flight-dump write the Prometheus exposition and the flight-recorder
ring (JSON) after drain; `journal inspect` summarizes a journal and
`journal replay` prints every event. `journal inspect` exits 1 when the
journal has a corrupt tail.";

fn main() -> ExitCode {
    stint_serve::install_panic_hook();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let args: Vec<&str> = argv.iter().map(String::as_str).collect();
    match args.first().copied() {
        None | Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some("serve") => cmd_serve(&args[1..]),
        Some("frame") => cmd_frame(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("send") => cmd_send(&args[1..]),
        Some("journal") => cmd_journal(&args[1..]),
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, val: Option<&&str>) -> Result<T, String> {
    let v = val.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("{flag}: {v:?} is not a valid number"))
}

fn cmd_serve(args: &[&str]) -> Result<ExitCode, String> {
    let mut cfg = EngineConfig::default();
    let mut socket: Option<String> = None;
    let mut stdio = false;
    let mut idle_timeout_ms = 30_000u64;
    let mut fault_plan: Option<String> = None;
    let mut obs_spec: Option<String> = None;
    let mut journal_path: Option<String> = None;
    let mut journal_fsync = stint::journal::FsyncPolicy::Every(64);
    let mut prom_out: Option<String> = None;
    let mut flight_dump: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match *a {
            "--stdio" => stdio = true,
            "--socket" => {
                socket = Some(
                    it.next()
                        .ok_or_else(|| "--socket needs a path".to_string())?
                        .to_string(),
                )
            }
            "--session-workers" => cfg.session_workers = parse_num(a, it.next())?,
            "--queue-depth" => cfg.queue_depth = parse_num(a, it.next())?,
            "--pool-workers" => cfg.pool_workers = parse_num(a, it.next())?,
            "--timeout-ms" => cfg.default_timeout_ms = parse_num(a, it.next())?,
            "--retry-after-ms" => cfg.retry_after_ms = parse_num(a, it.next())?,
            "--idle-timeout-ms" => idle_timeout_ms = parse_num(a, it.next())?,
            "--fault-plan" => {
                fault_plan = Some(
                    it.next()
                        .ok_or_else(|| "--fault-plan needs a spec".to_string())?
                        .to_string(),
                )
            }
            "--obs" => {
                obs_spec = Some(
                    it.next()
                        .ok_or_else(|| "--obs needs a spec".to_string())?
                        .to_string(),
                )
            }
            "--journal" => {
                journal_path = Some(
                    it.next()
                        .ok_or_else(|| "--journal needs a path".to_string())?
                        .to_string(),
                )
            }
            "--journal-fsync" => {
                let spec = it
                    .next()
                    .ok_or_else(|| "--journal-fsync needs always|off|every=N".to_string())?;
                journal_fsync = stint::journal::FsyncPolicy::parse(spec)
                    .map_err(|e| format!("--journal-fsync {spec:?}: {e}"))?;
            }
            "--prom-out" => {
                prom_out = Some(
                    it.next()
                        .ok_or_else(|| "--prom-out needs a path".to_string())?
                        .to_string(),
                )
            }
            "--flight-dump" => {
                flight_dump = Some(
                    it.next()
                        .ok_or_else(|| "--flight-dump needs a path".to_string())?
                        .to_string(),
                )
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    if stdio && socket.is_some() {
        return Err("--stdio and --socket are mutually exclusive".into());
    }
    // Fault plans and observability: environment first, then the flag
    // (which wins) — and both before the engine exists, because fault knobs
    // are sampled at construction time. A malformed spec names its
    // offending token and exits 2.
    stint_faults::install_from_env().map_err(|e| e.to_string())?;
    if let Some(spec) = &fault_plan {
        let plan = stint_faults::FaultPlan::parse(spec)
            .map_err(|e| format!("--fault-plan {spec:?}: {e}"))?;
        stint_faults::install(plan);
    }
    stint::obs::enable_from_env().map_err(|e| e.to_string())?;
    if let Some(spec) = &obs_spec {
        match stint::obs::ObsConfig::parse(spec).map_err(|e| format!("--obs {spec:?}: {e}"))? {
            Some(c) => stint::obs::enable(c),
            None => stint::obs::disable(),
        }
    }
    // Open (and replay) the journal before the engine exists: recovery
    // seeds the session-id counter so restarted daemons never reuse an id
    // from before the crash.
    let journal = match &journal_path {
        Some(p) => {
            let j = stint_serve::SessionJournal::open(std::path::Path::new(p), journal_fsync)
                .map_err(|e| format!("--journal {p}: {e}"))?;
            let rec = j.recovered();
            if rec.records > 0 {
                eprintln!("stint-serve: journal replay of {p}:");
                for line in rec.render().lines() {
                    eprintln!("stint-serve:   {line}");
                }
            }
            Some(j)
        }
        None => None,
    };
    if let Some(p) = &flight_dump {
        stint_serve::set_flight_dump_path(std::path::PathBuf::from(p.as_str()));
    }
    let engine = Arc::new(Engine::with_journal(cfg, journal));
    server::install_signal_handlers();
    if let Some(path) = socket {
        eprintln!("stint-serve: listening on {path}");
        server::run_socket(&engine, &path, idle_timeout_ms).map_err(|e| e.to_string())?;
    } else {
        server::run_stdio(&engine).map_err(|e| e.to_string())?;
    }
    // Post-drain exports: the engine has quiesced, so the exposition and
    // the flight ring are a consistent final snapshot.
    if let Some(p) = &prom_out {
        let f = std::fs::File::create(p).map_err(|e| format!("--prom-out {p}: {e}"))?;
        stint::obs::write_prometheus_text(io::BufWriter::new(f))
            .map_err(|e| format!("--prom-out {p}: {e}"))?;
    }
    if let Some(p) = &flight_dump {
        let f = std::fs::File::create(p).map_err(|e| format!("--flight-dump {p}: {e}"))?;
        stint::obs::flight::write_json(io::BufWriter::new(f))
            .map_err(|e| format!("--flight-dump {p}: {e}"))?;
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_frame(args: &[&str]) -> Result<ExitCode, String> {
    let mut stdout = io::stdout().lock();
    let req = match args.first().copied() {
        Some("stats") => Request::Stats,
        Some("shutdown") => Request::Shutdown,
        Some("ping") => Request::Ping,
        Some("health") => Request::Health,
        Some("detect") => {
            let mut opts = String::new();
            let mut file: Option<&str> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match *a {
                    "--opts" => {
                        opts = it
                            .next()
                            .ok_or_else(|| "--opts needs a spec".to_string())?
                            .to_string()
                    }
                    other => file = Some(other),
                }
            }
            let file = file.ok_or_else(|| "frame detect needs a trace file (or -)".to_string())?;
            let trace = read_input(file)?;
            Request::Detect { opts, trace }
        }
        _ => return Err("frame needs one of: detect, stats, shutdown, ping, health".into()),
    };
    protocol::write_request(&mut stdout, &req).map_err(|e| format!("write frame: {e}"))?;
    stdout.flush().map_err(|e| format!("write frame: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

fn read_input(path: &str) -> Result<Vec<u8>, String> {
    let mut buf = Vec::new();
    if path == "-" {
        io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("read stdin: {e}"))?;
    } else {
        buf = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    }
    Ok(buf)
}

fn cmd_decode(args: &[&str]) -> Result<ExitCode, String> {
    if !args.is_empty() {
        return Err("decode takes no arguments (responses on stdin)".into());
    }
    let mut stdin = io::stdin().lock();
    loop {
        match protocol::read_response(&mut stdin) {
            Ok(None) => return Ok(ExitCode::SUCCESS),
            Ok(Some(resp)) => {
                println!("-- session {}: {}", resp.session, resp.status);
                for line in resp.payload.lines() {
                    println!("   {line}");
                }
            }
            Err(FrameError::Malformed(m)) => {
                eprintln!("decode: response stream damaged: {m}");
                return Ok(ExitCode::from(1));
            }
            Err(FrameError::Io(e)) => return Err(format!("read responses: {e}")),
        }
    }
}

fn cmd_send(args: &[&str]) -> Result<ExitCode, String> {
    let mut socket: Option<&str> = None;
    let mut opts = String::new();
    let mut stats = false;
    let mut ping = false;
    let mut health = false;
    let mut shutdown = false;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match *a {
            "--socket" => socket = it.next().copied(),
            "--opts" => {
                opts = it
                    .next()
                    .ok_or_else(|| "--opts needs a spec".to_string())?
                    .to_string()
            }
            "--stats" => stats = true,
            "--ping" => ping = true,
            "--health" => health = true,
            "--shutdown" => shutdown = true,
            other => files.push(other),
        }
    }
    let socket = socket.ok_or_else(|| "send needs --socket PATH".to_string())?;
    if files.is_empty() && !stats && !ping && !health && !shutdown {
        return Err(
            "send needs at least one trace file or --stats/--ping/--health/--shutdown".into(),
        );
    }
    let stream = UnixStream::connect(socket).map_err(|e| format!("connect {socket}: {e}"))?;
    let mut reader = stream
        .try_clone()
        .map_err(|e| format!("clone socket: {e}"))?;
    let mut w = io::BufWriter::new(stream);
    let mut expected = 0usize;
    if ping {
        protocol::write_request(&mut w, &Request::Ping).map_err(|e| e.to_string())?;
        expected += 1;
    }
    for f in &files {
        let trace = read_input(f)?;
        protocol::write_request(
            &mut w,
            &Request::Detect {
                opts: opts.clone(),
                trace,
            },
        )
        .map_err(|e| e.to_string())?;
        expected += 1;
    }
    if stats {
        protocol::write_request(&mut w, &Request::Stats).map_err(|e| e.to_string())?;
        expected += 1;
    }
    if health {
        protocol::write_request(&mut w, &Request::Health).map_err(|e| e.to_string())?;
        expected += 1;
    }
    if shutdown {
        protocol::write_request(&mut w, &Request::Shutdown).map_err(|e| e.to_string())?;
        expected += 1;
    }
    w.flush().map_err(|e| e.to_string())?;
    let mut worst = 0u8;
    for _ in 0..expected {
        match protocol::read_response(&mut reader) {
            Ok(None) => break,
            Ok(Some(resp)) => {
                println!("-- session {}: {}", resp.session, resp.status);
                for line in resp.payload.lines() {
                    println!("   {line}");
                }
                worst = worst.max(resp.status.exit_code());
            }
            Err(FrameError::Malformed(m)) => {
                eprintln!("send: response stream damaged: {m}");
                return Ok(ExitCode::from(4));
            }
            Err(FrameError::Io(e)) => return Err(format!("read responses: {e}")),
        }
    }
    Ok(ExitCode::from(worst))
}

fn cmd_journal(args: &[&str]) -> Result<ExitCode, String> {
    let (mode, path) = match args {
        [m @ ("inspect" | "replay"), p] => (*m, *p),
        _ => return Err("journal needs: inspect|replay PATH".into()),
    };
    let (events, summary) = stint_serve::journal::replay_file(std::path::Path::new(path))
        .map_err(|e| format!("journal {path}: {e}"))?;
    if mode == "replay" {
        for ev in &events {
            println!(
                "{:>8} t={:<8} session {:<6} {:<10} code {:<2} payload {}",
                ev.seq,
                format!("{}ms", ev.t_ms),
                ev.session,
                stint_serve::journal::event_name(ev.kind),
                ev.code,
                ev.payload
            );
        }
    }
    print!("{}", summary.render());
    Ok(if summary.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
