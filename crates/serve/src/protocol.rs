//! Wire protocol: length-prefixed frames and session option specs.
//!
//! ## Request frames
//!
//! ```text
//! [1 byte type] [u32 LE payload len] [payload]
//! ```
//!
//! | type | name     | payload                                           |
//! |------|----------|---------------------------------------------------|
//! | 0x01 | DETECT   | `[u16 LE opts len][opts utf-8][trace bytes]`      |
//! | 0x02 | STATS    | empty — answers engine totals + obs registry      |
//! | 0x03 | SHUTDOWN | empty — graceful drain, answered with `Bye`       |
//! | 0x04 | PING     | empty — liveness probe, answered with `Ok`        |
//!
//! The trace bytes of a DETECT frame are either format: the v1 text trace
//! or the compressed chunked v2 trace, sniffed by magic on the server.
//!
//! ## Response frames
//!
//! ```text
//! [1 byte status] [u32 LE session id] [u32 LE payload len] [payload]
//! ```
//!
//! The payload is human-readable `key: value` text ending with the
//! canonical batch report (see [`crate::engine`]). Sessions complete out of
//! order under concurrency — the session id is the correlation key.
//!
//! Every malformed input — unknown frame type, oversized length, EOF in the
//! middle of a frame, non-UTF-8 options — is a structured
//! [`FrameError::Malformed`], never a panic and never a busy-loop; the
//! server answers `Usage` and abandons the desynchronized stream.

use std::io::{self, Read, Write};

/// Hard cap on a single frame payload. Counting the trace bytes, anything
/// bigger than this should be streamed from disk by the client in chunks
/// (or is an attack); the reader refuses it without allocating.
pub const MAX_FRAME: usize = 256 * 1024 * 1024;

pub const REQ_DETECT: u8 = 0x01;
pub const REQ_STATS: u8 = 0x02;
pub const REQ_SHUTDOWN: u8 = 0x03;
pub const REQ_PING: u8 = 0x04;
pub const REQ_HEALTH: u8 = 0x05;

/// One client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    Detect {
        opts: String,
        trace: Vec<u8>,
    },
    Stats,
    Shutdown,
    Ping,
    /// Liveness + operational snapshot: uptime, queue-age watermark,
    /// in-flight session set, and latency quantiles.
    Health,
}

/// Per-response status byte — the framed analogue of the CLI exit codes
/// 0–4, plus the two transport-level statuses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Session completed, no races.
    Ok = 0,
    /// Session completed, races found (full report in the payload).
    Racy = 1,
    /// Bad request: malformed frame or session option spec.
    Usage = 2,
    /// Budget or wall-clock limit hit; the report is sound but partial.
    Degraded = 3,
    /// Corrupt trace, or a poisoned (panicked) session — the payload's
    /// `kind:` line distinguishes the two, exactly like CLI exit 4.
    Corrupt = 4,
    /// Admission queue full; payload carries `retry-after-ms: N`.
    Busy = 5,
    /// Server is draining / acknowledging shutdown.
    Bye = 6,
}

impl Status {
    pub fn code(self) -> u8 {
        self as u8
    }

    pub fn from_code(c: u8) -> Option<Status> {
        Some(match c {
            0 => Status::Ok,
            1 => Status::Racy,
            2 => Status::Usage,
            3 => Status::Degraded,
            4 => Status::Corrupt,
            5 => Status::Busy,
            6 => Status::Bye,
            _ => return None,
        })
    }

    /// Map the status back onto the CLI exit-code contract (`send` exits
    /// with the worst status it saw). `Busy` is a resource limit (3); `Bye`
    /// is a clean 0.
    pub fn exit_code(self) -> u8 {
        match self {
            Status::Ok | Status::Bye => 0,
            Status::Racy => 1,
            Status::Usage => 2,
            Status::Degraded | Status::Busy => 3,
            Status::Corrupt => 4,
        }
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Status::Ok => "ok",
            Status::Racy => "racy",
            Status::Usage => "usage",
            Status::Degraded => "degraded",
            Status::Corrupt => "corrupt",
            Status::Busy => "busy",
            Status::Bye => "bye",
        })
    }
}

/// One server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    pub status: Status,
    /// Correlates with the DETECT that started the session; 0 for
    /// transport-level responses (ping, stats, usage, bye).
    pub session: u32,
    pub payload: String,
}

impl Response {
    pub fn new(status: Status, session: u32, payload: impl Into<String>) -> Response {
        Response {
            status,
            session,
            payload: payload.into(),
        }
    }
}

/// A frame that could not be read. `Malformed` covers every adversarial
/// shape — truncation mid-frame, unknown type bytes, lengths past
/// [`MAX_FRAME`], non-UTF-8 option strings; `Io` is a real transport error
/// (including an idle-timeout expiry, surfaced as `WouldBlock`/`TimedOut`).
#[derive(Debug)]
pub enum FrameError {
    Io(io::Error),
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// `read_exact` that converts an EOF mid-structure into `Malformed` — a
/// truncated frame is the sender's fault, not a transport failure.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Malformed(format!("truncated frame: EOF {what}"))
        } else {
            FrameError::Io(e)
        }
    })
}

/// Read the one-byte frame head, distinguishing clean EOF (between frames,
/// `Ok(None)`) from truncation (inside a frame, `Malformed`).
fn read_head(r: &mut impl Read) -> Result<Option<u8>, FrameError> {
    let mut b = [0u8; 1];
    loop {
        match r.read(&mut b) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(b[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
}

fn read_len(r: &mut impl Read, what: &str) -> Result<usize, FrameError> {
    let mut b = [0u8; 4];
    read_exact_or(r, &mut b, what)?;
    let len = u32::from_le_bytes(b) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Malformed(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    Ok(len)
}

/// Read one request frame. `Ok(None)` is clean end-of-stream.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, FrameError> {
    let ty = match read_head(r)? {
        None => return Ok(None),
        Some(t) => t,
    };
    let len = read_len(r, "in the length header")?;
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, "in the payload")?;
    match ty {
        REQ_DETECT => {
            if payload.len() < 2 {
                return Err(FrameError::Malformed(
                    "DETECT payload shorter than its options header".into(),
                ));
            }
            let opts_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
            if payload.len() < 2 + opts_len {
                return Err(FrameError::Malformed(format!(
                    "DETECT options length {opts_len} overruns the {}-byte payload",
                    payload.len()
                )));
            }
            let opts = std::str::from_utf8(&payload[2..2 + opts_len])
                .map_err(|e| FrameError::Malformed(format!("DETECT options not UTF-8: {e}")))?
                .to_string();
            let trace = payload.split_off(2 + opts_len);
            Ok(Some(Request::Detect { opts, trace }))
        }
        REQ_STATS => Ok(Some(Request::Stats)),
        REQ_SHUTDOWN => Ok(Some(Request::Shutdown)),
        REQ_PING => Ok(Some(Request::Ping)),
        REQ_HEALTH => Ok(Some(Request::Health)),
        other => Err(FrameError::Malformed(format!(
            "unknown request type {other:#04x}"
        ))),
    }
}

/// Serialize one request frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    match req {
        Request::Detect { opts, trace } => {
            let opts = opts.as_bytes();
            assert!(opts.len() <= u16::MAX as usize, "session opts too long");
            let len = 2 + opts.len() + trace.len();
            w.write_all(&[REQ_DETECT])?;
            w.write_all(&(len as u32).to_le_bytes())?;
            w.write_all(&(opts.len() as u16).to_le_bytes())?;
            w.write_all(opts)?;
            w.write_all(trace)?;
        }
        Request::Stats => {
            w.write_all(&[REQ_STATS])?;
            w.write_all(&0u32.to_le_bytes())?;
        }
        Request::Shutdown => {
            w.write_all(&[REQ_SHUTDOWN])?;
            w.write_all(&0u32.to_le_bytes())?;
        }
        Request::Ping => {
            w.write_all(&[REQ_PING])?;
            w.write_all(&0u32.to_le_bytes())?;
        }
        Request::Health => {
            w.write_all(&[REQ_HEALTH])?;
            w.write_all(&0u32.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read one response frame. `Ok(None)` is clean end-of-stream.
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, FrameError> {
    let code = match read_head(r)? {
        None => return Ok(None),
        Some(c) => c,
    };
    let status = Status::from_code(code)
        .ok_or_else(|| FrameError::Malformed(format!("unknown status byte {code:#04x}")))?;
    let mut sid = [0u8; 4];
    read_exact_or(r, &mut sid, "in the session id")?;
    let len = read_len(r, "in the length header")?;
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, "in the payload")?;
    let payload = String::from_utf8(payload)
        .map_err(|e| FrameError::Malformed(format!("response payload not UTF-8: {e}")))?;
    Ok(Some(Response {
        status,
        session: u32::from_le_bytes(sid),
        payload,
    }))
}

/// Serialize one response frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    w.write_all(&[resp.status.code()])?;
    w.write_all(&resp.session.to_le_bytes())?;
    w.write_all(&(resp.payload.len() as u32).to_le_bytes())?;
    w.write_all(resp.payload.as_bytes())?;
    Ok(())
}

/// Serialize a deliberately truncated response frame — the
/// `serve-trunc-frame=N` fault knob's wire damage. The header promises the
/// full payload but only half of it is written, so a checking client
/// detects the desync instead of silently reading garbage.
pub fn write_truncated_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    w.write_all(&[resp.status.code()])?;
    w.write_all(&resp.session.to_le_bytes())?;
    w.write_all(&(resp.payload.len() as u32).to_le_bytes())?;
    let half = resp.payload.len() / 2;
    w.write_all(&resp.payload.as_bytes()[..half])?;
    Ok(())
}

/// A malformed session option spec, carrying the exact offending token —
/// the serve-side analogue of `stint_faults::FaultParseError`, answered
/// with [`Status::Usage`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptParseError {
    pub token: String,
    pub reason: String,
}

impl std::fmt::Display for OptParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad session opt token {:?}: {}", self.token, self.reason)
    }
}

impl std::error::Error for OptParseError {}

/// Per-session knobs, carried in the DETECT frame as a comma-separated
/// `key=value` spec (same grammar as fault plans):
///
/// | token              | effect                                           |
/// |--------------------|--------------------------------------------------|
/// | `shards=K`         | address shards for the batch fan-out (default 4) |
/// | `timeout-ms=N`     | wall-clock budget; 0 = already expired (testing) |
/// | `max-shadow-mb=N`  | shadow-memory budget per shard detector          |
/// | `max-intervals=N`  | interval-store budget per shard detector         |
/// | `stall-ms=N`       | sleep before detecting — deterministic slow-     |
/// |                    | session simulation for backpressure/timeout tests|
/// | `witness=0\|1`     | capture verifiable witnesses with each reported  |
/// |                    | race (off by default; replies carry a witness    |
/// |                    | count and size-capped witness detail)            |
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionOpts {
    pub shards: Option<usize>,
    pub timeout_ms: Option<u64>,
    pub max_shadow_mb: Option<u64>,
    pub max_intervals: Option<u64>,
    pub stall_ms: Option<u64>,
    pub witness: bool,
}

impl SessionOpts {
    /// Parse a spec string. The empty string is the default configuration;
    /// any unknown or malformed token is a typed error naming that token.
    pub fn parse(spec: &str) -> Result<SessionOpts, OptParseError> {
        let mut o = SessionOpts::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let err = |reason: String| OptParseError {
                token: part.to_string(),
                reason,
            };
            let (key, val) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => return Err(err("expected key=value".into())),
            };
            let num = || -> Result<u64, OptParseError> {
                val.parse::<u64>()
                    .map_err(|_| err(format!("{val:?} is not a number")))
            };
            match key {
                "shards" => {
                    let n = num()?;
                    if n == 0 || n > 4096 {
                        return Err(err("shards must be in 1..=4096".into()));
                    }
                    o.shards = Some(n as usize);
                }
                "timeout-ms" => o.timeout_ms = Some(num()?),
                "max-shadow-mb" => o.max_shadow_mb = Some(num()?),
                "max-intervals" => o.max_intervals = Some(num()?),
                "stall-ms" => o.stall_ms = Some(num()?),
                "witness" => {
                    o.witness = match num()? {
                        0 => false,
                        1 => true,
                        _ => return Err(err("witness must be 0 or 1".into())),
                    }
                }
                _ => return Err(err("unknown session opt".into())),
            }
        }
        Ok(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        let reqs = [
            Request::Detect {
                opts: "shards=2,timeout-ms=100".into(),
                trace: b"STINT-TRACE v1\n...".to_vec(),
            },
            Request::Detect {
                opts: String::new(),
                trace: Vec::new(),
            },
            Request::Stats,
            Request::Shutdown,
            Request::Ping,
            Request::Health,
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            write_request(&mut buf, r).expect("write");
        }
        let mut r = &buf[..];
        for want in &reqs {
            let got = read_request(&mut r).expect("read").expect("some");
            assert_eq!(&got, want);
        }
        assert!(read_request(&mut r).expect("eof").is_none());
    }

    #[test]
    fn response_frames_round_trip() {
        let resps = [
            Response::new(Status::Racy, 7, "kind: racy\nraces: 1\n"),
            Response::new(Status::Busy, 9, "retry-after-ms: 25\n"),
            Response::new(Status::Bye, 0, ""),
        ];
        let mut buf = Vec::new();
        for r in &resps {
            write_response(&mut buf, r).expect("write");
        }
        let mut r = &buf[..];
        for want in &resps {
            let got = read_response(&mut r).expect("read").expect("some");
            assert_eq!(&got, want);
        }
        assert!(read_response(&mut r).expect("eof").is_none());
    }

    #[test]
    fn adversarial_frames_are_structured_errors() {
        // Truncation at every prefix of a valid frame: clean EOF at offset
        // 0, Malformed everywhere inside the frame. Never a panic.
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::Detect {
                opts: "shards=2".into(),
                trace: b"hello".to_vec(),
            },
        )
        .expect("write");
        for cut in 0..buf.len() {
            let got = read_request(&mut &buf[..cut]);
            if cut == 0 {
                assert!(matches!(got, Ok(None)), "cut=0 is clean EOF");
            } else {
                assert!(
                    matches!(got, Err(FrameError::Malformed(_))),
                    "cut={cut} must be malformed"
                );
            }
        }
        // Unknown type byte.
        let bad = [0x7f, 0, 0, 0, 0];
        assert!(matches!(
            read_request(&mut &bad[..]),
            Err(FrameError::Malformed(_))
        ));
        // Length past the cap — refused before allocating.
        let mut huge = vec![REQ_DETECT];
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_request(&mut &huge[..]),
            Err(FrameError::Malformed(_))
        ));
        // Opts length overruns the payload.
        let mut overrun = vec![REQ_DETECT];
        overrun.extend_from_slice(&3u32.to_le_bytes());
        overrun.extend_from_slice(&[0xff, 0xff, b'x']);
        assert!(matches!(
            read_request(&mut &overrun[..]),
            Err(FrameError::Malformed(_))
        ));
        // Non-UTF-8 options.
        let mut bad_utf8 = vec![REQ_DETECT];
        bad_utf8.extend_from_slice(&3u32.to_le_bytes());
        bad_utf8.extend_from_slice(&[1, 0, 0xff]);
        assert!(matches!(
            read_request(&mut &bad_utf8[..]),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_response_is_detected() {
        let mut buf = Vec::new();
        write_truncated_response(&mut buf, &Response::new(Status::Ok, 1, "kind: ok\n"))
            .expect("write");
        assert!(matches!(
            read_response(&mut &buf[..]),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn session_opts_parse_and_reject() {
        let o =
            SessionOpts::parse(" shards=8 , timeout-ms=250,max-shadow-mb=1,stall-ms=5,witness=1 ")
                .expect("parse");
        assert_eq!(o.shards, Some(8));
        assert_eq!(o.timeout_ms, Some(250));
        assert_eq!(o.max_shadow_mb, Some(1));
        assert_eq!(o.stall_ms, Some(5));
        assert!(o.witness);
        assert!(!SessionOpts::parse("witness=0").expect("parse").witness);
        assert_eq!(SessionOpts::parse(""), Ok(SessionOpts::default()));
        for (spec, tok) in [
            ("shards=0", "shards=0"),
            ("shards=abc", "shards=abc"),
            ("frobnicate=1", "frobnicate=1"),
            ("timeout-ms", "timeout-ms"),
            ("shards=2,waldo=9", "waldo=9"),
            ("witness=2", "witness=2"),
        ] {
            let e = SessionOpts::parse(spec).expect_err(spec);
            assert_eq!(e.token, tok, "spec {spec:?}");
            assert!(!e.reason.is_empty());
            assert!(e.to_string().contains(tok));
        }
    }
}
