//! End-to-end tests of the detection service: engine verdicts for every
//! status, backpressure, panic isolation, timeouts, and the framed stdio
//! transport.
//!
//! Fault plans and the engine totals are process-global, so every test
//! serializes on one lock (the same idiom as the repo-level chaos tests).

use std::io::Write;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use stint::{FaultPlan, PortableTrace, ScopedPlan};
use stint_serve::protocol::{self, Request, Response, SessionOpts, Status};
use stint_serve::server::run_frames;
use stint_serve::{Engine, EngineConfig};
use stint_suite::{Scale, Workload};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A minimal hand-written racy v1 trace: strands 1 and 2 have crossed
/// English/Hebrew ranks (parallel) and both write word 0x10.
const RACY_V1: &str = "STINT-TRACE v1\nstrands 3\n0 0\n1 2\n2 1\nevents 4\n\
                       s 1 0x40 4\ne 1 0x0 0\ns 2 0x40 4\ne 2 0x0 0\n";

fn clean_v1() -> Vec<u8> {
    let mut w = Workload::by_name("sort", Scale::Test);
    let pt = PortableTrace::record(&mut w);
    let mut buf = Vec::new();
    pt.save(&mut buf).expect("save v1");
    buf
}

fn racy_v2() -> Vec<u8> {
    let pt = PortableTrace::load_any(RACY_V1.as_bytes()).expect("parse racy v1");
    let mut buf = Vec::new();
    pt.save_compressed(&mut buf, 2).expect("save v2");
    buf
}

/// Submit one session and wait for its reply.
fn session(engine: &Engine, opts: &str, trace: Vec<u8>) -> Response {
    let (tx, rx) = mpsc::channel();
    let id = engine.try_submit(opts.to_string(), trace, tx);
    let resp = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("session reply");
    assert_eq!(resp.session, id);
    resp
}

fn small_engine() -> Engine {
    Engine::new(EngineConfig {
        session_workers: 2,
        queue_depth: 16,
        pool_workers: 2,
        ..EngineConfig::default()
    })
}

#[test]
fn verdicts_cover_the_status_enum() {
    let _g = lock();
    let engine = small_engine();
    // Clean trace → Ok with an empty report.
    let r = session(&engine, "", clean_v1());
    assert_eq!(r.status, Status::Ok, "payload: {}", r.payload);
    assert!(r.payload.contains("kind: ok"));
    assert!(r.payload.contains("races: 0"));
    // Racy v1 → Racy, and the canonical report names the racy word.
    let r = session(&engine, "shards=2", RACY_V1.as_bytes().to_vec());
    assert_eq!(r.status, Status::Racy);
    assert!(r.payload.contains("kind: racy"));
    assert!(r.payload.contains("w 0x10"), "payload: {}", r.payload);
    // The same trace in the compressed v2 encoding streams to the same
    // verdict and the same rendered report.
    let r2 = session(&engine, "shards=2", racy_v2());
    assert_eq!(r2.status, Status::Racy);
    let report = |p: &str| p.split("report:\n").nth(1).map(str::to_string);
    assert_eq!(report(&r.payload), report(&r2.payload));
    // Garbage bytes → Corrupt (kind corrupt).
    let r = session(&engine, "", b"not a trace at all".to_vec());
    assert_eq!(r.status, Status::Corrupt);
    assert!(r.payload.contains("kind: corrupt"));
    // Truncated v2 → Corrupt, not a panic or a hang.
    let mut cut = racy_v2();
    cut.truncate(cut.len() / 2);
    let r = session(&engine, "", cut);
    assert_eq!(r.status, Status::Corrupt);
    // Bad option spec → Usage naming the offending token.
    let r = session(&engine, "shards=2,frobnicate=1", clean_v1());
    assert_eq!(r.status, Status::Usage);
    assert!(
        r.payload.contains("\"frobnicate=1\""),
        "payload: {}",
        r.payload
    );
    // An already-expired wall-clock budget → Degraded with a sound partial
    // report, never a wedged worker.
    let r = session(&engine, "timeout-ms=0", racy_v2());
    assert_eq!(r.status, Status::Degraded, "payload: {}", r.payload);
    assert!(r.payload.contains("kind: degraded"));
    assert!(r.payload.contains("wall-clock budget"));
    let t = engine.totals();
    assert_eq!(t.sessions, 7);
    assert_eq!(t.ok, 1);
    assert_eq!(t.racy, 2);
    assert_eq!(t.corrupt, 2);
    assert_eq!(t.usage, 1);
    assert_eq!(t.degraded, 1);
    engine.drain();
}

#[test]
fn shadow_budget_degrades_the_session() {
    let _g = lock();
    let engine = small_engine();
    let r = session(&engine, "max-intervals=1", clean_v1());
    assert_eq!(r.status, Status::Degraded, "payload: {}", r.payload);
    assert!(r.payload.contains("error:"), "payload: {}", r.payload);
    engine.drain();
}

#[test]
fn backpressure_answers_busy_with_retry_hint() {
    let _g = lock();
    let engine = Engine::new(EngineConfig {
        session_workers: 1,
        queue_depth: 1,
        pool_workers: 1,
        retry_after_ms: 7,
        ..EngineConfig::default()
    });
    let (tx, rx) = mpsc::channel();
    // One slow session occupies the worker, one fills the queue; the rest
    // must bounce immediately with Busy instead of growing the queue.
    engine.try_submit("stall-ms=300".into(), clean_v1(), tx.clone());
    let mut busy = 0u64;
    for _ in 0..8 {
        engine.try_submit(String::new(), clean_v1(), tx.clone());
    }
    drop(tx);
    let mut done = 0;
    while let Ok(resp) = rx.recv_timeout(Duration::from_secs(60)) {
        if resp.status == Status::Busy {
            busy += 1;
            assert!(
                resp.payload.contains("retry-after-ms: 7"),
                "payload: {}",
                resp.payload
            );
        }
        done += 1;
    }
    assert_eq!(done, 9, "every submission is answered");
    assert!(busy >= 6, "expected most submissions to bounce, got {busy}");
    assert_eq!(engine.totals().busy, busy);
    engine.drain();
}

#[test]
fn injected_session_panics_poison_only_their_session() {
    let _g = lock();
    let engine = small_engine();
    // Session ids are engine-global and monotonic; period 1 panics every
    // session while the plan is installed.
    let plan = FaultPlan {
        serve_panic_session: Some(1),
        ..FaultPlan::default()
    };
    let poisoned = {
        let _plan = ScopedPlan::install(plan);
        session(&engine, "", clean_v1())
    };
    assert_eq!(poisoned.status, Status::Corrupt);
    assert!(
        poisoned.payload.contains("kind: poisoned"),
        "payload: {}",
        poisoned.payload
    );
    assert!(poisoned.payload.contains("injected serve session panic"));
    // The worker survived: the very next session (plan dropped) is clean.
    let r = session(&engine, "", clean_v1());
    assert_eq!(r.status, Status::Ok);
    let t = engine.totals();
    assert_eq!(t.poisoned, 1);
    assert_eq!(t.ok, 1);
    engine.drain();
}

#[test]
fn witness_opt_attaches_counted_witnesses() {
    let _g = lock();
    let engine = small_engine();
    // Opt in: the reply counts captures, says how many rode the wire, and
    // the rendered report carries the witness evidence (` w ... order=`).
    let r = session(&engine, "witness=1,shards=2", RACY_V1.as_bytes().to_vec());
    assert_eq!(r.status, Status::Racy, "payload: {}", r.payload);
    assert!(r.payload.contains("witnesses: 1"), "payload: {}", r.payload);
    assert!(r.payload.contains("witnesses-shown: 1"));
    assert!(r.payload.contains(" order="), "payload: {}", r.payload);
    // Witnesses are merge-invariant: a different shard count produces a
    // byte-identical witnessed report.
    let r2 = session(&engine, "witness=1,shards=7", RACY_V1.as_bytes().to_vec());
    let report = |p: &str| p.split("report:\n").nth(1).map(str::to_string);
    assert_eq!(report(&r.payload), report(&r2.payload));
    // Off (default and explicit witness=0): no witness lines, no evidence.
    for opts in ["", "witness=0"] {
        let r = session(&engine, opts, RACY_V1.as_bytes().to_vec());
        assert_eq!(r.status, Status::Racy);
        assert!(!r.payload.contains("witnesses:"), "payload: {}", r.payload);
        assert!(!r.payload.contains(" order="));
    }
    engine.drain();
}

#[test]
fn draining_engine_answers_bye() {
    let _g = lock();
    let engine = small_engine();
    engine.drain();
    let (tx, rx) = mpsc::channel();
    engine.try_submit(String::new(), clean_v1(), tx);
    let resp = rx.recv_timeout(Duration::from_secs(10)).expect("reply");
    assert_eq!(resp.status, Status::Bye);
}

/// `Write` sink shareable with the writer thread.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn decode_all(bytes: &[u8]) -> Vec<Response> {
    let mut r = bytes;
    let mut out = Vec::new();
    while let Some(resp) = protocol::read_response(&mut r).expect("well-formed response stream") {
        out.push(resp);
    }
    out
}

#[test]
fn stdio_transport_speaks_the_full_protocol() {
    let _g = lock();
    let engine = Arc::new(Engine::new(EngineConfig {
        session_workers: 1, // one worker → replies in submission order
        queue_depth: 16,
        pool_workers: 1,
        ..EngineConfig::default()
    }));
    let mut frames = Vec::new();
    protocol::write_request(&mut frames, &Request::Ping).expect("frame");
    protocol::write_request(
        &mut frames,
        &Request::Detect {
            opts: String::new(),
            trace: clean_v1(),
        },
    )
    .expect("frame");
    protocol::write_request(
        &mut frames,
        &Request::Detect {
            opts: "shards=3".into(),
            trace: RACY_V1.as_bytes().to_vec(),
        },
    )
    .expect("frame");
    protocol::write_request(&mut frames, &Request::Stats).expect("frame");
    protocol::write_request(&mut frames, &Request::Shutdown).expect("frame");
    let sink = SharedBuf::default();
    let shutdown = run_frames(&engine, &frames[..], sink.clone(), false).expect("serve the stream");
    assert!(shutdown, "SHUTDOWN frame reported");
    let out = sink.0.lock().unwrap_or_else(|e| e.into_inner());
    let resps = decode_all(&out);
    // Ping and stats are answered inline by the reader, detects by
    // completion, so only the endpoints are order-deterministic: the ping
    // reply leads, Bye trails (drain flushes every session reply first).
    assert_eq!(resps.len(), 5, "payloads: {:?}", resps);
    assert!(resps[0].payload.contains("pong"));
    assert_eq!(resps.last().map(|r| r.status), Some(Status::Bye));
    let find = |needle: &str| {
        resps
            .iter()
            .find(|r| r.payload.contains(needle))
            .unwrap_or_else(|| panic!("no response containing {needle:?}: {resps:?}"))
            .clone()
    };
    assert_eq!(find("kind: ok\nraces: 0").status, Status::Ok);
    let racy = find("w 0x10");
    assert_eq!(racy.status, Status::Racy);
    assert!(racy.session > 0, "detect replies carry their session id");
    assert_eq!(find("sessions: ").status, Status::Ok);
    assert!(engine.is_draining(), "shutdown frame drained the engine");
}

#[test]
fn malformed_frame_answers_usage_and_abandons_the_stream() {
    let _g = lock();
    let engine = Arc::new(small_engine());
    // A DETECT frame truncated mid-payload.
    let mut frames = Vec::new();
    protocol::write_request(
        &mut frames,
        &Request::Detect {
            opts: String::new(),
            trace: clean_v1(),
        },
    )
    .expect("frame");
    frames.truncate(frames.len() - 10);
    let sink = SharedBuf::default();
    let shutdown = run_frames(&engine, &frames[..], sink.clone(), false).expect("serve");
    assert!(!shutdown);
    let out = sink.0.lock().unwrap_or_else(|e| e.into_inner());
    let resps = decode_all(&out);
    assert_eq!(resps.len(), 1);
    assert_eq!(resps[0].status, Status::Usage);
    assert!(
        resps[0].payload.contains("truncated frame"),
        "payload: {}",
        resps[0].payload
    );
    engine.drain();
}

#[test]
fn session_opts_reject_is_stable_through_the_wire() {
    // Round-trip guard: the opts grammar the server parses is the one the
    // client helpers document.
    let spec = "shards=2,timeout-ms=50,max-shadow-mb=8,max-intervals=1000,stall-ms=0";
    let o = SessionOpts::parse(spec).expect("parse");
    assert_eq!(o.shards, Some(2));
    assert_eq!(o.timeout_ms, Some(50));
    let e = SessionOpts::parse("timeout-ms=soon").expect_err("reject");
    assert_eq!(e.token, "timeout-ms=soon");
}

#[test]
fn health_frame_reports_the_operational_snapshot() {
    let _g = lock();
    let engine = Arc::new(small_engine());
    // A completed session gives the latency histograms something to report
    // when obs is on; with obs off the payload simply omits those lines.
    let resp = session(&engine, "", RACY_V1.as_bytes().to_vec());
    assert_eq!(resp.status, Status::Racy);
    let mut frames = Vec::new();
    protocol::write_request(&mut frames, &Request::Health).expect("frame");
    let sink = SharedBuf::default();
    run_frames(&engine, &frames[..], sink.clone(), false).expect("serve health");
    let out = sink.0.lock().unwrap_or_else(|e| e.into_inner());
    let resps = decode_all(&out);
    assert_eq!(resps.len(), 1);
    assert_eq!(resps[0].status, Status::Ok);
    let payload = &resps[0].payload;
    for want in [
        "kind: health",
        "uptime-ms: ",
        "draining: false",
        "queued: 0",
        "queue-age-hw-ms: ",
        "retry-after-ms: ",
        "in-flight: 0",
        "journal: off",
        "flight-records: ",
    ] {
        assert!(
            payload.contains(want),
            "health payload missing {want:?}:\n{payload}"
        );
    }
    engine.drain();
}

#[test]
fn journaled_engine_survives_a_lifecycle_round_trip() {
    let _g = lock();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("serve_lifecycle_{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journal = stint_serve::SessionJournal::open(&path, stint::journal::FsyncPolicy::Always)
        .expect("open journal");
    let engine = Engine::with_journal(
        EngineConfig {
            session_workers: 1,
            queue_depth: 16,
            pool_workers: 1,
            ..EngineConfig::default()
        },
        Some(journal),
    );
    assert_eq!(session(&engine, "", clean_v1()).status, Status::Ok);
    assert_eq!(
        session(&engine, "", RACY_V1.as_bytes().to_vec()).status,
        Status::Racy
    );
    engine.drain();
    drop(engine);

    let (events, summary) = stint_serve::journal::replay_file(&path).expect("replay");
    assert!(summary.is_clean(), "summary:\n{}", summary.render());
    assert_eq!(summary.admitted.len(), 2);
    assert_eq!(summary.finished.len(), 2);
    assert!(summary.in_flight().is_empty());
    assert_eq!(summary.drains, 1);
    assert_eq!(summary.verdicts.get("ok"), Some(&1));
    assert_eq!(summary.verdicts.get("racy"), Some(&1));
    // admitted always hits the journal before started, started before the
    // verdict — per session, in submission order under one worker.
    let kinds: Vec<u16> = events.iter().map(|e| e.kind).collect();
    use stint_serve::journal::{EV_ADMITTED, EV_DRAINED, EV_STARTED, EV_VERDICT};
    assert_eq!(kinds[0], EV_ADMITTED);
    assert!(kinds
        .windows(2)
        .all(|w| w[0] != EV_STARTED || w[1] != EV_STARTED));
    assert_eq!(kinds.last().copied(), Some(EV_DRAINED));
    assert_eq!(
        kinds.iter().filter(|&&k| k == EV_VERDICT).count(),
        2,
        "events: {events:?}"
    );

    // A second engine on the same path replays it and continues the id
    // sequence.
    let journal = stint_serve::SessionJournal::open(&path, stint::journal::FsyncPolicy::Always)
        .expect("reopen journal");
    assert_eq!(journal.recovered().records, summary.records);
    let engine = Engine::with_journal(EngineConfig::default(), Some(journal));
    let resp = session(&engine, "", clean_v1());
    assert!(resp.session > summary.max_session);
    engine.drain();
    let _ = std::fs::remove_file(&path);
}
