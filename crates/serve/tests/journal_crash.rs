//! Crash forensics for the session journal: abort a daemon mid-soak with
//! the `serve-journal-kill` fault knob, then prove the journal answers the
//! question a crashed daemon cannot — *what was in flight* — and that a
//! restarted engine picks up cleanly on the damaged file.
//!
//! The test re-executes its own binary: the `#[ignore]`d `child_` test is
//! the victim daemon (fault plan installed, journal attached, sessions
//! submitted, `abort()` fired by the knob mid-append); the parent test
//! spawns it, watches it die, and does the post-mortem.

use std::collections::BTreeSet;
use std::process::Command;
use std::sync::mpsc;
use std::time::Duration;

use stint::journal::FsyncPolicy;
use stint::FaultPlan;
use stint_serve::journal::replay_file;
use stint_serve::{Engine, EngineConfig, SessionJournal};

const RACY_V1: &str = "STINT-TRACE v1\nstrands 3\n0 0\n1 2\n2 1\nevents 4\n\
                       s 1 0x40 4\ne 1 0x0 0\ns 2 0x40 4\ne 2 0x0 0\n";

const SESSIONS: usize = 10;

fn cfg() -> EngineConfig {
    EngineConfig {
        session_workers: 1, // FIFO, so the kill lands mid-soak, not at either end
        queue_depth: 32,
        pool_workers: 1,
        default_timeout_ms: 30_000,
        retry_after_ms: 2,
    }
}

/// The victim. Only meaningful when re-executed by the parent test with
/// `JOURNAL_CRASH_PATH` set; inert (and `#[ignore]`d) otherwise.
#[test]
#[ignore = "re-executed as the crash victim by kill_mid_soak_forensics"]
fn child_soak_abort() {
    let Ok(path) = std::env::var("JOURNAL_CRASH_PATH") else {
        return;
    };
    // Abort while appending the 20th record: after the 10 admits, sessions
    // finish two records at a time (started, verdict), so the knob fires
    // inside a verdict append with finished sessions behind it and
    // admitted-but-unfinished ones ahead.
    stint_faults::install(FaultPlan::parse("serve-journal-kill=20").expect("plan"));
    let journal = SessionJournal::open(std::path::Path::new(&path), FsyncPolicy::Always)
        .expect("open journal");
    let engine = Engine::with_journal(cfg(), Some(journal));
    let (tx, rx) = mpsc::channel();
    for _ in 0..SESSIONS {
        engine.try_submit(
            "stall-ms=30".into(),
            RACY_V1.as_bytes().to_vec(),
            tx.clone(),
        );
    }
    for _ in 0..SESSIONS {
        let resp = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("session reply");
        // The journal holds the verdict before the reply is sent, so every
        // id the parent reads off our stdout must be in the replayed
        // finished set.
        println!("done {}", resp.session);
    }
    unreachable!("the serve-journal-kill knob must abort before the soak completes");
}

#[test]
fn kill_mid_soak_forensics() {
    let path = std::env::temp_dir().join(format!("journal_crash_{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(&exe)
        .args(["child_soak_abort", "--exact", "--ignored", "--nocapture"])
        .env("JOURNAL_CRASH_PATH", &path)
        .output()
        .expect("spawn crash victim");
    assert!(
        !out.status.success(),
        "victim was supposed to abort mid-append, but exited cleanly:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let done: BTreeSet<u32> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter_map(|l| l.strip_prefix("done "))
        .filter_map(|id| id.parse().ok())
        .collect();

    // Post-mortem replay: a structured partial — the kill tore the tail
    // frame, every record before it is intact, and the in-flight set is
    // exactly the admitted sessions without a journaled verdict.
    let (_, summary) = replay_file(&path).expect("replay damaged journal");
    assert!(
        summary.corruption.is_some(),
        "abort mid-append must leave a flagged torn tail:\n{}",
        summary.render()
    );
    assert_eq!(
        summary.admitted.len(),
        SESSIONS,
        "all sessions were admitted before the kill:\n{}",
        summary.render()
    );
    assert!(
        !summary.finished.is_empty() && summary.finished.len() < SESSIONS,
        "the kill was tuned to land mid-soak:\n{}",
        summary.render()
    );
    let expected: BTreeSet<u32> = summary
        .admitted
        .difference(&summary.finished)
        .copied()
        .collect();
    assert_eq!(
        summary.in_flight(),
        expected,
        "in-flight must be admitted minus finished"
    );
    // Replies are sent only after the verdict hits the journal, so no
    // client ever saw an answer the journal does not know about.
    for id in &done {
        assert!(
            summary.finished.contains(id),
            "client saw session {id}'s reply but the journal has no verdict for it"
        );
    }

    // Restart on the damaged file: open() repairs the torn tail in place,
    // reports the recovered state, and keeps allocating past the old ids.
    let journal = SessionJournal::open(&path, FsyncPolicy::Always).expect("reopen damaged journal");
    assert!(
        journal.recovered().corruption.is_some(),
        "restart must report the damage it repaired"
    );
    assert_eq!(journal.recovered().in_flight(), expected);
    let max_before = journal.recovered().max_session;
    let engine = Engine::with_journal(cfg(), Some(journal));
    let (tx, rx) = mpsc::channel();
    let id = engine.try_submit("".into(), RACY_V1.as_bytes().to_vec(), tx);
    assert!(
        id > max_before,
        "restarted engine reused session id {id} (journal knew up to {max_before})"
    );
    rx.recv_timeout(Duration::from_secs(60))
        .expect("post-restart session reply");
    engine.drain();
    drop(engine);

    // After the repair + a clean run, the journal replays clean end to end
    // and still remembers every pre-crash record.
    let (_, healed) = replay_file(&path).expect("replay healed journal");
    assert!(
        healed.is_clean(),
        "repair-on-open must leave a clean journal:\n{}",
        healed.render()
    );
    assert!(healed.max_session > max_before);
    assert!(healed.finished.contains(&id));

    let _ = std::fs::remove_file(&path);
}
