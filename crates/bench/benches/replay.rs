//! Ablation E: pure detection cost via trace replay. Each benchmark's
//! instrumentation stream is recorded once; replaying it into the different
//! detectors measures access-history + reachability-query cost with the
//! program's own computation excluded — the clean-room version of the
//! paper's Figure 7 timers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stint::{
    replay, CompRtsDetector, RaceReport, StintDetector, StintFlatDetector, VanillaDetector,
};
use stint_suite::{Scale, Workload};

fn bench_replay(c: &mut Criterion) {
    for name in ["sort", "mmul", "fft", "heat"] {
        let mut w = Workload::by_name(name, Scale::Test);
        let (trace, reach) = stint::record(&mut w);
        let mut g = c.benchmark_group(format!("replay/{name}"));
        g.sample_size(10);
        let n = trace.len() as u64;
        g.throughput(criterion::Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("vanilla", n), &trace, |b, t| {
            b.iter(|| {
                let d = replay(
                    t,
                    &reach,
                    VanillaDetector::new(false, RaceReport::new(16, false)),
                );
                black_box(d.stats.hash_ops)
            })
        });
        g.bench_with_input(BenchmarkId::new("compiler", n), &trace, |b, t| {
            b.iter(|| {
                let d = replay(
                    t,
                    &reach,
                    VanillaDetector::new(true, RaceReport::new(16, false)),
                );
                black_box(d.stats.hash_ops)
            })
        });
        g.bench_with_input(BenchmarkId::new("comp+rts", n), &trace, |b, t| {
            b.iter(|| {
                let d = replay(t, &reach, CompRtsDetector::new(RaceReport::new(16, false)));
                black_box(d.stats.hash_ops)
            })
        });
        g.bench_with_input(BenchmarkId::new("stint", n), &trace, |b, t| {
            b.iter(|| {
                let d = replay(t, &reach, StintDetector::new(RaceReport::new(16, false)));
                black_box(d.stats.treap.ops)
            })
        });
        g.bench_with_input(BenchmarkId::new("stint_btree", n), &trace, |b, t| {
            b.iter(|| {
                let d = replay(
                    t,
                    &reach,
                    StintFlatDetector::new_flat(RaceReport::new(16, false)),
                );
                black_box(d.stats.treap.ops)
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
