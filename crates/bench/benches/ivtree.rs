//! Ablation A: interval-store implementations head to head — the paper's
//! treap vs the `BTreeMap` flat store ("any balanced BST would work") — on
//! the workload shapes the detectors generate: disjoint streams (deep
//! trees), replacing streams (serial reuse), and covering writes
//! (REMOVEOVERLAP-heavy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stint_ivtree::{FlatStore, Interval, IntervalStore, Treap};

/// Deterministic op stream: (write?, start, len, who).
fn stream(n: usize, space: u64, max_len: u64) -> Vec<(bool, u64, u64, u32)> {
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            (
                next() % 2 == 0,
                next() % space,
                next() % max_len + 1,
                (next() % 256) as u32,
            )
        })
        .collect()
}

fn drive<S: IntervalStore<u32>>(store: &mut S, ops: &[(bool, u64, u64, u32)]) -> u64 {
    let mut conflicts = 0u64;
    for &(w, s, l, who) in ops {
        let iv = Interval::new(s, s + l, who);
        if w {
            store.insert_write(iv, |_, _, _| conflicts += 1);
        } else {
            store.insert_read(iv, |old| who < old);
        }
    }
    conflicts
}

fn bench_stores(c: &mut Criterion) {
    for (label, space, max_len) in [
        ("dense", 1u64 << 10, 64u64),
        ("sparse", 1 << 24, 64),
        ("covering", 1 << 8, 128),
    ] {
        let ops = stream(20_000, space, max_len);
        let mut g = c.benchmark_group(format!("ivtree/{label}"));
        g.bench_with_input(BenchmarkId::new("treap", ops.len()), &ops, |b, ops| {
            b.iter(|| {
                let mut t: Treap<u32> = Treap::with_seed(42);
                black_box(drive(&mut t, ops))
            })
        });
        g.bench_with_input(BenchmarkId::new("btreemap", ops.len()), &ops, |b, ops| {
            b.iter(|| {
                let mut t: FlatStore<u32> = FlatStore::new();
                black_box(drive(&mut t, ops))
            })
        });
        g.finish();
    }
}

/// The access pattern STINT loves: each "strand" overwrites the same block
/// (serial reuse) — the tree stays tiny regardless of op count.
fn bench_serial_reuse(c: &mut Criterion) {
    c.bench_function("ivtree/serial_reuse/treap", |b| {
        b.iter(|| {
            let mut t: Treap<u32> = Treap::with_seed(7);
            for i in 0..10_000u32 {
                t.insert_write(Interval::new(0, 1024, i), |_, _, _| {});
            }
            black_box(t.len())
        })
    });
}

/// Query-only walks at various tree sizes (the O(h + k) of Lemma 4.2).
fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("ivtree/query");
    for &n in &[1_000u64, 10_000, 100_000] {
        let mut t: Treap<u32> = Treap::with_seed(3);
        for i in 0..n {
            t.insert_write(
                Interval::new(i * 16, i * 16 + 8, (i % 64) as u32),
                |_, _, _| {},
            );
        }
        g.bench_with_input(BenchmarkId::new("hit", n), &n, |b, &n| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 7919) % n;
                let mut hits = 0u32;
                t.query_overlaps(k * 16, k * 16 + 40, |_, _, _| hits += 1);
                black_box(hits)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stores, bench_serial_reuse, bench_query
}
criterion_main!(benches);
