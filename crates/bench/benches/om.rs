//! Ablation C: order-maintenance list throughput — append vs hotspot
//! insertion (relabel-heavy) vs random positions, plus query cost. The OM
//! lists underlie every SP-Order reachability query, so these constants
//! bound the reachability component's cost (Figure 1's `reach.` column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stint_om::{OmList, TwoLevelOm};

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("om/insert");
    for &n in &[1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("append", n), &n, |b, &n| {
            b.iter(|| {
                let mut l = OmList::with_capacity(n);
                let mut cur = l.insert_first();
                for _ in 0..n {
                    cur = l.insert_after(cur);
                }
                black_box(l.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("hotspot", n), &n, |b, &n| {
            b.iter(|| {
                let mut l = OmList::with_capacity(n);
                let head = l.insert_first();
                for _ in 0..n {
                    l.insert_after(head);
                }
                black_box(l.relabels())
            })
        });
        g.bench_with_input(BenchmarkId::new("hotspot_two_level", n), &n, |b, &n| {
            b.iter(|| {
                let mut l = TwoLevelOm::new();
                let head = l.insert_first();
                for _ in 0..n {
                    l.insert_after(head);
                }
                black_box(l.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("random", n), &n, |b, &n| {
            b.iter(|| {
                let mut l = OmList::with_capacity(n);
                let mut handles = vec![l.insert_first()];
                let mut state: u64 = 0x243F6A8885A308D3;
                for _ in 0..n {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let at = handles[(state as usize) % handles.len()];
                    handles.push(l.insert_after(at));
                }
                black_box(l.len())
            })
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut l = OmList::new();
    let mut handles = vec![l.insert_first()];
    for _ in 0..100_000 {
        handles.push(l.insert_after(*handles.last().unwrap()));
    }
    c.bench_function("om/query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(12_345) % handles.len();
            let j = (i * 7 + 13) % handles.len();
            black_box(l.precedes(handles[i], handles[j]))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert, bench_query
}
criterion_main!(benches);
