//! Ablation D: end-to-end detector comparison on small instances of three
//! representative benchmarks — sort (STINT's best case in the paper), mmul
//! (parity) and fft (STINT's adverse case) — across all variants plus the
//! BTreeMap-backed STINT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stint::{Config, Variant};
use stint_suite::{fft::Fft, mmul::Mmul, sort::Sort};

fn run<P: stint::CilkProgram>(p: &mut P, v: Variant) -> u64 {
    let mut cfg = Config::new(v);
    cfg.collect_racy_words = false;
    let o = stint::detect_with(p, cfg);
    o.stats.total_intervals()
}

const VARIANTS: [Variant; 5] = [
    Variant::Vanilla,
    Variant::Compiler,
    Variant::CompRts,
    Variant::Stint,
    Variant::StintFlat,
];

fn bench_detectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("detectors");
    g.sample_size(10);
    for v in VARIANTS {
        g.bench_with_input(BenchmarkId::new("sort_20k", v.name()), &v, |b, &v| {
            b.iter(|| black_box(run(&mut Sort::new(20_000, 512, 3), v)))
        });
        g.bench_with_input(BenchmarkId::new("mmul_64", v.name()), &v, |b, &v| {
            b.iter(|| black_box(run(&mut Mmul::new(64, 16, 1), v)))
        });
        g.bench_with_input(BenchmarkId::new("fft_4k", v.name()), &v, |b, &v| {
            b.iter(|| black_box(run(&mut Fft::new(4096, 8, 4), v)))
        });
    }
    g.finish();
}

fn bench_baseline_vs_reach(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    g.sample_size(10);
    g.bench_function("sort_20k/baseline", |b| {
        b.iter(|| stint::run_baseline(&mut Sort::new(20_000, 512, 3)))
    });
    g.bench_function("sort_20k/reach_only", |b| {
        b.iter(|| stint::run_reach_only(&mut Sort::new(20_000, 512, 3)))
    });
    g.finish();
}

criterion_group!(benches, bench_detectors, bench_baseline_vs_reach);
criterion_main!(benches);
