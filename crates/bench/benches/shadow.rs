//! Ablation B: shadow-memory substrates — per-word vs ranged access to the
//! word shadow (the vanilla/compiler distinction), and the bit-shadow
//! coalescer's set/extract cycle across access shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stint_shadow::{BitShadow, WordShadow};

fn bench_word_shadow(c: &mut Criterion) {
    let mut g = c.benchmark_group("shadow/word");
    for &n in &[4_096u64, 65_536] {
        g.bench_with_input(BenchmarkId::new("per_word", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = WordShadow::new();
                for w in 0..n {
                    s.entry_mut(w).writer = (w % 97) as u32;
                }
                black_box(s.ops)
            })
        });
        g.bench_with_input(BenchmarkId::new("ranged", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = WordShadow::new();
                s.for_range_mut(0, n, |w, e| e.writer = (w % 97) as u32);
                black_box(s.ops)
            })
        });
    }
    g.finish();
}

fn bench_bit_shadow(c: &mut Criterion) {
    let mut g = c.benchmark_group("shadow/bits");
    // One strand's worth of traffic: set + extract + clear.
    g.bench_function("contiguous_64k_words", |b| {
        let mut s = BitShadow::new();
        let mut out = Vec::new();
        b.iter(|| {
            for i in 0..1024u64 {
                s.set_range(i * 64, i * 64 + 64);
            }
            out.clear();
            s.extract_and_clear(&mut out);
            black_box(out.len())
        })
    });
    g.bench_function("strided_like_fft_transpose", |b| {
        // 16-byte elements every 4 KiB: many tiny intervals.
        let mut s = BitShadow::new();
        let mut out = Vec::new();
        b.iter(|| {
            for i in 0..4096u64 {
                let w = i * 1024;
                s.set_range(w, w + 4);
            }
            out.clear();
            s.extract_and_clear(&mut out);
            black_box(out.len())
        })
    });
    g.bench_function("dedup_hot_block", |b| {
        // 100 rewrites of the same 2 KiB block: dedup should keep the
        // extraction cost constant.
        let mut s = BitShadow::new();
        let mut out = Vec::new();
        b.iter(|| {
            for _ in 0..100 {
                s.set_range(0, 512);
            }
            out.clear();
            s.extract_and_clear(&mut out);
            black_box(out.len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_word_shadow, bench_bit_shadow
}
criterion_main!(benches);
