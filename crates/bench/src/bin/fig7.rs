//! Figure 7: time each benchmark spends updating its access history —
//! word-granularity hashmap (comp+rts) vs interval treap (STINT).

use stint::Variant;
use stint_bench::*;
use stint_suite::NAMES;

fn main() {
    let scale = scale_from_args();
    println!(
        "Figure 7 — access-history update time: hashmap vs treap (scale={})",
        scale_name(scale)
    );
    let mut t = Table::new(vec!["bench", "hashmap", "treap", "treap/hashmap"]);
    for name in NAMES {
        let h = run_variant(name, scale, Variant::CompRts);
        let s = run_variant(name, scale, Variant::Stint);
        let ht = h.stats.ah_time.as_secs_f64();
        let st = s.stats.ah_time.as_secs_f64();
        t.row(vec![
            name.to_string(),
            format!("{ht:.3}"),
            format!("{st:.3}"),
            format!("{:.2}x", st / ht.max(1e-9)),
        ]);
    }
    t.print();
    println!();
    println!("paper shape: treap wins broadly (heat 123.6→2.4, sort 26.4→1.5, stra 59.6→1.6)");
    println!("except fft, whose many small intervals favour the hashmap (207.7→392.5).");
}
