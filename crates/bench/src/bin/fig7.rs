//! Figure 7: time each benchmark spends updating its access history —
//! word-granularity hashmap (comp+rts) vs interval treap (STINT).

use stint::Variant;
use stint_bench::*;
use stint_suite::NAMES;

fn main() {
    // Exact ah_time: time every flush, not the default 1-in-64 sampling.
    // set_mode returns the latched mode; if something latched it first the
    // ah_time columns would be sampled estimates, which this figure must not
    // silently present as exact.
    let mode = stint::timing::set_mode(stint::TimingMode::Full);
    if mode != stint::TimingMode::Full {
        eprintln!(
            "fig7: timing mode already latched to {mode:?}; ah_time columns would be inexact"
        );
        std::process::exit(2);
    }
    let scale = scale_from_args();
    println!(
        "Figure 7 — access-history update time: hashmap vs treap (scale={})",
        scale_name(scale)
    );
    // The trailing columns attribute the hot-path speedup: how much of the
    // reachability traffic the strand-local cache absorbed, how many words
    // each page resolution served on the batched replay path, and how many
    // hooks the redundant-set filter elided (per variant h=hashmap, t=treap).
    let mut t = Table::new(vec![
        "bench",
        "hashmap",
        "treap",
        "treap/hashmap",
        "reach hit% h/t",
        "batch avg h",
        "filtered h/t",
    ]);
    for name in NAMES {
        let h = run_variant(name, scale, Variant::CompRts);
        let s = run_variant(name, scale, Variant::Stint);
        let ht = h.stats.ah_time.as_secs_f64();
        let st = s.stats.ah_time.as_secs_f64();
        t.row(vec![
            name.to_string(),
            format!("{ht:.3}"),
            format!("{st:.3}"),
            format!("{:.2}x", st / ht.max(1e-9)),
            format!(
                "{:.1}/{:.1}",
                100.0 * h.stats.reach_hit_rate(),
                100.0 * s.stats.reach_hit_rate()
            ),
            format!("{:.1}", h.stats.avg_page_batch_words()),
            format!(
                "{:.1e}/{:.1e}",
                h.stats.hook_filter_hits as f64, s.stats.hook_filter_hits as f64
            ),
        ]);
    }
    t.print();
    println!();
    println!("paper shape: treap wins broadly (heat 123.6→2.4, sort 26.4→1.5, stra 59.6→1.6)");
    println!("except fft, whose many small intervals favour the hashmap (207.7→392.5).");
}
