//! Figure 5: execution times and overheads of the four detector variants
//! (vanilla / compiler / comp+rts / STINT) against the no-detection baseline,
//! plus the geometric-mean overhead row the paper quotes (78.13× vanilla vs
//! 18.61× STINT on the paper's machine/inputs).

use stint::Variant;
use stint_bench::*;
use stint_suite::NAMES;

fn main() {
    let scale = scale_from_args();
    println!(
        "Figure 5 — detector variant times and overheads (scale={})",
        scale_name(scale)
    );
    let mut t = Table::new(vec![
        "bench", "base", "vanilla", "(oh)", "compiler", "(oh)", "comp+rts", "(oh)", "STINT", "(oh)",
    ]);
    let mut ohs: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for name in NAMES {
        let base = baseline(name, scale);
        let mut cells = vec![name.to_string(), secs(base)];
        for (i, v) in Variant::ALL.iter().enumerate() {
            let o = run_variant(name, scale, *v);
            let oh = overhead(o.wall, base);
            ohs[i].push(oh);
            cells.push(secs(o.wall));
            cells.push(format!("({oh:.2}x)"));
        }
        t.row(cells);
    }
    let mut gm = vec!["geomean".to_string(), String::new()];
    for o in &ohs {
        gm.push(String::new());
        gm.push(format!("({:.2}x)", geomean(o)));
    }
    t.row(gm);
    t.print();
    println!();
    println!(
        "paper reference (their machine, paper-scale inputs): vanilla 78.13x, STINT 18.61x geomean"
    );
}
