//! `space` — the paper's space-overhead comparison, regenerated from the
//! byte-accurate gauge telemetry (Section 5's memory discussion plus
//! Lemma 4.1).
//!
//! For every benchmark × variant the binary runs one detection with
//! observability on and reports, from the end-of-run `DetectorStats` and the
//! gauge watermarks:
//!
//! * `ah_bytes` — heap bytes of the access history at run end (shadow pages
//!   for the hash variants, interval-store arenas for STINT);
//! * `coalesce_bytes` — the runtime-coalescing bit tables;
//! * `shadow_hw` — watermark of the word+bit shadow gauges;
//! * `peak_bytes` — sum of every `*.bytes` gauge watermark: the RSS proxy
//!   (structures need not peak simultaneously, so this is an upper bound on
//!   any single instant's tracked footprint);
//! * the Lemma 4.1 numbers: `treap_len_hw` must stay within
//!   `2*treap_inserts + k` for `k` interval stores.
//!
//! Per benchmark it then prints the paper's headline ratio — hash-variant
//! shadow bytes over STINT's treap bytes — and runs one dedicated STINT
//! detection whose read and write trees are checked *separately* against the
//! exact per-store bound `len_hw <= 2*inserts + 1` (the merged stats can
//! only support the weaker `+2` form).
//!
//! Flags: `--scale {test|s|m|paper}` (default `s`), `--bench NAME`,
//! `--out PATH` (default `BENCH_space.json`). Any Lemma violation is a hard
//! failure (exit 1) — `scripts/perfgate.sh --check` regenerates and gates
//! this file.
//!
//! Build with `--features obs-alloc` to also record the counting-allocator
//! watermark (`alloc_hw`) as process-level ground truth.

use stint::{Config, IntervalStore, Outcome, Variant};
use stint_bench::*;
use stint_suite::{Scale, Workload, NAMES};

#[cfg(feature = "obs-alloc")]
#[global_allocator]
static ALLOC: stint::obs::alloc_track::CountingAlloc = stint::obs::alloc_track::CountingAlloc;

/// Unlike the timing figures, the space table also includes the B-tree
/// interval store (`stint-btree`): its `bytes` column is the paper's "what
/// if the treap were a flat ordered map" data point.
const VARIANTS: [Variant; 5] = [
    Variant::Vanilla,
    Variant::Compiler,
    Variant::CompRts,
    Variant::Stint,
    Variant::StintFlat,
];

struct Args {
    scale: Scale,
    out: String,
    bench: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args {
        scale: scale_from_args(),
        out: "BENCH_space.json".to_string(),
        bench: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                a.out = argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
                i += 1;
            }
            "--bench" => {
                a.bench = Some(argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--bench needs a workload name");
                    std::process::exit(2);
                }));
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    a
}

struct Row {
    bench: &'static str,
    variant: Variant,
    outcome: Outcome,
    shadow_hw: u64,
    peak_bytes: u64,
    alloc_hw: u64,
}

impl Row {
    /// Merged-store Lemma 4.1 bound: two interval stores, `2m + 2`.
    fn lemma_bound(&self) -> u64 {
        2 * self.outcome.stats.treap_inserts + 2
    }
    fn lemma_ok(&self) -> bool {
        self.outcome.stats.treap_len_hw <= self.lemma_bound()
    }
}

/// Exact per-store Lemma 4.1 check for one benchmark: run STINT directly and
/// read each tree's `OpStats` separately (`len_hw <= 2*inserts + 1`).
struct LemmaCase {
    bench: &'static str,
    tree: &'static str,
    inserts: u64,
    len_hw: u64,
}

impl LemmaCase {
    fn bound(&self) -> u64 {
        2 * self.inserts + 1
    }
    fn ok(&self) -> bool {
        self.len_hw <= self.bound()
    }
}

fn run_cell(name: &'static str, scale: Scale, v: Variant) -> Row {
    // Fresh watermarks per cell: everything from the previous cell has been
    // dropped (gauges reconciled back to zero), so a reset only clears the
    // high-water marks and the accumulated counters.
    stint::obs::reset();
    let mut w = Workload::by_name(name, scale);
    let mut cfg = Config::new(v);
    cfg.collect_racy_words = false;
    let o = stint::detect_with(&mut w, cfg);
    assert!(
        o.report.is_race_free(),
        "{name} reported races under {v} — benchmark or detector bug"
    );
    let mut shadow_hw = 0u64;
    let mut peak_bytes = 0u64;
    for (gname, _current, hw) in stint::obs::gauges_snapshot() {
        if gname.ends_with("bytes") {
            peak_bytes += hw;
        }
        if gname == "shadow.word_bytes" || gname == "shadow.bit_bytes" {
            shadow_hw += hw;
        }
    }
    #[cfg(feature = "obs-alloc")]
    let alloc_hw = stint::obs::alloc_track::high_water_bytes();
    #[cfg(not(feature = "obs-alloc"))]
    let alloc_hw = 0u64;
    Row {
        bench: name,
        variant: v,
        outcome: o,
        shadow_hw,
        peak_bytes,
        alloc_hw,
    }
}

fn run_lemma_cases(bench: &'static str, scale: Scale) -> [LemmaCase; 2] {
    stint::obs::reset();
    let mut w = Workload::by_name(bench, scale);
    let det = stint::StintDetector::new(stint::RaceReport::default());
    let (ex, _) = stint::run_with_detector(&mut w, det);
    let rs = ex.det.read_tree().stats();
    let ws = ex.det.write_tree().stats();
    [
        LemmaCase {
            bench,
            tree: "read",
            inserts: rs.inserts,
            len_hw: rs.len_hw,
        },
        LemmaCase {
            bench,
            tree: "write",
            inserts: ws.inserts,
            len_hw: ws.len_hw,
        },
    ]
}

fn kib(b: u64) -> String {
    format!("{:.1}", b as f64 / 1024.0)
}

fn write_json(
    path: &str,
    scale: Scale,
    rows: &[Row],
    lemma: &[LemmaCase],
    ratios: &[(&'static str, f64)],
) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"stint-space-v1\",\n");
    j.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(scale)));
    j.push_str(&format!(
        "  \"obs_alloc\": {},\n",
        cfg!(feature = "obs-alloc")
    ));
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let s = &r.outcome.stats;
        j.push_str(&format!(
            concat!(
                "    {{\"bench\": \"{}\", \"variant\": \"{}\", ",
                "\"ah_bytes\": {}, \"coalesce_bytes\": {}, \"shadow_hw_bytes\": {}, ",
                "\"peak_gauge_bytes\": {}, \"alloc_hw_bytes\": {}, ",
                "\"treap_inserts\": {}, \"treap_len_hw\": {}, ",
                "\"lemma_bound\": {}, \"lemma_ok\": {}}}{}\n",
            ),
            r.bench,
            r.variant.name(),
            s.ah_bytes,
            s.coalesce_bytes,
            r.shadow_hw,
            r.peak_bytes,
            r.alloc_hw,
            s.treap_inserts,
            s.treap_len_hw,
            r.lemma_bound(),
            r.lemma_ok(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"lemma_per_store\": [\n");
    for (i, c) in lemma.iter().enumerate() {
        j.push_str(&format!(
            concat!(
                "    {{\"bench\": \"{}\", \"tree\": \"{}\", \"inserts\": {}, ",
                "\"len_hw\": {}, \"bound\": {}, \"ok\": {}}}{}\n",
            ),
            c.bench,
            c.tree,
            c.inserts,
            c.len_hw,
            c.bound(),
            c.ok(),
            if i + 1 < lemma.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"hash_shadow_over_treap\": {");
    for (i, (bench, ratio)) in ratios.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("\"{bench}\": {ratio:.2}"));
    }
    j.push_str("}\n}\n");
    std::fs::write(path, j).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}

fn main() {
    let args = parse_args();
    assert!(
        !stint_faults::is_active(),
        "the space study must run with no fault plan installed"
    );
    if let Some(b) = args.bench.as_deref() {
        if !NAMES.contains(&b) {
            eprintln!("--bench {b}: no such workload (have: {})", NAMES.join(", "));
            std::process::exit(2);
        }
    }
    // Counters + gauges only: spans and the sampler would add noise without
    // adding bytes, and the watermarks are what this study reads.
    stint::obs::enable(stint::obs::ObsConfig::COUNTERS);

    println!(
        "space — access-history bytes and gauge watermarks (scale={})",
        scale_name(args.scale)
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut lemma: Vec<LemmaCase> = Vec::new();
    for name in NAMES {
        if args.bench.as_deref().is_some_and(|b| b != name) {
            continue;
        }
        for v in VARIANTS {
            rows.push(run_cell(name, args.scale, v));
        }
        lemma.extend(run_lemma_cases(name, args.scale));
    }

    let mut t = Table::new(vec![
        "bench",
        "variant",
        "ah KiB",
        "coalesce KiB",
        "shadow hw KiB",
        "peak KiB",
        "len_hw",
        "2m+2",
        "lemma",
    ]);
    for r in &rows {
        let s = &r.outcome.stats;
        t.row(vec![
            r.bench.to_string(),
            r.variant.name().to_string(),
            kib(s.ah_bytes),
            kib(s.coalesce_bytes),
            kib(r.shadow_hw),
            kib(r.peak_bytes),
            s.treap_len_hw.to_string(),
            r.lemma_bound().to_string(),
            if r.lemma_ok() { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    t.print();

    // The headline comparison: word-shadow footprint of the strongest hash
    // variant over STINT's interval arenas, per benchmark.
    let mut ratios: Vec<(&'static str, f64)> = Vec::new();
    println!();
    for name in NAMES {
        let hash = rows
            .iter()
            .find(|r| r.bench == name && r.variant == Variant::Vanilla);
        let treap = rows
            .iter()
            .find(|r| r.bench == name && r.variant == Variant::Stint);
        if let (Some(h), Some(t)) = (hash, treap) {
            let ratio = h.outcome.stats.ah_bytes as f64 / t.outcome.stats.ah_bytes.max(1) as f64;
            println!(
                "{name}: hash shadow {} KiB / treap {} KiB = {ratio:.2}x",
                kib(h.outcome.stats.ah_bytes),
                kib(t.outcome.stats.ah_bytes),
            );
            ratios.push((h.bench, ratio));
        }
    }

    println!();
    for c in &lemma {
        println!(
            "lemma 4.1 {} {} tree: len_hw {} <= 2*{}+1 = {} {}",
            c.bench,
            c.tree,
            c.len_hw,
            c.inserts,
            c.bound(),
            if c.ok() { "ok" } else { "VIOLATED" }
        );
    }

    write_json(&args.out, args.scale, &rows, &lemma, &ratios);
    println!("\nwrote {}", args.out);

    let violations =
        rows.iter().filter(|r| !r.lemma_ok()).count() + lemma.iter().filter(|c| !c.ok()).count();
    if violations > 0 {
        eprintln!("FAIL: {violations} Lemma 4.1 violation(s)");
        std::process::exit(1);
    }
    println!("lemma 4.1 holds on every case");
}
