//! Figure 8: scaling study on fft, mmul and sort at three input sizes each —
//! baseline / comp+rts / STINT times, access-history-only times (hash oh,
//! treap oh), operation counts, and the treap's average visited nodes and
//! overlaps per operation (the O(h+k) decomposition of Lemma 4.2).

use stint::Variant;
use stint_bench::*;
use stint_suite::{fft::Fft, mmul::Mmul, sort::Sort, Scale};

type Runner = Box<dyn FnMut(Variant) -> stint::Outcome>;

struct Case {
    bench: &'static str,
    input: String,
    make: Box<dyn Fn() -> Runner>,
    base: std::time::Duration,
}

fn main() {
    // Exact ah_time columns: time every flush, not the 1-in-64 sampling.
    let mode = stint::timing::set_mode(stint::TimingMode::Full);
    if mode != stint::TimingMode::Full {
        eprintln!("fig8: timing mode already latched to {mode:?}; ah columns would be inexact");
        std::process::exit(2);
    }
    let scale = scale_from_args();
    println!(
        "Figure 8 — scaling of comp+rts vs STINT on fft/mmul/sort (scale={})",
        scale_name(scale)
    );

    // Input-size triples per scale. The paper uses fft 2^24..2^26, mmul
    // 1024..4096, sort 5e7..2e8; our six-step fft requires perfect-square
    // sizes, so the paper preset steps by 4x (2^22, 2^24, 2^26).
    type Sizes = Vec<(usize, usize)>;
    let (ffts, mmuls, sorts): (Sizes, Sizes, Sizes) = match scale {
        Scale::Test => (
            vec![(1 << 8, 2), (1 << 10, 4), (1 << 12, 8)],
            vec![(16, 8), (32, 8), (64, 8)],
            vec![(1_000, 64), (2_000, 64), (4_000, 64)],
        ),
        Scale::S => (
            vec![(1 << 12, 8), (1 << 14, 16), (1 << 16, 16)],
            vec![(128, 32), (256, 32), (512, 32)],
            vec![(100_000, 2048), (300_000, 2048), (1_000_000, 2048)],
        ),
        Scale::M => (
            vec![(1 << 16, 16), (1 << 18, 32), (1 << 20, 64)],
            vec![(256, 64), (512, 64), (1024, 64)],
            vec![(1_000_000, 2048), (2_500_000, 2048), (5_000_000, 2048)],
        ),
        Scale::Paper => (
            vec![(1 << 22, 128), (1 << 24, 128), (1 << 26, 128)],
            vec![(1024, 64), (2048, 64), (4096, 64)],
            vec![(50_000_000, 2048), (100_000_000, 2048), (200_000_000, 2048)],
        ),
    };

    let mut cases: Vec<Case> = Vec::new();
    for (n, b) in ffts {
        cases.push(Case {
            bench: "fft",
            input: format!("2^{}", n.trailing_zeros()),
            base: stint::run_baseline(&mut Fft::new(n, b, 4)),
            make: Box::new(move || Box::new(move |v| run_program(&mut Fft::new(n, b, 4), v))),
        });
    }
    for (n, b) in mmuls {
        cases.push(Case {
            bench: "mmul",
            input: format!("{n}"),
            base: stint::run_baseline(&mut Mmul::new(n, b, 1)),
            make: Box::new(move || Box::new(move |v| run_program(&mut Mmul::new(n, b, 1), v))),
        });
    }
    for (n, b) in sorts {
        cases.push(Case {
            bench: "sort",
            input: format!("{:.1e}", n as f64),
            base: stint::run_baseline(&mut Sort::new(n, b, 3)),
            make: Box::new(move || Box::new(move |v| run_program(&mut Sort::new(n, b, 3), v))),
        });
    }

    let mut t = Table::new(vec![
        "bench",
        "input",
        "base",
        "comp+rts",
        "(oh)",
        "STINT",
        "(oh)",
        "hash oh",
        "treap oh",
        "hash ops",
        "treap ops",
        "#nodes",
        "#overlaps",
    ]);
    for c in cases {
        let h = (c.make)()(Variant::CompRts);
        let s = (c.make)()(Variant::Stint);
        t.row(vec![
            c.bench.to_string(),
            c.input.clone(),
            secs(c.base),
            secs(h.wall),
            format!("({:.2}x)", overhead(h.wall, c.base)),
            secs(s.wall),
            format!("({:.2}x)", overhead(s.wall, c.base)),
            format!("{:.2}", h.stats.ah_time.as_secs_f64()),
            format!("{:.2}", s.stats.ah_time.as_secs_f64()),
            format!("{:.2e}", h.stats.hash_ops as f64),
            format!("{:.2e}", s.stats.treap.ops as f64),
            format!("{:.2}", s.stats.treap.avg_visited()),
            format!("{:.2}", s.stats.treap.avg_overlaps()),
        ]);
    }
    t.print();
}
