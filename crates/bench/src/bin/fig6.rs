//! Figure 6: memory-access statistics under the three instrumentation
//! configurations — vanilla (per-word accesses), compiler coalescing only,
//! and compile-time + runtime coalescing ("both"). For each: access/interval
//! counts (millions), average interval size (bytes) and total bytes into the
//! access history (MB), split by reads/writes.

use stint::Variant;
use stint_bench::*;
use stint_suite::NAMES;

fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

fn main() {
    let scale = scale_from_args();
    println!(
        "Figure 6 — coalescing statistics: vanilla vs compiler vs both (scale={})",
        scale_name(scale)
    );
    let mut t = Table::new(vec![
        "bench",
        "acc(r)M",
        "acc(w)M",
        "cmp int(r)M",
        "cmp int(w)M",
        "both int(r)M",
        "both int(w)M",
        "cmp avg(r)",
        "cmp avg(w)",
        "both avg(r)",
        "both avg(w)",
        "cmp sum(r)MB",
        "cmp sum(w)MB",
        "both sum(r)MB",
        "both sum(w)MB",
    ]);
    for name in NAMES {
        let van = run_variant(name, scale, Variant::Vanilla);
        let cmp = run_variant(name, scale, Variant::Compiler);
        let both = run_variant(name, scale, Variant::CompRts);
        t.row(vec![
            name.to_string(),
            millions(van.stats.read.words),
            millions(van.stats.write.words),
            millions(cmp.stats.read.intervals),
            millions(cmp.stats.write.intervals),
            millions(both.stats.read.intervals),
            millions(both.stats.write.intervals),
            format!("{:.1}", cmp.stats.read.avg_interval_bytes()),
            format!("{:.1}", cmp.stats.write.avg_interval_bytes()),
            format!("{:.1}", both.stats.read.avg_interval_bytes()),
            format!("{:.1}", both.stats.write.avg_interval_bytes()),
            mb(cmp.stats.read.interval_bytes),
            mb(cmp.stats.write.interval_bytes),
            mb(both.stats.read.interval_bytes),
            mb(both.stats.write.interval_bytes),
        ]);
    }
    t.print();
    println!();
    println!("cmp = compile-time coalescing only; both = compile-time + runtime.");
    println!("A drop from cmp sum to both sum indicates runtime deduplication.");
}
