//! `serve_load` — many-client load driver for the detection service.
//!
//! Runs an in-process [`stint_serve::Engine`] and pushes thousands of
//! queued sessions of mixed traffic through it: clean and racy traces (v1
//! and compressed v2), corrupt payloads, zero-budget timeout sessions, and
//! malformed option specs. `Busy` rejections are retried after the
//! server's hint, so every logical session is eventually answered — the
//! run fails loudly if any session is lost, if a racy trace is ever
//! answered `ok` (a lost race), or if any obs gauge is nonzero after the
//! drain.
//!
//! Chaos is inherited from the environment: run under
//! `STINT_FAULTS=serve-panic-session=N` (and friends) to soak the panic
//! isolation path; poisoned sessions are counted and checked, not crashed
//! on. Observability likewise comes from `STINT_OBS`.
//!
//! Publishes `BENCH_serve.json` (`stint-bench-serve-v1`): p50/p99 session
//! latency, sessions/sec, and the per-status result counts. Validate with
//! `jsoncheck serve BENCH_serve.json`.
//!
//! ```text
//! serve_load [--sessions N] [--session-workers N] [--queue-depth N]
//!            [--pool-workers N] [--out FILE]
//! ```

use std::collections::HashMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use stint::PortableTrace;
use stint_serve::{Engine, EngineConfig, Status};
use stint_suite::{Scale, Workload};

/// One traffic class of the mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    CleanV2,
    RacyV1,
    RacyV2,
    Corrupt,
    Timeout,
    Usage,
}

impl Kind {
    /// Weighted round-robin mix: mostly clean, a steady stream of racy and
    /// hostile traffic.
    const MIX: [Kind; 10] = [
        Kind::CleanV2,
        Kind::RacyV1,
        Kind::CleanV2,
        Kind::RacyV2,
        Kind::Corrupt,
        Kind::CleanV2,
        Kind::Timeout,
        Kind::RacyV2,
        Kind::CleanV2,
        Kind::Usage,
    ];

    fn racy(self) -> bool {
        matches!(self, Kind::RacyV1 | Kind::RacyV2 | Kind::Timeout)
    }
}

const RACY_V1: &str = "STINT-TRACE v1\nstrands 3\n0 0\n1 2\n2 1\nevents 4\n\
                       s 1 0x40 4\ne 1 0x0 0\ns 2 0x40 4\ne 2 0x0 0\n";

struct Corpus {
    clean_v2: Vec<u8>,
    racy_v2: Vec<u8>,
    corrupt: Vec<u8>,
}

impl Corpus {
    fn build() -> Corpus {
        let mut w = Workload::by_name("sort", Scale::Test);
        let clean = PortableTrace::record(&mut w);
        let mut clean_v2 = Vec::new();
        clean
            .save_compressed(&mut clean_v2, 512)
            .expect("compress clean trace");
        let racy = PortableTrace::load_any(RACY_V1.as_bytes()).expect("parse racy v1");
        let mut racy_v2 = Vec::new();
        racy.save_compressed(&mut racy_v2, 2)
            .expect("compress racy trace");
        let mut corrupt = clean_v2.clone();
        corrupt.truncate(corrupt.len() * 2 / 3);
        Corpus {
            clean_v2,
            racy_v2,
            corrupt,
        }
    }

    fn payload(&self, kind: Kind) -> (String, Vec<u8>) {
        match kind {
            Kind::CleanV2 => (String::new(), self.clean_v2.clone()),
            Kind::RacyV1 => ("shards=2".into(), RACY_V1.as_bytes().to_vec()),
            Kind::RacyV2 => (String::new(), self.racy_v2.clone()),
            Kind::Corrupt => (String::new(), self.corrupt.clone()),
            Kind::Timeout => ("timeout-ms=0".into(), self.racy_v2.clone()),
            Kind::Usage => ("frobnicate=1".into(), self.clean_v2.clone()),
        }
    }
}

#[derive(Default)]
struct Results {
    ok: u64,
    racy: u64,
    usage: u64,
    degraded: u64,
    corrupt: u64,
    poisoned: u64,
}

fn die(m: String) -> ! {
    eprintln!("error: {m}");
    eprintln!(
        "usage: serve_load [--sessions N] [--session-workers N] \
         [--queue-depth N] [--pool-workers N] [--out FILE]"
    );
    std::process::exit(2);
}

fn next_num(it: &mut std::slice::Iter<'_, String>, flag: &str) -> usize {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(format!("{flag} needs a positive number")))
}

fn parse_args() -> (usize, EngineConfig, String) {
    let mut sessions = 1000usize;
    let mut cfg = EngineConfig {
        session_workers: 2,
        queue_depth: 32,
        pool_workers: 2,
        default_timeout_ms: 30_000,
        retry_after_ms: 2,
    };
    let mut out = "BENCH_serve.json".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sessions" => sessions = next_num(&mut it, a),
            "--session-workers" => cfg.session_workers = next_num(&mut it, a),
            "--queue-depth" => cfg.queue_depth = next_num(&mut it, a),
            "--pool-workers" => cfg.pool_workers = next_num(&mut it, a),
            "--out" => {
                out = it
                    .next()
                    .unwrap_or_else(|| die("--out needs a path".into()))
                    .clone()
            }
            other => die(format!("unknown flag {other:?}")),
        }
    }
    if sessions == 0 {
        die("--sessions must be positive".into());
    }
    (sessions, cfg, out)
}

fn main() {
    // Injected session panics are caught by the engine's unwind boundary
    // and answered as `poisoned`; without this hook each one would still
    // dump a backtrace and drown the summary under a chaos plan.
    stint_serve::install_panic_hook();
    let (sessions, cfg, out_path) = parse_args();
    // Chaos and observability come from the environment so the smoke
    // script owns the plan; a malformed spec is a usage error here too.
    if let Err(e) = stint_faults::install_from_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    if let Err(e) = stint::obs::enable_from_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let corpus = Corpus::build();
    let engine = Engine::new(cfg);
    let (tx, rx) = mpsc::channel();

    let mut kinds: HashMap<u32, usize> = HashMap::new(); // session id → mix slot
    let mut started: HashMap<u32, Instant> = HashMap::new();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(sessions);
    let mut results = Results::default();
    let mut busy_rejections = 0u64;
    let mut lost_races = 0u64;
    let mut answered = 0usize;
    let t0 = Instant::now();

    let submit = |engine: &Engine,
                  kinds: &mut HashMap<u32, usize>,
                  started: &mut HashMap<u32, Instant>,
                  slot: usize| {
        let kind = Kind::MIX[slot % Kind::MIX.len()];
        let (opts, trace) = corpus.payload(kind);
        let id = engine.try_submit(opts, trace, tx.clone());
        kinds.insert(id, slot);
        started.insert(id, Instant::now());
    };

    for slot in 0..sessions {
        submit(&engine, &mut kinds, &mut started, slot);
    }
    // Every logical session ends in exactly one terminal reply; Busy is a
    // transient that re-enters the queue after the server's hint.
    while answered < sessions {
        let resp = rx
            .recv_timeout(Duration::from_secs(120))
            .expect("session reply lost — daemon wedged?");
        let slot = kinds
            .remove(&resp.session)
            .expect("reply for an unknown session id");
        let t_start = started.remove(&resp.session).expect("no start time");
        if resp.status == Status::Busy {
            busy_rejections += 1;
            std::thread::sleep(Duration::from_millis(engine.config().retry_after_ms));
            submit(&engine, &mut kinds, &mut started, slot);
            continue;
        }
        answered += 1;
        latencies_ms.push(t_start.elapsed().as_secs_f64() * 1e3);
        let kind = Kind::MIX[slot % Kind::MIX.len()];
        // A racy trace answered `ok` would be a silently lost race — the
        // one unforgivable outcome. Degraded/poisoned are flagged, not
        // silent.
        if kind.racy() && resp.status == Status::Ok {
            lost_races += 1;
        }
        match resp.status {
            Status::Ok => results.ok += 1,
            Status::Racy => results.racy += 1,
            Status::Usage => results.usage += 1,
            Status::Degraded => results.degraded += 1,
            Status::Corrupt => {
                if resp.payload.contains("kind: poisoned") {
                    results.poisoned += 1;
                } else {
                    results.corrupt += 1;
                }
            }
            Status::Busy | Status::Bye => unreachable!("terminal reply"),
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    engine.drain();
    let totals = engine.totals();
    // `cilkrt.pool_bytes` tracks live pool memory and only reconciles when
    // the pool is dropped, so the engine must be gone before the zero
    // check — any gauge still nonzero then is a genuine session leak.
    drop(engine);

    let gauges = stint::obs::gauges_snapshot();
    let gauges_zero = gauges.iter().all(|(_, cur, _)| *cur == 0);
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| -> f64 {
        let idx = ((latencies_ms.len() as f64 - 1.0) * p).round() as usize;
        latencies_ms[idx]
    };

    let mut failures = Vec::new();
    if lost_races > 0 {
        failures.push(format!("{lost_races} racy session(s) answered ok"));
    }
    // Busy bounces never reach a worker, so admitted sessions must equal
    // the logical session count exactly — anything else lost a session.
    if totals.sessions != sessions as u64 {
        failures.push(format!(
            "engine admitted {} sessions, expected {sessions}",
            totals.sessions
        ));
    }
    if totals.busy != busy_rejections {
        failures.push(format!(
            "engine counted {} busy rejections, driver saw {busy_rejections}",
            totals.busy
        ));
    }
    if !gauges_zero {
        let dirty: Vec<String> = gauges
            .iter()
            .filter(|(_, cur, _)| *cur != 0)
            .map(|(n, cur, _)| format!("{n}={cur}"))
            .collect();
        failures.push(format!("gauges nonzero after drain: {}", dirty.join(", ")));
    }

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"stint-bench-serve-v1\",\n");
    j.push_str(&format!("  \"hw_threads\": {hw},\n"));
    j.push_str(&format!("  \"sessions\": {sessions},\n"));
    j.push_str(&format!(
        "  \"session_workers\": {},\n  \"queue_depth\": {},\n  \"pool_workers\": {},\n",
        cfg.session_workers, cfg.queue_depth, cfg.pool_workers
    ));
    j.push_str(&format!(
        "  \"results\": {{ \"ok\": {}, \"racy\": {}, \"usage\": {}, \"degraded\": {}, \
         \"corrupt\": {}, \"poisoned\": {} }},\n",
        results.ok,
        results.racy,
        results.usage,
        results.degraded,
        results.corrupt,
        results.poisoned
    ));
    j.push_str(&format!("  \"busy_rejections\": {busy_rejections},\n"));
    j.push_str(&format!("  \"lost_races\": {lost_races},\n"));
    j.push_str(&format!("  \"p50_ms\": {:.3},\n", pct(0.50)));
    j.push_str(&format!("  \"p99_ms\": {:.3},\n", pct(0.99)));
    j.push_str(&format!(
        "  \"sessions_per_sec\": {:.1},\n",
        sessions as f64 / wall
    ));
    j.push_str(&format!("  \"wall_secs\": {wall:.3},\n"));
    j.push_str(&format!("  \"gauges_zero_after_drain\": {gauges_zero}\n"));
    j.push_str("}\n");
    std::fs::write(&out_path, &j).unwrap_or_else(|e| {
        eprintln!("error: write {out_path}: {e}");
        std::process::exit(2);
    });

    println!(
        "serve_load: {sessions} sessions on {}w/{}q ({} busy bounces) in {wall:.2}s \
         ({:.0}/s, p50 {:.2}ms, p99 {:.2}ms)",
        cfg.session_workers,
        cfg.queue_depth,
        busy_rejections,
        sessions as f64 / wall,
        pct(0.50),
        pct(0.99)
    );
    println!(
        "  ok {} racy {} usage {} degraded {} corrupt {} poisoned {}  gauges-zero {}",
        results.ok,
        results.racy,
        results.usage,
        results.degraded,
        results.corrupt,
        results.poisoned,
        gauges_zero
    );
    println!("  wrote {out_path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
