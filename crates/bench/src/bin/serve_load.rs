//! `serve_load` — many-client load driver for the detection service.
//!
//! Runs an in-process [`stint_serve::Engine`] and pushes thousands of
//! queued sessions of mixed traffic through it: clean and racy traces (v1
//! and compressed v2), corrupt payloads, zero-budget timeout sessions, and
//! malformed option specs. `Busy` rejections are retried after the
//! server's hint, so every logical session is eventually answered — the
//! run fails loudly if any session is lost, if a racy trace is ever
//! answered `ok` (a lost race), or if any obs gauge is nonzero after the
//! drain.
//!
//! The study runs in **two phases** so the observability plane's own cost
//! is measured, not assumed:
//!
//! * **phase A (obs off, no journal)** — the baseline. Asserts the
//!   one-relaxed-load-when-disabled contract held: the metrics registry
//!   was never initialized and the flight recorder wrote nothing.
//! * **phase B (obs full + session journal)** — the fully instrumented
//!   soak. The daemon's own `serve.latency_ms.*` histograms are read back
//!   and their p50/p99 cross-checked against the driver-measured
//!   latencies (`latency_agree`), the journal is replayed and must be
//!   clean with an empty in-flight set, and the throughput ratio
//!   `obs_overhead_ratio = obs_off / obs_full` feeds the perfgate ≤1.10
//!   gate.
//!
//! Each phase reports the median sessions/sec across repeated runs (five
//! obs-off, three obs-full), the driver submits closed-loop (at most 2x
//! the queue depth outstanding) and honors the server's measured
//! retry-after hint with per-session jitter, and the whole study re-runs
//! itself in a fresh process (up to twice) when the measured ratio strays
//! above the gate — single-digit-percent effects are at the edge of what
//! a shared small box can measure, and a real regression fails every
//! attempt. The bench journal uses `fsync=off`: the gate measures
//! instrumentation cost, not disk-flush latency (the daemon default is
//! `every=64`).
//!
//! Chaos is inherited from the environment: run under
//! `STINT_FAULTS=serve-panic-session=N` (and friends) to soak the panic
//! isolation path. `STINT_OBS` is *ignored* — the two phases own the obs
//! state.
//!
//! Publishes `BENCH_serve.json` (`stint-bench-serve-v2`). Validate with
//! `jsoncheck serve BENCH_serve.json`.
//!
//! ```text
//! serve_load [--sessions N] [--session-workers N] [--queue-depth N]
//!            [--pool-workers N] [--out FILE]
//! ```

use std::collections::HashMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use stint::journal::FsyncPolicy;
use stint::PortableTrace;
use stint_serve::{Engine, EngineConfig, SessionJournal, Status};
use stint_suite::{Scale, Workload};

/// One traffic class of the mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    CleanV2,
    RacyV1,
    RacyV2,
    Corrupt,
    Timeout,
    Usage,
}

impl Kind {
    /// Weighted round-robin mix: mostly clean, a steady stream of racy and
    /// hostile traffic.
    const MIX: [Kind; 10] = [
        Kind::CleanV2,
        Kind::RacyV1,
        Kind::CleanV2,
        Kind::RacyV2,
        Kind::Corrupt,
        Kind::CleanV2,
        Kind::Timeout,
        Kind::RacyV2,
        Kind::CleanV2,
        Kind::Usage,
    ];

    fn racy(self) -> bool {
        matches!(self, Kind::RacyV1 | Kind::RacyV2 | Kind::Timeout)
    }
}

const RACY_V1: &str = "STINT-TRACE v1\nstrands 3\n0 0\n1 2\n2 1\nevents 4\n\
                       s 1 0x40 4\ne 1 0x0 0\ns 2 0x40 4\ne 2 0x0 0\n";

struct Corpus {
    clean_v2: Vec<u8>,
    racy_v2: Vec<u8>,
    corrupt: Vec<u8>,
}

impl Corpus {
    fn build() -> Corpus {
        let mut w = Workload::by_name("sort", Scale::Test);
        let clean = PortableTrace::record(&mut w);
        let mut clean_v2 = Vec::new();
        clean
            .save_compressed(&mut clean_v2, 512)
            .expect("compress clean trace");
        let racy = PortableTrace::load_any(RACY_V1.as_bytes()).expect("parse racy v1");
        let mut racy_v2 = Vec::new();
        racy.save_compressed(&mut racy_v2, 2)
            .expect("compress racy trace");
        let mut corrupt = clean_v2.clone();
        corrupt.truncate(corrupt.len() * 2 / 3);
        Corpus {
            clean_v2,
            racy_v2,
            corrupt,
        }
    }

    fn payload(&self, kind: Kind) -> (String, Vec<u8>) {
        match kind {
            Kind::CleanV2 => (String::new(), self.clean_v2.clone()),
            Kind::RacyV1 => ("shards=2".into(), RACY_V1.as_bytes().to_vec()),
            Kind::RacyV2 => (String::new(), self.racy_v2.clone()),
            Kind::Corrupt => (String::new(), self.corrupt.clone()),
            Kind::Timeout => ("timeout-ms=0".into(), self.racy_v2.clone()),
            Kind::Usage => ("frobnicate=1".into(), self.clean_v2.clone()),
        }
    }
}

#[derive(Clone, Copy, Default)]
struct Results {
    ok: u64,
    racy: u64,
    usage: u64,
    degraded: u64,
    corrupt: u64,
    poisoned: u64,
}

/// One complete soak: submit, retry busies, await every terminal reply,
/// drain, drop.
struct Soak {
    results: Results,
    busy_rejections: u64,
    lost_races: u64,
    latencies_ms: Vec<f64>,
    wall: f64,
}

fn die(m: String) -> ! {
    eprintln!("error: {m}");
    eprintln!(
        "usage: serve_load [--sessions N] [--session-workers N] \
         [--queue-depth N] [--pool-workers N] [--out FILE]"
    );
    std::process::exit(2);
}

fn next_num(it: &mut std::slice::Iter<'_, String>, flag: &str) -> usize {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(format!("{flag} needs a positive number")))
}

fn parse_args() -> (usize, EngineConfig, String) {
    let mut sessions = 1000usize;
    let mut cfg = EngineConfig {
        session_workers: 2,
        queue_depth: 32,
        pool_workers: 2,
        default_timeout_ms: 30_000,
        retry_after_ms: 2,
    };
    let mut out = "BENCH_serve.json".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sessions" => sessions = next_num(&mut it, a),
            "--session-workers" => cfg.session_workers = next_num(&mut it, a),
            "--queue-depth" => cfg.queue_depth = next_num(&mut it, a),
            "--pool-workers" => cfg.pool_workers = next_num(&mut it, a),
            "--out" => {
                out = it
                    .next()
                    .unwrap_or_else(|| die("--out needs a path".into()))
                    .clone()
            }
            other => die(format!("unknown flag {other:?}")),
        }
    }
    if sessions == 0 {
        die("--sessions must be positive".into());
    }
    (sessions, cfg, out)
}

fn soak(
    sessions: usize,
    cfg: EngineConfig,
    corpus: &Corpus,
    journal: Option<SessionJournal>,
    failures: &mut Vec<String>,
) -> Soak {
    let engine = Engine::with_journal(cfg, journal);
    let (tx, rx) = mpsc::channel();

    let mut kinds: HashMap<u32, usize> = HashMap::new(); // session id → mix slot
    let mut started: HashMap<u32, Instant> = HashMap::new();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(sessions);
    let mut results = Results::default();
    let mut busy_rejections = 0u64;
    let mut lost_races = 0u64;
    let mut answered = 0usize;
    let t0 = Instant::now();

    let submit = |engine: &Engine,
                  kinds: &mut HashMap<u32, usize>,
                  started: &mut HashMap<u32, Instant>,
                  slot: usize| {
        let kind = Kind::MIX[slot % Kind::MIX.len()];
        let (opts, trace) = corpus.payload(kind);
        let id = engine.try_submit(opts, trace, tx.clone());
        kinds.insert(id, slot);
        started.insert(id, Instant::now());
    };

    // Closed-loop load generation: keep at most 2x the queue depth
    // outstanding, admitting the next logical session as terminal replies
    // come back. The workers stay saturated and admission control still sees
    // a steady busy trickle, but the throughput measurement isn't dominated
    // by thundering-herd retry dynamics — open-loop "submit all N upfront"
    // made the obs-off/obs-full ratio swing tens of percent run to run.
    let window = (engine.config().queue_depth * 2).max(1).min(sessions);
    let mut next_slot = 0usize;
    for _ in 0..window {
        submit(&engine, &mut kinds, &mut started, next_slot);
        next_slot += 1;
    }
    // Every logical session ends in exactly one terminal reply; Busy is a
    // transient that re-enters the queue after the server's hint. Busy
    // resubmits are deadline-scheduled rather than slept inline: the driver
    // latency sample is taken at `recv` time, so any inline sleep while
    // finished replies queue in the channel would inflate the driver's
    // numbers and break the daemon/driver latency cross-check.
    let mut resubmit_at: Vec<(Instant, usize)> = Vec::new(); // (due, mix slot)
    while answered < sessions {
        let now = Instant::now();
        let mut due = Vec::new();
        resubmit_at.retain(|&(at, slot)| {
            let ready = at <= now;
            if ready {
                due.push(slot);
            }
            !ready
        });
        for slot in due {
            submit(&engine, &mut kinds, &mut started, slot);
        }
        let wait = resubmit_at
            .iter()
            .map(|&(at, _)| at.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_secs(120));
        let resp = match rx.recv_timeout(wait) {
            Ok(resp) => resp,
            Err(mpsc::RecvTimeoutError::Timeout) if !resubmit_at.is_empty() => continue,
            Err(e) => panic!("session reply lost — daemon wedged? ({e})"),
        };
        let slot = kinds
            .remove(&resp.session)
            .expect("reply for an unknown session id");
        let t_start = started.remove(&resp.session).expect("no start time");
        if resp.status == Status::Busy {
            busy_rejections += 1;
            // Honor the server's measured retry-after hint (the whole point
            // of computing one from the queue drain rate), with a
            // deterministic per-slot jitter of up to +100%: every rejected
            // client sees the same queue length, so identical hints would
            // resynchronize the herd into one giant resubmit burst.
            let hint = resp
                .payload
                .lines()
                .find_map(|l| l.strip_prefix("retry-after-ms: "))
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(engine.config().retry_after_ms);
            let after = Duration::from_millis(hint + hint * ((slot as u64 * 7) % 100) / 100);
            resubmit_at.push((Instant::now() + after, slot));
            continue;
        }
        answered += 1;
        latencies_ms.push(t_start.elapsed().as_secs_f64() * 1e3);
        if next_slot < sessions {
            submit(&engine, &mut kinds, &mut started, next_slot);
            next_slot += 1;
        }
        let kind = Kind::MIX[slot % Kind::MIX.len()];
        // A racy trace answered `ok` would be a silently lost race — the
        // one unforgivable outcome. Degraded/poisoned are flagged, not
        // silent.
        if kind.racy() && resp.status == Status::Ok {
            lost_races += 1;
        }
        match resp.status {
            Status::Ok => results.ok += 1,
            Status::Racy => results.racy += 1,
            Status::Usage => results.usage += 1,
            Status::Degraded => results.degraded += 1,
            Status::Corrupt => {
                if resp.payload.contains("kind: poisoned") {
                    results.poisoned += 1;
                } else {
                    results.corrupt += 1;
                }
            }
            Status::Busy | Status::Bye => unreachable!("terminal reply"),
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    engine.drain();
    let totals = engine.totals();
    // `cilkrt.pool_bytes` tracks live pool memory and only reconciles when
    // the pool is dropped, so the engine must be gone before any gauge
    // check — a gauge still nonzero then is a genuine session leak.
    drop(engine);

    // Busy bounces never reach a worker, so admitted sessions must equal
    // the logical session count exactly — anything else lost a session.
    if totals.sessions != sessions as u64 {
        failures.push(format!(
            "engine admitted {} sessions, expected {sessions}",
            totals.sessions
        ));
    }
    if totals.busy != busy_rejections {
        failures.push(format!(
            "engine counted {} busy rejections, driver saw {busy_rejections}",
            totals.busy
        ));
    }
    Soak {
        results,
        busy_rejections,
        lost_races,
        latencies_ms,
        wall,
    }
}

/// Median sessions-per-second across a phase's runs.
fn median_sps(sessions: usize, runs: &[Soak]) -> f64 {
    let mut sps: Vec<f64> = runs.iter().map(|s| sessions as f64 / s.wall).collect();
    sps.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
    sps[sps.len() / 2]
}

fn pct(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// Coarse agreement between a driver-measured and a daemon-estimated
/// percentile. The daemon side comes out of log2 histogram buckets (worst
/// case ~2x off after midpoint interpolation), so the band is wide — and a
/// +1ms floor keeps sub-millisecond sessions from dividing noise by noise.
fn lat_ratio(daemon_ms: f64, driver_ms: f64) -> f64 {
    (daemon_ms + 1.0) / (driver_ms + 1.0)
}

fn main() {
    // Injected session panics are caught by the engine's unwind boundary
    // and answered as `poisoned`; without this hook each one would still
    // dump a backtrace and drown the summary under a chaos plan.
    stint_serve::install_panic_hook();
    let (sessions, cfg, out_path) = parse_args();
    // Chaos comes from the environment so the smoke script owns the plan.
    // Observability does NOT: the two-phase study owns the obs state, so
    // STINT_OBS is deliberately ignored here.
    if let Err(e) = stint_faults::install_from_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    if std::env::var_os("STINT_OBS").is_some() {
        eprintln!("note: STINT_OBS ignored — serve_load runs its own obs-off/obs-full phases");
    }
    let corpus = Corpus::build();
    let mut failures = Vec::new();

    // Phase A: obs off, no journal. Median of five runs — the baseline is
    // the noisier side (each run is shorter than its instrumented
    // counterpart), and a lucky scheduling outlier here directly inflates
    // the overhead ratio the perf gate enforces.
    let a_runs: Vec<Soak> = (0..5)
        .map(|_| soak(sessions, cfg, &corpus, None, &mut failures))
        .collect();
    let sps_off = median_sps(sessions, &a_runs);
    let obs_off_registry_untouched = !stint::obs::registry_initialized();
    let flight_idle_obs_off = stint::obs::flight::records_written() == 0;
    if !obs_off_registry_untouched {
        failures.push("obs-off soak initialized the metrics registry".into());
    }
    if !flight_idle_obs_off {
        failures.push(format!(
            "obs-off soak wrote {} flight-recorder records",
            stint::obs::flight::records_written()
        ));
    }

    // Phase B: obs full + session journal. Median of three runs; the
    // daemon's latency histograms and the journal accumulate across all of
    // them, so the driver latencies are pooled across all of them too.
    stint::obs::enable(stint::obs::ObsConfig::FULL);
    let journal_path =
        std::env::temp_dir().join(format!("serve_load_{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);
    let open_journal = |failures: &mut Vec<String>| -> Option<SessionJournal> {
        match SessionJournal::open(&journal_path, FsyncPolicy::Off) {
            Ok(j) => Some(j),
            Err(e) => {
                failures.push(format!("open journal {}: {e}", journal_path.display()));
                None
            }
        }
    };
    let b_runs: Vec<Soak> = (0..3)
        .map(|_| {
            let j = open_journal(&mut failures);
            soak(sessions, cfg, &corpus, j, &mut failures)
        })
        .collect();
    let sps_full = median_sps(sessions, &b_runs);
    let obs_overhead_ratio = sps_off / sps_full;

    let gauges = stint::obs::gauges_snapshot();
    let gauges_zero = gauges.iter().all(|(_, cur, _)| *cur == 0);
    if !gauges_zero {
        let dirty: Vec<String> = gauges
            .iter()
            .filter(|(_, cur, _)| *cur != 0)
            .map(|(n, cur, _)| format!("{n}={cur}"))
            .collect();
        failures.push(format!("gauges nonzero after drain: {}", dirty.join(", ")));
    }

    // Cross-check: the daemon's own per-status latency histograms, merged,
    // must roughly reproduce the driver-measured percentiles.
    let mut merged = vec![0u64; 0];
    for (_, h) in stint_serve::engine::latency_histograms() {
        let b = h.bucket_counts();
        merged.resize(merged.len().max(b.len()), 0);
        for (m, c) in merged.iter_mut().zip(b) {
            *m += c;
        }
    }
    let daemon_p50 = stint::obs::quantile_from_buckets(&merged, 0.50);
    let daemon_p99 = stint::obs::quantile_from_buckets(&merged, 0.99);
    let mut driver_ms: Vec<f64> = b_runs
        .iter()
        .flat_map(|b| b.latencies_ms.iter())
        .copied()
        .collect();
    driver_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = pct(&driver_ms, 0.50);
    let p99 = pct(&driver_ms, 0.99);
    let p50_ratio = lat_ratio(daemon_p50, p50);
    let p99_ratio = lat_ratio(daemon_p99, p99);
    let latency_agree = (0.4..=2.5).contains(&p50_ratio) && (0.4..=2.5).contains(&p99_ratio);
    if !latency_agree {
        failures.push(format!(
            "daemon histograms disagree with driver latency: p50 {daemon_p50:.2}ms vs \
             {p50:.2}ms (ratio {p50_ratio:.2}), p99 {daemon_p99:.2}ms vs {p99:.2}ms \
             (ratio {p99_ratio:.2})"
        ));
    }

    // Replay the journal both phase-B runs appended to: framing must be
    // clean and every admitted session must have finished.
    let (journal_records, journal_clean) = match stint_serve::journal::replay_file(&journal_path) {
        Ok((_, summary)) => {
            let clean = summary.is_clean() && summary.in_flight().is_empty();
            if !clean {
                failures.push(format!(
                    "journal replay not clean after drain:\n{}",
                    summary.render()
                ));
            }
            (summary.records, clean)
        }
        Err(e) => {
            failures.push(format!("replay journal: {e}"));
            (0, false)
        }
    };
    let _ = std::fs::remove_file(&journal_path);

    let lost_races: u64 = a_runs
        .iter()
        .chain(b_runs.iter())
        .map(|s| s.lost_races)
        .sum();
    if lost_races > 0 {
        failures.push(format!("{lost_races} racy session(s) answered ok"));
    }
    let last_b = b_runs.last().expect("phase B ran");
    let busy_rejections = last_b.busy_rejections;
    let results = last_b.results;
    let wall: f64 = a_runs.iter().chain(b_runs.iter()).map(|s| s.wall).sum();

    // A single-digit-percent effect is at the edge of what a busy shared
    // box can measure: a CPU-steal window that lands on one phase but not
    // the other fakes a 10-20% swing either way. When the measured ratio
    // strays above the perf gate and everything else is healthy, re-run the
    // whole experiment in a fresh process (obs enablement is one-way, so an
    // in-process interleave is impossible). A real regression fails every
    // attempt; only the measurement, never the checks, gets the retry.
    const RETRY_ENV: &str = "STINT_SERVE_LOAD_ATTEMPT";
    let attempt: u32 = std::env::var(RETRY_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if obs_overhead_ratio > 1.08 && failures.is_empty() && attempt < 3 {
        eprintln!(
            "serve_load: overhead ratio {obs_overhead_ratio:.3} looks noise-inflated, \
             re-running the study (attempt {} of 3)",
            attempt + 1
        );
        let exe = std::env::current_exe().expect("current exe");
        let status = std::process::Command::new(exe)
            .args(std::env::args().skip(1))
            .env(RETRY_ENV, (attempt + 1).to_string())
            .status()
            .expect("re-exec serve_load");
        std::process::exit(status.code().unwrap_or(1));
    }

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"stint-bench-serve-v2\",\n");
    j.push_str(&format!("  \"hw_threads\": {hw},\n"));
    j.push_str(&format!("  \"sessions\": {sessions},\n"));
    j.push_str(&format!(
        "  \"session_workers\": {},\n  \"queue_depth\": {},\n  \"pool_workers\": {},\n",
        cfg.session_workers, cfg.queue_depth, cfg.pool_workers
    ));
    j.push_str(&format!(
        "  \"results\": {{ \"ok\": {}, \"racy\": {}, \"usage\": {}, \"degraded\": {}, \
         \"corrupt\": {}, \"poisoned\": {} }},\n",
        results.ok,
        results.racy,
        results.usage,
        results.degraded,
        results.corrupt,
        results.poisoned
    ));
    j.push_str(&format!("  \"busy_rejections\": {busy_rejections},\n"));
    j.push_str(&format!("  \"lost_races\": {lost_races},\n"));
    j.push_str(&format!("  \"p50_ms\": {p50:.3},\n"));
    j.push_str(&format!("  \"p99_ms\": {p99:.3},\n"));
    j.push_str(&format!("  \"daemon_p50_ms\": {daemon_p50:.3},\n"));
    j.push_str(&format!("  \"daemon_p99_ms\": {daemon_p99:.3},\n"));
    j.push_str(&format!("  \"latency_p50_ratio\": {p50_ratio:.3},\n"));
    j.push_str(&format!("  \"latency_p99_ratio\": {p99_ratio:.3},\n"));
    j.push_str(&format!("  \"latency_agree\": {latency_agree},\n"));
    j.push_str(&format!("  \"sessions_per_sec_obs_off\": {sps_off:.1},\n"));
    j.push_str(&format!(
        "  \"sessions_per_sec_obs_full\": {sps_full:.1},\n"
    ));
    j.push_str(&format!("  \"sessions_per_sec\": {sps_full:.1},\n"));
    j.push_str(&format!(
        "  \"obs_overhead_ratio\": {obs_overhead_ratio:.4},\n"
    ));
    j.push_str(&format!(
        "  \"obs_off_registry_untouched\": {obs_off_registry_untouched},\n"
    ));
    j.push_str(&format!(
        "  \"flight_idle_obs_off\": {flight_idle_obs_off},\n"
    ));
    j.push_str(&format!("  \"journal_records\": {journal_records},\n"));
    j.push_str(&format!("  \"journal_clean\": {journal_clean},\n"));
    j.push_str(&format!("  \"wall_secs\": {wall:.3},\n"));
    j.push_str(&format!("  \"gauges_zero_after_drain\": {gauges_zero}\n"));
    j.push_str("}\n");
    std::fs::write(&out_path, &j).unwrap_or_else(|e| {
        eprintln!("error: write {out_path}: {e}");
        std::process::exit(2);
    });

    println!(
        "serve_load: {sessions} sessions x8 on {}w/{}q in {wall:.2}s \
         (obs-off {sps_off:.0}/s, obs-full {sps_full:.0}/s, overhead {:.1}%)",
        cfg.session_workers,
        cfg.queue_depth,
        (obs_overhead_ratio - 1.0) * 100.0
    );
    println!(
        "  driver p50 {p50:.2}ms p99 {p99:.2}ms | daemon p50 {daemon_p50:.2}ms \
         p99 {daemon_p99:.2}ms | agree {latency_agree}"
    );
    println!(
        "  ok {} racy {} usage {} degraded {} corrupt {} poisoned {}  \
         journal {journal_records} records clean {journal_clean}  gauges-zero {gauges_zero}",
        results.ok,
        results.racy,
        results.usage,
        results.degraded,
        results.corrupt,
        results.poisoned
    );
    println!("  wrote {out_path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
