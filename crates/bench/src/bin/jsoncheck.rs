//! `jsoncheck` — dependency-free validator for the harness's JSON documents.
//!
//! The smoke scripts (`scripts/obs_smoke.sh`, `scripts/mem_smoke.sh`) used to
//! require `python3` for JSON validation and the cross-document agreement
//! check; this binary provides the same checks so the gates run on machines
//! with neither Python nor `jq`.
//!
//! ```text
//! jsoncheck validate FILE...        each file must parse as JSON
//! jsoncheck agree STATS METRICS     per-run detector stats summed across
//!                                   STATS runs must equal the METRICS
//!                                   registry counters exactly
//! jsoncheck memseries SERIES [STATS]
//!                                   SERIES must be a non-empty memory time
//!                                   series with monotone timestamps; with
//!                                   STATS, the gauge watermarks must bound
//!                                   the detector's byte stats and Lemma 4.1
//!                                   must hold on the reported watermarks
//! jsoncheck batch BATCH             BATCH must be a stint-bench-batch-v2
//!                                   scalability report: per bench a
//!                                   strictly increasing shard axis with
//!                                   positive timings, speedup and
//!                                   work-count fields, compression sizes,
//!                                   the streaming-ingest cell, plus the
//!                                   hw_threads-stamped headline geomean;
//!                                   a stale v1 report exits 2
//! jsoncheck parallel PARALLEL       PARALLEL must be a
//!                                   stint-bench-parallel-v1 scaling report:
//!                                   per bench a strictly increasing worker
//!                                   axis with positive timings, speedup,
//!                                   work-count and merge-cycle fields, the
//!                                   DePa footprint, plus the
//!                                   hw_threads-stamped headline geomean
//! jsoncheck serve SERVE             SERVE must be a stint-bench-serve-v2
//!                                   load study: per-status results summing
//!                                   to the session count, ordered latency
//!                                   percentiles, positive throughput, zero
//!                                   lost races, gauges drained to zero,
//!                                   obs-off phase inert, journal clean,
//!                                   daemon/driver latency agreement;
//!                                   a stale v1 report exits 2
//! jsoncheck prom FILE               FILE must be a well-formed Prometheus
//!                                   text exposition: every sample family
//!                                   preceded by a # TYPE line, numeric
//!                                   values, histogram buckets cumulative
//!                                   with le="+Inf" equal to _count
//! jsoncheck journal FILE            FILE must be a stint-journal-v1
//!                                   session journal: magic line, clean
//!                                   varint+FNV-1a framing, every record a
//!                                   decodable session event
//! jsoncheck report FILE             FILE must be a stint-report-v1 race
//!                                   report card: per run a kept count that
//!                                   matches the races array, an explicit
//!                                   truncated marker consistent with
//!                                   total vs kept, coalesced racy
//!                                   intervals covering racy_words, and
//!                                   well-formed races (known kind,
//!                                   word_lo < word_hi, witness either
//!                                   null or structurally complete)
//! ```
//!
//! Exit codes: 0 = all checks passed, 1 = a check failed, 2 = usage error.

use stint_bench::json::{parse, Value};

fn fail(msg: String) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Value {
    let content =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    parse(&content).unwrap_or_else(|e| fail(format!("{path}: {e}")))
}

fn schema(doc: &Value, path: &str, want: &str) {
    let got = doc.get("schema").and_then(Value::as_str).unwrap_or("");
    if got != want {
        fail(format!("{path}: schema is {got:?}, expected {want:?}"));
    }
}

fn u64_field(v: &Value, key: &str, ctx: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| fail(format!("{ctx}: missing integer field {key:?}")))
}

/// The obs_smoke agreement: the stats dump and the metrics registry are fed
/// from the same `DetectorStats::fields()` source, so summing any detector
/// counter across the runs in stats.json must reproduce the metrics value.
fn agree(stats_path: &str, metrics_path: &str) {
    let stats = load(stats_path);
    let metrics = load(metrics_path);
    schema(&stats, stats_path, "stint-stats-v1");
    schema(&metrics, metrics_path, "stint-obs-metrics-v1");
    let runs = stats
        .get("runs")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(format!("{stats_path}: no runs array")));
    if runs.len() < 2 {
        fail(format!(
            "{stats_path}: expected every variant, got {} run(s)",
            runs.len()
        ));
    }
    let counters = metrics
        .get("counters")
        .unwrap_or_else(|| fail(format!("{metrics_path}: no counters object")));
    let keys = runs[0]
        .get("stats")
        .and_then(Value::as_object)
        .unwrap_or_else(|| fail(format!("{stats_path}: run 0 has no stats object")));
    for (key, _) in keys {
        let want: u64 = runs
            .iter()
            .map(|r| {
                r.get("stats")
                    .map(|s| u64_field(s, key, stats_path))
                    .unwrap_or_else(|| fail(format!("{stats_path}: run without stats")))
            })
            .sum();
        let got = counters.get(key).and_then(Value::as_u64);
        if got != Some(want) {
            fail(format!(
                "{key}: stats.json sums to {want}, metrics.json says {got:?}"
            ));
        }
    }
    println!(
        "ok: {} detector counters agree across {} variants",
        keys.len(),
        runs.len()
    );
}

/// The mem_smoke checks: a non-empty series with monotone timestamps, and —
/// when the stats dump is provided — watermark/stats agreement plus the
/// Lemma 4.1 bound on the measured watermarks.
fn memseries(series_path: &str, stats_path: Option<&str>) {
    let series = load(series_path);
    schema(&series, series_path, "stint-obs-memseries-v1");
    let samples = series
        .get("samples")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(format!("{series_path}: no samples array")));
    if samples.is_empty() {
        fail(format!("{series_path}: empty sample series"));
    }
    let mut prev = 0u64;
    for (i, s) in samples.iter().enumerate() {
        let t = u64_field(s, "t_ns", series_path);
        if t < prev {
            fail(format!(
                "{series_path}: sample {i} t_ns={t} precedes {prev} (not monotone)"
            ));
        }
        prev = t;
        if s.get("gauges").and_then(Value::as_object).is_none() {
            fail(format!("{series_path}: sample {i} has no gauges object"));
        }
    }
    println!(
        "ok: {} samples, timestamps monotone over {} ns",
        samples.len(),
        prev
    );

    let Some(stats_path) = stats_path else { return };
    let stats = load(stats_path);
    schema(&stats, stats_path, "stint-stats-v1");
    let gauges = stats
        .get("gauges")
        .unwrap_or_else(|| fail(format!("{stats_path}: no gauges object")));
    let treap_hw = gauges
        .get("ivtree.bytes")
        .map(|g| u64_field(g, "hw", stats_path));
    let runs = stats
        .get("runs")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(format!("{stats_path}: no runs array")));
    for r in runs {
        let s = r
            .get("stats")
            .unwrap_or_else(|| fail(format!("{stats_path}: run without stats")));
        let inserts = u64_field(s, "detector.treap_inserts", stats_path);
        if inserts == 0 {
            continue; // a hash-variant run; nothing tree-shaped to bound
        }
        let ah = u64_field(s, "detector.ah_bytes", stats_path);
        let len_hw = u64_field(s, "detector.treap_len_hw", stats_path);
        // Two stores (read tree + write tree), so the merged Lemma 4.1
        // bound is 2m + 2.
        if len_hw > 2 * inserts + 2 {
            fail(format!(
                "Lemma 4.1 violated: treap_len_hw={len_hw} > 2*{inserts}+2"
            ));
        }
        if let Some(hw) = treap_hw {
            if ah > hw {
                fail(format!(
                    "detector.ah_bytes={ah} exceeds the ivtree.bytes watermark {hw}"
                ));
            }
        }
    }
    println!("ok: gauge watermarks bound the detector byte stats (Lemma 4.1 holds)");
}

/// Structural validation of the batch-scalability report (`BENCH_batch.json`
/// from the `batch` binary, schema `stint-bench-batch-v2`): the shard axis
/// must be strictly increasing per bench, every cell must carry positive
/// timings plus speedup and work-count fields, every bench must carry the
/// compression sizes and the streaming-ingest cell, and the headline
/// geomean must be stamped with the machine's thread count (the conditional
/// speedup gate in `perfgate --check` keys off it). A stale v1 report is a
/// *loud* usage failure (exit 2): regenerate it with the current `batch`
/// binary rather than gating on numbers that no longer measure the
/// partition pass.
fn batch(path: &str) {
    let doc = load(path);
    let got = doc.get("schema").and_then(Value::as_str).unwrap_or("");
    if got == "stint-bench-batch-v1" {
        eprintln!(
            "FAIL: {path}: stale stint-bench-batch-v1 report — the batch study \
             now emits stint-bench-batch-v2 (work counts + compression + \
             streaming throughput); regenerate with the `batch` binary"
        );
        std::process::exit(2);
    }
    schema(&doc, path, "stint-bench-batch-v2");
    let f64_field = |v: &Value, key: &str, ctx: &str| -> f64 {
        v.get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| fail(format!("{ctx}: missing numeric field {key:?}")))
    };
    let hw = u64_field(&doc, "hw_threads", path);
    if hw == 0 {
        fail(format!("{path}: hw_threads is 0"));
    }
    u64_field(&doc, "stream_k", path);
    let benches = doc
        .get("benches")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(format!("{path}: no benches array")));
    if benches.is_empty() {
        fail(format!("{path}: empty benches array"));
    }
    let mut cells = 0usize;
    for b in benches {
        let name = b
            .get("bench")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail(format!("{path}: bench entry without a name")));
        let ctx = format!("{path}: {name}");
        if f64_field(b, "seq_secs", &ctx) <= 0.0 {
            fail(format!("{ctx}: non-positive seq_secs"));
        }
        if b.get("large").and_then(Value::as_bool).is_none() {
            fail(format!("{ctx}: missing boolean field \"large\""));
        }
        if u64_field(b, "uncompressed_bytes", &ctx) == 0 {
            fail(format!("{ctx}: zero uncompressed_bytes"));
        }
        if u64_field(b, "compressed_bytes", &ctx) == 0 {
            fail(format!("{ctx}: zero compressed_bytes"));
        }
        if f64_field(b, "compression_ratio", &ctx) <= 0.0 {
            fail(format!("{ctx}: non-positive compression_ratio"));
        }
        let stream = b
            .get("stream")
            .unwrap_or_else(|| fail(format!("{ctx}: missing stream cell")));
        u64_field(stream, "k", &ctx);
        if f64_field(stream, "secs", &ctx) <= 0.0 {
            fail(format!("{ctx}: non-positive stream secs"));
        }
        if u64_field(stream, "bytes", &ctx) == 0 {
            fail(format!("{ctx}: zero stream bytes"));
        }
        if u64_field(stream, "chunks", &ctx) == 0 {
            fail(format!("{ctx}: zero stream chunks"));
        }
        u64_field(stream, "runs", &ctx);
        u64_field(stream, "wholesale_runs", &ctx);
        if f64_field(stream, "mib_per_sec", &ctx) <= 0.0 {
            fail(format!("{ctx}: non-positive stream throughput"));
        }
        let shards = b
            .get("shards")
            .and_then(Value::as_array)
            .unwrap_or_else(|| fail(format!("{ctx}: no shards array")));
        if shards.is_empty() {
            fail(format!("{ctx}: empty shard axis"));
        }
        let mut prev_k = 0u64;
        for s in shards {
            let k = u64_field(s, "k", &ctx);
            if k <= prev_k {
                fail(format!(
                    "{ctx}: shard axis not strictly increasing (k={k} after {prev_k})"
                ));
            }
            prev_k = k;
            u64_field(s, "workers", &ctx);
            if f64_field(s, "secs", &ctx) <= 0.0 {
                fail(format!("{ctx}: non-positive secs at k={k}"));
            }
            if f64_field(s, "speedup", &ctx) <= 0.0 {
                fail(format!("{ctx}: non-positive speedup at k={k}"));
            }
            u64_field(s, "work", &ctx);
            if f64_field(s, "work_ratio", &ctx) <= 0.0 {
                fail(format!("{ctx}: non-positive work_ratio at k={k}"));
            }
            cells += 1;
        }
    }
    f64_field(&doc, "geomean_speedup_k4", path);
    if doc.get("geomean_over").and_then(Value::as_str).is_none() {
        fail(format!("{path}: missing geomean_over"));
    }
    println!(
        "ok: {} benches x {cells} cells, shard axes monotone, work counts, \
         compression sizes and stream throughput present (hw_threads={hw})",
        benches.len()
    );
}

/// Structural validation of the parallel-online scaling report
/// (`BENCH_parallel.json` from the `parallel` binary, schema
/// `stint-bench-parallel-v1`): the worker axis must be strictly increasing
/// per bench, every cell must carry positive timings plus speedup,
/// work-count and merge-cycle fields, every bench must carry the DePa
/// footprint, and the headline geomean must be stamped with the machine's
/// thread count (the conditional speedup gate in `perfgate --check` keys
/// off it).
fn parallel(path: &str) {
    let doc = load(path);
    schema(&doc, path, "stint-bench-parallel-v1");
    let f64_field = |v: &Value, key: &str, ctx: &str| -> f64 {
        v.get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| fail(format!("{ctx}: missing numeric field {key:?}")))
    };
    let hw = u64_field(&doc, "hw_threads", path);
    if hw == 0 {
        fail(format!("{path}: hw_threads is 0"));
    }
    if u64_field(&doc, "shards", path) == 0 {
        fail(format!("{path}: zero shards"));
    }
    if u64_field(&doc, "chunk_events", path) == 0 {
        fail(format!("{path}: zero chunk_events"));
    }
    let benches = doc
        .get("benches")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(format!("{path}: no benches array")));
    if benches.is_empty() {
        fail(format!("{path}: empty benches array"));
    }
    let mut cells = 0usize;
    for b in benches {
        let name = b
            .get("bench")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail(format!("{path}: bench entry without a name")));
        let ctx = format!("{path}: {name}");
        if u64_field(b, "events", &ctx) == 0 {
            fail(format!("{ctx}: zero events"));
        }
        u64_field(b, "strands", &ctx);
        if f64_field(b, "seq_secs", &ctx) <= 0.0 {
            fail(format!("{ctx}: non-positive seq_secs"));
        }
        if b.get("large").and_then(Value::as_bool).is_none() {
            fail(format!("{ctx}: missing boolean field \"large\""));
        }
        if u64_field(b, "depa_bytes", &ctx) == 0 {
            fail(format!("{ctx}: zero depa_bytes"));
        }
        let workers = b
            .get("workers")
            .and_then(Value::as_array)
            .unwrap_or_else(|| fail(format!("{ctx}: no workers array")));
        if workers.is_empty() {
            fail(format!("{ctx}: empty worker axis"));
        }
        let mut prev_w = 0u64;
        for s in workers {
            let w = u64_field(s, "w", &ctx);
            if w <= prev_w {
                fail(format!(
                    "{ctx}: worker axis not strictly increasing (w={w} after {prev_w})"
                ));
            }
            prev_w = w;
            if f64_field(s, "secs", &ctx) <= 0.0 {
                fail(format!("{ctx}: non-positive secs at w={w}"));
            }
            if f64_field(s, "speedup", &ctx) <= 0.0 {
                fail(format!("{ctx}: non-positive speedup at w={w}"));
            }
            if u64_field(s, "work", &ctx) == 0 {
                fail(format!("{ctx}: zero work at w={w}"));
            }
            if f64_field(s, "work_ratio", &ctx) <= 0.0 {
                fail(format!("{ctx}: non-positive work_ratio at w={w}"));
            }
            if u64_field(s, "chunks", &ctx) == 0 {
                fail(format!("{ctx}: zero merge cycles at w={w}"));
            }
            cells += 1;
        }
    }
    f64_field(&doc, "geomean_speedup_w4", path);
    if doc.get("geomean_over").and_then(Value::as_str).is_none() {
        fail(format!("{path}: missing geomean_over"));
    }
    println!(
        "ok: {} benches x {cells} cells, worker axes monotone, work counts, \
         merge cycles and DePa footprints present (hw_threads={hw})",
        benches.len()
    );
}

/// Structural gate for `BENCH_serve.json` (the `serve_load` load study):
/// the per-status result counts must sum to the session count, the latency
/// percentiles must be ordered and positive, throughput must be positive,
/// no racy session may have been answered `ok`, and every obs gauge must
/// have reconciled to zero after the drain.
fn serve(path: &str) {
    let doc = load(path);
    let got = doc.get("schema").and_then(Value::as_str).unwrap_or("");
    if got == "stint-bench-serve-v1" {
        eprintln!(
            "FAIL: {path}: stale stint-bench-serve-v1 report — the load study \
             now emits stint-bench-serve-v2 (two-phase obs overhead + daemon \
             latency cross-check + journal replay); regenerate with the \
             `serve_load` binary"
        );
        std::process::exit(2);
    }
    schema(&doc, path, "stint-bench-serve-v2");
    let sessions = u64_field(&doc, "sessions", path);
    if sessions == 0 {
        fail(format!("{path}: zero sessions"));
    }
    if u64_field(&doc, "hw_threads", path) == 0 {
        fail(format!("{path}: hw_threads is 0"));
    }
    u64_field(&doc, "session_workers", path);
    u64_field(&doc, "queue_depth", path);
    let results = doc
        .get("results")
        .unwrap_or_else(|| fail(format!("{path}: no results object")));
    let mut sum = 0u64;
    for key in ["ok", "racy", "usage", "degraded", "corrupt", "poisoned"] {
        sum += u64_field(results, key, path);
    }
    if sum != sessions {
        fail(format!(
            "{path}: results sum to {sum}, expected {sessions} sessions"
        ));
    }
    if u64_field(results, "racy", path) == 0 {
        fail(format!(
            "{path}: no racy sessions — the mixed-traffic mix must include racy traces"
        ));
    }
    u64_field(&doc, "busy_rejections", path);
    if u64_field(&doc, "lost_races", path) != 0 {
        fail(format!("{path}: lost_races is nonzero"));
    }
    let f64_field = |key: &str| -> f64 {
        doc.get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| fail(format!("{path}: missing numeric field {key:?}")))
    };
    let p50 = f64_field("p50_ms");
    let p99 = f64_field("p99_ms");
    if p50 < 0.0 || p99 < p50 {
        fail(format!(
            "{path}: bad latency percentiles p50={p50} p99={p99}"
        ));
    }
    if f64_field("sessions_per_sec") <= 0.0 {
        fail(format!("{path}: non-positive sessions_per_sec"));
    }
    if f64_field("sessions_per_sec_obs_off") <= 0.0 {
        fail(format!("{path}: non-positive sessions_per_sec_obs_off"));
    }
    if f64_field("sessions_per_sec_obs_full") <= 0.0 {
        fail(format!("{path}: non-positive sessions_per_sec_obs_full"));
    }
    if f64_field("obs_overhead_ratio") <= 0.0 {
        fail(format!("{path}: non-positive obs_overhead_ratio"));
    }
    if f64_field("wall_secs") <= 0.0 {
        fail(format!("{path}: non-positive wall_secs"));
    }
    // The daemon's own histogram estimates ride along; they must at least
    // be ordered like percentiles. The agreement *gate* is perfgate's.
    let dp50 = f64_field("daemon_p50_ms");
    let dp99 = f64_field("daemon_p99_ms");
    if dp50 < 0.0 || dp99 < dp50 {
        fail(format!(
            "{path}: bad daemon latency percentiles p50={dp50} p99={dp99}"
        ));
    }
    f64_field("latency_p50_ratio");
    f64_field("latency_p99_ratio");
    for key in [
        "latency_agree",
        "obs_off_registry_untouched",
        "flight_idle_obs_off",
        "journal_clean",
    ] {
        if doc.get(key).and_then(Value::as_bool).is_none() {
            fail(format!("{path}: missing boolean field {key:?}"));
        }
    }
    if u64_field(&doc, "journal_records", path) == 0 {
        fail(format!(
            "{path}: zero journal_records — the obs-full phase must journal"
        ));
    }
    if doc.get("gauges_zero_after_drain").and_then(Value::as_bool) != Some(true) {
        fail(format!("{path}: gauges_zero_after_drain is not true"));
    }
    println!(
        "ok: {sessions} sessions, statuses sum, no lost races, \
         p50 {p50:.2}ms <= p99 {p99:.2}ms, two-phase obs fields present, \
         journal clean, gauges drained"
    );
}

/// Well-formedness of a Prometheus text exposition: every sample must
/// belong to a family announced by a `# TYPE` line, every value must be
/// numeric, and histogram bucket counts must be cumulative (monotone in
/// `le`, with the `+Inf` bucket equal to `_count`).
fn prom(path: &str) {
    let content =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let mut types: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    // family → (per-family bucket trail, +Inf value, _count value)
    let mut buckets: std::collections::HashMap<String, (u64, Option<u64>, Option<u64>)> =
        std::collections::HashMap::new();
    let mut samples = 0usize;
    for (ln, line) in content.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(ty)) = (it.next(), it.next()) else {
                fail(format!("{path}:{ln}: malformed # TYPE line"));
            };
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                fail(format!("{path}:{ln}: unknown metric type {ty:?}"));
            }
            types.insert(name.to_string(), ty.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| fail(format!("{path}:{ln}: sample line without a value")));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| fail(format!("{path}:{ln}: non-numeric value {value:?}")));
        let name = name_and_labels.split(['{', ' ']).next().unwrap_or_default();
        // A histogram's samples are <f>_bucket/<f>_sum/<f>_count under the
        // family's single # TYPE line.
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| types.contains_key(*f))
            .unwrap_or(name);
        let Some(ty) = types.get(family) else {
            fail(format!(
                "{path}:{ln}: sample {name:?} has no preceding # TYPE line"
            ));
        };
        samples += 1;
        if ty == "histogram" {
            let entry = buckets.entry(family.to_string()).or_insert((0, None, None));
            if name.ends_with("_bucket") {
                let v = value as u64;
                if value < 0.0 || value.fract() != 0.0 {
                    fail(format!("{path}:{ln}: non-integral bucket count {value}"));
                }
                if v < entry.0 {
                    fail(format!(
                        "{path}:{ln}: bucket counts not cumulative ({v} after {})",
                        entry.0
                    ));
                }
                entry.0 = v;
                if name_and_labels.contains("le=\"+Inf\"") {
                    entry.1 = Some(v);
                }
            } else if name.ends_with("_count") {
                entry.2 = Some(value as u64);
            }
        }
    }
    if samples == 0 {
        fail(format!("{path}: no samples"));
    }
    for (family, (_, inf, count)) in &buckets {
        if inf.is_none() {
            fail(format!("{path}: histogram {family} has no +Inf bucket"));
        }
        if inf != count {
            fail(format!(
                "{path}: histogram {family}: +Inf bucket {inf:?} != _count {count:?}"
            ));
        }
    }
    println!(
        "ok: {samples} samples across {} typed families, {} histogram(s) cumulative",
        types.len(),
        buckets.len()
    );
}

/// Framing + payload validation of a `stint-journal-v1` session journal:
/// delegates the varint+FNV-1a framing to the serve-tier replayer and
/// requires every record to decode as a session event.
fn journal(path: &str) {
    let f = std::fs::File::open(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    match stint_serve::journal::validate_stream(std::io::BufReader::new(f)) {
        Ok(n) => println!("ok: {n} session events, framing and checksums clean"),
        Err(e) => fail(format!("{path}: {e}")),
    }
}

/// Structural validation of the race-report-card (`--report-json` from the
/// CLI, schema `stint-report-v1`): per run the kept count must equal the
/// length of the races array, the `truncated` marker must be consistent
/// with `total` vs `kept` (a capped report must say so, an uncapped one
/// must not), the racy-interval list must be sorted, disjoint, and sum to
/// exactly `racy_words`, and every race must be well-formed — a known
/// kind, a non-empty word range inside some racy interval, and a witness
/// that is either `null` or structurally complete (both evidence sides
/// with ordered spans, both order bits, both lineage chains). Semantic
/// witness validity is `stint-cli witness verify`'s job; this is the
/// schema gate the smoke scripts run without a trace at hand.
fn report(path: &str) {
    let doc = load(path);
    schema(&doc, path, "stint-report-v1");
    for key in ["source", "command"] {
        if doc.get(key).and_then(Value::as_str).is_none() {
            fail(format!("{path}: missing string field {key:?}"));
        }
    }
    let runs = doc
        .get("runs")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(format!("{path}: no runs array")));
    if runs.is_empty() {
        fail(format!("{path}: empty runs array"));
    }
    let (mut total_races, mut witnessed) = (0usize, 0usize);
    for r in runs {
        let variant = r
            .get("variant")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail(format!("{path}: run without a variant name")));
        let ctx = format!("{path}: {variant}");
        let total = u64_field(r, "total", &ctx);
        let kept = u64_field(r, "kept", &ctx);
        let races = r
            .get("races")
            .and_then(Value::as_array)
            .unwrap_or_else(|| fail(format!("{ctx}: no races array")));
        if kept as usize != races.len() {
            fail(format!(
                "{ctx}: kept={kept} but races array has {} entries",
                races.len()
            ));
        }
        let truncated = r
            .get("truncated")
            .and_then(Value::as_bool)
            .unwrap_or_else(|| fail(format!("{ctx}: missing boolean field \"truncated\"")));
        if truncated != (kept < total) {
            fail(format!(
                "{ctx}: truncated={truncated} inconsistent with kept={kept} of total={total}"
            ));
        }
        let racy_words = u64_field(r, "racy_words", &ctx);
        let intervals = r
            .get("racy_intervals")
            .and_then(Value::as_array)
            .unwrap_or_else(|| fail(format!("{ctx}: no racy_intervals array")));
        let mut covered = 0u64;
        let mut prev_hi = 0u64;
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (i, iv) in intervals.iter().enumerate() {
            let pair = iv
                .as_array()
                .filter(|p| p.len() == 2)
                .unwrap_or_else(|| fail(format!("{ctx}: racy_intervals[{i}] is not a pair")));
            let (Some(lo), Some(hi)) = (pair[0].as_u64(), pair[1].as_u64()) else {
                fail(format!("{ctx}: racy_intervals[{i}] is not numeric"));
            };
            if lo >= hi {
                fail(format!("{ctx}: empty interval [{lo}, {hi})"));
            }
            if i > 0 && lo < prev_hi {
                fail(format!(
                    "{ctx}: intervals not sorted/disjoint ([{lo}, {hi}) after hi={prev_hi})"
                ));
            }
            prev_hi = hi;
            covered += hi - lo;
            spans.push((lo, hi));
        }
        if covered != racy_words {
            fail(format!(
                "{ctx}: intervals cover {covered} words, racy_words says {racy_words}"
            ));
        }
        for (j, race) in races.iter().enumerate() {
            total_races += 1;
            let rctx = format!("{ctx}: race {j}");
            match race.get("kind").and_then(Value::as_str) {
                Some("write-write" | "read-write" | "write-read") => {}
                other => fail(format!("{rctx}: bad kind {other:?}")),
            }
            let lo = u64_field(race, "word_lo", &rctx);
            let hi = u64_field(race, "word_hi", &rctx);
            if lo >= hi {
                fail(format!("{rctx}: empty word range [{lo}, {hi})"));
            }
            if !spans.iter().any(|&(a, b)| a <= lo && hi <= b) {
                fail(format!(
                    "{rctx}: range [{lo}, {hi}) outside every racy interval"
                ));
            }
            u64_field(race, "prev", &rctx);
            u64_field(race, "cur", &rctx);
            match race.get("witness") {
                None => fail(format!("{rctx}: missing witness field (use null)")),
                Some(Value::Null) => {}
                Some(w) => {
                    witnessed += 1;
                    for side in ["prev", "cur"] {
                        let e = w
                            .get(side)
                            .unwrap_or_else(|| fail(format!("{rctx}: witness missing {side:?}")));
                        u64_field(e, "strand", &rctx);
                        let first = u64_field(e, "first", &rctx);
                        let last = u64_field(e, "last", &rctx);
                        if first > last {
                            fail(format!("{rctx}: {side} span [{first}, {last}] inverted"));
                        }
                        if e.get("event").is_none() {
                            fail(format!("{rctx}: {side} evidence missing event field"));
                        }
                    }
                    for key in ["prev_before_eng", "prev_before_heb"] {
                        if w.get(key).and_then(Value::as_bool).is_none() {
                            fail(format!("{rctx}: witness missing boolean {key:?}"));
                        }
                    }
                    for key in ["prev_lineage", "cur_lineage"] {
                        let chain = w
                            .get(key)
                            .and_then(Value::as_array)
                            .unwrap_or_else(|| fail(format!("{rctx}: witness missing {key:?}")));
                        if chain.is_empty() {
                            fail(format!("{rctx}: empty lineage chain {key:?}"));
                        }
                    }
                }
            }
        }
    }
    println!(
        "ok: {} run(s), {total_races} race record(s) ({witnessed} witnessed), \
         truncation markers consistent, intervals coalesced",
        runs.len()
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("validate") if argv.len() >= 2 => {
            for path in &argv[1..] {
                load(path);
            }
            println!("ok: {} document(s) parse", argv.len() - 1);
        }
        Some("agree") if argv.len() == 3 => agree(&argv[1], &argv[2]),
        Some("memseries") if argv.len() == 2 || argv.len() == 3 => {
            memseries(&argv[1], argv.get(2).map(String::as_str))
        }
        Some("batch") if argv.len() == 2 => batch(&argv[1]),
        Some("parallel") if argv.len() == 2 => parallel(&argv[1]),
        Some("serve") if argv.len() == 2 => serve(&argv[1]),
        Some("prom") if argv.len() == 2 => prom(&argv[1]),
        Some("journal") if argv.len() == 2 => journal(&argv[1]),
        Some("report") if argv.len() == 2 => report(&argv[1]),
        _ => {
            eprintln!(
                "usage: jsoncheck validate FILE...\n       \
                 jsoncheck agree STATS METRICS\n       \
                 jsoncheck memseries SERIES [STATS]\n       \
                 jsoncheck batch BATCH\n       \
                 jsoncheck parallel PARALLEL\n       \
                 jsoncheck serve SERVE\n       \
                 jsoncheck prom FILE\n       \
                 jsoncheck journal FILE\n       \
                 jsoncheck report FILE"
            );
            std::process::exit(2);
        }
    }
}
