//! `batch` — scalability and ingest study for the sharded batch-mode
//! detector.
//!
//! For every workload the binary records one portable trace, times the
//! sequential STINT replay of it (the single-detector baseline), then times
//! batch detection over K ∈ {1, 2, 4, 8} address shards with `workers = K`
//! on the work-stealing pool. Each cell reports `speedup = t_seq / t_batch`
//! **and the shard work count** — the events actually routed to shard
//! detectors, which the O(n) partition pass keeps within a whisker of the
//! trace length instead of the K·n of a clip-per-shard rescan. The
//! headline number is the geomean speedup at K=4 over the *large*
//! benchmarks (traces with at least [`LARGE_EVENTS`] events — small traces
//! are fan-out-overhead-bound and say nothing about scalability).
//!
//! The study also measures the compressed chunked `STINT-TRACE v2`
//! encoding: per bench it records the uncompressed (v1 text) and
//! compressed byte sizes, then times the streaming chunked detector at K=4
//! over the compressed buffer and reports ingest throughput in bytes/sec —
//! the second axis of `BENCH_batch.json` (schema `stint-bench-batch-v2`).
//!
//! Every batch run — in-memory or streamed — is cross-checked against the
//! sequential replay: the merged racy-word set must match exactly, for
//! every K and both encodings. A mismatch is a detector bug and a hard
//! failure, not a statistic.
//!
//! The emitted JSON records `hw_threads` (`available_parallelism`) so the
//! gate in `perfgate --check` can enforce the >1.5x speedup bar only on
//! machines that actually have ≥ 4 hardware threads; the work-count and
//! compression gates are machine-independent and always enforced.
//!
//! Flags: `--scale {test|s|m|paper}` (default `s`), `--reps N` (best-of-N
//! per cell, default 3), `--bench NAME`, `--out PATH` (default
//! `BENCH_batch.json`).

use std::time::{Duration, Instant};
use stint::{PortableTrace, RaceReport, StintDetector, DEFAULT_CHUNK_EVENTS};
use stint_batchdet::{batch_detect, batch_detect_chunked, BatchConfig};
use stint_bench::*;
use stint_suite::{Scale, Workload, NAMES};

/// Shard-count axis of the study. Must be strictly increasing — `jsoncheck
/// batch` and `perfgate --check` verify the emitted axis is monotone.
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Shard count of the streaming-ingest cell.
const STREAM_K: usize = 4;

/// A trace with at least this many events counts as *large*: big enough
/// that per-shard detector setup and pool fan-out are amortized. The
/// headline geomean — and the compression-ratio gate, which tiny traces
/// would turn into a header-overhead measurement — is computed over large
/// benches only (falling back to all benches if the scale produces none).
const LARGE_EVENTS: u64 = 20_000;

struct Args {
    scale: Scale,
    reps: u32,
    out: String,
    bench: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args {
        scale: scale_from_args(),
        reps: 3,
        out: "BENCH_batch.json".to_string(),
        bench: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--reps" => {
                a.reps = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--reps needs a positive integer");
                        std::process::exit(2);
                    });
                i += 1;
            }
            "--out" => {
                a.out = argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
                i += 1;
            }
            "--bench" => {
                a.bench = Some(argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--bench needs a workload name");
                    std::process::exit(2);
                }));
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    a.reps = a.reps.max(1);
    a
}

struct Cell {
    shards: usize,
    workers: usize,
    wall: Duration,
    /// Events routed to shard detectors (summed over shards) — the batch
    /// phase's work count.
    work: u64,
}

/// The streaming-ingest cell: chunked detection over the compressed buffer.
struct StreamCell {
    wall: Duration,
    bytes: u64,
    chunks: u64,
    runs: u64,
    wholesale_runs: u64,
}

struct Row {
    bench: &'static str,
    events: u64,
    strands: usize,
    seq: Duration,
    cells: Vec<Cell>,
    /// v1 text encoding size (bytes; counted, never materialized).
    v1_bytes: u64,
    /// Compressed chunked v2 encoding size (bytes).
    v2_bytes: u64,
    stream: StreamCell,
}

impl Row {
    fn large(&self) -> bool {
        self.events >= LARGE_EVENTS
    }
    fn speedup(&self, cell: &Cell) -> f64 {
        self.seq.as_secs_f64() / cell.wall.as_secs_f64().max(1e-9)
    }
    fn speedup_at(&self, k: usize) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.shards == k)
            .map(|c| self.speedup(c))
    }
    /// Shard work relative to the trace length at one K.
    fn work_ratio(&self, cell: &Cell) -> f64 {
        cell.work as f64 / (self.events.max(1)) as f64
    }
    fn compression_ratio(&self) -> f64 {
        self.v2_bytes as f64 / (self.v1_bytes.max(1)) as f64
    }
    fn stream_mib_s(&self) -> f64 {
        let secs = self.stream.wall.as_secs_f64().max(1e-9);
        self.stream.bytes as f64 / (1024.0 * 1024.0) / secs
    }
}

/// Byte-counting sink: sizes the v1 text encoding without holding it.
struct CountWriter(u64);
impl std::io::Write for CountWriter {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0 += b.len() as u64;
        Ok(b.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Best-of-N sequential STINT replay of the trace; also returns the
/// racy-word set every batch run must reproduce.
fn time_sequential(pt: &PortableTrace, reps: u32) -> (Duration, Vec<u64>) {
    let mut best = Duration::MAX;
    let mut words = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let det = pt.replay(StintDetector::new(RaceReport::unbounded(true)));
        let wall = t0.elapsed();
        best = best.min(wall);
        words = det.report.racy_words();
    }
    (best, words)
}

/// Best-of-N batch detection at one shard count, cross-checked against the
/// sequential racy-word set on every rep.
fn time_batch(bench: &str, pt: &PortableTrace, k: usize, reps: u32, expected: &[u64]) -> Cell {
    let cfg = BatchConfig {
        shards: k,
        workers: k,
        steal_seed: 0,
        ..BatchConfig::default()
    };
    let mut best = Duration::MAX;
    let mut work = 0u64;
    for _ in 0..reps {
        let out = batch_detect(pt, &cfg)
            .unwrap_or_else(|e| panic!("{bench}: batch detection failed at K={k}: {e}"));
        assert!(
            out.degraded.is_none(),
            "{bench}: degraded batch run at K={k} with no fault plan installed"
        );
        assert_eq!(
            out.merged.racy_words, expected,
            "{bench}: batch racy words diverge from sequential STINT at K={k}"
        );
        best = best.min(out.wall);
        work = out.shards.iter().map(|s| s.events).sum();
    }
    Cell {
        shards: k,
        workers: k,
        wall: best,
        work,
    }
}

/// Best-of-N streaming chunked detection over the compressed buffer at
/// [`STREAM_K`] shards, cross-checked like the in-memory cells.
fn time_stream(bench: &str, buf: &[u8], reps: u32, expected: &[u64]) -> StreamCell {
    let cfg = BatchConfig {
        shards: STREAM_K,
        workers: STREAM_K,
        steal_seed: 0,
        ..BatchConfig::default()
    };
    let mut best: Option<StreamCell> = None;
    for _ in 0..reps {
        let out = batch_detect_chunked(buf, &cfg)
            .unwrap_or_else(|e| panic!("{bench}: chunked detection failed: {e}"));
        assert!(out.degraded.is_none(), "{bench}: degraded chunked run");
        assert_eq!(
            out.merged.racy_words, expected,
            "{bench}: streamed racy words diverge from sequential STINT"
        );
        let ing = out.ingest.expect("chunked runs report ingest stats");
        if best.as_ref().is_none_or(|b| out.wall < b.wall) {
            best = Some(StreamCell {
                wall: out.wall,
                bytes: ing.bytes,
                chunks: ing.chunks,
                runs: ing.runs,
                wholesale_runs: ing.wholesale_runs,
            });
        }
    }
    best.expect("reps >= 1")
}

fn run_bench(name: &'static str, scale: Scale, reps: u32) -> Row {
    let mut w = Workload::by_name(name, scale);
    let pt = PortableTrace::record(&mut w);
    w.verify()
        .unwrap_or_else(|e| panic!("{name}: workload output wrong after recording: {e}"));
    let events = pt.trace.len() as u64;
    let strands = pt.reach.strand_count();
    let (seq, expected) = time_sequential(&pt, reps);
    let cells = SHARDS
        .iter()
        .map(|&k| time_batch(name, &pt, k, reps, &expected))
        .collect();
    let mut counter = CountWriter(0);
    pt.save(&mut counter)
        .unwrap_or_else(|e| panic!("{name}: sizing the v1 encoding failed: {e}"));
    let v1_bytes = counter.0;
    let mut buf = Vec::new();
    let cst = pt
        .save_compressed(&mut buf, DEFAULT_CHUNK_EVENTS)
        .unwrap_or_else(|e| panic!("{name}: compression failed: {e}"));
    let stream = time_stream(name, &buf, reps, &expected);
    assert_eq!(
        stream.chunks, cst.chunks,
        "{name}: reader chunk count drift"
    );
    Row {
        bench: name,
        events,
        strands,
        seq,
        cells,
        v1_bytes,
        v2_bytes: cst.bytes,
        stream,
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(path: &str, scale: Scale, reps: u32, hw: usize, rows: &[Row], headline: (f64, &str)) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"stint-bench-batch-v2\",\n");
    j.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(scale)));
    j.push_str(&format!("  \"reps\": {reps},\n"));
    j.push_str(&format!("  \"hw_threads\": {hw},\n"));
    j.push_str(&format!("  \"stream_k\": {STREAM_K},\n"));
    j.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            concat!(
                "    {{\"bench\": \"{}\", \"events\": {}, \"strands\": {}, ",
                "\"large\": {}, \"seq_secs\": {:.6},\n",
                "     \"uncompressed_bytes\": {}, \"compressed_bytes\": {}, ",
                "\"compression_ratio\": {:.6},\n",
                "     \"stream\": {{\"k\": {}, \"secs\": {:.6}, \"bytes\": {}, ",
                "\"chunks\": {}, \"runs\": {}, \"wholesale_runs\": {}, ",
                "\"mib_per_sec\": {:.3}}},\n",
                "     \"shards\": [\n"
            ),
            r.bench,
            r.events,
            r.strands,
            r.large(),
            r.seq.as_secs_f64(),
            r.v1_bytes,
            r.v2_bytes,
            r.compression_ratio(),
            STREAM_K,
            r.stream.wall.as_secs_f64(),
            r.stream.bytes,
            r.stream.chunks,
            r.stream.runs,
            r.stream.wholesale_runs,
            r.stream_mib_s(),
        ));
        for (ci, c) in r.cells.iter().enumerate() {
            j.push_str(&format!(
                concat!(
                    "      {{\"k\": {}, \"workers\": {}, \"secs\": {:.6}, ",
                    "\"speedup\": {:.4}, \"work\": {}, \"work_ratio\": {:.4}}}{}\n"
                ),
                c.shards,
                c.workers,
                c.wall.as_secs_f64(),
                r.speedup(c),
                c.work,
                r.work_ratio(c),
                if ci + 1 < r.cells.len() { "," } else { "" },
            ));
        }
        j.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"geomean_speedup_k4\": {:.4},\n  \"geomean_over\": \"{}\"\n}}\n",
        headline.0, headline.1,
    ));
    std::fs::write(path, j).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}

fn main() {
    let args = parse_args();
    assert!(
        !stint_faults::is_active(),
        "the batch study must run with no fault plan installed"
    );
    if let Some(b) = args.bench.as_deref() {
        if !NAMES.contains(&b) {
            eprintln!("--bench {b}: no such workload (have: {})", NAMES.join(", "));
            std::process::exit(2);
        }
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "batch — sequential STINT replay vs K-sharded batch detection \
         (scale={}, best of {}, {} hw thread(s))",
        scale_name(args.scale),
        args.reps,
        hw
    );

    let mut rows: Vec<Row> = Vec::new();
    for name in NAMES {
        if args.bench.as_deref().is_some_and(|b| b != name) {
            continue;
        }
        rows.push(run_bench(name, args.scale, args.reps));
    }

    let mut header = vec!["bench".to_string(), "events".to_string(), "seq".to_string()];
    for k in SHARDS {
        header.push(format!("K={k}"));
    }
    header.push("work@8".to_string());
    header.push("ratio".to_string());
    header.push("MiB/s".to_string());
    header.push("large".to_string());
    let mut t = Table::new(header);
    for r in &rows {
        let mut cells = vec![r.bench.to_string(), r.events.to_string(), secs(r.seq)];
        for c in &r.cells {
            cells.push(format!("{:.2}x", r.speedup(c)));
        }
        let w8 = r.cells.last().map(|c| r.work_ratio(c)).unwrap_or(0.0);
        cells.push(format!("{w8:.3}x"));
        cells.push(format!("{:.3}", r.compression_ratio()));
        cells.push(format!("{:.1}", r.stream_mib_s()));
        cells.push(if r.large() { "yes" } else { "-" }.to_string());
        t.row(cells);
    }
    t.print();

    // Headline geomean: speedup at K=4 over large benches, falling back to
    // every bench when the scale produced no large trace.
    let large: Vec<f64> = rows
        .iter()
        .filter(|r| r.large())
        .filter_map(|r| r.speedup_at(4))
        .collect();
    let (pool, over) = if large.is_empty() {
        let all: Vec<f64> = rows.iter().filter_map(|r| r.speedup_at(4)).collect();
        (all, "all")
    } else {
        (large, "large")
    };
    let g = geomean(&pool);
    println!();
    println!(
        "geomean speedup at K=4 over {over} benches: {g:.2}x \
         ({} hw thread(s); the >1.5x bar applies at hw_threads >= 4)",
        hw
    );

    write_json(&args.out, args.scale, args.reps, hw, &rows, (g, over));
    println!("\nwrote {}", args.out);
}
