//! `batch` — scalability study for the sharded batch-mode detector.
//!
//! For every workload the binary records one portable trace, times the
//! sequential STINT replay of it (the single-detector baseline), then times
//! batch detection over K ∈ {1, 2, 4, 8} address shards with `workers = K`
//! on the work-stealing pool. Each cell reports `speedup = t_seq / t_batch`;
//! the headline number is the geomean speedup at K=4 over the *large*
//! benchmarks (traces with at least [`LARGE_EVENTS`] events — small traces
//! are fan-out-overhead-bound and say nothing about scalability).
//!
//! Every batch run is also cross-checked against the sequential replay: the
//! merged racy-word set must match exactly, for every K. A mismatch is a
//! detector bug and a hard failure, not a statistic.
//!
//! The emitted `BENCH_batch.json` records `hw_threads`
//! (`available_parallelism`) so the gate in `perfgate --check` can enforce
//! the >1.5x speedup bar only on machines that actually have ≥ 4 hardware
//! threads; on smaller boxes the structural checks still run but the
//! speedup bar is informational.
//!
//! Flags: `--scale {test|s|m|paper}` (default `s`), `--reps N` (best-of-N
//! per cell, default 3), `--bench NAME`, `--out PATH` (default
//! `BENCH_batch.json`).

use std::time::{Duration, Instant};
use stint::{PortableTrace, RaceReport, StintDetector};
use stint_batchdet::{batch_detect, BatchConfig};
use stint_bench::*;
use stint_suite::{Scale, Workload, NAMES};

/// Shard-count axis of the study. Must be strictly increasing — `jsoncheck
/// batch` and `perfgate --check` verify the emitted axis is monotone.
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// A trace with at least this many events counts as *large*: big enough
/// that per-shard detector setup and pool fan-out are amortized. The
/// headline geomean is computed over large benches only (falling back to
/// all benches if the scale produces none).
const LARGE_EVENTS: u64 = 20_000;

struct Args {
    scale: Scale,
    reps: u32,
    out: String,
    bench: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args {
        scale: scale_from_args(),
        reps: 3,
        out: "BENCH_batch.json".to_string(),
        bench: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--reps" => {
                a.reps = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--reps needs a positive integer");
                        std::process::exit(2);
                    });
                i += 1;
            }
            "--out" => {
                a.out = argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
                i += 1;
            }
            "--bench" => {
                a.bench = Some(argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--bench needs a workload name");
                    std::process::exit(2);
                }));
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    a.reps = a.reps.max(1);
    a
}

struct Cell {
    shards: usize,
    workers: usize,
    wall: Duration,
}

struct Row {
    bench: &'static str,
    events: u64,
    strands: usize,
    seq: Duration,
    cells: Vec<Cell>,
}

impl Row {
    fn large(&self) -> bool {
        self.events >= LARGE_EVENTS
    }
    fn speedup(&self, cell: &Cell) -> f64 {
        self.seq.as_secs_f64() / cell.wall.as_secs_f64().max(1e-9)
    }
    fn speedup_at(&self, k: usize) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.shards == k)
            .map(|c| self.speedup(c))
    }
}

/// Best-of-N sequential STINT replay of the trace; also returns the
/// racy-word set every batch run must reproduce.
fn time_sequential(pt: &PortableTrace, reps: u32) -> (Duration, Vec<u64>) {
    let mut best = Duration::MAX;
    let mut words = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let det = pt.replay(StintDetector::new(RaceReport::unbounded(true)));
        let wall = t0.elapsed();
        best = best.min(wall);
        words = det.report.racy_words();
    }
    (best, words)
}

/// Best-of-N batch detection at one shard count, cross-checked against the
/// sequential racy-word set on every rep.
fn time_batch(bench: &str, pt: &PortableTrace, k: usize, reps: u32, expected: &[u64]) -> Cell {
    let cfg = BatchConfig {
        shards: k,
        workers: k,
        steal_seed: 0,
    };
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let out = batch_detect(pt, &cfg)
            .unwrap_or_else(|e| panic!("{bench}: batch detection failed at K={k}: {e}"));
        assert!(
            out.degraded.is_none(),
            "{bench}: degraded batch run at K={k} with no fault plan installed"
        );
        assert_eq!(
            out.merged.racy_words, expected,
            "{bench}: batch racy words diverge from sequential STINT at K={k}"
        );
        best = best.min(out.wall);
    }
    Cell {
        shards: k,
        workers: k,
        wall: best,
    }
}

fn run_bench(name: &'static str, scale: Scale, reps: u32) -> Row {
    let mut w = Workload::by_name(name, scale);
    let pt = PortableTrace::record(&mut w);
    w.verify()
        .unwrap_or_else(|e| panic!("{name}: workload output wrong after recording: {e}"));
    let events = pt.trace.len() as u64;
    let strands = pt.reach.strand_count();
    let (seq, expected) = time_sequential(&pt, reps);
    let cells = SHARDS
        .iter()
        .map(|&k| time_batch(name, &pt, k, reps, &expected))
        .collect();
    Row {
        bench: name,
        events,
        strands,
        seq,
        cells,
    }
}

fn write_json(path: &str, scale: Scale, reps: u32, hw: usize, rows: &[Row], headline: (f64, &str)) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"stint-bench-batch-v1\",\n");
    j.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(scale)));
    j.push_str(&format!("  \"reps\": {reps},\n"));
    j.push_str(&format!("  \"hw_threads\": {hw},\n"));
    j.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            concat!(
                "    {{\"bench\": \"{}\", \"events\": {}, \"strands\": {}, ",
                "\"large\": {}, \"seq_secs\": {:.6}, \"shards\": [\n"
            ),
            r.bench,
            r.events,
            r.strands,
            r.large(),
            r.seq.as_secs_f64(),
        ));
        for (ci, c) in r.cells.iter().enumerate() {
            j.push_str(&format!(
                "      {{\"k\": {}, \"workers\": {}, \"secs\": {:.6}, \"speedup\": {:.4}}}{}\n",
                c.shards,
                c.workers,
                c.wall.as_secs_f64(),
                r.speedup(c),
                if ci + 1 < r.cells.len() { "," } else { "" },
            ));
        }
        j.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"geomean_speedup_k4\": {:.4},\n  \"geomean_over\": \"{}\"\n}}\n",
        headline.0, headline.1,
    ));
    std::fs::write(path, j).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}

fn main() {
    let args = parse_args();
    assert!(
        !stint_faults::is_active(),
        "the batch study must run with no fault plan installed"
    );
    if let Some(b) = args.bench.as_deref() {
        if !NAMES.contains(&b) {
            eprintln!("--bench {b}: no such workload (have: {})", NAMES.join(", "));
            std::process::exit(2);
        }
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "batch — sequential STINT replay vs K-sharded batch detection \
         (scale={}, best of {}, {} hw thread(s))",
        scale_name(args.scale),
        args.reps,
        hw
    );

    let mut rows: Vec<Row> = Vec::new();
    for name in NAMES {
        if args.bench.as_deref().is_some_and(|b| b != name) {
            continue;
        }
        rows.push(run_bench(name, args.scale, args.reps));
    }

    let mut header = vec!["bench".to_string(), "events".to_string(), "seq".to_string()];
    for k in SHARDS {
        header.push(format!("K={k}"));
    }
    header.push("large".to_string());
    let mut t = Table::new(header);
    for r in &rows {
        let mut cells = vec![r.bench.to_string(), r.events.to_string(), secs(r.seq)];
        for c in &r.cells {
            cells.push(format!("{:.2}x", r.speedup(c)));
        }
        cells.push(if r.large() { "yes" } else { "-" }.to_string());
        t.row(cells);
    }
    t.print();

    // Headline geomean: speedup at K=4 over large benches, falling back to
    // every bench when the scale produced no large trace.
    let large: Vec<f64> = rows
        .iter()
        .filter(|r| r.large())
        .filter_map(|r| r.speedup_at(4))
        .collect();
    let (pool, over) = if large.is_empty() {
        let all: Vec<f64> = rows.iter().filter_map(|r| r.speedup_at(4)).collect();
        (all, "all")
    } else {
        (large, "large")
    };
    let g = geomean(&pool);
    println!();
    println!(
        "geomean speedup at K=4 over {over} benches: {g:.2}x \
         ({} hw thread(s); the >1.5x bar applies at hw_threads >= 4)",
        hw
    );

    write_json(&args.out, args.scale, args.reps, hw, &rows, (g, over));
    println!("\nwrote {}", args.out);
}
