//! Figures 2–4 companion: narrate the interval-tree insertion cases on the
//! paper's own worked examples, printing the store contents after each step.
//!
//! ```sh
//! cargo run --release -p stint-bench --bin cases
//! ```

use stint_ivtree::{Interval, IntervalStore, Treap};

fn show<A: Copy + std::fmt::Debug>(t: &Treap<A>) -> String {
    t.to_vec()
        .iter()
        .map(|iv| format!("[{},{},{:?}]", iv.start, iv.end, iv.who))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    println!("== Write tree (Figure 2): INSERTWRITEINTERVAL cases ==\n");
    let mut w: Treap<char> = Treap::with_seed(1);

    println!("insert [10,20,a]                       (case A: empty leaf)");
    w.insert_write(Interval::new(10, 20, 'a'), |_, _, _| {});
    println!("  tree: {}\n", show(&w));

    println!("insert [30,40,b]                       (case A: no overlap, recurse right)");
    w.insert_write(Interval::new(30, 40, 'b'), |_, _, _| {});
    println!("  tree: {}\n", show(&w));

    println!("insert [15,25,c]                       (case B: partial overlap — trim a)");
    w.insert_write(Interval::new(15, 25, 'c'), |who, lo, hi| {
        println!("  conflict with {who} on [{lo},{hi})");
    });
    println!("  tree: {}\n", show(&w));

    println!("insert [32,35,d]                       (case C: old interval bigger — split b)");
    w.insert_write(Interval::new(32, 35, 'd'), |who, lo, hi| {
        println!("  conflict with {who} on [{lo},{hi})");
    });
    println!("  tree: {}\n", show(&w));

    println!("insert [5,50,e]                        (case D + REMOVEOVERLAP: e swallows all)");
    w.insert_write(Interval::new(5, 50, 'e'), |who, lo, hi| {
        println!("  conflict with {who} on [{lo},{hi})");
    });
    println!("  tree: {}\n", show(&w));

    println!("== Read tree (Figure 4 + Section 4 example) ==\n");
    println!("reads [8,16,a] [24,32,b] [40,52,c] [52,60,d], then [12,56,e]");
    println!("where e is left-of a and c, but not left-of b and d:\n");
    let mut r: Treap<char> = Treap::with_seed(2);
    for (s, e, who) in [(8, 16, 'a'), (24, 32, 'b'), (40, 52, 'c'), (52, 60, 'd')] {
        r.insert_read(Interval::new(s, e, who), |_| true);
    }
    println!("  before: {}", show(&r));
    r.insert_read(Interval::new(12, 56, 'e'), |old| old == 'a' || old == 'c');
    println!("  after:  {}", show(&r));
    println!("  (paper: [8,12,a] [12,24,e] [24,32,b] [32,52,e] [52,60,d])\n");

    println!("== Lemma 4.1's gap-filling example ==\n");
    println!("reads [1,2,a] [3,4,b] [5,6,c], then [0,7,d] with a,b,c all left-of d:");
    let mut r: Treap<char> = Treap::with_seed(3);
    for (s, e, who) in [(1, 2, 'a'), (3, 4, 'b'), (5, 6, 'c')] {
        r.insert_read(Interval::new(s, e, who), |_| true);
    }
    r.insert_read(Interval::new(0, 7, 'd'), |_| false);
    println!("  after:  {}", show(&r));
    println!("  (d only fills the gaps — 2m+1 intervals after m inserts, never more)");
    println!(
        "  inserts: {}, intervals: {} <= {}",
        r.insert_ops(),
        r.len(),
        2 * r.insert_ops() + 1
    );
    r.check_invariants();
}
