//! Figure 1: overheads of the vanilla race detector, and the access/interval
//! counts motivating interval-based access histories.
//!
//! Columns: baseline time, reachability-only time, full vanilla detection
//! (with overheads), then the number of 4-byte word accesses and the number
//! of runtime-coalesced intervals (reads/writes, in millions).

use stint::Variant;
use stint_bench::*;
use stint_suite::NAMES;

fn main() {
    let scale = scale_from_args();
    println!(
        "Figure 1 — vanilla detector overheads and access/interval counts (scale={})",
        scale_name(scale)
    );
    let mut t = Table::new(vec![
        "bench", "base", "reach.", "(oh)", "full", "(oh)", "acc(r)M", "acc(w)M", "int(r)M",
        "int(w)M",
    ]);
    for name in NAMES {
        let base = baseline(name, scale);
        let reach = reach_only(name, scale);
        let full = run_variant(name, scale, Variant::Vanilla);
        // Interval counts come from the runtime coalescer (comp+rts view).
        let coal = run_variant(name, scale, Variant::CompRts);
        t.row(vec![
            name.to_string(),
            secs(base),
            secs(reach),
            format!("({:.2}x)", overhead(reach, base)),
            secs(full.wall),
            format!("({:.2}x)", overhead(full.wall, base)),
            millions(full.stats.read.words),
            millions(full.stats.write.words),
            millions(coal.stats.read.intervals),
            millions(coal.stats.write.intervals),
        ]);
    }
    t.print();
}
