//! Performance gate: machine-readable before/after numbers for the hot-path
//! optimizations (per-page shadow batching + reachability memoization).
//!
//! Runs the fig5/fig7 benchmark suite at the requested `--scale` (default
//! `s`) twice per variant — once with [`HotPath::LEGACY`] (the unoptimized
//! paths, kept in-tree precisely so they can serve as the baseline) and once
//! with the default hot path — and emits `BENCH_perfgate.json` with wall
//! times, access/interval counts and cache statistics. If a previous JSON is
//! present it prints the geomean deltas against it.
//!
//! Flags:
//! * `--scale {test|s|m|paper}` — workload size (default `s`);
//! * `--reps N` — minimum rep pairs per (bench, variant) cell (default 5);
//! * `--bench NAME` — run only that workload (investigating one bench);
//! * `--out PATH` — output file (default `BENCH_perfgate.json`);
//! * `--check` — exit nonzero if any variant's geomean speedup < 1.0
//!   (the optimized path must never lose to the legacy path), or if a
//!   previous JSON is present and any geomean fell more than
//!   [`BASELINE_NOISE`] below it — the fault-injection layer must be free
//!   when no plan is installed, so a fresh run may only differ from the
//!   committed baseline by benchmark noise.
//!
//! Access-history flush timing is forced off ([`TimingMode::Off`]) so the
//! wall times contain no clock-read overhead.

use std::time::Duration;
use stint::{Config, HotPath, Outcome, TimingMode, Variant};
use stint_bench::*;
use stint_suite::{Scale, Workload, NAMES};

struct Args {
    scale: Scale,
    reps: u32,
    out: String,
    check: bool,
    bench: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args {
        scale: scale_from_args(),
        reps: 5,
        out: "BENCH_perfgate.json".to_string(),
        check: false,
        bench: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--reps" => {
                a.reps = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--reps needs a positive integer");
                        std::process::exit(2);
                    });
                i += 1;
            }
            "--out" => {
                a.out = argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
                i += 1;
            }
            "--check" => a.check = true,
            "--bench" => {
                a.bench = Some(argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--bench needs a workload name");
                    std::process::exit(2);
                }));
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    a.reps = a.reps.max(1);
    a
}

fn run_once(name: &str, scale: Scale, v: Variant, hot: HotPath) -> Outcome {
    let mut w = Workload::by_name(name, scale);
    let mut cfg = Config::new(v);
    cfg.collect_racy_words = false;
    cfg.hot = hot;
    let o = stint::detect_with(&mut w, cfg);
    assert!(
        o.report.is_race_free(),
        "{name} reported races under {v} — benchmark or detector bug"
    );
    o
}

/// Allowed geomean drop against the committed `BENCH_perfgate.json` before
/// `--check` fails. Wall times on a shared machine jitter run to run, but the
/// disabled fault-injection path is a single relaxed atomic load per
/// structure construction: anything beyond noise means the gate earned its
/// keep.
const BASELINE_NOISE: f64 = 0.15;

/// Sub-second workloads need more repetitions than `--reps` to beat scheduler
/// noise: rep pairs keep coming until each side has accumulated this much
/// measured wall time (or [`MAX_PAIRS`] caps the cell).
const MIN_CELL_SECS: f64 = 0.6;
const MAX_PAIRS: u32 = 50;

/// Best-of-N wall time for the legacy and hot paths, measured *interleaved*
/// (one untimed warmup of each, then legacy/hot alternating) so slow drift in
/// machine state — frequency scaling, cache warmth — cancels out instead of
/// biasing whichever side runs last. At least `reps` pairs run; fast cells
/// get extra pairs until the [`MIN_CELL_SECS`] time floor is met. Stats come
/// from the fastest run (counts are deterministic across reps, only the time
/// varies).
fn run_pair(name: &str, scale: Scale, v: Variant, reps: u32) -> (Outcome, Outcome) {
    run_once(name, scale, v, HotPath::LEGACY);
    run_once(name, scale, v, HotPath::default());
    let mut legacy: Option<Outcome> = None;
    let mut hot: Option<Outcome> = None;
    let mut spent = Duration::ZERO;
    let mut pairs = 0;
    while pairs < reps || (spent.as_secs_f64() < 2.0 * MIN_CELL_SECS && pairs < MAX_PAIRS) {
        let l = run_once(name, scale, v, HotPath::LEGACY);
        spent += l.wall;
        if legacy.as_ref().is_none_or(|b| l.wall < b.wall) {
            legacy = Some(l);
        }
        let h = run_once(name, scale, v, HotPath::default());
        spent += h.wall;
        if hot.as_ref().is_none_or(|b| h.wall < b.wall) {
            hot = Some(h);
        }
        pairs += 1;
    }
    (legacy.unwrap(), hot.unwrap())
}

struct Row {
    bench: &'static str,
    variant: Variant,
    legacy: Duration,
    hot: Outcome,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy.as_secs_f64() / self.hot.wall.as_secs_f64().max(1e-9)
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']));
    s
}

fn write_json(path: &str, scale: Scale, reps: u32, rows: &[Row], geomeans: &[(Variant, f64)]) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"stint-perfgate-v1\",\n");
    j.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(scale)));
    j.push_str(&format!("  \"reps\": {reps},\n"));
    j.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let s = &r.hot.stats;
        j.push_str(&format!(
            concat!(
                "    {{\"bench\": \"{}\", \"variant\": \"{}\", ",
                "\"legacy_secs\": {:.6}, \"hot_secs\": {:.6}, \"speedup\": {:.4}, ",
                "\"intervals\": {}, \"words\": {}, \"strands_flushed\": {}, ",
                "\"hash_ops\": {}, \"treap_ops\": {}, ",
                "\"reach_hits\": {}, \"reach_misses\": {}, \"reach_hit_rate\": {:.4}, ",
                "\"hook_filter_hits\": {}, ",
                "\"page_batches\": {}, \"avg_page_batch_words\": {:.2}}}{}\n",
            ),
            json_escape_free(r.bench),
            json_escape_free(r.variant.name()),
            r.legacy.as_secs_f64(),
            r.hot.wall.as_secs_f64(),
            r.speedup(),
            s.total_intervals(),
            s.total_words(),
            s.strands_flushed,
            s.hash_ops,
            s.treap.ops,
            s.reach_hits,
            s.reach_misses,
            s.reach_hit_rate(),
            s.hook_filter_hits,
            s.page_batches,
            s.avg_page_batch_words(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"geomean_speedup\": {");
    for (i, (v, g)) in geomeans.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("\"{}\": {:.4}", json_escape_free(v.name()), g));
    }
    j.push_str("}\n}\n");
    std::fs::write(path, j).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}

/// Pull `"<key>": <number>` out of the `geomean_speedup` object of a previous
/// report (enough structure awareness for our own output format).
fn previous_geomean(content: &str, key: &str) -> Option<f64> {
    let obj = content.split("\"geomean_speedup\"").nth(1)?;
    let after = obj.split(&format!("\"{key}\":")).nth(1)?;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Gate the space study's report (regenerated by the `space` binary; see
/// `scripts/perfgate.sh`): every row and every per-store case must satisfy
/// its Lemma 4.1 bound. Absent file = the study has not run; that is only a
/// warning, so a bare `perfgate --check` stays usable on its own.
fn check_space_report(path: &str) {
    let Ok(content) = std::fs::read_to_string(path) else {
        eprintln!("warning: no {path} (run the `space` binary to gate the space study)");
        return;
    };
    let doc = stint_bench::json::parse(&content).unwrap_or_else(|e| {
        eprintln!("FAIL: {path}: {e}");
        std::process::exit(1);
    });
    let fail = |msg: String| -> ! {
        eprintln!("FAIL: {path}: {msg}");
        std::process::exit(1);
    };
    if doc.get("schema").and_then(|s| s.as_str()) != Some("stint-space-v1") {
        fail("not a stint-space-v1 document".into());
    }
    let mut cases = 0usize;
    for (section, key) in [("rows", "lemma_ok"), ("lemma_per_store", "ok")] {
        let items = doc
            .get(section)
            .and_then(|v| v.as_array())
            .unwrap_or_else(|| fail(format!("missing {section} array")));
        if items.is_empty() {
            fail(format!("empty {section} array"));
        }
        for item in items {
            if item.get(key).and_then(|b| b.as_bool()) != Some(true) {
                fail(format!(
                    "Lemma 4.1 violation recorded in {section}: {item:?}"
                ));
            }
            cases += 1;
        }
    }
    println!("check passed: Lemma 4.1 holds in all {cases} recorded space cases");
}

/// Minimum geomean K=4 speedup the sharded batch detector must deliver —
/// enforced only when the report was produced on a machine with at least
/// four hardware threads. With fewer threads every shard time-slices one
/// core and a slowdown is the *expected* result, so the bar would only
/// measure the scheduler; the structural checks still run there.
const BATCH_SPEEDUP_BAR: f64 = 1.5;
const BATCH_HW_FLOOR: u64 = 4;
/// Work-count bound at K=1: the single shard must touch at most ~1.1x the
/// trace's events — the O(n) partition pass never rescans, so anything
/// beyond rounding slack means a clip-per-shard regression.
const BATCH_K1_WORK_BAR: f64 = 1.1;
/// Work-count bound at any K: total routed events stay near-linear in the
/// trace length (straddler clips and per-shard strand-end markers are the
/// only duplication). A clip-per-shard design would sit at K·n — ratio 8.0
/// on the K=8 cell — so 1.5 is a sharp gate with room for small traces.
const BATCH_WORK_BAR: f64 = 1.5;
/// The compressed chunked encoding must at least halve the v1 text size on
/// every *large* bench (tiny traces are header-overhead-bound).
const BATCH_COMPRESSION_BAR: f64 = 0.5;

/// Gate the batch-scalability report (regenerated by the `batch` binary; see
/// `scripts/perfgate.sh`), schema `stint-bench-batch-v2`. Structure first: a
/// strictly increasing shard axis per bench with speedup and work fields on
/// every cell, plus the compression sizes and streaming-ingest cell. Then
/// the machine-independent gates: K=1 work ratio within
/// [`BATCH_K1_WORK_BAR`], every cell's work ratio within
/// [`BATCH_WORK_BAR`] (near-linear partition scaling), large-bench
/// compression ratio within [`BATCH_COMPRESSION_BAR`], and positive
/// streaming throughput. Finally, on machines with [`BATCH_HW_FLOOR`]+
/// hardware threads, the recorded headline geomean at K=4 must clear
/// [`BATCH_SPEEDUP_BAR`]. Absent file = the study has not run; that is only
/// a warning, like the space report. A stale v1 report is a hard failure.
fn check_batch_report(path: &str) {
    let Ok(content) = std::fs::read_to_string(path) else {
        eprintln!("warning: no {path} (run the `batch` binary to gate the scalability study)");
        return;
    };
    let fail = |msg: String| -> ! {
        eprintln!("FAIL: {path}: {msg}");
        std::process::exit(1);
    };
    let doc = stint_bench::json::parse(&content).unwrap_or_else(|e| fail(e));
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some("stint-bench-batch-v2") => {}
        Some("stint-bench-batch-v1") => fail(
            "stale stint-bench-batch-v1 report; regenerate with the current \
             `batch` binary (emits v2 with work counts and compression)"
                .into(),
        ),
        _ => fail("not a stint-bench-batch-v2 document".into()),
    }
    let benches = doc
        .get("benches")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| fail("missing benches array".into()));
    if benches.is_empty() {
        fail("empty benches array".into());
    }
    let mut gated_cells = 0usize;
    for b in benches {
        let name = b.get("bench").and_then(|v| v.as_str()).unwrap_or("?");
        let large = b.get("large").and_then(|v| v.as_bool()).unwrap_or(false);
        let ratio = b
            .get("compression_ratio")
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| fail(format!("{name}: missing compression_ratio")));
        if large && ratio > BATCH_COMPRESSION_BAR {
            fail(format!(
                "{name}: compressed trace is {ratio:.3}x the v1 size \
                 (bar: {BATCH_COMPRESSION_BAR}x on large benches)"
            ));
        }
        let stream = b
            .get("stream")
            .unwrap_or_else(|| fail(format!("{name}: missing stream cell")));
        let mibs = stream
            .get("mib_per_sec")
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| fail(format!("{name}: stream cell without throughput")));
        if mibs <= 0.0 {
            fail(format!("{name}: non-positive streaming throughput"));
        }
        let shards = b
            .get("shards")
            .and_then(|v| v.as_array())
            .unwrap_or_else(|| fail(format!("{name}: missing shards array")));
        let mut prev_k = 0u64;
        for s in shards {
            let k = s
                .get("k")
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| fail(format!("{name}: shard cell without k")));
            if k <= prev_k {
                fail(format!(
                    "{name}: shard axis not strictly increasing at k={k}"
                ));
            }
            prev_k = k;
            if s.get("speedup").and_then(|v| v.as_f64()).is_none() {
                fail(format!("{name}: shard cell k={k} without a speedup field"));
            }
            let wr = s
                .get("work_ratio")
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| fail(format!("{name}: shard cell k={k} without work_ratio")));
            let bar = if k == 1 {
                BATCH_K1_WORK_BAR
            } else {
                BATCH_WORK_BAR
            };
            if wr > bar {
                fail(format!(
                    "{name}: partition work at K={k} is {wr:.3}x the trace \
                     (bar: {bar}x — the O(n) pass must not rescan per shard)"
                ));
            }
            gated_cells += 1;
        }
        if prev_k == 0 {
            fail(format!("{name}: empty shard axis"));
        }
    }
    let hw = doc
        .get("hw_threads")
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| fail("missing hw_threads".into()));
    let g = doc
        .get("geomean_speedup_k4")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail("missing geomean_speedup_k4".into()));
    println!(
        "check passed: batch work ratios within {BATCH_K1_WORK_BAR}x (K=1) / \
         {BATCH_WORK_BAR}x (all K) over {gated_cells} cells; large-bench \
         compression within {BATCH_COMPRESSION_BAR}x; stream throughput present"
    );
    if hw >= BATCH_HW_FLOOR {
        if g < BATCH_SPEEDUP_BAR {
            fail(format!(
                "batch geomean speedup at K=4 is {g:.2}x on {hw} hw threads \
                 (bar: {BATCH_SPEEDUP_BAR}x)"
            ));
        }
        println!(
            "check passed: batch K=4 geomean {g:.2}x clears the \
             {BATCH_SPEEDUP_BAR}x bar on {hw} hw threads"
        );
    } else {
        println!(
            "check passed: batch report structurally sound; speedup bar waived \
             (geomean {g:.2}x on {hw} hw thread(s), bar applies at >= {BATCH_HW_FLOOR})"
        );
    }
}

/// Wall-clock bar for the online mode at W=4: it must at least break even
/// against sequential STINT — enforced, like the batch bar, only on
/// machines with [`BATCH_HW_FLOOR`]+ hardware threads (the executor itself
/// stays sequential, so only the detection fraction parallelizes; on a
/// 1-core box every worker time-slices one core and a slowdown is the
/// expected result).
const PARALLEL_SPEEDUP_BAR: f64 = 1.0;
/// Work-count bound at any W: events routed to shard detectors across all
/// merge cycles stay near-linear in the instrumentation stream (straddler
/// clips and per-shard markers are the only duplication), independent of
/// the worker count — DePa timestamps are relabel-free, so extra workers
/// add queries, never maintenance work.
const PARALLEL_WORK_BAR: f64 = 1.5;

/// Gate the parallel-online scaling report (regenerated by the `parallel`
/// binary; see `scripts/perfgate.sh`), schema `stint-bench-parallel-v1`.
/// Structure first: a strictly increasing worker axis per bench with
/// speedup, work and merge-cycle fields on every cell. Then the
/// machine-independent gate: every cell's work ratio within
/// [`PARALLEL_WORK_BAR`]. Finally, on machines with [`BATCH_HW_FLOOR`]+
/// hardware threads, the recorded headline geomean at W=4 must clear
/// [`PARALLEL_SPEEDUP_BAR`]. Absent file = the study has not run; that is
/// only a warning, like the other reports.
fn check_parallel_report(path: &str) {
    let Ok(content) = std::fs::read_to_string(path) else {
        eprintln!(
            "warning: no {path} (run the `parallel` binary to gate the online scaling study)"
        );
        return;
    };
    let fail = |msg: String| -> ! {
        eprintln!("FAIL: {path}: {msg}");
        std::process::exit(1);
    };
    let doc = stint_bench::json::parse(&content).unwrap_or_else(|e| fail(e));
    if doc.get("schema").and_then(|s| s.as_str()) != Some("stint-bench-parallel-v1") {
        fail("not a stint-bench-parallel-v1 document".into());
    }
    let benches = doc
        .get("benches")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| fail("missing benches array".into()));
    if benches.is_empty() {
        fail("empty benches array".into());
    }
    let mut gated_cells = 0usize;
    for b in benches {
        let name = b.get("bench").and_then(|v| v.as_str()).unwrap_or("?");
        if b.get("depa_bytes").and_then(|v| v.as_u64()).is_none() {
            fail(format!("{name}: missing depa_bytes"));
        }
        let workers = b
            .get("workers")
            .and_then(|v| v.as_array())
            .unwrap_or_else(|| fail(format!("{name}: missing workers array")));
        let mut prev_w = 0u64;
        for s in workers {
            let w = s
                .get("w")
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| fail(format!("{name}: worker cell without w")));
            if w <= prev_w {
                fail(format!(
                    "{name}: worker axis not strictly increasing at w={w}"
                ));
            }
            prev_w = w;
            if s.get("speedup").and_then(|v| v.as_f64()).is_none() {
                fail(format!("{name}: worker cell w={w} without a speedup field"));
            }
            if s.get("chunks").and_then(|v| v.as_u64()).is_none() {
                fail(format!("{name}: worker cell w={w} without merge cycles"));
            }
            let wr = s
                .get("work_ratio")
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| fail(format!("{name}: worker cell w={w} without work_ratio")));
            if wr > PARALLEL_WORK_BAR {
                fail(format!(
                    "{name}: online shard work at W={w} is {wr:.3}x the stream \
                     (bar: {PARALLEL_WORK_BAR}x — worker count must not multiply work)"
                ));
            }
            gated_cells += 1;
        }
        if prev_w == 0 {
            fail(format!("{name}: empty worker axis"));
        }
    }
    let hw = doc
        .get("hw_threads")
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| fail("missing hw_threads".into()));
    let g = doc
        .get("geomean_speedup_w4")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail("missing geomean_speedup_w4".into()));
    println!(
        "check passed: online work ratios within {PARALLEL_WORK_BAR}x over \
         {gated_cells} cells (worker count adds no maintenance work)"
    );
    if hw >= BATCH_HW_FLOOR {
        if g < PARALLEL_SPEEDUP_BAR {
            fail(format!(
                "online geomean speedup at W=4 is {g:.2}x on {hw} hw threads \
                 (bar: {PARALLEL_SPEEDUP_BAR}x)"
            ));
        }
        println!(
            "check passed: online W=4 geomean {g:.2}x clears the \
             {PARALLEL_SPEEDUP_BAR}x bar on {hw} hw threads"
        );
    } else {
        println!(
            "check passed: parallel report structurally sound; speedup bar waived \
             (geomean {g:.2}x on {hw} hw thread(s), bar applies at >= {BATCH_HW_FLOOR})"
        );
    }
}

/// Structural gate for `BENCH_serve.json` (the `serve_load` service study,
/// schema `stint-bench-serve-v2`): per-status results summing to the
/// session count, ordered latency percentiles, positive throughput, zero
/// lost races, every obs gauge drained to zero — plus the telemetry-plane
/// gates: the obs-off phase must have left the registry untouched and the
/// flight recorder empty, the journal replay must be clean, the daemon's
/// own latency histograms must agree with the driver, and the obs-full
/// soak must stay within 10% of obs-off throughput. Absent file = the
/// load study has not run; that is only a warning, like the other
/// reports.
fn check_serve_report(path: &str) {
    let Ok(content) = std::fs::read_to_string(path) else {
        eprintln!("warning: no {path} (run the `serve_load` binary to gate the service study)");
        return;
    };
    let fail = |msg: String| -> ! {
        eprintln!("FAIL: {path}: {msg}");
        std::process::exit(1);
    };
    let doc = stint_bench::json::parse(&content).unwrap_or_else(|e| fail(e));
    if doc.get("schema").and_then(|s| s.as_str()) == Some("stint-bench-serve-v1") {
        fail(
            "stale stint-bench-serve-v1 report — regenerate with the current \
             `serve_load` binary (two-phase obs study)"
                .into(),
        );
    }
    if doc.get("schema").and_then(|s| s.as_str()) != Some("stint-bench-serve-v2") {
        fail("not a stint-bench-serve-v2 document".into());
    }
    let sessions = doc
        .get("sessions")
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| fail("missing sessions".into()));
    if sessions == 0 {
        fail("zero sessions".into());
    }
    let results = doc
        .get("results")
        .unwrap_or_else(|| fail("missing results object".into()));
    let mut sum = 0u64;
    for key in ["ok", "racy", "usage", "degraded", "corrupt", "poisoned"] {
        sum += results
            .get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| fail(format!("results missing {key:?}")));
    }
    if sum != sessions {
        fail(format!("results sum to {sum}, expected {sessions}"));
    }
    if doc.get("lost_races").and_then(|v| v.as_u64()) != Some(0) {
        fail("lost_races must be present and zero".into());
    }
    let p50 = doc
        .get("p50_ms")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail("missing p50_ms".into()));
    let p99 = doc
        .get("p99_ms")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail("missing p99_ms".into()));
    if p50 < 0.0 || p99 < p50 {
        fail(format!("bad latency percentiles p50={p50} p99={p99}"));
    }
    let sps = doc
        .get("sessions_per_sec")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail("missing sessions_per_sec".into()));
    if sps <= 0.0 {
        fail("non-positive sessions_per_sec".into());
    }
    if doc.get("gauges_zero_after_drain").and_then(|v| v.as_bool()) != Some(true) {
        fail("gauges_zero_after_drain is not true".into());
    }
    // The telemetry-plane gates.
    for key in [
        "obs_off_registry_untouched",
        "flight_idle_obs_off",
        "journal_clean",
        "latency_agree",
    ] {
        if doc.get(key).and_then(|v| v.as_bool()) != Some(true) {
            fail(format!("{key} is not true"));
        }
    }
    if doc.get("journal_records").and_then(|v| v.as_u64()) == Some(0) {
        fail("zero journal_records in the obs-full phase".into());
    }
    let overhead = doc
        .get("obs_overhead_ratio")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail("missing obs_overhead_ratio".into()));
    if overhead > 1.10 {
        fail(format!(
            "obs-full soak is {:.1}% slower than obs-off (limit 10%)",
            (overhead - 1.0) * 100.0
        ));
    }
    println!(
        "check passed: serve study — {sessions} sessions, statuses sum, no lost \
         races, p50 {p50:.2}ms <= p99 {p99:.2}ms, {sps:.0}/s, obs overhead \
         {:+.1}% (limit +10%), daemon latency agrees, journal clean, gauges drained",
        (overhead - 1.0) * 100.0
    );
}

fn main() {
    let args = parse_args();
    // The numbers below are only meaningful on the faults-disabled path; a
    // stray plan (say, an inherited STINT_FAULTS that some caller installed)
    // would silently measure the degraded detector instead.
    assert!(
        !stint_faults::is_active(),
        "perfgate must run with no fault plan installed"
    );
    // Same reasoning for the observability layer: its disabled path (one
    // relaxed load per instrumented site) is what this gate certifies.
    assert!(
        !stint::obs::is_enabled(),
        "perfgate must run with observability disabled (unset STINT_OBS)"
    );
    // No clock reads inside strand-end flushes while we measure wall time.
    // set_mode returns the latched mode; anything else means some earlier
    // code latched timing on and the wall-clock numbers would be polluted.
    assert_eq!(
        stint::timing::set_mode(TimingMode::Off),
        TimingMode::Off,
        "perfgate must latch timing off before any detector runs"
    );
    let previous = std::fs::read_to_string(&args.out).ok();

    println!(
        "perfgate — legacy vs hot path, fig5/fig7 suite (scale={}, best of {})",
        scale_name(args.scale),
        args.reps
    );

    if let Some(b) = args.bench.as_deref() {
        if !NAMES.contains(&b) {
            eprintln!("--bench {b}: no such workload (have: {})", NAMES.join(", "));
            std::process::exit(2);
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    for name in NAMES {
        if args.bench.as_deref().is_some_and(|b| b != name) {
            continue;
        }
        for v in Variant::ALL {
            let (legacy, hot) = run_pair(name, args.scale, v, args.reps);
            rows.push(Row {
                bench: name,
                variant: v,
                legacy: legacy.wall,
                hot,
            });
        }
    }

    let mut t = Table::new(vec![
        "bench",
        "variant",
        "legacy",
        "hot",
        "speedup",
        "reach hit%",
        "batch avg",
    ]);
    for r in &rows {
        let s = &r.hot.stats;
        t.row(vec![
            r.bench.to_string(),
            r.variant.name().to_string(),
            secs(r.legacy),
            secs(r.hot.wall),
            format!("{:.2}x", r.speedup()),
            format!("{:.1}", 100.0 * s.reach_hit_rate()),
            format!("{:.1}", s.avg_page_batch_words()),
        ]);
    }
    t.print();

    let mut geomeans: Vec<(Variant, f64)> = Vec::new();
    println!();
    for v in Variant::ALL {
        let sp: Vec<f64> = rows
            .iter()
            .filter(|r| r.variant == v)
            .map(Row::speedup)
            .collect();
        let g = geomean(&sp);
        if let Some(prev) = previous
            .as_deref()
            .and_then(|c| previous_geomean(c, v.name()))
        {
            println!("{v}: geomean speedup {g:.2}x (previous run: {prev:.2}x)");
        } else {
            println!("{v}: geomean speedup {g:.2}x");
        }
        geomeans.push((v, g));
    }

    write_json(&args.out, args.scale, args.reps, &rows, &geomeans);
    println!("\nwrote {}", args.out);

    if args.check {
        let losers: Vec<String> = geomeans
            .iter()
            .filter(|(_, g)| *g < 1.0)
            .map(|(v, g)| format!("{v} ({g:.2}x)"))
            .collect();
        if !losers.is_empty() {
            eprintln!(
                "FAIL: hot path slower than legacy for: {}",
                losers.join(", ")
            );
            std::process::exit(1);
        }
        println!("check passed: hot path no slower than legacy for every variant");

        // Zero-overhead guard: with no plan installed, this run must sit
        // within noise of the committed baseline geomeans.
        if let Some(content) = previous.as_deref() {
            let regressed: Vec<String> = geomeans
                .iter()
                .filter_map(|(v, g)| {
                    previous_geomean(content, v.name())
                        .filter(|prev| *g < prev * (1.0 - BASELINE_NOISE))
                        .map(|prev| format!("{v} ({g:.2}x vs baseline {prev:.2}x)"))
                })
                .collect();
            if !regressed.is_empty() {
                eprintln!(
                    "FAIL: geomean fell more than {:.0}% below the previous baseline \
                     (the disabled fault layer must be free) for: {}",
                    BASELINE_NOISE * 100.0,
                    regressed.join(", ")
                );
                std::process::exit(1);
            }
            println!(
                "check passed: geomeans within {:.0}% of the previous baseline \
                 (fault layer free when disabled)",
                BASELINE_NOISE * 100.0
            );
        }

        check_space_report("BENCH_space.json");
        check_batch_report("BENCH_batch.json");
        check_parallel_report("BENCH_parallel.json");
        check_serve_report("BENCH_serve.json");
    }

    // Disabled observability must stay disabled: if any counter registered,
    // something bypassed the `is_enabled` gate and the whole suite above
    // measured an instrumented build.
    assert!(
        !stint::obs::registry_initialized(),
        "observability registry initialized during a disabled-obs run \
         (an instrumented site bypassed the is_enabled gate)"
    );
    // Same for the space gauges specifically: every arena allocated and
    // dropped above, yet with observability off no gauge may have recorded
    // a byte (the snapshot is empty because nothing ever registered).
    assert!(
        stint::obs::gauges_snapshot().is_empty(),
        "space gauges recorded bytes during a disabled-obs run"
    );
}
