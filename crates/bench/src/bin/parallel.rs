//! `parallel` — scaling study for the concurrent online detection mode
//! (`--online-parallel`, DePa timestamps).
//!
//! For every workload the binary times one sequential STINT detection of a
//! fresh program instance (the single-detector baseline), then times the
//! online pipeline at W ∈ {1, 2, 4, 8} pool workers with a fixed shard
//! count. Each cell reports `speedup = t_seq / t_online` **and the shard
//! work count** — the events actually routed to shard detectors across all
//! merge cycles, which stays within a whisker of the instrumentation stream
//! length regardless of the worker count (DePa queries are relabel-free, so
//! adding workers adds no maintenance work). The work-count ratio is the
//! machine-independent headline on a 1-core box; the wall-clock speedup
//! geomean at W=4 is recorded but — exactly like `BENCH_batch.json` — only
//! *gated* by `perfgate --check` when `hw_threads` ≥ 4.
//!
//! Every online run is cross-checked against the sequential baseline: the
//! race verdict and racy-word count must match exactly for every worker
//! count (the suite benchmarks are race-free, so both sides must report
//! zero). A mismatch is a detector bug and a hard failure, not a statistic.
//!
//! Flags: `--scale {test|s|m|paper}` (default `s`), `--reps N` (best-of-N
//! per cell, default 3), `--bench NAME`, `--out PATH` (default
//! `BENCH_parallel.json`).

use std::time::{Duration, Instant};
use stint::{detect_with, Config, Variant};
use stint_batchdet::{online_detect, OnlineConfig};
use stint_bench::*;
use stint_suite::{Scale, Workload, NAMES};

/// Worker-count axis of the study. Must be strictly increasing — `jsoncheck
/// parallel` and `perfgate --check` verify the emitted axis is monotone.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Address shards per online run (fixed so the worker axis varies exactly
/// one thing).
const SHARDS: usize = 4;

/// Events per strand-local delta before a merge cycle.
const CHUNK_EVENTS: usize = stint::DEFAULT_CHUNK_EVENTS;

/// A run with at least this many instrumentation events counts as *large*:
/// big enough that pool fan-out and merge-cycle overhead are amortized. The
/// headline geomean is computed over large benches only (falling back to
/// all benches if the scale produces none).
const LARGE_EVENTS: u64 = 20_000;

struct Args {
    scale: Scale,
    reps: u32,
    out: String,
    bench: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args {
        scale: scale_from_args(),
        reps: 3,
        out: "BENCH_parallel.json".to_string(),
        bench: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--reps" => {
                a.reps = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--reps needs a positive integer");
                        std::process::exit(2);
                    });
                i += 1;
            }
            "--out" => {
                a.out = argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
                i += 1;
            }
            "--bench" => {
                a.bench = Some(argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--bench needs a workload name");
                    std::process::exit(2);
                }));
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    a.reps = a.reps.max(1);
    a
}

struct Cell {
    workers: usize,
    wall: Duration,
    /// Events routed to shard detectors (summed over shards and merge
    /// cycles) — the online phase's work count.
    work: u64,
    chunks: u64,
}

struct Row {
    bench: &'static str,
    events: u64,
    strands: usize,
    seq: Duration,
    /// DePa timestamp bytes at freeze — the substrate's whole footprint
    /// (immutable once published, shared by every worker).
    reach_bytes: u64,
    cells: Vec<Cell>,
}

impl Row {
    fn large(&self) -> bool {
        self.events >= LARGE_EVENTS
    }
    fn speedup(&self, cell: &Cell) -> f64 {
        self.seq.as_secs_f64() / cell.wall.as_secs_f64().max(1e-9)
    }
    fn speedup_at(&self, w: usize) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.workers == w)
            .map(|c| self.speedup(c))
    }
    /// Shard work relative to the instrumentation stream length at one W.
    fn work_ratio(&self, cell: &Cell) -> f64 {
        cell.work as f64 / (self.events.max(1)) as f64
    }
}

/// Best-of-N sequential STINT detection on fresh program instances; also
/// returns the racy-word count every online run must reproduce.
fn time_sequential(name: &'static str, scale: Scale, reps: u32) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut racy = 0usize;
    for _ in 0..reps {
        let mut w = Workload::by_name(name, scale);
        let t0 = Instant::now();
        let o = detect_with(&mut w, Config::new(Variant::Stint));
        let wall = t0.elapsed();
        w.verify()
            .unwrap_or_else(|e| panic!("{name}: workload output wrong under STINT: {e}"));
        best = best.min(wall);
        racy = o.report.racy_words().len();
    }
    (best, racy)
}

/// Best-of-N online detection at one worker count, cross-checked against
/// the sequential racy-word count on every rep.
fn time_online(
    name: &'static str,
    scale: Scale,
    w: usize,
    reps: u32,
    expected_racy: usize,
) -> (Cell, u64, u64, usize) {
    let cfg = OnlineConfig {
        shards: SHARDS,
        workers: w,
        steal_seed: 0,
        chunk_events: CHUNK_EVENTS,
        witnesses: false,
        budget: Default::default(),
    };
    let mut best = Duration::MAX;
    let (mut work, mut chunks) = (0u64, 0u64);
    let (mut events, mut reach_bytes, mut strands) = (0u64, 0u64, 0usize);
    for _ in 0..reps {
        let mut wl = Workload::by_name(name, scale);
        let out = online_detect(&mut wl, &cfg)
            .unwrap_or_else(|e| panic!("{name}: online detection failed at W={w}: {e}"));
        wl.verify()
            .unwrap_or_else(|e| panic!("{name}: workload output wrong under online: {e}"));
        assert!(
            out.degraded.is_none(),
            "{name}: degraded online run at W={w} with no fault plan installed"
        );
        assert_eq!(
            out.merged.racy_words.len(),
            expected_racy,
            "{name}: online racy words diverge from sequential STINT at W={w}"
        );
        best = best.min(out.wall);
        work = out.shards.iter().map(|s| s.events).sum();
        chunks = out.chunks;
        events = out.events as u64;
        reach_bytes = out.reach_bytes;
        strands = out.strands;
    }
    (
        Cell {
            workers: w,
            wall: best,
            work,
            chunks,
        },
        events,
        reach_bytes,
        strands,
    )
}

fn run_bench(name: &'static str, scale: Scale, reps: u32) -> Row {
    let (seq, expected_racy) = time_sequential(name, scale, reps);
    let mut cells = Vec::new();
    let (mut events, mut reach_bytes, mut strands) = (0u64, 0u64, 0usize);
    for &w in &WORKERS {
        let (cell, ev, rb, st) = time_online(name, scale, w, reps, expected_racy);
        if events == 0 {
            (events, reach_bytes, strands) = (ev, rb, st);
        } else {
            assert_eq!(events, ev, "{name}: event count drifted across W");
        }
        cells.push(cell);
    }
    Row {
        bench: name,
        events,
        strands,
        seq,
        reach_bytes,
        cells,
    }
}

fn write_json(path: &str, scale: Scale, reps: u32, hw: usize, rows: &[Row], headline: (f64, &str)) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"stint-bench-parallel-v1\",\n");
    j.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(scale)));
    j.push_str(&format!("  \"reps\": {reps},\n"));
    j.push_str(&format!("  \"hw_threads\": {hw},\n"));
    j.push_str(&format!("  \"shards\": {SHARDS},\n"));
    j.push_str(&format!("  \"chunk_events\": {CHUNK_EVENTS},\n"));
    j.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            concat!(
                "    {{\"bench\": \"{}\", \"events\": {}, \"strands\": {}, ",
                "\"large\": {}, \"seq_secs\": {:.6}, \"depa_bytes\": {},\n",
                "     \"workers\": [\n"
            ),
            r.bench,
            r.events,
            r.strands,
            r.large(),
            r.seq.as_secs_f64(),
            r.reach_bytes,
        ));
        for (ci, c) in r.cells.iter().enumerate() {
            j.push_str(&format!(
                concat!(
                    "      {{\"w\": {}, \"secs\": {:.6}, \"speedup\": {:.4}, ",
                    "\"work\": {}, \"work_ratio\": {:.4}, \"chunks\": {}}}{}\n"
                ),
                c.workers,
                c.wall.as_secs_f64(),
                r.speedup(c),
                c.work,
                r.work_ratio(c),
                c.chunks,
                if ci + 1 < r.cells.len() { "," } else { "" },
            ));
        }
        j.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"geomean_speedup_w4\": {:.4},\n  \"geomean_over\": \"{}\"\n}}\n",
        headline.0, headline.1,
    ));
    std::fs::write(path, j).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}

fn main() {
    let args = parse_args();
    assert!(
        !stint_faults::is_active(),
        "the parallel study must run with no fault plan installed"
    );
    if let Some(b) = args.bench.as_deref() {
        if !NAMES.contains(&b) {
            eprintln!("--bench {b}: no such workload (have: {})", NAMES.join(", "));
            std::process::exit(2);
        }
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "parallel — sequential STINT vs W-worker online detection over DePa \
         (scale={}, best of {}, {} hw thread(s))",
        scale_name(args.scale),
        args.reps,
        hw
    );

    let mut rows: Vec<Row> = Vec::new();
    for name in NAMES {
        if args.bench.as_deref().is_some_and(|b| b != name) {
            continue;
        }
        rows.push(run_bench(name, args.scale, args.reps));
    }

    let mut header = vec!["bench".to_string(), "events".to_string(), "seq".to_string()];
    for w in WORKERS {
        header.push(format!("W={w}"));
    }
    header.push("work@8".to_string());
    header.push("depa KiB".to_string());
    header.push("large".to_string());
    let mut t = Table::new(header);
    for r in &rows {
        let mut cells = vec![r.bench.to_string(), r.events.to_string(), secs(r.seq)];
        for c in &r.cells {
            cells.push(format!("{:.2}x", r.speedup(c)));
        }
        let w8 = r.cells.last().map(|c| r.work_ratio(c)).unwrap_or(0.0);
        cells.push(format!("{w8:.3}x"));
        cells.push(format!("{:.1}", r.reach_bytes as f64 / 1024.0));
        cells.push(if r.large() { "yes" } else { "-" }.to_string());
        t.row(cells);
    }
    t.print();

    // Headline geomean: speedup at W=4 over large benches, falling back to
    // every bench when the scale produced no large run.
    let large: Vec<f64> = rows
        .iter()
        .filter(|r| r.large())
        .filter_map(|r| r.speedup_at(4))
        .collect();
    let (pool, over) = if large.is_empty() {
        let all: Vec<f64> = rows.iter().filter_map(|r| r.speedup_at(4)).collect();
        (all, "all")
    } else {
        (large, "large")
    };
    let g = geomean(&pool);
    println!();
    println!(
        "geomean speedup at W=4 over {over} benches: {g:.2}x \
         ({hw} hw thread(s); the >1.0x bar applies at hw_threads >= 4)"
    );

    write_json(&args.out, args.scale, args.reps, hw, &rows, (g, over));
    println!("\nwrote {}", args.out);
}
