//! Minimal JSON reader for the gate and smoke tooling.
//!
//! The harness scripts used to lean on `python3 -m json.tool` for validating
//! exporter output; this module (and the `jsoncheck` binary built on it)
//! removes that dependency so the gates run on machines with no Python. It
//! is a strict recursive-descent parser over the small documents our own
//! exporters emit — not a general-purpose JSON library (no streaming, whole
//! document in memory, numbers as `f64`).

/// A parsed JSON document. Object members keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number (exact for the u53 range our counters use).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, anything
/// else after the top-level value is an error).
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        format!("line {line} col {col}: {msg}")
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in our exporters'
                            // output; map them to the replacement character
                            // rather than rejecting the document.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_exporter_shaped_document() {
        let v = parse(
            r#"{
  "schema": "stint-obs-metrics-v1",
  "counters": { "om.inserts": 12, "neg": -3 },
  "gauges": { "ivtree.bytes": { "current": 0, "hw": 4096 } },
  "runs": [ { "ok": true, "x": null, "f": 1.5 } ],
  "text": "a\"b\\c\ndA"
}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("stint-obs-metrics-v1")
        );
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("om.inserts")
                .unwrap()
                .as_u64(),
            Some(12)
        );
        assert_eq!(
            v.get("counters").unwrap().get("neg").unwrap().as_f64(),
            Some(-3.0)
        );
        assert_eq!(
            v.get("gauges")
                .unwrap()
                .get("ivtree.bytes")
                .unwrap()
                .get("hw")
                .unwrap()
                .as_u64(),
            Some(4096)
        );
        let run = &v.get("runs").unwrap().as_array().unwrap()[0];
        assert_eq!(run.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(run.get("x"), Some(&Value::Null));
        assert_eq!(run.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(run.get("f").unwrap().as_u64(), None, "1.5 is not integral");
        assert_eq!(v.get("text").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} x",
            "\"unterminated",
            "nul",
            "01a",
            "{\"a\": \u{1}\"\"}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_carries_position() {
        let e = parse("{\n  \"a\": nope\n}").unwrap_err();
        assert!(e.starts_with("line 2"), "{e}");
    }
}
