//! Shared harness code for the figure-regeneration binaries.
//!
//! Each binary (`fig1`, `fig5`, `fig6`, `fig7`, `fig8`) reproduces one
//! table/figure of the paper's evaluation (Section 5). All accept
//! `--scale {test|s|m|paper}` (default `s`) and print an aligned text table
//! in the paper's layout. See EXPERIMENTS.md for paper-vs-measured records.

use std::time::Duration;
use stint::{Outcome, Variant};
use stint_suite::{Scale, Workload};

pub mod json;

/// Parse `--scale X` from argv (default `S`).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            if let Some(v) = args.get(i + 1) {
                if let Some(s) = Scale::parse(v) {
                    return s;
                }
                eprintln!("unknown scale {v:?}; use test|s|m|paper");
                std::process::exit(2);
            }
        }
        if let Some(v) = args[i].strip_prefix("--scale=") {
            if let Some(s) = Scale::parse(v) {
                return s;
            }
            eprintln!("unknown scale {v:?}; use test|s|m|paper");
            std::process::exit(2);
        }
    }
    Scale::S
}

pub fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::S => "s",
        Scale::M => "m",
        Scale::Paper => "paper",
    }
}

/// Seconds with 2 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// `(12.34x)` overhead of `t` relative to `base`.
pub fn overhead(t: Duration, base: Duration) -> f64 {
    t.as_secs_f64() / base.as_secs_f64().max(1e-9)
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Millions (the paper's `×10^6` columns): one decimal for large counts,
/// three for sub-0.1M counts so small interval totals stay visible.
pub fn millions(x: u64) -> String {
    let m = x as f64 / 1e6;
    if m >= 0.1 {
        format!("{m:.1}")
    } else {
        format!("{m:.3}")
    }
}

/// Run the baseline (uninstrumented) execution of a fresh instance.
pub fn baseline(name: &str, scale: Scale) -> Duration {
    let mut w = Workload::by_name(name, scale);
    stint::run_baseline(&mut w)
}

/// Run the reachability-only execution of a fresh instance.
pub fn reach_only(name: &str, scale: Scale) -> Duration {
    let mut w = Workload::by_name(name, scale);
    stint::run_reach_only(&mut w)
}

/// Run full detection with `variant` on a fresh instance. Racy-word
/// collection is disabled (the benchmarks are race-free; we still assert it).
pub fn run_variant(name: &str, scale: Scale, variant: Variant) -> Outcome {
    let mut w = Workload::by_name(name, scale);
    let mut cfg = stint::Config::new(variant);
    cfg.collect_racy_words = false;
    let o = stint::detect_with(&mut w, cfg);
    assert!(
        o.report.is_race_free(),
        "{name} reported races under {variant} — benchmark or detector bug"
    );
    o
}

/// Run full detection on an explicit program (for fig8's size sweeps).
pub fn run_program<P: stint::CilkProgram>(p: &mut P, variant: Variant) -> Outcome {
    let mut cfg = stint::Config::new(variant);
    cfg.collect_racy_words = false;
    let o = stint::detect_with(p, cfg);
    assert!(o.report.is_race_free(), "benchmark raced under {variant}");
    o
}

/// Fixed-width table printer: pads each column to its widest cell.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    s.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            s
        };
        println!("{}", line(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
        );
        for r in &self.rows {
            println!("{}", line(r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "x"]);
        t.row(vec!["a", "1.0"]);
        t.row(vec!["longer", "22.0"]);
        t.print(); // smoke: no panic
    }

    #[test]
    fn run_variant_smoke() {
        let o = run_variant("sort", Scale::Test, Variant::Stint);
        assert!(o.stats.total_intervals() > 0);
    }
}
