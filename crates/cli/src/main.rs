//! `stint-cli` — command-line front end for the STINT reproduction.
//!
//! ```text
//! stint-cli detect <bench> [--variant V] [--scale S]   race detect a benchmark
//! stint-cli bugs                                        run the buggy variants
//! stint-cli trace record <bench> <file> [--scale S]     record a portable trace
//! stint-cli trace info <file>                           inspect a trace file
//! stint-cli trace replay <file> [--variant V]           detect from a trace
//! stint-cli grid [n]                                    wavefront demo (Smith-Waterman)
//! ```
//!
//! Variants: vanilla | compiler | comp+rts | stint | stint-btree.
//! Scales: test | s | m | paper.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use stint::{
    detect_with, CompRtsDetector, Config, PortableTrace, RaceReport, StintDetector,
    StintFlatDetector, VanillaDetector, Variant,
};
use stint_suite::{Workload, NAMES};

mod args;
mod output;

use args::Parsed;
use output::{print_outcome, print_report};

fn main() -> ExitCode {
    // Exit quietly when stdout is a closed pipe (e.g. `stint-cli bugs | head`):
    // std's println! panics on EPIPE, which would print a scary backtrace.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
    }));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    match run(parsed) {
        Ok(races_found) => {
            if races_found {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Returns whether races were found (drives the exit code, like a linter).
fn run(p: Parsed) -> Result<bool, String> {
    match p {
        Parsed::Help => {
            println!("{}", args::USAGE);
            Ok(false)
        }
        Parsed::Detect {
            bench,
            variant,
            scale,
        } => {
            let mut w = Workload::by_name(&bench, scale);
            let outcome = detect_with(&mut w, Config::new(variant));
            w.verify()
                .map_err(|e| format!("output verification: {e}"))?;
            print_outcome(&bench, &outcome);
            Ok(!outcome.report.is_race_free())
        }
        Parsed::Bugs => {
            use stint_suite::buggy::*;
            let mut any = false;
            println!("Running the seeded-bug variants under STINT:\n");
            let o = stint::detect(&mut MmulMissingSync::new(16, 4, 7), Variant::Stint);
            println!("mmul with missing phase sync:");
            print_report(&o.report, 3);
            any |= !o.report.is_race_free();
            let o = stint::detect(
                &mut HeatMissingBarrier::new(16, 16, 3, 4, 7),
                Variant::Stint,
            );
            println!("\nheat with missing timestep barrier:");
            print_report(&o.report, 3);
            any |= !o.report.is_race_free();
            let o = stint::detect(&mut OverlappingMerge::new(64, 4, 7), Variant::Stint);
            println!("\nmergesort with overlapping output ranges:");
            print_report(&o.report, 3);
            any |= !o.report.is_race_free();
            Ok(any)
        }
        Parsed::TraceRecord { bench, file, scale } => {
            let mut w = Workload::by_name(&bench, scale);
            let pt = PortableTrace::record(&mut w);
            let f = File::create(&file).map_err(|e| format!("create {file}: {e}"))?;
            pt.save(BufWriter::new(f)).map_err(|e| e.to_string())?;
            println!(
                "recorded {} events over {} strands into {file}",
                pt.trace.len(),
                pt.reach.strand_count()
            );
            Ok(false)
        }
        Parsed::TraceInfo { file } => {
            let pt = load_trace(&file)?;
            let mut by_op = std::collections::BTreeMap::new();
            for e in &pt.trace.events {
                *by_op.entry(format!("{:?}", e.op)).or_insert(0u64) += 1;
            }
            println!("trace {file}:");
            println!("  strands: {}", pt.reach.strand_count());
            println!("  events:  {}", pt.trace.len());
            println!("  bytes:   {}", pt.trace.access_bytes());
            for (op, n) in by_op {
                println!("  {op:<12} {n}");
            }
            Ok(false)
        }
        Parsed::TraceReplay { file, variant } => {
            let pt = load_trace(&file)?;
            let report = RaceReport::default();
            let report = match variant {
                Variant::Vanilla => pt.replay(VanillaDetector::new(false, report)).report,
                Variant::Compiler => pt.replay(VanillaDetector::new(true, report)).report,
                Variant::CompRts => pt.replay(CompRtsDetector::new(report)).report,
                Variant::Stint => pt.replay(StintDetector::new(report)).report,
                Variant::StintFlat => pt.replay(StintFlatDetector::new_flat(report)).report,
            };
            println!("replayed {} events under {}:", pt.trace.len(), variant);
            print_report(&report, 10);
            Ok(!report.is_race_free())
        }
        Parsed::Grid { n } => {
            use stint_grid::wavefront::SmithWaterman;
            let a: Vec<u8> = (0..n).map(|i| b"ACGT"[(i * 7 + 1) % 4]).collect();
            let b: Vec<u8> = (0..n).map(|i| b"ACGT"[(i * 5 + 2) % 4]).collect();
            let mut sw = SmithWaterman::new(&a, &b);
            let report = sw.detect();
            println!(
                "Smith-Waterman {0}x{0} wavefront: score {1}, races {2}",
                n + 1,
                sw.score(),
                report.total
            );
            Ok(!report.is_race_free())
        }
    }
}

fn load_trace(file: &str) -> Result<PortableTrace, String> {
    let f = File::open(file).map_err(|e| format!("open {file}: {e}"))?;
    PortableTrace::load(BufReader::new(f)).map_err(|e| format!("parse {file}: {e}"))
}

/// Shared with `args.rs` for validation.
pub(crate) fn known_bench(name: &str) -> bool {
    NAMES.contains(&name)
}
