//! `stint-cli` — command-line front end for the STINT reproduction.
//!
//! ```text
//! stint-cli detect <bench> [--variant V] [--scale S]   race detect a benchmark
//! stint-cli bugs                                        run the buggy variants
//! stint-cli trace record <bench> <file> [--scale S]     record a portable trace
//! stint-cli trace info <file>                           inspect a trace file
//! stint-cli trace replay <file> [--variant V]           detect from a trace
//! stint-cli grid [n]                                    wavefront demo (Smith-Waterman)
//! ```
//!
//! Variants: vanilla | compiler | comp+rts | stint | stint-btree.
//! Scales: test | s | m | paper.
//!
//! Exit codes: 0 = no races, 1 = races found, 2 = usage/IO error,
//! 3 = detector resource budget exhausted (report sound up to the failure
//! point), 4 = internal detector failure.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use stint::{
    try_detect_with, CompRtsDetector, Config, DetectorError, PortableTrace, RaceReport,
    StintDetector, StintFlatDetector, VanillaDetector, Variant,
};
use stint_suite::{Workload, NAMES};

mod args;
mod output;

use args::{Parsed, RunOpts};
use output::{print_outcome, print_report};

/// A failed run: either bad input (exit 2) or a structured detector failure
/// (exit 3 for resource exhaustion, 4 for a poisoned session).
enum Failure {
    Usage(String),
    Detector(DetectorError),
}

impl Failure {
    fn exit_code(&self) -> u8 {
        match self {
            Failure::Usage(_) => 2,
            Failure::Detector(e) => e.exit_code(),
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Usage(e) => f.write_str(e),
            Failure::Detector(e) => write!(f, "{e}"),
        }
    }
}

fn usage<E: std::fmt::Display>(e: E) -> Failure {
    Failure::Usage(e.to_string())
}

fn main() -> ExitCode {
    // Exit quietly when stdout is a closed pipe (e.g. `stint-cli bugs | head`):
    // std's println! panics on EPIPE, which would print a scary backtrace.
    // Structured DetectorError panics are reported by the catch_unwind in
    // try_detect_with, so the hook stays silent for them too.
    std::panic::set_hook(Box::new(|info| {
        if info.payload().downcast_ref::<DetectorError>().is_some() {
            return;
        }
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
    }));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (parsed, opts) = match args::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    // Fault plans: environment first, then the CLI flag (which wins). Both
    // must be installed before any detector or pool is constructed — fault
    // knobs are sampled at structure construction time.
    if let Err(e) = stint_faults::install_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    if let Some(plan) = &opts.fault_plan {
        stint_faults::install(plan.clone());
    }
    match run(parsed, &opts) {
        Ok(races_found) => {
            if races_found {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// Returns whether races were found (drives the exit code, like a linter).
fn run(p: Parsed, opts: &RunOpts) -> Result<bool, Failure> {
    match p {
        Parsed::Help => {
            println!("{}", args::USAGE);
            Ok(false)
        }
        Parsed::Detect {
            bench,
            variant,
            scale,
        } => {
            let mut w = Workload::by_name(&bench, scale);
            let mut cfg = Config::new(variant);
            if let Some(mb) = opts.max_shadow_mb {
                cfg.budget = cfg.budget.with_shadow_mb(mb);
            }
            cfg.budget.max_intervals = opts.max_intervals;
            let outcome = try_detect_with(&mut w, cfg).map_err(Failure::Detector)?;
            w.verify()
                .map_err(|e| usage(format!("output verification: {e}")))?;
            print_outcome(&bench, &outcome);
            if let Some(err) = outcome.degraded {
                // The report above is sound but incomplete: surface the
                // failure and exit 3 rather than claiming a clean verdict.
                return Err(Failure::Detector(err));
            }
            Ok(!outcome.report.is_race_free())
        }
        Parsed::Bugs => {
            use stint_suite::buggy::*;
            let mut any = false;
            println!("Running the seeded-bug variants under STINT:\n");
            let o = stint::detect(&mut MmulMissingSync::new(16, 4, 7), Variant::Stint);
            println!("mmul with missing phase sync:");
            print_report(&o.report, 3);
            any |= !o.report.is_race_free();
            let o = stint::detect(
                &mut HeatMissingBarrier::new(16, 16, 3, 4, 7),
                Variant::Stint,
            );
            println!("\nheat with missing timestep barrier:");
            print_report(&o.report, 3);
            any |= !o.report.is_race_free();
            let o = stint::detect(&mut OverlappingMerge::new(64, 4, 7), Variant::Stint);
            println!("\nmergesort with overlapping output ranges:");
            print_report(&o.report, 3);
            any |= !o.report.is_race_free();
            Ok(any)
        }
        Parsed::TraceRecord { bench, file, scale } => {
            let mut w = Workload::by_name(&bench, scale);
            let pt = PortableTrace::record(&mut w);
            let f = File::create(&file).map_err(|e| usage(format!("create {file}: {e}")))?;
            pt.save(BufWriter::new(f)).map_err(usage)?;
            println!(
                "recorded {} events over {} strands into {file}",
                pt.trace.len(),
                pt.reach.strand_count()
            );
            Ok(false)
        }
        Parsed::TraceInfo { file } => {
            let pt = load_trace(&file).map_err(usage)?;
            let mut by_op = std::collections::BTreeMap::new();
            for e in &pt.trace.events {
                *by_op.entry(format!("{:?}", e.op)).or_insert(0u64) += 1;
            }
            println!("trace {file}:");
            println!("  strands: {}", pt.reach.strand_count());
            println!("  events:  {}", pt.trace.len());
            println!("  bytes:   {}", pt.trace.access_bytes());
            for (op, n) in by_op {
                println!("  {op:<12} {n}");
            }
            Ok(false)
        }
        Parsed::TraceReplay { file, variant } => {
            let pt = load_trace(&file).map_err(usage)?;
            let report = RaceReport::default();
            let report = match variant {
                Variant::Vanilla => pt.replay(VanillaDetector::new(false, report)).report,
                Variant::Compiler => pt.replay(VanillaDetector::new(true, report)).report,
                Variant::CompRts => pt.replay(CompRtsDetector::new(report)).report,
                Variant::Stint => pt.replay(StintDetector::new(report)).report,
                Variant::StintFlat => pt.replay(StintFlatDetector::new_flat(report)).report,
            };
            println!("replayed {} events under {}:", pt.trace.len(), variant);
            print_report(&report, 10);
            Ok(!report.is_race_free())
        }
        Parsed::Grid { n } => {
            use stint_grid::wavefront::SmithWaterman;
            let a: Vec<u8> = (0..n).map(|i| b"ACGT"[(i * 7 + 1) % 4]).collect();
            let b: Vec<u8> = (0..n).map(|i| b"ACGT"[(i * 5 + 2) % 4]).collect();
            let mut sw = SmithWaterman::new(&a, &b);
            let report = sw.detect();
            println!(
                "Smith-Waterman {0}x{0} wavefront: score {1}, races {2}",
                n + 1,
                sw.score(),
                report.total
            );
            Ok(!report.is_race_free())
        }
    }
}

fn load_trace(file: &str) -> Result<PortableTrace, String> {
    let f = File::open(file).map_err(|e| format!("open {file}: {e}"))?;
    PortableTrace::load(BufReader::new(f)).map_err(|e| format!("parse {file}: {e}"))
}

/// Shared with `args.rs` for validation.
pub(crate) fn known_bench(name: &str) -> bool {
    NAMES.contains(&name)
}
