//! `stint-cli` — command-line front end for the STINT reproduction.
//!
//! ```text
//! stint-cli detect <bench> [--variant V] [--scale S] [--shards K]
//! stint-cli bugs                                        run the buggy variants
//! stint-cli trace record <bench> <file> [--scale S]     record a portable trace
//! stint-cli trace info <file>                           inspect a trace file
//! stint-cli trace replay <file> [--variant V] [--shards K]
//! stint-cli grid [n]                                    wavefront demo (Smith-Waterman)
//! ```
//!
//! Variants: vanilla | compiler | comp+rts | stint | stint-btree, plus
//! `batch` (sharded batch mode on the work-stealing pool; `--shards K`).
//! Scales: test | s | m | paper.
//!
//! Exit codes: 0 = no races, 1 = races found, 2 = usage/IO error,
//! 3 = detector resource budget exhausted (report sound up to the failure
//! point), 4 = internal detector failure or corrupt trace file.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use stint::{
    try_detect_with, AccessEvidence, CompRtsDetector, Config, DetectorError, Outcome,
    PortableTrace, Race, RaceKind, RaceReport, StintDetector, StintFlatDetector, StrandId,
    VanillaDetector, Variant, Witness, WitnessChecker,
};
use stint_suite::{Scale, Workload, BUGGY_NAMES, NAMES};

mod args;
mod output;

use args::{Parsed, RunOpts, VariantSel};
use output::{
    print_batch_outcome, print_outcome, print_report, write_report_json, write_stats_json,
};
use stint_batchdet::{
    batch_detect, batch_detect_chunked, online_detect, BatchConfig, OnlineConfig,
};

/// A failed run: either bad input (exit 2) or a structured detector failure
/// (exit 3 for resource exhaustion, 4 for a poisoned session).
enum Failure {
    Usage(String),
    Detector(DetectorError),
}

impl Failure {
    fn exit_code(&self) -> u8 {
        match self {
            Failure::Usage(_) => 2,
            Failure::Detector(e) => e.exit_code(),
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Usage(e) => f.write_str(e),
            Failure::Detector(e) => write!(f, "{e}"),
        }
    }
}

fn usage<E: std::fmt::Display>(e: E) -> Failure {
    Failure::Usage(e.to_string())
}

fn main() -> ExitCode {
    // Exit quietly when stdout is a closed pipe (e.g. `stint-cli bugs | head`):
    // std's println! panics on EPIPE, which would print a scary backtrace.
    // Structured DetectorError panics are reported by the catch_unwind in
    // try_detect_with, so the hook stays silent for them too.
    std::panic::set_hook(Box::new(|info| {
        if info.payload().downcast_ref::<DetectorError>().is_some() {
            return;
        }
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
    }));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (parsed, opts) = match args::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    // Fault plans: environment first, then the CLI flag (which wins). Both
    // must be installed before any detector or pool is constructed — fault
    // knobs are sampled at structure construction time.
    if let Err(e) = stint_faults::install_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    if let Some(plan) = &opts.fault_plan {
        stint_faults::install(plan.clone());
    }
    // Observability: environment first, then the CLI flag (which wins). The
    // exporter flags imply the default config when nothing else enabled it,
    // so `--metrics-out x.json` alone produces a populated file.
    if let Err(e) = stint::obs::enable_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    match &opts.obs {
        Some(Some(cfg)) => {
            let mut cfg = *cfg;
            // --mem-series-out needs the sampler; default its interval when
            // the spec didn't pick one.
            if opts.mem_series_out.is_some() && cfg.sample_ms.is_none() {
                cfg.sample_ms = Some(10);
            }
            stint::obs::enable(cfg);
        }
        Some(None) => stint::obs::disable(),
        None => {
            let wants_obs = opts.metrics_out.is_some()
                || opts.trace_out.is_some()
                || opts.mem_series_out.is_some();
            if wants_obs && !stint::obs::is_enabled() {
                let mut cfg = stint::obs::ObsConfig::default();
                if opts.mem_series_out.is_some() {
                    cfg.sample_ms = Some(10);
                }
                stint::obs::enable(cfg);
            }
        }
    }
    let result = run(parsed, &opts);
    // Exports happen after the run regardless of success: a degraded run's
    // counters are exactly what an operator wants to look at.
    let export = write_obs_outputs(&opts);
    match (result, export) {
        (Ok(races_found), Ok(())) => {
            if races_found {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        (Ok(_), Err(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
        (Err(e), export) => {
            if let Err(x) = export {
                eprintln!("error: {x}");
            }
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// Writer for an export path; `-` means stdout.
fn out_writer(path: &str) -> Result<Box<dyn std::io::Write>, String> {
    if path == "-" {
        Ok(Box::new(BufWriter::new(std::io::stdout())))
    } else {
        let f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        Ok(Box::new(BufWriter::new(f)))
    }
}

/// Write `--metrics-out` / `--trace-out` / `--mem-series-out` files, if
/// requested. A path of `-` streams to stdout.
fn write_obs_outputs(opts: &RunOpts) -> Result<(), String> {
    if let Some(path) = &opts.metrics_out {
        stint::obs::write_metrics_json(out_writer(path)?)
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = &opts.trace_out {
        stint::obs::write_trace_json(out_writer(path)?)
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = &opts.mem_series_out {
        // Always close the series with one final snapshot so even a run
        // shorter than the sample interval yields a non-empty series.
        stint::obs::sampler::sample_now();
        stint::obs::write_mem_series_json(out_writer(path)?)
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(())
}

/// Returns whether races were found (drives the exit code, like a linter).
fn run(p: Parsed, opts: &RunOpts) -> Result<bool, Failure> {
    match p {
        Parsed::Help => {
            println!("{}", args::USAGE);
            Ok(false)
        }
        Parsed::Detect {
            bench,
            variant,
            scale,
            shards,
            compress,
            chunk_events,
            witness,
            reach,
            online,
            workers,
            steal_seed,
        } => {
            let mut cfg = Config::new(Variant::Stint);
            if let Some(mb) = opts.max_shadow_mb {
                cfg.budget = cfg.budget.with_shadow_mb(mb);
            }
            cfg.budget.max_intervals = opts.max_intervals;
            cfg.witnesses = witness;
            cfg.reach = reach;
            if online {
                let ocfg = OnlineConfig {
                    shards,
                    workers,
                    steal_seed,
                    chunk_events,
                    witnesses: witness,
                    budget: cfg.budget,
                };
                return detect_online(&bench, scale, &ocfg, opts);
            }
            if variant == VariantSel::Batch {
                return detect_batch(&bench, scale, shards, compress, chunk_events, witness, opts);
            }
            let outcomes = match variant {
                VariantSel::Batch => unreachable!("handled above"),
                VariantSel::One(v) => {
                    cfg.variant = v;
                    let mut w = Workload::by_name(&bench, scale);
                    let outcome = try_detect_with(&mut w, cfg).map_err(Failure::Detector)?;
                    w.verify()
                        .map_err(|e| usage(format!("output verification: {e}")))?;
                    vec![outcome]
                }
                VariantSel::All => detect_all(&bench, scale, cfg)?,
            };
            for (i, o) in outcomes.iter().enumerate() {
                if i > 0 {
                    println!();
                }
                print_outcome(&bench, o);
            }
            if outcomes.len() > 1 && outcomes.iter().all(|o| o.degraded.is_none()) {
                let first = outcomes[0].report.racy_words();
                if outcomes.iter().all(|o| o.report.racy_words() == first) {
                    println!(
                        "\nall {} variants agree: {} racy word(s)",
                        outcomes.len(),
                        first.len()
                    );
                } else {
                    eprintln!("warning: variants disagree on the racy-word set");
                }
            }
            // The stats dump goes out before the degraded check so a capped
            // run's partial numbers are still inspectable.
            if let Some(path) = &opts.stats_json {
                write_stats_json(path, &bench, &outcomes).map_err(usage)?;
            }
            if let Some(path) = &opts.report_json {
                let runs: Vec<(String, &RaceReport)> = outcomes
                    .iter()
                    .map(|o| (o.variant.name().to_string(), &o.report))
                    .collect();
                write_report_json(path, &bench, "detect", &runs).map_err(usage)?;
            }
            if let Some(err) = outcomes.iter().find_map(|o| o.degraded.clone()) {
                // The report above is sound but incomplete: surface the
                // failure and exit 3 rather than claiming a clean verdict.
                return Err(Failure::Detector(err));
            }
            Ok(outcomes.iter().any(|o| !o.report.is_race_free()))
        }
        Parsed::Bugs => {
            use stint_suite::buggy::*;
            let mut any = false;
            println!("Running the seeded-bug variants under STINT:\n");
            let o = stint::detect(&mut MmulMissingSync::new(16, 4, 7), Variant::Stint);
            println!("mmul with missing phase sync:");
            print_report(&o.report, 3);
            any |= !o.report.is_race_free();
            let o = stint::detect(
                &mut HeatMissingBarrier::new(16, 16, 3, 4, 7),
                Variant::Stint,
            );
            println!("\nheat with missing timestep barrier:");
            print_report(&o.report, 3);
            any |= !o.report.is_race_free();
            let o = stint::detect(&mut OverlappingMerge::new(64, 4, 7), Variant::Stint);
            println!("\nmergesort with overlapping output ranges:");
            print_report(&o.report, 3);
            any |= !o.report.is_race_free();
            Ok(any)
        }
        Parsed::TraceRecord {
            bench,
            file,
            scale,
            compress,
            chunk_events,
        } => {
            let mut w = Workload::by_name(&bench, scale);
            let pt = PortableTrace::record(&mut w);
            let f = File::create(&file).map_err(|e| usage(format!("create {file}: {e}")))?;
            if compress {
                let st = pt
                    .save_compressed(BufWriter::new(f), chunk_events)
                    .map_err(usage)?;
                println!(
                    "recorded {} events over {} strands into {file} \
                     (compressed: {} runs, {} chunk(s), {} bytes)",
                    pt.trace.len(),
                    pt.reach.strand_count(),
                    st.runs,
                    st.chunks,
                    st.bytes
                );
            } else {
                pt.save(BufWriter::new(f)).map_err(usage)?;
                println!(
                    "recorded {} events over {} strands into {file}",
                    pt.trace.len(),
                    pt.reach.strand_count()
                );
            }
            Ok(false)
        }
        Parsed::TraceInfo { file } => {
            let pt = load_trace(&file).map_err(usage)?;
            let mut by_op = std::collections::BTreeMap::new();
            for e in &pt.trace.events {
                *by_op.entry(format!("{:?}", e.op)).or_insert(0u64) += 1;
            }
            println!("trace {file}:");
            println!("  strands: {}", pt.reach.strand_count());
            println!("  events:  {}", pt.trace.len());
            println!("  bytes:   {}", pt.trace.access_bytes());
            for (op, n) in by_op {
                println!("  {op:<12} {n}");
            }
            Ok(false)
        }
        Parsed::TraceReplay {
            file,
            variant,
            shards,
            compress,
            chunk_events,
            witness,
        } => match variant {
            VariantSel::All => Err(usage("trace replay cannot run 'all'")),
            VariantSel::Batch => {
                // Batch replay validates the file before detecting: a
                // truncated, bit-flipped, or wrong-version trace is a
                // structured CorruptTrace failure (exit 4), never a panic.
                let f = File::open(&file).map_err(|e| usage(format!("open {file}: {e}")))?;
                let mut r = BufReader::new(f);
                let bcfg = BatchConfig {
                    shards,
                    witnesses: witness,
                    ..BatchConfig::default()
                };
                let out = if sniff_v2(&mut r).map_err(usage)? {
                    // v2 streams chunk-by-chunk straight off the disk —
                    // the full event stream is never resident.
                    batch_detect_chunked(r, &bcfg).map_err(Failure::Detector)?
                } else {
                    let pt = stint_batchdet::load_trace(r).map_err(Failure::Detector)?;
                    if compress {
                        // Transcode the v1 text trace to the compressed
                        // chunked form, then run the same streaming path.
                        let mut buf = Vec::new();
                        pt.save_compressed(&mut buf, chunk_events).map_err(usage)?;
                        batch_detect_chunked(&buf[..], &bcfg).map_err(Failure::Detector)?
                    } else {
                        batch_detect(&pt, &bcfg).map_err(Failure::Detector)?
                    }
                };
                // The header and merged report are invariant in the shard
                // count, steal schedule, and trace encoding, so scripts can
                // byte-diff this output across K and across v1/v2 (the
                // chunked path adds one "  ingested ..." telemetry line,
                // which encoding-comparing scripts strip).
                println!("replayed {} events under batch:", out.events);
                if let Some(ing) = &out.ingest {
                    println!(
                        "  ingested {} compressed bytes in {} chunk(s) \
                         ({} runs, {} wholesale)",
                        ing.bytes, ing.chunks, ing.runs, ing.wholesale_runs
                    );
                }
                let report = out.merged.to_report();
                print_report(&report, 10);
                if let Some(path) = &opts.report_json {
                    write_report_json(path, &file, "replay", &[("BATCH".into(), &report)])
                        .map_err(usage)?;
                }
                if let Some(err) = out.degraded {
                    return Err(Failure::Detector(err));
                }
                Ok(!report.is_race_free())
            }
            VariantSel::One(variant) => {
                let pt = load_trace(&file).map_err(usage)?;
                let report = RaceReport::default();
                let report = match variant {
                    Variant::Vanilla => {
                        pt.replay(VanillaDetector::new(false, report).with_witnesses(witness))
                            .report
                    }
                    Variant::Compiler => {
                        pt.replay(VanillaDetector::new(true, report).with_witnesses(witness))
                            .report
                    }
                    Variant::CompRts => {
                        pt.replay(CompRtsDetector::new(report).with_witnesses(witness))
                            .report
                    }
                    Variant::Stint => {
                        pt.replay(StintDetector::new(report).with_witnesses(witness))
                            .report
                    }
                    Variant::StintFlat => {
                        pt.replay(StintFlatDetector::new_flat(report).with_witnesses(witness))
                            .report
                    }
                };
                println!("replayed {} events under {}:", pt.trace.len(), variant);
                print_report(&report, 10);
                if let Some(path) = &opts.report_json {
                    write_report_json(path, &file, "replay", &[(variant.name().into(), &report)])
                        .map_err(usage)?;
                }
                Ok(!report.is_race_free())
            }
        },
        Parsed::WitnessVerify { trace, report } => witness_verify(&trace, &report),
        Parsed::Grid { n } => {
            use stint_grid::wavefront::SmithWaterman;
            let a: Vec<u8> = (0..n).map(|i| b"ACGT"[(i * 7 + 1) % 4]).collect();
            let b: Vec<u8> = (0..n).map(|i| b"ACGT"[(i * 5 + 2) % 4]).collect();
            let mut sw = SmithWaterman::new(&a, &b);
            let report = sw.detect();
            println!(
                "Smith-Waterman {0}x{0} wavefront: score {1}, races {2}",
                n + 1,
                sw.score(),
                report.total
            );
            Ok(!report.is_race_free())
        }
    }
}

/// `detect --variant batch`: record the benchmark into a portable trace
/// (phase 1 — sequential control-flow replay building the frozen SP-Order),
/// then fan detection out over `shards` address shards on the work-stealing
/// pool (phase 2) and print the deterministically merged report. With
/// `--compress`, phase 2 instead transcodes the trace to the compressed
/// chunked encoding and runs the streaming ingest path end to end.
fn detect_batch(
    bench: &str,
    scale: Scale,
    shards: usize,
    compress: bool,
    chunk_events: usize,
    witness: bool,
    opts: &RunOpts,
) -> Result<bool, Failure> {
    if opts.max_shadow_mb.is_some() || opts.max_intervals.is_some() {
        return Err(usage(
            "resource budgets are not supported with --variant batch",
        ));
    }
    if opts.stats_json.is_some() {
        return Err(usage("--stats-json is not supported with --variant batch"));
    }
    let mut w = Workload::by_name(bench, scale);
    let pt = PortableTrace::record(&mut w);
    w.verify()
        .map_err(|e| usage(format!("output verification: {e}")))?;
    let bcfg = BatchConfig {
        shards,
        witnesses: witness,
        ..BatchConfig::default()
    };
    let out = if compress {
        let mut buf = Vec::new();
        pt.save_compressed(&mut buf, chunk_events).map_err(usage)?;
        batch_detect_chunked(&buf[..], &bcfg).map_err(Failure::Detector)?
    } else {
        batch_detect(&pt, &bcfg).map_err(Failure::Detector)?
    };
    print_batch_outcome(bench, &out);
    if let Some(path) = &opts.report_json {
        let report = out.merged.to_report();
        write_report_json(path, bench, "detect", &[("BATCH".into(), &report)]).map_err(usage)?;
    }
    if let Some(err) = out.degraded {
        // Sound but incomplete, exactly like a degraded sequential run.
        return Err(Failure::Detector(err));
    }
    Ok(!out.merged.is_race_free())
}

/// `detect --online-parallel`: run the benchmark once under the
/// instrumented executor on the relabel-free DePa substrate, fanning each
/// chunk of the instrumentation stream out over address shards on the
/// work-stealing pool *while the program runs*. Everything printed here is
/// a deterministic function of the program and the chunk/shard knobs — no
/// worker count, steal seed or wall-clock time appears — so scripts
/// byte-diff the whole stdout across pool configurations.
fn detect_online(
    bench: &str,
    scale: Scale,
    ocfg: &OnlineConfig,
    opts: &RunOpts,
) -> Result<bool, Failure> {
    if opts.stats_json.is_some() {
        return Err(usage(
            "--stats-json is not supported with --online-parallel",
        ));
    }
    let mut w = Workload::by_name(bench, scale);
    let out = online_detect(&mut w, ocfg).map_err(Failure::Detector)?;
    w.verify()
        .map_err(|e| usage(format!("output verification: {e}")))?;
    println!(
        "online {bench}: {} events over {} strands, {} shard(s), {} merge cycle(s)",
        out.events,
        out.strands,
        out.shards.len(),
        out.chunks
    );
    let report = out.merged.to_report();
    print_report(&report, 10);
    if let Some(path) = &opts.report_json {
        write_report_json(path, bench, "detect", &[("ONLINE".into(), &report)]).map_err(usage)?;
    }
    if let Some(err) = out.degraded {
        // Sound but incomplete, exactly like a degraded sequential run.
        return Err(Failure::Detector(err));
    }
    Ok(!out.merged.is_race_free())
}

/// Run every variant of `bench` concurrently, one task per variant, on a
/// small work-stealing pool. Detection is thread-safe: each task owns its
/// workload and detector, and the process-wide state the tasks share (fault
/// plan, observability counters, timing latch) is read-only or atomic.
fn detect_all(bench: &str, scale: Scale, base: Config) -> Result<Vec<Outcome>, Failure> {
    let pool = stint_cilkrt::ThreadPool::new(Variant::ALL.len());
    let mut slots: Vec<Option<Result<Outcome, Failure>>> =
        Variant::ALL.iter().map(|_| None).collect();
    pool.install(|| fan_out(&pool, bench, scale, base, &Variant::ALL, &mut slots));
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        out.push(slot.expect("fan_out fills every slot")?);
    }
    Ok(out)
}

/// Recursive binary fan-out of `variants` over the pool, filling `slots`
/// (same length, same order).
fn fan_out(
    pool: &stint_cilkrt::ThreadPool,
    bench: &str,
    scale: Scale,
    base: Config,
    variants: &[Variant],
    slots: &mut [Option<Result<Outcome, Failure>>],
) {
    match variants {
        [] => {}
        [v] => {
            let mut cfg = base;
            cfg.variant = *v;
            let mut w = Workload::by_name(bench, scale);
            let r = try_detect_with(&mut w, cfg)
                .map_err(Failure::Detector)
                .and_then(|o| {
                    w.verify()
                        .map_err(|e| usage(format!("{v} output verification: {e}")))?;
                    Ok(o)
                });
            slots[0] = Some(r);
        }
        _ => {
            let mid = variants.len() / 2;
            let (vl, vr) = variants.split_at(mid);
            let (sl, sr) = slots.split_at_mut(mid);
            pool.join(
                || fan_out(pool, bench, scale, base, vl, sl),
                || fan_out(pool, bench, scale, base, vr, sr),
            );
        }
    }
}

/// Peek the buffered reader's head for the compressed `STINT-TRACE v2`
/// magic without consuming anything.
fn sniff_v2(r: &mut BufReader<File>) -> Result<bool, String> {
    use std::io::BufRead;
    let head = r.fill_buf().map_err(|e| format!("read trace: {e}"))?;
    Ok(head.starts_with(stint::MAGIC_V2.as_bytes()))
}

fn load_trace(file: &str) -> Result<PortableTrace, String> {
    let f = File::open(file).map_err(|e| format!("open {file}: {e}"))?;
    PortableTrace::load_any(BufReader::new(f)).map_err(|e| format!("parse {file}: {e}"))
}

/// `witness verify <trace> <report.json>`: re-run the independent
/// [`WitnessChecker`] on every race in a `stint-report-v1` report card
/// against the trace it was emitted from. Unreadable inputs are usage
/// errors (exit 2); a witness that fails verification — tampered evidence,
/// or a report paired with the wrong trace — is a corrupt-input failure
/// (exit 4). A report that carries races but no witnesses is a usage error:
/// there is nothing to verify, re-emit with `--witness`.
fn witness_verify(trace_path: &str, report_path: &str) -> Result<bool, Failure> {
    use stint_bench::json::{parse, Value};
    let pt = load_trace(trace_path).map_err(usage)?;
    let text = std::fs::read_to_string(report_path)
        .map_err(|e| usage(format!("read {report_path}: {e}")))?;
    let doc = parse(&text).map_err(|e| usage(format!("parse {report_path}: {e}")))?;
    let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != "stint-report-v1" {
        return Err(usage(format!(
            "{report_path}: schema is {schema:?}, expected \"stint-report-v1\""
        )));
    }
    let runs = doc
        .get("runs")
        .and_then(Value::as_array)
        .ok_or_else(|| usage(format!("{report_path}: no runs array")))?;
    let checker = WitnessChecker::new(&pt.reach).with_trace(&pt.trace);
    let (mut total, mut checked, mut unwitnessed) = (0u64, 0u64, 0u64);
    for (ri, run) in runs.iter().enumerate() {
        let races = run
            .get("races")
            .and_then(Value::as_array)
            .ok_or_else(|| usage(format!("{report_path}: run {ri} has no races array")))?;
        for (rj, race_json) in races.iter().enumerate() {
            total += 1;
            let race = race_from_json(race_json)
                .map_err(|e| usage(format!("{report_path}: run {ri} race {rj}: {e}")))?;
            if race.witness.is_none() {
                unwitnessed += 1;
                continue;
            }
            checked += 1;
            if let Err(reason) = checker.check(&race) {
                eprintln!(
                    "witness REJECTED (run {ri}, {} race on words [{:#x},{:#x}), \
                     s{} vs s{}): {reason}",
                    race.kind, race.word_lo, race.word_hi, race.prev.0, race.cur.0
                );
                return Err(Failure::Detector(DetectorError::CorruptTrace {
                    detail: format!("witness verification failed: {reason}"),
                }));
            }
        }
    }
    if checked == 0 && total > 0 {
        return Err(usage(format!(
            "{report_path}: {total} race(s), none witnessed — re-emit with --witness"
        )));
    }
    println!(
        "verified {checked} witness(es) across {total} race record(s) \
         ({unwitnessed} unwitnessed) against {trace_path}"
    );
    Ok(false)
}

/// Rebuild a [`Race`] (with optional witness) from its report-card JSON.
fn race_from_json(v: &stint_bench::json::Value) -> Result<Race, String> {
    use stint_bench::json::Value;
    let num = |o: &Value, key: &str| -> Result<u64, String> {
        o.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing integer field {key:?}"))
    };
    let kind = match v.get("kind").and_then(Value::as_str) {
        Some("write-write") => RaceKind::WriteWrite,
        Some("read-write") => RaceKind::ReadWrite,
        Some("write-read") => RaceKind::WriteRead,
        other => return Err(format!("bad race kind {other:?}")),
    };
    let mut race = Race::new(
        kind,
        num(v, "word_lo")?,
        num(v, "word_hi")?,
        StrandId(num(v, "prev")? as u32),
        StrandId(num(v, "cur")? as u32),
    );
    match v.get("witness") {
        None | Some(Value::Null) => {}
        Some(w) => {
            let side = |key: &str| -> Result<AccessEvidence, String> {
                let e = w
                    .get(key)
                    .ok_or_else(|| format!("witness missing {key:?} evidence"))?;
                Ok(AccessEvidence {
                    strand: StrandId(num(e, "strand")? as u32),
                    first_event: num(e, "first")?,
                    last_event: num(e, "last")?,
                    event: e.get("event").and_then(Value::as_u64),
                })
            };
            let flag = |key: &str| -> Result<bool, String> {
                w.get(key)
                    .and_then(Value::as_bool)
                    .ok_or_else(|| format!("witness missing boolean {key:?}"))
            };
            let chain = |key: &str| -> Result<Vec<StrandId>, String> {
                w.get(key)
                    .and_then(Value::as_array)
                    .ok_or_else(|| format!("witness missing lineage {key:?}"))?
                    .iter()
                    .map(|s| {
                        s.as_u64()
                            .map(|n| StrandId(n as u32))
                            .ok_or_else(|| format!("non-integer strand in {key:?}"))
                    })
                    .collect()
            };
            race.witness = Some(Box::new(Witness {
                prev: side("prev")?,
                cur: side("cur")?,
                prev_before_eng: flag("prev_before_eng")?,
                prev_before_heb: flag("prev_before_heb")?,
                prev_lineage: chain("prev_lineage")?,
                cur_lineage: chain("cur_lineage")?,
            }));
        }
    }
    Ok(race)
}

/// Shared with `args.rs` for validation: the race-free suite plus the
/// seeded-bug variants (racy traces for witness tooling).
pub(crate) fn known_bench(name: &str) -> bool {
    NAMES.contains(&name) || BUGGY_NAMES.contains(&name)
}
