//! Human-readable rendering of outcomes and reports, plus the `--stats-json`
//! machine-readable dump.

use stint::obs::json_escape;
use stint::{Outcome, RaceReport};

pub fn print_outcome(bench: &str, o: &Outcome) {
    println!("{bench} under {}:", o.variant);
    println!("  wall time:        {:?}", o.wall);
    println!(
        "  strands:          {} ({} spawns, {} syncs)",
        o.strands, o.counters.spawns, o.counters.effective_syncs
    );
    println!(
        "  word accesses:    {} reads, {} writes",
        o.stats.read.words, o.stats.write.words
    );
    println!(
        "  intervals:        {} reads, {} writes",
        o.stats.read.intervals, o.stats.write.intervals
    );
    if o.stats.treap.ops > 0 {
        println!(
            "  treap:            {} ops, {:.1} nodes/op, {:.2} overlaps/op",
            o.stats.treap.ops,
            o.stats.treap.avg_visited(),
            o.stats.treap.avg_overlaps()
        );
    }
    if o.stats.hash_ops > 0 {
        println!("  hashmap ops:      {}", o.stats.hash_ops);
    }
    if o.stats.ah_time.as_nanos() > 0 {
        println!("  access-hist time: {:?}", o.stats.ah_time);
    }
    print_report(&o.report, 10);
}

/// Render a batch run: the sharded-phase timing, routing summary, and the
/// merged (per-word-normalized) report.
pub fn print_batch_outcome(bench: &str, out: &stint_batchdet::BatchOutcome) {
    println!("{bench} under batch ({} shard(s)):", out.shards.len());
    println!("  sharded phase:    {:?}", out.wall);
    println!(
        "  trace:            {} events over {} strands",
        out.events, out.strands
    );
    let routed: u64 = out.shards.iter().map(|s| s.events).sum();
    println!("  routed:           {routed} shard-events");
    if let Some(ing) = &out.ingest {
        let secs = out.wall.as_secs_f64();
        let mibps = if secs > 0.0 {
            ing.bytes as f64 / (1024.0 * 1024.0) / secs
        } else {
            0.0
        };
        println!(
            "  ingest:           {} bytes, {} chunk(s), {} run(s) \
             ({} wholesale), {mibps:.1} MiB/s",
            ing.bytes, ing.chunks, ing.runs, ing.wholesale_runs
        );
    }
    println!(
        "  intervals:        {} reads, {} writes (summed over shards)",
        out.stats.read.intervals, out.stats.write.intervals
    );
    let report = out.merged.to_report();
    print_report(&report, 10);
}

pub fn print_report(report: &RaceReport, max: usize) {
    if report.is_race_free() {
        println!("  races:            none — race free \u{2713}");
        return;
    }
    println!(
        "  races:            {} report(s), {} distinct racy word(s)",
        report.total,
        report.racy_words().len()
    );
    // Detail records dropped at the report cap are surfaced explicitly —
    // a capped report must never read as a complete one.
    if report.truncated() {
        println!(
            "  truncated:        detail capped at {} of {} report(s)",
            report.races().len(),
            report.total
        );
    }
    for race in report.races().iter().take(max) {
        println!("    {race}");
        if let Some(w) = &race.witness {
            println!("      witness: {w}");
        }
    }
    let shown = report.races().len().min(max);
    if (report.total as usize) > shown {
        println!("    ... and {} more", report.total as usize - shown);
    }
}

/// Write the run(s) of one `detect` invocation as JSON. The per-run `stats`
/// object is generated from [`stint::DetectorStats::fields`] — the same
/// source the observability registry is fed from — so this dump, the figure
/// tables and `--metrics-out` can never disagree. `gauges` is the
/// process-wide space-gauge snapshot (current value and high watermark) at
/// dump time; it is empty when observability is off.
///
/// ```json
/// {
///   "schema": "stint-stats-v1",
///   "bench": "fft",
///   "gauges": { "ivtree.bytes": { "current": 0, "hw": 4096 } },
///   "runs": [ { "variant": "STINT", "wall_ns": 1, "ah_time_ns": 0,
///               "strands": 3, "spawns": 1, "syncs": 1, "races": 0,
///               "racy_words": 0, "degraded": null,
///               "stats": { "detector.read_hooks": 2, ... } } ]
/// }
/// ```
pub fn write_stats_json(path: &str, bench: &str, outcomes: &[Outcome]) -> Result<(), String> {
    use std::io::Write;
    let f = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(f);
    let mut emit = || -> std::io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"schema\": \"stint-stats-v1\",")?;
        writeln!(w, "  \"bench\": \"{}\",", json_escape(bench))?;
        let gauges = stint::obs::gauges_snapshot();
        writeln!(w, "  \"gauges\": {{")?;
        for (i, (name, current, hw)) in gauges.iter().enumerate() {
            let comma = if i + 1 < gauges.len() { "," } else { "" };
            writeln!(
                w,
                "    \"{}\": {{ \"current\": {current}, \"hw\": {hw} }}{comma}",
                json_escape(name)
            )?;
        }
        writeln!(w, "  }},")?;
        writeln!(w, "  \"runs\": [")?;
        for (i, o) in outcomes.iter().enumerate() {
            writeln!(w, "    {{")?;
            writeln!(
                w,
                "      \"variant\": \"{}\",",
                json_escape(o.variant.name())
            )?;
            writeln!(w, "      \"wall_ns\": {},", o.wall.as_nanos())?;
            writeln!(w, "      \"ah_time_ns\": {},", o.stats.ah_time.as_nanos())?;
            writeln!(w, "      \"strands\": {},", o.strands)?;
            writeln!(w, "      \"spawns\": {},", o.counters.spawns)?;
            writeln!(w, "      \"syncs\": {},", o.counters.effective_syncs)?;
            writeln!(w, "      \"races\": {},", o.report.total)?;
            writeln!(w, "      \"truncated\": {},", o.report.truncated())?;
            writeln!(w, "      \"racy_words\": {},", o.report.racy_words().len())?;
            match &o.degraded {
                Some(e) => writeln!(
                    w,
                    "      \"degraded\": \"{}\",",
                    json_escape(&e.to_string())
                )?,
                None => writeln!(w, "      \"degraded\": null,")?,
            }
            writeln!(w, "      \"stats\": {{")?;
            let fields = o.stats.fields();
            for (j, (name, v)) in fields.iter().enumerate() {
                let comma = if j + 1 < fields.len() { "," } else { "" };
                writeln!(w, "        \"{}\": {v}{comma}", json_escape(name))?;
            }
            writeln!(w, "      }}")?;
            let comma = if i + 1 < outcomes.len() { "," } else { "" };
            writeln!(w, "    }}{comma}")?;
        }
        writeln!(w, "  ]")?;
        writeln!(w, "}}")
    };
    emit().map_err(|e| format!("write {path}: {e}"))
}

/// Write the race-report-card (`--report-json`, schema `stint-report-v1`):
/// per run the totals, an **explicit `truncated` marker** (detail records
/// dropped at the report cap are never silent), the coalesced racy word
/// intervals, and every kept race — with its structured witness when
/// capture was on. `witness verify` re-validates this file against the
/// trace it came from.
///
/// ```json
/// {
///   "schema": "stint-report-v1",
///   "source": "buggy-mmul",
///   "command": "detect",
///   "runs": [ { "variant": "STINT", "total": 3, "kept": 3,
///               "truncated": false, "racy_words": 4,
///               "racy_intervals": [[16, 20]],
///               "races": [ { "kind": "write-read", "word_lo": 16,
///                            "word_hi": 20, "prev": 2, "cur": 5,
///                            "witness": { "prev": { ... }, ... } } ] } ]
/// }
/// ```
pub fn write_report_json(
    path: &str,
    source: &str,
    command: &str,
    runs: &[(String, &RaceReport)],
) -> Result<(), String> {
    use std::io::Write;
    let mut w: Box<dyn std::io::Write> = if path == "-" {
        Box::new(std::io::BufWriter::new(std::io::stdout()))
    } else {
        let f = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        Box::new(std::io::BufWriter::new(f))
    };
    let mut emit = || -> std::io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"schema\": \"stint-report-v1\",")?;
        writeln!(w, "  \"source\": \"{}\",", json_escape(source))?;
        writeln!(w, "  \"command\": \"{}\",", json_escape(command))?;
        writeln!(w, "  \"runs\": [")?;
        for (i, (variant, report)) in runs.iter().enumerate() {
            writeln!(w, "    {{")?;
            writeln!(w, "      \"variant\": \"{}\",", json_escape(variant))?;
            writeln!(w, "      \"total\": {},", report.total)?;
            writeln!(w, "      \"kept\": {},", report.races().len())?;
            writeln!(w, "      \"truncated\": {},", report.truncated())?;
            writeln!(w, "      \"racy_words\": {},", report.racy_words().len())?;
            let ivs: Vec<String> = report
                .racy_intervals()
                .iter()
                .map(|(lo, hi)| format!("[{lo}, {hi}]"))
                .collect();
            writeln!(w, "      \"racy_intervals\": [{}],", ivs.join(", "))?;
            writeln!(w, "      \"races\": [")?;
            let races = report.races();
            for (j, r) in races.iter().enumerate() {
                let witness = match &r.witness {
                    Some(wit) => wit.to_json(),
                    None => "null".into(),
                };
                let comma = if j + 1 < races.len() { "," } else { "" };
                writeln!(
                    w,
                    "        {{ \"kind\": \"{}\", \"word_lo\": {}, \"word_hi\": {}, \
                     \"prev\": {}, \"cur\": {}, \"witness\": {witness} }}{comma}",
                    r.kind, r.word_lo, r.word_hi, r.prev.0, r.cur.0
                )?;
            }
            writeln!(w, "      ]")?;
            let comma = if i + 1 < runs.len() { "," } else { "" };
            writeln!(w, "    }}{comma}")?;
        }
        writeln!(w, "  ]")?;
        writeln!(w, "}}")
    };
    emit().map_err(|e| format!("write {path}: {e}"))
}
