//! Human-readable rendering of outcomes and reports.

use stint::{Outcome, RaceReport};

pub fn print_outcome(bench: &str, o: &Outcome) {
    println!("{bench} under {}:", o.variant);
    println!("  wall time:        {:?}", o.wall);
    println!(
        "  strands:          {} ({} spawns, {} syncs)",
        o.strands, o.counters.spawns, o.counters.effective_syncs
    );
    println!(
        "  word accesses:    {} reads, {} writes",
        o.stats.read.words, o.stats.write.words
    );
    println!(
        "  intervals:        {} reads, {} writes",
        o.stats.read.intervals, o.stats.write.intervals
    );
    if o.stats.treap.ops > 0 {
        println!(
            "  treap:            {} ops, {:.1} nodes/op, {:.2} overlaps/op",
            o.stats.treap.ops,
            o.stats.treap.avg_visited(),
            o.stats.treap.avg_overlaps()
        );
    }
    if o.stats.hash_ops > 0 {
        println!("  hashmap ops:      {}", o.stats.hash_ops);
    }
    if o.stats.ah_time.as_nanos() > 0 {
        println!("  access-hist time: {:?}", o.stats.ah_time);
    }
    print_report(&o.report, 10);
}

pub fn print_report(report: &RaceReport, max: usize) {
    if report.is_race_free() {
        println!("  races:            none — race free \u{2713}");
        return;
    }
    println!(
        "  races:            {} report(s), {} distinct racy word(s)",
        report.total,
        report.racy_words().len()
    );
    for race in report.races().iter().take(max) {
        println!("    {race}");
    }
    let shown = report.races().len().min(max);
    if (report.total as usize) > shown {
        println!("    ... and {} more", report.total as usize - shown);
    }
}
